#!/usr/bin/env bash
# Repo check gate: lint + static plan verification + the tier-1 test suite.
#
# Usage: scripts/check.sh [--fast] [extra pytest args...]
#
# Stages:
#   1. ruff (when available — CI images that lack it skip with a notice)
#   2. repro.check lint  (REP001-REP008 AST pass over src; REP004 retired)
#   3. repro.check flow  (CONC/DET call-graph rules over src; pure AST,
#      so it stays in the --fast loop; writes flow.sarif.json for CI)
#   4. repro.check plan verifier over the figure golden plans
#   --fast stops here (lint + flow + verifier only — the seconds-scale
#   pre-commit loop; see docs/TESTING.md). The full gate continues with:
#   5. reconfiguration smoke (one overlapped cell per backend under a
#      25 us MRR tuning model: optical plans PLAN-clean with the
#      reconfigure-vs-hold decision logged, analytic overlap beating
#      serial, electrical untouched)
#   6. fault-injection smoke (seeded degraded scenarios per backend,
#      verified by repro.check; live fault runs checked for determinism;
#      incremental repair cross-checked against from-scratch recoloring
#      via --paranoid-repair)
#   7. planning-service smoke (daemon on a temp socket; every backend's
#      served answer asserted bit-identical to the in-process path, plus
#      a faulted request through the repair seam)
#   8. tier-1 tests (which also auto-verify every lowered plan via the
#      repro.check pytest plugin)
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
    FAST=1
    shift
fi

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests
    echo "== ruff format (diff only) =="
    ruff format --check src tests
else
    echo "== ruff not installed; skipping lint stage =="
fi

echo "== repro.check lint =="
python -m repro.check.lint src

echo "== repro.check flow (CONC/DET call-graph rules) =="
python -m repro.check flow src --sarif flow.sarif.json

echo "== repro.check golden plans (optical) =="
python -m repro.check check --backend optical

if [[ "$FAST" == "1" ]]; then
    echo "== --fast: skipping fault smoke and tier-1 tests =="
    exit 0
fi

echo "== collectives smoke (every registered algorithm, all N classes) =="
python - <<'PY'
from repro.backend.analytic import AnalyticBackend
from repro.collectives import build_schedule, verify_allreduce
from repro.collectives.registry import available_algorithms
from repro.core.timing import CostModel

# Build, numerically verify, and (where a closed form exists) lower every
# registered algorithm at a power of two, a non-power-of-two, and the
# paper's mid-size N. DBTree has no closed-form model by design, so it is
# verified numerically but not priced analytically.
backend = AnalyticBackend(CostModel(line_rate=40e9 / 8, step_overhead=25e-6), w=8)
for algo in available_algorithms():
    for n in (8, 15, 64):
        kwargs = {"n_wavelengths": 8} if algo == "wrht" else {}
        if algo == "hring":
            kwargs["m"] = min(5, n)
        schedule = build_schedule(algo, n, max(n, 32), materialize=True, **kwargs)
        verify_allreduce(schedule)
        if algo != "dbtree":
            result = backend.run(schedule, bytes_per_elem=4.0)
            assert result.n_steps == schedule.n_steps, (
                algo, n, result.n_steps, schedule.n_steps
            )
    print(f"  {algo}: verified at N=8/15/64")
PY

echo "== reconfiguration smoke (tuning model + overlap, per backend) =="
python - <<'PY'
from repro.backend.analytic import AnalyticBackend
from repro.backend.electrical import ElectricalBackend
from repro.backend.optical import OpticalBackend
from repro.check.context import optical_context
from repro.check.engine import verify_plan
from repro.check.findings import errors
from repro.collectives import build_schedule
from repro.core.timing import CostModel
from repro.electrical.config import ElectricalSystemConfig
from repro.optical.config import OpticalSystemConfig
from repro.optical.reconfig import ReconfigModel

T_TUNE = 25e-6
model = CostModel(line_rate=40e9 / 8, step_overhead=25e-6)

# Optical: lower one overlapped cell through the reconfigure-vs-hold
# estimator and verify the chosen plan against PLAN000-PLAN008.
cfg = OpticalSystemConfig(n_nodes=8, n_wavelengths=32, t_tune=T_TUNE)
for algo, elems in (("swing", 4096), ("rd", 1_000_000)):
    schedule = build_schedule(algo, 8, elems)
    backend = OpticalBackend(cfg)
    plan = backend.lower(schedule)
    decision = plan.meta["reconfig"]["decision"]
    context = optical_context(backend, schedule, plan)
    errs = errors(verify_plan(context=context))
    assert not errs, (algo, errs)
    print(
        f"  optical {algo}/{elems}: decision={decision['chosen']} "
        f"(reconfigure={decision['reconfigure_s']:.3e}s "
        f"hold={decision['hold_s']}) PLAN-clean"
    )

# Analytic: the overlap recurrence must never lose to serial tuning.
schedule = build_schedule("swing", 8, 1_000_000, materialize=False)
times = {}
for overlap in (True, False):
    backend = AnalyticBackend(
        model, w=32, reconfig=ReconfigModel(t_tune=T_TUNE), overlap=overlap
    )
    times[overlap] = backend.run(schedule).total_time
assert times[True] < times[False], times
print(f"  analytic swing: overlap {times[True]:.3e}s < serial {times[False]:.3e}s")

# Electrical: packet switching pays no reconfiguration tax.
schedule = build_schedule("swing", 8, 4096)
base = ElectricalBackend(ElectricalSystemConfig(n_nodes=8)).run(schedule)
taxed = ElectricalBackend(
    ElectricalSystemConfig(n_nodes=8), reconfig=ReconfigModel(t_tune=T_TUNE)
).run(schedule)
assert base.total_time == taxed.total_time
print(f"  electrical swing: zero tuning tax ({base.total_time:.3e}s)")
PY

echo "== fault-injection smoke =="
python -m repro.faults --paranoid-repair

echo "== planning-service smoke =="
python -m repro.service smoke

echo "== tier-1 tests =="
python -m pytest -x -q "$@"
