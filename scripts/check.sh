#!/usr/bin/env bash
# Repo check gate: lint + static plan verification + the tier-1 test suite.
#
# Usage: scripts/check.sh [--fast] [extra pytest args...]
#
# Stages:
#   1. ruff (when available — CI images that lack it skip with a notice)
#   2. repro.check lint  (REP001-REP008 AST pass over src; REP004 retired)
#   3. repro.check flow  (CONC/DET call-graph rules over src; pure AST,
#      so it stays in the --fast loop; writes flow.sarif.json for CI)
#   4. repro.check plan verifier over the figure golden plans
#   --fast stops here (lint + flow + verifier only — the seconds-scale
#   pre-commit loop; see docs/TESTING.md). The full gate continues with:
#   5. fault-injection smoke (seeded degraded scenarios per backend,
#      verified by repro.check; live fault runs checked for determinism;
#      incremental repair cross-checked against from-scratch recoloring
#      via --paranoid-repair)
#   6. planning-service smoke (daemon on a temp socket; every backend's
#      served answer asserted bit-identical to the in-process path, plus
#      a faulted request through the repair seam)
#   7. tier-1 tests (which also auto-verify every lowered plan via the
#      repro.check pytest plugin)
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
    FAST=1
    shift
fi

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests
    echo "== ruff format (diff only) =="
    ruff format --check src tests
else
    echo "== ruff not installed; skipping lint stage =="
fi

echo "== repro.check lint =="
python -m repro.check.lint src

echo "== repro.check flow (CONC/DET call-graph rules) =="
python -m repro.check flow src --sarif flow.sarif.json

echo "== repro.check golden plans (optical) =="
python -m repro.check check --backend optical

if [[ "$FAST" == "1" ]]; then
    echo "== --fast: skipping fault smoke and tier-1 tests =="
    exit 0
fi

echo "== fault-injection smoke =="
python -m repro.faults --paranoid-repair

echo "== planning-service smoke =="
python -m repro.service smoke

echo "== tier-1 tests =="
python -m pytest -x -q "$@"
