#!/usr/bin/env bash
# Repo check gate: lint (when ruff is available) + the tier-1 test suite.
#
# Usage: scripts/check.sh [extra pytest args...]
#
# ruff is optional tooling — CI images that lack it skip the lint stage
# with a notice instead of failing, so the test gate always runs.
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests
    echo "== ruff format (diff only) =="
    ruff format --check src tests
else
    echo "== ruff not installed; skipping lint stage =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q "$@"
