#!/usr/bin/env python
"""Benchmark-regression gate: re-measure pinned bench cells, compare, exit.

Re-runs a pinned subset of the committed benchmarks and gates the fresh
numbers against the committed baselines via :mod:`repro.obs.benchgate`:

- **RWA kernel micro cells** (``BENCH_rwa.json``): the dense-alltoall and
  wrht-heaviest cases at N=64 and N=256 — every shape from the committed
  ``micro`` table except the ~20 s N=1024 dense case, which is too slow
  for a per-push gate. Transfer counts are gated exactly; speedups are
  best-of-3 and gated against a perf *floor* (default 0.25 x baseline,
  i.e. only a 4x regression fails — wall clock is host-noisy).
- **Fault-sweep scenarios** (``BENCH_faults.json``): the full canonical
  scenario x backend grid. These are deterministic simulated quantities,
  gated with a tight relative tolerance (default 1e-6) plus exact
  survivor counts and a zero static-verification-error requirement.
- **Incremental-repair micro cells** (``BENCH_repair.json``): single-fault
  repair vs full recolor at N in {64, 256, 1024}. Transfer and fallback
  counts are gated exactly (fallbacks must be 0); the repair speedup is
  best-of-N wall clock, gated against the same perf floor.
- **Planning-service throughput** (``BENCH_service.json``): the
  multi-tenant micro-grid replay through a live daemon. Request/tenant/
  cell counts are gated exactly; req/s is gated against the perf floor
  *and* an absolute >=500 req/s floor.
- **Collectives bake-off** (``BENCH_collectives.json``): the rival
  algorithm lineup (Ring/BT/RD/Swing/SCRing/WRHT) over the completion
  -time curve grid and the canonical fault scenarios. All deterministic:
  step/survivor counts exact, times and availability at the tight
  relative tolerance, zero verification errors required.
- **Reconfiguration-overlap grid** (``BENCH_reconfig.json``): serial vs
  overlapped MRR tuning exposure and the reconfigure-vs-hold decision per
  (algorithm, backend, N, payload) cell, all deterministic: times at the
  tight relative tolerance, decisions and verification-error counts
  exact, plus the baseline-independent requirement that overlap strictly
  beats serial tuning on at least one optical cell.

Exit status: 0 when every comparison passes, 1 on any regression, 2 when
a baseline file is missing or unreadable. ``--json`` writes the full diff
record (uploaded as a CI artifact on failure); ``--skip-perf`` drops the
wall-clock RWA/repair measurements for a fast deterministic-only run.
``--update-baseline`` rewrites the measured cells back into the pinned
baseline JSONs (leaving unmeasured cells untouched) instead of gating —
for intentional perf/behavior changes; review the resulting diff.
``--summary PATH`` appends a markdown gate summary to PATH (pointed at
``$GITHUB_STEP_SUMMARY`` in CI so every run reports its comparisons).

Usage::

    python scripts/bench_gate.py [--json diff.json] [--skip-perf]
    python scripts/bench_gate.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.obs.benchgate import (  # noqa: E402
    DEFAULT_PERF_FLOOR,
    DEFAULT_SIM_REL_TOL,
    GateReport,
    compare_collectives,
    compare_faults,
    compare_reconfig,
    compare_repair,
    compare_rwa,
    compare_service,
)

#: Pinned RWA micro cells: (case label, N, dense representative count or
#: None for the wrht-heaviest shape). The N=1024 dense case is excluded —
#: its seed-kernel measurement alone takes ~20 s.
PINNED_RWA_CELLS = (
    ("dense-alltoall", 64, 16),
    ("dense-alltoall", 256, 32),
    ("wrht-heaviest", 64, None),
    ("wrht-heaviest", 256, None),
)

BEST_OF = 3


def measure_rwa(best_of: int = BEST_OF) -> list[dict]:
    """Fresh measurements for the pinned RWA cells (best-of-``best_of``)."""
    from benchmarks.bench_rwa import (
        _dense_routes,
        _time_kernels,
        _wrht_heaviest_routes,
    )

    rows = []
    for case, n, k in PINNED_RWA_CELLS:
        if k is not None:
            n_seg, routes = _dense_routes(n, k)
        else:
            n_seg, routes = _wrht_heaviest_routes(n)
        best = None
        for _ in range(best_of):
            seed_s, fast_s = _time_kernels(n_seg, routes)
            speedup = seed_s / fast_s
            if best is None or speedup > best["speedup"]:
                best = {"seed_s": seed_s, "bitmask_s": fast_s, "speedup": speedup}
        rows.append(
            {"case": case, "n": n, "transfers": len(routes), **best}
        )
    return rows


def measure_faults() -> list[dict]:
    """Fresh fault-sweep rows, same shape as ``BENCH_faults.json``."""
    from benchmarks.bench_faults import _run_availability

    return _run_availability()


def measure_repair() -> list[dict]:
    """Fresh repair micro rows, same shape as ``BENCH_repair.json``.

    All three cells are cheap (the slowest side is one ~5 ms full recolor
    at N=1024), so unlike the RWA table nothing is excluded from the gate.
    """
    from benchmarks.bench_repair import _run_repair_micro

    return _run_repair_micro()


def measure_service() -> list[dict]:
    """Fresh service-throughput rows, same shape as ``BENCH_service.json``."""
    from benchmarks.bench_service import _run_service_micro

    return _run_service_micro()


def measure_reconfig() -> list[dict]:
    """Fresh reconfiguration rows, same shape as ``BENCH_reconfig.json``.

    The whole pinned grid (N=8, three backends) re-measures in well under
    a second, so nothing is excluded from the gate. The scheduled
    full-grid lane sets ``WRHT_BENCH_FULL=1`` for the larger N=16 cells.
    """
    from benchmarks.bench_reconfig import _run_reconfig

    return _run_reconfig()


def measure_collectives() -> dict:
    """Fresh bake-off sections, same shape as ``BENCH_collectives.json``.

    The whole grid (both sections) is deterministic and re-measures in a
    few seconds — the simulated backends are capped at N=64 and the
    analytic N=1024 cells skip materialization — so unlike the RWA table
    nothing is excluded from the gate.
    """
    from benchmarks.bench_collectives import _run_curves, _run_fault_grid

    return {"curves": _run_curves(), "faults": _run_fault_grid()}


def load_baseline(path: Path) -> dict | None:
    """Parsed baseline JSON, or ``None`` when missing/unreadable."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def update_baseline(
    path: Path, section: str, rows: list[dict], key_fields: tuple[str, ...]
) -> None:
    """Splice freshly measured ``rows`` into ``path``'s ``section`` list.

    Rows are matched by ``key_fields``; measured cells are replaced in
    place, unmeasured cells (e.g. the N=1024 dense RWA case the gate never
    re-runs) keep their committed values, and genuinely new cells append.
    """
    baseline = load_baseline(path) or {}
    existing = list(baseline.get(section, []))
    fresh = {tuple(row[k] for k in key_fields): row for row in rows}
    merged = []
    for row in existing:
        key = tuple(row.get(k) for k in key_fields)
        merged.append(fresh.pop(key, row))
    merged.extend(fresh.values())
    baseline[section] = merged
    path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"updated {len(rows)} {section} row(s) in {path}")


def write_summary(path: Path, report: GateReport) -> None:
    """Append a markdown summary of ``report`` to ``path``.

    CI points this at ``$GITHUB_STEP_SUMMARY`` so every bench-gate run —
    pass or fail — shows its comparison counts (and any violations) on
    the workflow summary page.
    """
    lines = [
        "## Bench gate",
        "",
        f"**{'PASS' if report.ok else 'FAIL'}** — "
        f"{len(report.checked)} comparison(s), "
        f"{len(report.violations)} violation(s)",
        "",
    ]
    if report.violations:
        lines += [
            "| metric | kind | current | baseline | allowed |",
            "| --- | --- | --- | --- | --- |",
        ]
        lines += [
            f"| `{v.metric}` | {v.kind} | {v.current!r} | {v.baseline!r} "
            f"| {v.allowed} |"
            for v in report.violations
        ]
        lines.append("")
    with path.open("a") as handle:
        handle.write("\n".join(lines) + "\n")
    print(f"appended gate summary to {path}")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status (0/1/2)."""
    parser = argparse.ArgumentParser(
        prog="scripts/bench_gate.py",
        description="re-measure pinned bench cells and gate them against "
        "the committed BENCH_rwa.json / BENCH_faults.json / "
        "BENCH_repair.json baselines",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full diff record to PATH (CI failure artifact)",
    )
    parser.add_argument(
        "--perf-floor", type=float, default=DEFAULT_PERF_FLOOR,
        help="speedup must stay above baseline x FLOOR (default %(default)s)",
    )
    parser.add_argument(
        "--sim-rel-tol", type=float, default=DEFAULT_SIM_REL_TOL,
        help="relative tolerance for deterministic simulated values "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--skip-perf", action="store_true",
        help="skip the wall-clock RWA/repair measurements "
        "(deterministic-only)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the measured cells back into the pinned baseline "
        "JSONs instead of gating (for intentional changes)",
    )
    parser.add_argument(
        "--baseline-rwa", type=Path, default=REPO_ROOT / "BENCH_rwa.json",
        help="override the RWA baseline path (tests)",
    )
    parser.add_argument(
        "--baseline-faults", type=Path,
        default=REPO_ROOT / "BENCH_faults.json",
        help="override the faults baseline path (tests)",
    )
    parser.add_argument(
        "--baseline-repair", type=Path,
        default=REPO_ROOT / "BENCH_repair.json",
        help="override the repair baseline path (tests)",
    )
    parser.add_argument(
        "--baseline-service", type=Path,
        default=REPO_ROOT / "BENCH_service.json",
        help="override the service baseline path (tests)",
    )
    parser.add_argument(
        "--baseline-collectives", type=Path,
        default=REPO_ROOT / "BENCH_collectives.json",
        help="override the collectives bake-off baseline path (tests)",
    )
    parser.add_argument(
        "--baseline-reconfig", type=Path,
        default=REPO_ROOT / "BENCH_reconfig.json",
        help="override the reconfiguration-overlap baseline path (tests)",
    )
    parser.add_argument(
        "--summary", metavar="PATH", default=None,
        help="append a markdown gate summary to PATH "
        "(CI points this at $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    perf_baselines = (
        []
        if args.skip_perf
        else [args.baseline_rwa, args.baseline_repair, args.baseline_service]
    )
    missing = [
        path
        for path in perf_baselines
        + [args.baseline_faults, args.baseline_collectives,
           args.baseline_reconfig]
        if load_baseline(path) is None
    ]
    if missing and not args.update_baseline:
        for path in missing:
            print(f"bench gate: missing or unreadable baseline: {path}",
                  file=sys.stderr)
        return 2

    report = GateReport()
    if not args.skip_perf:
        print(f"measuring pinned RWA cells (best of {BEST_OF}) ...")
        rwa_rows = measure_rwa()
        for row in rwa_rows:
            print(
                f"  rwa.{row['case']}.n{row['n']}: "
                f"transfers={row['transfers']} speedup={row['speedup']:.1f}x"
            )
        print("measuring incremental-repair cells ...")
        repair_rows = measure_repair()
        for row in repair_rows:
            print(
                f"  repair.{row['case']}.n{row['n']}: "
                f"transfers={row['transfers']} speedup={row['speedup']:.1f}x"
            )
        print("measuring planning-service throughput ...")
        service_rows = measure_service()
        for row in service_rows:
            print(
                f"  service.{row['case']}: rps={row['rps']:.0f} "
                f"p50={row['p50_ms']:.3f}ms p99={row['p99_ms']:.3f}ms"
            )
        if args.update_baseline:
            update_baseline(args.baseline_rwa, "micro", rwa_rows, ("case", "n"))
            update_baseline(
                args.baseline_repair, "repair", repair_rows, ("case", "n")
            )
            update_baseline(
                args.baseline_service, "service", service_rows, ("case",)
            )
        else:
            report.merge(
                compare_rwa(
                    rwa_rows, load_baseline(args.baseline_rwa),
                    perf_floor=args.perf_floor,
                )
            )
            report.merge(
                compare_repair(
                    repair_rows, load_baseline(args.baseline_repair),
                    perf_floor=args.perf_floor,
                )
            )
            report.merge(
                compare_service(
                    service_rows, load_baseline(args.baseline_service),
                    perf_floor=args.perf_floor,
                )
            )
    print("measuring fault-sweep scenarios ...")
    fault_rows = measure_faults()
    print("measuring collectives bake-off grids ...")
    collectives = measure_collectives()
    print("measuring reconfiguration-overlap grid ...")
    reconfig_rows = measure_reconfig()
    if args.update_baseline:
        update_baseline(
            args.baseline_faults, "scenarios", fault_rows,
            ("scenario", "backend"),
        )
        update_baseline(
            args.baseline_collectives, "curves", collectives["curves"],
            ("algorithm", "backend", "n_nodes", "elems"),
        )
        update_baseline(
            args.baseline_collectives, "faults", collectives["faults"],
            ("algorithm", "scenario"),
        )
        update_baseline(
            args.baseline_reconfig, "reconfig", reconfig_rows,
            ("algorithm", "backend", "n_nodes", "elems"),
        )
        return 0
    report.merge(
        compare_faults(
            fault_rows, load_baseline(args.baseline_faults),
            rel_tol=args.sim_rel_tol,
        )
    )
    report.merge(
        compare_collectives(
            collectives, load_baseline(args.baseline_collectives),
            rel_tol=args.sim_rel_tol,
        )
    )
    report.merge(
        compare_reconfig(
            reconfig_rows, load_baseline(args.baseline_reconfig),
            rel_tol=args.sim_rel_tol,
        )
    )

    print(report.render())
    if args.json:
        out = Path(args.json)
        out.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"wrote diff record to {out}")
    if args.summary:
        write_summary(Path(args.summary), report)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
