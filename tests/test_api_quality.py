"""Library-wide API quality gates.

Not functional tests — structural ones: every public module, class and
function in ``repro`` must carry a docstring (the documentation deliverable
is enforced, not aspirational), ``__all__`` lists must resolve, and the
docs/API.md index must not reference names that do not exist.
"""

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parent.parent.parent


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [m.__name__ for m in ALL_MODULES if not (m.__doc__ or "").strip()]
        assert not undocumented, undocumented

    def test_every_public_class_documented(self):
        missing = []
        for module in ALL_MODULES:
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, missing

    def test_every_public_function_documented(self):
        missing = []
        for module in ALL_MODULES:
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, missing

    def test_public_methods_documented(self):
        missing = []
        for module in ALL_MODULES:
            for cls_name, cls in vars(module).items():
                if cls_name.startswith("_") or not inspect.isclass(cls):
                    continue
                if cls.__module__ != module.__name__:
                    continue
                for meth_name, meth in vars(cls).items():
                    if meth_name.startswith("_"):
                        continue
                    if inspect.isfunction(meth) and not (meth.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{cls_name}.{meth_name}")
        assert not missing, missing


class TestAllExports:
    @pytest.mark.parametrize(
        "module",
        [m for m in ALL_MODULES if hasattr(m, "__all__")],
        ids=lambda m: m.__name__,
    )
    def test_all_names_resolve(self, module):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"

    @pytest.mark.parametrize(
        "module",
        [m for m in ALL_MODULES if hasattr(m, "__all__")],
        ids=lambda m: m.__name__,
    )
    def test_all_sorted_and_unique(self, module):
        names = list(module.__all__)
        assert names == sorted(names), f"{module.__name__}.__all__ not sorted"
        assert len(names) == len(set(names)), f"{module.__name__}.__all__ duplicates"


class TestDocsIndex:
    def test_api_md_module_references_exist(self):
        text = (REPO_ROOT / "docs" / "API.md").read_text()
        for match in re.finditer(r"`(repro(?:\.[a-z_]+)+)`", text):
            module_name = match.group(1)
            importlib.import_module(module_name)

    def test_readme_mentions_key_entry_points(self):
        text = (REPO_ROOT / "README.md").read_text()
        for name in ("plan_wrht", "build_schedule", "verify_allreduce",
                     "OpticalRingNetwork", "wrht-repro"):
            assert name in text, name
