"""Property-based tests for the communicator facade."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import Communicator


def _random_data(n, d, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(-50, 50, size=(n, d)).astype(np.float64)


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(["ring", "bt", "dbtree", "rd", "hring", "wrht"]),
    st.integers(2, 20),
    st.integers(1, 60),
    st.integers(0, 1000),
)
def test_allreduce_equals_numpy_sum(algo, n, d, seed):
    kwargs = {"n_wavelengths": 4} if algo == "wrht" else {}
    comm = Communicator(n, algorithm=algo, **kwargs)
    data = _random_data(n, d, seed)
    result, stats = comm.allreduce(data)
    assert np.array_equal(result, np.tile(data.sum(0), (n, 1)))
    assert stats.n_steps == comm._get_schedule("allreduce", d).n_steps


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 20), st.integers(1, 60), st.integers(0, 31), st.integers(0, 500))
def test_reduce_broadcast_compose_to_allreduce(n, d, root, seed):
    root %= n
    comm = Communicator(n, algorithm="ring")
    data = _random_data(n, d, seed)
    total, _ = comm.reduce(data, root=root)
    rows, _ = comm.broadcast(total, root=root)
    expected, _ = comm.allreduce(data)
    assert np.array_equal(rows, expected)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 16), st.integers(1, 80), st.integers(0, 500))
def test_reduce_scatter_allgather_identity(n, d, seed):
    comm = Communicator(n, algorithm="ring")
    data = _random_data(n, d, seed)
    chunks, _ = comm.reduce_scatter(data)
    full, _ = comm.allgather(chunks)
    assert np.array_equal(full, np.tile(data.sum(0), (n, 1)))


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 12), st.integers(1, 40), st.integers(0, 200))
def test_mean_is_sum_over_n(n, d, seed):
    comm = Communicator(n, algorithm="bt")
    data = _random_data(n, d, seed)
    total, _ = comm.allreduce(data, op="sum")
    mean, _ = comm.allreduce(data, op="mean")
    assert np.allclose(mean * n, total)
