"""Communicator facade tests."""

import numpy as np
import pytest

from repro.comm import Communicator
from repro.electrical import ElectricalNetwork, ElectricalSystemConfig
from repro.optical import OpticalRingNetwork, OpticalSystemConfig


def _comm(n=8, **kwargs):
    kwargs.setdefault("algorithm", "wrht")
    if kwargs["algorithm"] == "wrht":
        kwargs.setdefault("n_wavelengths", 4)
    return Communicator(n, **kwargs)


def _data(n=8, d=10):
    return (np.arange(n * d, dtype=float) + 1).reshape(n, d)


class TestAllreduce:
    @pytest.mark.parametrize("algo", ["ring", "bt", "rd", "hring", "wrht"])
    def test_sum(self, algo):
        kwargs = {"n_wavelengths": 4} if algo == "wrht" else {}
        comm = Communicator(8, algorithm=algo, **kwargs)
        data = _data()
        result, stats = comm.allreduce(data)
        assert np.allclose(result, np.tile(data.sum(0), (8, 1)))
        assert stats.operation == "allreduce"
        assert stats.n_steps > 0

    def test_mean(self):
        data = _data()
        result, _ = _comm().allreduce(data, op="mean")
        assert np.allclose(result[0], data.mean(0))

    def test_input_not_mutated(self):
        data = _data()
        snapshot = data.copy()
        _comm().allreduce(data)
        assert np.array_equal(data, snapshot)

    def test_bad_op(self):
        with pytest.raises(ValueError, match="op"):
            _comm().allreduce(_data(), op="max")

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            _comm().allreduce(np.arange(8.0))
        with pytest.raises(ValueError, match="rows"):
            _comm().allreduce(np.zeros((4, 10)))


class TestOtherCollectives:
    def test_reduce(self):
        data = _data()
        total, stats = _comm().reduce(data, root=2)
        assert np.array_equal(total, data.sum(0))
        assert stats.operation == "reduce"

    def test_broadcast(self):
        rows, stats = _comm().broadcast(np.arange(7.0), root=6)
        assert np.allclose(rows, np.tile(np.arange(7.0), (8, 1)))
        assert stats.operation == "broadcast"

    def test_broadcast_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            _comm().broadcast(np.zeros((2, 3)))

    def test_reduce_scatter_then_allgather_is_allreduce(self):
        comm = _comm()
        data = _data()
        chunks, _ = comm.reduce_scatter(data)
        full, _ = comm.allgather(chunks)
        assert np.allclose(full, np.tile(data.sum(0), (8, 1)))

    def test_allgather_chunk_validation(self):
        comm = _comm()
        with pytest.raises(ValueError, match="chunks"):
            comm.allgather([np.zeros(2)] * 3)
        with pytest.raises(ValueError, match="balanced"):
            comm.allgather([np.zeros(2)] * 7 + [np.zeros(5)])


class TestCostAccounting:
    def test_detached_has_no_estimate(self):
        _, stats = _comm().allreduce(_data())
        assert stats.est_time is None
        assert stats.payload_bytes > 0

    def test_optical_pricing(self):
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=8, n_wavelengths=4))
        comm = _comm(network=net)
        _, stats = comm.allreduce(_data())
        assert stats.est_time > 0

    def test_electrical_pricing(self):
        net = ElectricalNetwork(ElectricalSystemConfig(n_nodes=8))
        comm = _comm(network=net, algorithm="ring")
        _, stats = comm.allreduce(_data())
        assert stats.est_time > 0

    def test_wrht_cheaper_than_ring_on_same_network(self):
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=16, n_wavelengths=8))
        data = _data(16, 64)
        _, ring_stats = Communicator(16, algorithm="ring", network=net).allreduce(data)
        _, wrht_stats = Communicator(
            16, algorithm="wrht", n_wavelengths=8, network=net
        ).allreduce(data)
        assert wrht_stats.est_time < ring_stats.est_time

    def test_schedule_cache_reused(self):
        comm = _comm()
        comm.allreduce(_data())
        cached = dict(comm._cache)
        comm.allreduce(_data())
        assert comm._cache == cached  # same schedules, no rebuild

    def test_single_rank(self):
        comm = Communicator(1, algorithm="ring")
        result, stats = comm.allreduce(np.ones((1, 5)))
        assert np.array_equal(result, np.ones((1, 5)))
        assert stats.n_steps == 0
