"""Collective primitive schedule tests with per-primitive postconditions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.ring import chunk_bounds
from repro.collectives.verify import initial_buffers, run_schedule
from repro.comm.primitives import (
    build_allgather_schedule,
    build_broadcast_schedule,
    build_reduce_schedule,
    build_reduce_scatter_schedule,
)
from repro.core.steps import bt_steps, ring_steps


class TestReduce:
    def test_root_zero(self):
        sched = build_reduce_schedule(8, 10)
        buffers = initial_buffers(8, 10)
        expected = buffers.sum(axis=0)
        run_schedule(sched, buffers)
        assert np.array_equal(buffers[0], expected)

    @pytest.mark.parametrize("root", [0, 1, 5, 7])
    def test_arbitrary_root(self, root):
        sched = build_reduce_schedule(8, 10, root=root)
        buffers = initial_buffers(8, 10)
        expected = buffers.sum(axis=0)
        run_schedule(sched, buffers)
        assert np.array_equal(buffers[root], expected)

    def test_step_count_is_half_bt(self):
        assert build_reduce_schedule(100, 4).n_steps == bt_steps(100) // 2

    def test_bad_root(self):
        with pytest.raises(ValueError, match="root"):
            build_reduce_schedule(8, 10, root=8)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 64), st.integers(0, 63), st.integers(1, 40))
    def test_reduce_property(self, n, root, elems):
        root %= n
        sched = build_reduce_schedule(n, elems, root=root)
        buffers = initial_buffers(n, elems)
        expected = buffers.sum(axis=0)
        run_schedule(sched, buffers)
        assert np.array_equal(buffers[root], expected)


class TestBroadcast:
    @pytest.mark.parametrize("root", [0, 3, 7])
    def test_everyone_gets_roots_data(self, root):
        sched = build_broadcast_schedule(8, 6, root=root)
        buffers = np.zeros((8, 6))
        buffers[root] = np.arange(6.0) + 1
        run_schedule(sched, buffers)
        for node in range(8):
            assert np.array_equal(buffers[node], buffers[root])

    def test_mirrors_reduce(self):
        reduce = build_reduce_schedule(16, 4, root=5)
        bcast = build_broadcast_schedule(16, 4, root=5)
        r_pairs = sorted(
            (t.src, t.dst) for s in reduce.iter_steps() for t in s.transfers
        )
        b_pairs = sorted(
            (t.dst, t.src) for s in bcast.iter_steps() for t in s.transfers
        )
        assert r_pairs == b_pairs

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 64), st.integers(0, 63), st.integers(1, 40))
    def test_broadcast_property(self, n, root, elems):
        root %= n
        sched = build_broadcast_schedule(n, elems, root=root)
        buffers = np.zeros((n, elems))
        buffers[root] = np.arange(elems) + 7.0
        run_schedule(sched, buffers)
        assert np.array_equal(buffers, np.tile(buffers[root], (n, 1)))


class TestReduceScatter:
    def test_ownership_contract(self):
        n, elems = 8, 24
        sched = build_reduce_scatter_schedule(n, elems)
        buffers = initial_buffers(n, elems)
        expected = buffers.sum(axis=0)
        run_schedule(sched, buffers)
        for i, (lo, hi) in enumerate(chunk_bounds(elems, n)):
            assert np.array_equal(buffers[i, lo:hi], expected[lo:hi]), i

    def test_step_count_half_ring(self):
        assert build_reduce_scatter_schedule(32, 32).n_steps == ring_steps(32) // 2

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 48), st.integers(1, 150))
    def test_property(self, n, elems):
        sched = build_reduce_scatter_schedule(n, elems)
        buffers = initial_buffers(n, elems)
        expected = buffers.sum(axis=0)
        run_schedule(sched, buffers)
        for i, (lo, hi) in enumerate(chunk_bounds(elems, n)):
            assert np.array_equal(buffers[i, lo:hi], expected[lo:hi])


class TestAllgather:
    def test_from_owned_chunks(self):
        n, elems = 8, 24
        sched = build_allgather_schedule(n, elems)
        reference = np.arange(elems, dtype=float) * 3 + 1
        buffers = np.zeros((n, elems))
        for i, (lo, hi) in enumerate(chunk_bounds(elems, n)):
            buffers[i, lo:hi] = reference[lo:hi]
        run_schedule(sched, buffers)
        assert np.allclose(buffers, np.tile(reference, (n, 1)))

    def test_composes_with_reduce_scatter_into_allreduce(self):
        n, elems = 12, 36
        buffers = initial_buffers(n, elems)
        expected = buffers.sum(axis=0)
        run_schedule(build_reduce_scatter_schedule(n, elems), buffers)
        # Zero everything a rank does not own, then all-gather.
        owned = np.zeros_like(buffers)
        for i, (lo, hi) in enumerate(chunk_bounds(elems, n)):
            owned[i, lo:hi] = buffers[i, lo:hi]
        run_schedule(build_allgather_schedule(n, elems), owned)
        assert np.array_equal(owned, np.tile(expected, (n, 1)))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 48), st.integers(1, 150))
    def test_property(self, n, elems):
        sched = build_allgather_schedule(n, elems)
        reference = np.arange(elems, dtype=float) + 11
        buffers = np.zeros((n, elems))
        for i, (lo, hi) in enumerate(chunk_bounds(elems, n)):
            buffers[i, lo:hi] = reference[lo:hi]
        run_schedule(sched, buffers)
        assert np.allclose(buffers, np.tile(reference, (n, 1)))
