"""TeraRack node constraint tests."""

import pytest

from repro.collectives.base import Transfer
from repro.optical.node import (
    NodeConstraintError,
    TeraRackNode,
    validate_node_constraints,
)
from repro.optical.topology import Direction, Route


def _assignment(src, dst, direction, fiber, lam, segments=(0,)):
    return (Transfer(src, dst, 0, 10), Route(direction, tuple(segments)), fiber, lam)


class TestTeraRackNode:
    def test_defaults_match_terarack(self):
        node = TeraRackNode(0)
        assert node.n_interfaces == 4
        assert node.mrrs_per_interface == 64
        assert node.tx_sets == node.rx_sets == 2
        assert node.max_concurrent_wavelengths == 64

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            TeraRackNode(-1)


class TestNodeConstraints:
    def test_duplicate_tx_wavelength_same_direction_fails(self):
        rows = [
            _assignment(0, 1, Direction.CW, 0, 5, (0,)),
            _assignment(0, 2, Direction.CW, 0, 5, (0, 1)),
        ]
        with pytest.raises(NodeConstraintError, match="transmits twice"):
            validate_node_constraints(rows)

    def test_same_wavelength_opposite_directions_ok(self):
        # The paper's key hardware fact: two Tx sets, one per direction.
        rows = [
            _assignment(5, 6, Direction.CW, 0, 3, (5,)),
            _assignment(5, 4, Direction.CCW, 0, 3, (4,)),
        ]
        validate_node_constraints(rows)

    def test_duplicate_rx_wavelength_fails(self):
        rows = [
            _assignment(1, 0, Direction.CCW, 0, 2, (0,)),
            _assignment(2, 0, Direction.CCW, 0, 2, (1, 0)),
        ]
        with pytest.raises(NodeConstraintError, match="receives twice"):
            validate_node_constraints(rows)

    def test_mrr_budget_exceeded(self):
        rows = [
            _assignment(0, 1, Direction.CW, 0, lam, (0,))
            for lam in range(3)
        ]
        with pytest.raises(NodeConstraintError, match="MRRs"):
            validate_node_constraints(rows, mrrs_per_interface=2)

    def test_distinct_wavelengths_pass(self):
        rows = [
            _assignment(0, 1, Direction.CW, 0, lam, (0,)) for lam in range(8)
        ]
        validate_node_constraints(rows)
