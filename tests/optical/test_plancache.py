"""Cross-run plan cache: counters, sharing, bypasses, bit-exact replay."""

import pytest

from repro.collectives.registry import build_schedule
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.backend.plancache import PlanCache, default_plan_cache
from repro.optical.torus import TorusOpticalNetwork
from repro.sim.rng import SeededRng
from repro.sim.trace import Tracer


def _net(n=16, w=8, cache=None, **kwargs):
    return OpticalRingNetwork(
        OpticalSystemConfig(n_nodes=n, n_wavelengths=w),
        plan_cache=cache if cache is not None else PlanCache(),
        **kwargs,
    )


class TestCounters:
    def test_cold_run_misses_warm_run_hits(self):
        cache = PlanCache()
        net = _net(cache=cache)
        sched = build_schedule("wrht", 16, 160, n_wavelengths=8)
        cold = net.execute(sched)
        assert cold.cache.misses > 0 and cold.cache.hits == 0
        warm = net.execute(sched)
        assert warm.cache.hits == cold.cache.misses
        assert warm.cache.misses == 0

    def test_lifetime_stats_accumulate_on_cache(self):
        cache = PlanCache()
        net = _net(cache=cache)
        sched = build_schedule("ring", 16, 160)
        net.execute(sched)
        net.execute(sched)
        assert cache.stats.hits > 0 and cache.stats.misses > 0

    def test_random_fit_bypasses_cache(self):
        cache = PlanCache()
        net = _net(cache=cache, strategy="random_fit", rng=SeededRng(3))
        sched = build_schedule("wrht", 16, 160, n_wavelengths=8)
        r1 = net.execute(sched)
        r2 = net.execute(sched)
        for result in (r1, r2):
            assert (result.cache.hits, result.cache.misses) == (0, 0)
        assert len(cache) == 0

    def test_disabled_cache_never_hits(self):
        cache = PlanCache(maxsize=0)
        net = _net(cache=cache)
        sched = build_schedule("ring", 16, 160)
        net.execute(sched)
        result = net.execute(sched)
        assert (result.cache.hits, result.cache.misses) == (0, 0)
        assert len(cache) == 0


class TestSharingAndEviction:
    def test_two_networks_share_one_cache(self):
        cache = PlanCache()
        sched = build_schedule("wrht", 16, 160, n_wavelengths=8)
        first = _net(cache=cache).execute(sched)
        second = _net(cache=cache).execute(sched)  # fresh executor instance
        assert first.cache.misses > 0
        assert second.cache.hits == first.cache.misses
        assert second.cache.misses == 0

    def test_different_config_is_a_different_key(self):
        cache = PlanCache()
        sched = build_schedule("ring", 16, 160)
        _net(16, 8, cache=cache).execute(sched)
        result = _net(16, 4, cache=cache).execute(sched)
        assert result.cache.hits == 0  # w=4 must not reuse w=8 plans

    def test_failed_wavelengths_invalidate_via_key(self):
        cache = PlanCache()
        sched = build_schedule("ring", 16, 160)
        base = OpticalSystemConfig(n_nodes=16, n_wavelengths=8)
        degraded = OpticalSystemConfig(
            n_nodes=16, n_wavelengths=8, failed_wavelengths=frozenset({0})
        )
        OpticalRingNetwork(base, plan_cache=cache).execute(sched)
        result = OpticalRingNetwork(degraded, plan_cache=cache).execute(sched)
        assert result.cache.hits == 0

    def test_maxsize_one_evicts_and_counts(self):
        cache = PlanCache(maxsize=1)
        net = _net(cache=cache)
        # WRHT has >1 distinct step pattern, so a 1-entry cache must evict.
        sched = build_schedule("wrht", 16, 160, n_wavelengths=8)
        result = net.execute(sched)
        assert result.cache.evictions > 0
        assert len(cache) == 1

    def test_resize_zero_disables_and_empties(self):
        cache = PlanCache()
        net = _net(cache=cache)
        sched = build_schedule("ring", 16, 160)
        net.execute(sched)
        assert len(cache) > 0
        cache.resize(0)
        assert len(cache) == 0 and not cache.enabled

    def test_default_cache_is_process_wide(self):
        assert default_plan_cache() is default_plan_cache()


class TestBitExactReplay:
    @pytest.mark.parametrize(
        "algo,kwargs",
        [("ring", {}), ("wrht", {"n_wavelengths": 8}), ("hring", {"m": 5})],
    )
    def test_warm_timings_bit_identical(self, algo, kwargs):
        cache = PlanCache()
        net = _net(25 if algo == "hring" else 16, 8, cache=cache)
        n = net.config.n_nodes
        sched = build_schedule(algo, n, n * 40, **kwargs)
        cold = net.execute(sched)
        warm = net.execute(sched)
        assert warm.total_time == cold.total_time  # == , not approx
        assert warm.total_bytes == cold.total_bytes
        assert warm.peak_wavelength == cold.peak_wavelength
        assert [
            (t.stage, t.count, t.rounds, t.duration, t.peak_wavelength)
            for t in warm.step_timings
        ] == [
            (t.stage, t.count, t.rounds, t.duration, t.peak_wavelength)
            for t in cold.step_timings
        ]

    def test_warm_run_replays_round_trace_events(self):
        sched = build_schedule("wrht", 16, 160, n_wavelengths=8)
        cache = PlanCache()
        cold_tracer, warm_tracer = Tracer(), Tracer()
        _net(cache=cache, tracer=cold_tracer).execute(sched)
        warm = _net(cache=cache, tracer=warm_tracer).execute(sched)
        assert warm.cache.hits > 0
        cold_rounds = cold_tracer.records("optical.round")
        warm_rounds = warm_tracer.records("optical.round")
        assert [(r.time, r.payload) for r in warm_rounds] == [
            (r.time, r.payload) for r in cold_rounds
        ]


class TestTorusCache:
    def test_torus_hits_and_bit_exact(self):
        cache = PlanCache()
        cfg = OpticalSystemConfig(n_nodes=16, n_wavelengths=8)
        sched = build_schedule("ring", 16, 160)
        net = TorusOpticalNetwork(cfg, rows=4, cols=4, plan_cache=cache)
        cold = net.execute(sched)
        warm = net.execute(sched)
        assert cold.cache.misses > 0
        assert warm.cache.hits == cold.cache.misses
        assert warm.total_time == cold.total_time

    def test_torus_and_ring_do_not_collide(self):
        cache = PlanCache()
        cfg = OpticalSystemConfig(n_nodes=16, n_wavelengths=8)
        sched = build_schedule("ring", 16, 160)
        OpticalRingNetwork(cfg, plan_cache=cache).execute(sched)
        torus = TorusOpticalNetwork(cfg, rows=4, cols=4, plan_cache=cache)
        result = torus.execute(sched)
        assert result.cache.hits == 0  # virtual-segment plans are distinct
