"""Incremental DSATUR repair: parity with from-scratch recoloring.

Two layers of evidence that :mod:`repro.optical.repair` is semantically
invisible:

- **kernel-level** property tests drive ``repair_rounds`` over random
  instances and single-constraint deltas, validating every repaired
  coloring exhaustively and cross-checking against a from-scratch
  ``plan_rounds`` (paranoid mode);
- **plan-level** tests splice repairs into lowered plans via
  ``repair_plan`` and assert the repaired plan verifies clean under the
  wavelength-conflict / dataflow / failed-resource rules (PLAN001,
  PLAN003, PLAN007) and executes to the exact degraded total time a
  from-scratch lowering produces.

The adversarial cases pin the safety valve: deltas touching more than
half the claims (or cascading without progress) must *fall back* to the
full recolor — counted under ``rwa.repair_fallback`` — rather than
returning a half-pinned coloring.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.plancache import PlanCache
from repro.check.context import optical_context
from repro.check.engine import verify_plan
from repro.check.findings import errors
from repro.collectives import build_wrht_schedule
from repro.faults.models import CutFiber, DeadWavelength, FaultSet, MrrPortFault
from repro.obs.metrics import MetricsRegistry
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.optical.repair import (
    DEFAULT_MAX_AFFECTED_FRAC,
    RwaContext,
    capture_solution,
    repair_rounds,
    route_masks,
    validate_rounds,
)
from repro.optical.rwa import plan_rounds
from repro.optical.topology import RingTopology

N, W = 16, 8

#: The PLAN rules the ISSUE pins for repaired-vs-scratch equivalence.
PARITY_RULES = ("PLAN001", "PLAN003", "PLAN007")


@st.composite
def repair_instances(draw):
    """A solvable random instance plus a single-constraint delta."""
    n = draw(st.integers(min_value=6, max_value=20))
    topo = RingTopology(n)
    k = draw(st.integers(min_value=2, max_value=16))
    routes = []
    for _ in range(k):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = (src + draw(st.integers(min_value=1, max_value=n - 1))) % n
        route = topo.cw_route(src, dst) if draw(st.booleans()) else topo.ccw_route(src, dst)
        routes.append(route)
    w = draw(st.integers(min_value=4, max_value=8))
    # The delta blocks one wavelength; keep at least one survivor.
    blocked_after = frozenset({draw(st.integers(min_value=0, max_value=w - 1))})
    return n, routes, w, blocked_after


class TestRepairKernelProperties:
    @given(inst=repair_instances())
    @settings(max_examples=60, deadline=None)
    def test_single_blocked_wavelength_repair_validates(self, inst):
        n, routes, w, blocked = inst
        base_ctx = RwaContext(n_segments=n, n_wavelengths=w)
        solution = capture_solution(routes, plan_rounds(routes, n, w), base_ctx)
        degraded = RwaContext(n_segments=n, n_wavelengths=w, blocked=blocked)
        metrics = MetricsRegistry(enabled=True)
        repaired = repair_rounds(
            solution, routes, degraded, paranoid=True, metrics=metrics
        )
        # Exhaustive re-derivation: coverage, blocked set, disjointness.
        validate_rounds(routes, route_masks(routes), repaired, degraded)
        # Paranoid mode already replaced any diverging repair with the
        # scratch recolor; either way round counts must match scratch.
        scratch = plan_rounds(routes, n, w, blocked=blocked)
        assert len(repaired) == len(scratch)
        counters = metrics.snapshot().counters
        assert counters.get("rwa.repair_paranoid_divergence", 0) == 0
        assert counters["rwa.repair_calls"] == 1

    @given(inst=repair_instances())
    @settings(max_examples=30, deadline=None)
    def test_noop_delta_returns_identity(self, inst):
        n, routes, w, _ = inst
        ctx = RwaContext(n_segments=n, n_wavelengths=w)
        solution = capture_solution(routes, plan_rounds(routes, n, w), ctx)
        metrics = MetricsRegistry(enabled=True)
        repaired = repair_rounds(solution, routes, ctx, metrics=metrics)
        assert repaired == solution.rounds
        assert metrics.snapshot().counters.get("rwa.repair_noop", 0) == 1


class TestAdversarialFallback:
    def test_majority_delta_falls_back(self):
        """Blocking >50% of a saturated instance's capacity must fall back."""
        topo = RingTopology(8)
        # All-to-all among all 8 nodes: genuinely saturated at w=8.
        routes = [
            topo.cw_route(s, d) for s in range(8) for d in range(8) if s != d
        ]
        ctx = RwaContext(n_segments=8, n_wavelengths=8)
        solution = capture_solution(routes, plan_rounds(routes, 8, 8), ctx)
        degraded = RwaContext(
            n_segments=8, n_wavelengths=8, blocked=frozenset({0, 1, 2, 3, 4})
        )
        metrics = MetricsRegistry(enabled=True)
        repaired = repair_rounds(solution, routes, degraded, metrics=metrics)
        validate_rounds(routes, route_masks(routes), repaired, degraded)
        counters = metrics.snapshot().counters
        assert counters.get("rwa.repair_fallback", 0) == 1
        # The fallback result is the full recolor, bit-identical.
        assert repaired == plan_rounds(routes, 8, 8, blocked=frozenset(range(5)))

    def test_max_affected_frac_zero_always_falls_back(self):
        topo = RingTopology(8)
        routes = [topo.cw_route(i, (i + 1) % 8) for i in range(8)]
        ctx = RwaContext(n_segments=8, n_wavelengths=4)
        solution = capture_solution(routes, plan_rounds(routes, 8, 4), ctx)
        degraded = RwaContext(
            n_segments=8, n_wavelengths=4, blocked=frozenset({0})
        )
        metrics = MetricsRegistry(enabled=True)
        repair_rounds(
            solution, routes, degraded, max_affected_frac=0.0, metrics=metrics
        )
        assert metrics.snapshot().counters.get("rwa.repair_fallback", 0) == 1
        assert 0.0 < DEFAULT_MAX_AFFECTED_FRAC <= 1.0


def _base_network(**kwargs):
    config = OpticalSystemConfig(n_nodes=N, n_wavelengths=W)
    return OpticalRingNetwork(
        config, keep_solutions=True, plan_cache=PlanCache(), **kwargs
    )


SINGLE_FAULTS = [
    pytest.param(FaultSet.of(DeadWavelength(2)), id="dead-wavelength"),
    pytest.param(FaultSet.of(CutFiber(5, direction="cw")), id="cut-fiber"),
    pytest.param(
        FaultSet.of(MrrPortFault(3, 1, mode="stuck")), id="stuck-mrr"
    ),
]


class TestRepairPlanParity:
    @pytest.mark.parametrize("faults", SINGLE_FAULTS)
    def test_repaired_plan_matches_scratch_and_verifies(self, faults):
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        base = _base_network()
        base.lower(schedule, 4.0)

        repaired_plan, degraded_net = base.repair_plan(
            schedule, faults, paranoid=True
        )
        scratch_net = OpticalRingNetwork(
            OpticalSystemConfig(n_nodes=N, n_wavelengths=W, faults=faults),
            plan_cache=PlanCache(),
        )
        scratch_plan = scratch_net.lower(schedule, 4.0)

        assert (
            degraded_net.execute_plan(repaired_plan).total_time
            == scratch_net.execute_plan(scratch_plan).total_time
        )
        for plan, net in (
            (repaired_plan, degraded_net), (scratch_plan, scratch_net),
        ):
            context = optical_context(net, schedule, plan)
            findings = verify_plan(context=context, rule_ids=PARITY_RULES)
            assert errors(findings) == []

    def test_repair_cache_keys_never_alias_scratch(self):
        """A repaired network's summaries land under delta-salted keys."""
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        cache = PlanCache()
        config = OpticalSystemConfig(n_nodes=N, n_wavelengths=W)
        base = OpticalRingNetwork(config, keep_solutions=True, plan_cache=cache)
        base.lower(schedule, 4.0)
        n_healthy = len(cache)

        faults = FaultSet.of(DeadWavelength(2))
        plan, net = base.repair_plan(schedule, faults)
        assert len(cache) > n_healthy  # new entries, no overwrites

        # A from-scratch network under the same faults uses the plain
        # fault-salted base key — distinct from the delta-salted one.
        scratch_net = OpticalRingNetwork(
            OpticalSystemConfig(n_nodes=N, n_wavelengths=W, faults=faults),
            plan_cache=cache,
        )
        assert scratch_net._plan_key_base != net._plan_key_base
        scratch_plan = scratch_net.lower(schedule, 4.0)
        assert scratch_plan.cache.hits == 0  # nothing aliased

    def test_repair_requires_kept_solutions(self):
        config = OpticalSystemConfig(n_nodes=N, n_wavelengths=W)
        net = OpticalRingNetwork(config)
        with pytest.raises(ValueError, match="keep_solutions"):
            net.repair_network(FaultSet.of(DeadWavelength(0)))

    def test_repair_rejects_random_fit(self):
        config = OpticalSystemConfig(n_nodes=N, n_wavelengths=W)
        from repro.sim.rng import SeededRng

        net = OpticalRingNetwork(
            config, strategy="random_fit", rng=SeededRng(7),
            keep_solutions=True,
        )
        with pytest.raises(ValueError, match="random_fit"):
            net.repair_network(FaultSet.of(DeadWavelength(0)))
