"""Live event-driven optical simulation tests."""

import pytest

from repro.collectives.registry import build_schedule
from repro.optical.config import OpticalSystemConfig
from repro.optical.livesim import LiveOpticalSimulation
from repro.optical.network import OpticalRingNetwork
from repro.sim.trace import Tracer


def _pair(n, w):
    cfg = OpticalSystemConfig(n_nodes=n, n_wavelengths=w)
    return LiveOpticalSimulation(cfg), OpticalRingNetwork(cfg)


class TestLiveMatchesStepTiming:
    @pytest.mark.parametrize(
        "algo,n,w,kwargs",
        [
            ("ring", 16, 4, {}),
            ("bt", 32, 8, {}),
            ("rd", 16, 8, {}),
            ("hring", 25, 8, {"m": 5}),
            ("wrht", 64, 8, {"n_wavelengths": 8}),
        ],
    )
    def test_total_time_agrees(self, algo, n, w, kwargs):
        live, fast = _pair(n, w)
        sched = build_schedule(algo, n, n * 40, **kwargs)
        live_result = live.run(sched)
        fast_result = fast.execute(sched)
        assert live_result.total_time == pytest.approx(
            fast_result.total_time, rel=1e-12
        )
        assert live_result.n_rounds == fast_result.total_rounds
        assert live_result.n_steps == fast_result.n_steps

    def test_spilled_step_agrees_too(self):
        # A schedule planned for more wavelengths than the system has:
        # multi-round steps must match between live and step-timing paths.
        cfg = OpticalSystemConfig(n_nodes=64, n_wavelengths=2)
        sched = build_schedule("wrht", 64, 640, n_wavelengths=8)
        live = LiveOpticalSimulation(cfg).run(sched)
        fast = OpticalRingNetwork(cfg).execute(sched)
        assert live.n_rounds == fast.total_rounds > fast.n_steps
        assert live.total_time == pytest.approx(fast.total_time, rel=1e-12)


class TestLiveMechanics:
    def test_no_circuit_ever_blocks(self):
        # Would raise ChannelBlockedError inside the run if the RWA handed
        # out a conflicting channel.
        live, _ = _pair(32, 4)
        live.run(build_schedule("wrht", 32, 64, n_wavelengths=4))

    def test_event_counts_deterministic(self):
        live1, _ = _pair(16, 4)
        live2, _ = _pair(16, 4)
        sched = build_schedule("ring", 16, 32)
        assert live1.run(sched).n_events == live2.run(sched).n_events

    def test_circuit_accounting(self):
        live, _ = _pair(8, 4)
        sched = build_schedule("bt", 8, 16)
        result = live.run(sched)
        expected = sum(s.n_transfers for s in sched.iter_steps())
        assert result.n_circuits == expected

    def test_requires_materialized_steps(self):
        live, _ = _pair(256, 8)
        sched = build_schedule("ring", 256, 256, materialize=False)
        with pytest.raises(RuntimeError, match="materialize"):
            live.run(sched)

    def test_size_guard(self):
        live, _ = _pair(8, 4)
        with pytest.raises(ValueError, match="spans"):
            live.run(build_schedule("ring", 16, 16))

    def test_tracing(self):
        tracer = Tracer()
        cfg = OpticalSystemConfig(n_nodes=8, n_wavelengths=4)
        live = LiveOpticalSimulation(cfg, tracer=tracer)
        live.run(build_schedule("bt", 8, 16))
        assert len(tracer.records("optical.live.round")) == 6
