"""Wavelength failure injection tests.

Failed comb-laser lines / stuck MRRs remove wavelengths fleet-wide. The
RWA must route around them (correctness preserved, time degrades), and
replanning WRHT against the reduced budget must recover most of the loss —
the fault-tolerance story a deployment would rely on.
"""

import pytest

from repro.collectives.registry import build_schedule
from repro.core.planner import plan_wrht
from repro.optical.config import OpticalSystemConfig
from repro.optical.livesim import LiveOpticalSimulation
from repro.optical.network import OpticalRingNetwork


def _net(n=64, w=8, failed=(), **kwargs):
    cfg = OpticalSystemConfig(
        n_nodes=n, n_wavelengths=w, failed_wavelengths=frozenset(failed)
    )
    return OpticalRingNetwork(cfg, **kwargs)


class TestConfigValidation:
    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            OpticalSystemConfig(n_nodes=8, n_wavelengths=4, failed_wavelengths={4})

    def test_all_failed_rejected(self):
        with pytest.raises(ValueError, match="usable"):
            OpticalSystemConfig(
                n_nodes=8, n_wavelengths=2, failed_wavelengths={0, 1}
            )

    def test_usable_wavelengths(self):
        cfg = OpticalSystemConfig(
            n_nodes=8, n_wavelengths=8, failed_wavelengths={1, 5}
        )
        assert cfg.usable_wavelengths == 6


class TestExecutionUnderFailures:
    def test_failed_wavelengths_never_used(self):
        net = _net(64, 8, failed={0, 3})
        sched = build_schedule("wrht", 64, 640, n_wavelengths=8)
        result = net.execute(sched)
        # Peak index can still reach 8 (indices shift upward), but the
        # schedule must complete and the validators (on by default) would
        # have rejected any misuse of a blocked index if the RWA leaked one.
        assert result.total_time > 0

    def test_failures_cost_rounds(self):
        sched = build_schedule("wrht", 64, 640, n_wavelengths=8)
        healthy = _net(64, 8).execute(sched)
        degraded = _net(64, 8, failed={0, 1, 2, 3}).execute(sched)
        assert degraded.total_rounds > healthy.total_rounds
        assert degraded.total_time > healthy.total_time

    def test_replanning_recovers(self):
        # Plan against the reduced budget: fewer grouped nodes, more steps,
        # but every step fits in one round again.
        failed = {0, 1, 2, 3}
        net = _net(64, 8, failed=failed)
        naive = build_schedule("wrht", 64, 640, n_wavelengths=8)
        replanned = build_schedule(
            "wrht", 64, 640, plan=plan_wrht(64, net.config.usable_wavelengths)
        )
        t_naive = net.execute(naive).total_time
        degraded = net.execute(replanned)
        assert degraded.total_rounds == degraded.n_steps  # fits again
        assert degraded.total_time < t_naive

    def test_ring_immune_to_failures(self):
        # Ring only ever needs one wavelength; losing others is free.
        sched = build_schedule("ring", 32, 320)
        healthy = _net(32, 8).execute(sched).total_time
        degraded = _net(32, 8, failed={0, 2, 4, 6}).execute(sched).total_time
        assert degraded == healthy

    def test_live_simulation_consistent_under_failures(self):
        cfg = OpticalSystemConfig(
            n_nodes=32, n_wavelengths=8, failed_wavelengths=frozenset({1, 2})
        )
        sched = build_schedule("wrht", 32, 64, n_wavelengths=8)
        live = LiveOpticalSimulation(cfg).run(sched)
        fast = OpticalRingNetwork(cfg).execute(sched)
        assert live.total_time == pytest.approx(fast.total_time, rel=1e-12)
        assert live.n_rounds == fast.total_rounds
