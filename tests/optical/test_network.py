"""Optical executor tests: rounds, spilling, tracing, constraints."""

import pytest

from repro.collectives.registry import build_schedule
from repro.core.constraints import OpticalPhyParams
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.optical.phy import PhyViolationError
from repro.sim.rng import SeededRng
from repro.sim.trace import Tracer


def _net(n=16, w=8, **kwargs):
    return OpticalRingNetwork(OpticalSystemConfig(n_nodes=n, n_wavelengths=w), **kwargs)


class TestExecution:
    def test_ring_single_round_per_step(self):
        net = _net(16, 1)
        sched = build_schedule("ring", 16, 160)
        result = net.execute(sched)
        assert result.total_rounds == result.n_steps  # neighbor hops fit λ0
        assert result.peak_wavelength == 1

    def test_wrht_peak_wavelengths_match_plan(self):
        net = _net(64, 8)
        sched = build_schedule("wrht", 64, 640, n_wavelengths=8)
        result = net.execute(sched)
        plan = sched.meta["plan"]
        assert result.peak_wavelength <= plan.peak_wavelengths
        assert result.total_rounds == result.n_steps  # plan fits the budget

    def test_wavelength_scarcity_creates_rounds(self):
        # WRHT planned for w=8 executed on a w=2 system must serialize.
        roomy = build_schedule("wrht", 64, 640, n_wavelengths=8)
        scarce_net = _net(64, 2)
        roomy_net = _net(64, 8)
        scarce = scarce_net.execute(roomy)
        fits = roomy_net.execute(roomy)
        assert scarce.total_rounds > fits.total_rounds
        assert scarce.total_time > fits.total_time

    def test_total_bytes_accounting(self):
        net = _net(8, 4)
        sched = build_schedule("bt", 8, 100)
        result = net.execute(sched, bytes_per_elem=4.0)
        # BT: 2*log2(8)=6 steps; reduce steps move 4+2+1 vectors, broadcast
        # mirrors: 14 full vectors of 400 bytes.
        assert result.total_bytes == 14 * 400.0

    def test_schedule_too_large_rejected(self):
        net = _net(8, 4)
        sched = build_schedule("ring", 16, 32)
        with pytest.raises(ValueError, match="spans"):
            net.execute(sched)

    def test_bad_bytes_per_elem(self):
        net = _net(8, 4)
        with pytest.raises(ValueError):
            net.execute(build_schedule("ring", 8, 8), bytes_per_elem=0)

    def test_deterministic_first_fit(self):
        sched = build_schedule("wrht", 64, 320, n_wavelengths=8)
        t1 = _net(64, 8).execute(sched).total_time
        t2 = _net(64, 8).execute(sched).total_time
        assert t1 == t2

    def test_random_fit_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            _net(8, 4, strategy="random_fit")

    def test_random_fit_runs_conflict_free(self):
        net = _net(64, 8, strategy="random_fit", rng=SeededRng(3))
        sched = build_schedule("wrht", 64, 320, n_wavelengths=8)
        result = net.execute(sched)  # validate=True would raise on conflicts
        assert result.total_time > 0


class TestStepTimings:
    def test_step_timing_structure(self):
        net = _net(16, 8)
        sched = build_schedule("wrht", 16, 64, n_wavelengths=8)
        result = net.execute(sched)
        assert sum(t.count for t in result.step_timings) == len(result.step_timings) and (
            result.n_steps == sum(t.count for t in result.step_timings)
        )
        for t in result.step_timings:
            assert t.duration > 0
            assert t.rounds >= 1

    def test_time_is_sum_of_step_durations(self):
        net = _net(32, 4)
        sched = build_schedule("ring", 32, 64)
        result = net.execute(sched)
        assert result.total_time == pytest.approx(
            sum(t.duration * t.count for t in result.step_timings)
        )


class TestPhyIntegration:
    def test_route_validation_blocks_long_paths(self):
        cfg = OpticalSystemConfig(
            n_nodes=1024, n_wavelengths=64,
            phy=OpticalPhyParams(laser_power_dbm=7.0),  # 20-hop budget
        )
        net = OpticalRingNetwork(cfg)
        sched = build_schedule("wrht", 1024, 64, n_wavelengths=64)  # 64-hop paths
        with pytest.raises(PhyViolationError):
            net.execute(sched)

    def test_short_paths_pass_validation(self):
        cfg = OpticalSystemConfig(
            n_nodes=64, n_wavelengths=8, phy=OpticalPhyParams(),
        )
        sched = build_schedule("ring", 64, 64)
        OpticalRingNetwork(cfg).execute(sched)


class TestTracing:
    def test_rounds_traced(self):
        tracer = Tracer()
        net = _net(16, 8, tracer=tracer)
        sched = build_schedule("wrht", 16, 32, n_wavelengths=8)
        net.execute(sched)
        rounds = tracer.records("optical.round")
        # One trace per distinct pattern's rounds (pattern cache prices each
        # pattern once).
        assert len(rounds) >= 1
        for r in rounds:
            assert r.payload["n_circuits"] >= 1

    def test_recurring_pattern_emits_step_cached_event(self):
        # A profile of A, B, A: the second A is served from the per-run
        # pattern cache, and must still leave a trace footprint.
        from repro.collectives.base import CommStep, Schedule, Transfer

        step_a = CommStep(transfers=(Transfer(0, 1, 0, 10),), stage="reduce")
        step_b = CommStep(transfers=(Transfer(2, 3, 0, 20),), stage="reduce")
        sched = Schedule(
            "synthetic", 4, 20, steps=[step_a, step_b, step_a],
            timing_profile=[(step_a, 1), (step_b, 1), (step_a, 1)],
        )
        tracer = Tracer()
        net = _net(16, 8, tracer=tracer)
        result = net.execute(sched)
        cached = tracer.records("optical.step_cached")
        assert len(cached) == 1
        payload = cached[0].payload
        assert payload["stage"] == "reduce"
        assert payload["rounds"] == result.step_timings[0].rounds
        assert payload["duration"] == result.step_timings[0].duration
        # Priced once, replayed once: three profile entries, two traced
        # pricing passes.
        assert len(result.step_timings) == 3
        assert result.step_timings[2].duration == result.step_timings[0].duration
