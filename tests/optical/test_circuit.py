"""Circuit record and conflict-audit tests."""

import pytest

from repro.collectives.base import Transfer
from repro.optical.circuit import Circuit, CircuitConflictError, validate_no_conflicts
from repro.optical.topology import Direction, Route


def _circuit(src, dst, segments, direction=Direction.CW, fiber=0, lam=0):
    return Circuit(
        transfer=Transfer(src, dst, 0, 10),
        route=Route(direction, tuple(segments)),
        fiber=fiber,
        wavelength=lam,
        payload_bytes=40.0,
        duration=1e-6,
    )


class TestCircuit:
    def test_channel_key(self):
        c = _circuit(0, 2, [0, 1], fiber=1, lam=7)
        assert c.channel == ("cw", 1, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            _circuit(0, 2, [0], fiber=-1)
        with pytest.raises(ValueError):
            Circuit(
                transfer=Transfer(0, 1, 0, 10),
                route=Route(Direction.CW, (0,)),
                fiber=0, wavelength=0, payload_bytes=-1.0, duration=0.0,
            )


class TestValidateNoConflicts:
    def test_disjoint_segments_pass(self):
        validate_no_conflicts([_circuit(0, 2, [0, 1]), _circuit(2, 4, [2, 3])])

    def test_shared_segment_same_channel_fails(self):
        with pytest.raises(CircuitConflictError, match="share"):
            validate_no_conflicts([_circuit(0, 3, [0, 1, 2]), _circuit(1, 3, [1, 2])])

    def test_shared_segment_different_wavelength_passes(self):
        validate_no_conflicts(
            [_circuit(0, 3, [0, 1, 2], lam=0), _circuit(1, 3, [1, 2], lam=1)]
        )

    def test_shared_segment_different_direction_passes(self):
        validate_no_conflicts(
            [
                _circuit(0, 3, [0, 1, 2], direction=Direction.CW),
                _circuit(3, 1, [2, 1], direction=Direction.CCW),
            ]
        )

    def test_shared_segment_different_fiber_passes(self):
        validate_no_conflicts(
            [_circuit(0, 3, [0, 1, 2], fiber=0), _circuit(1, 3, [1, 2], fiber=1)]
        )
