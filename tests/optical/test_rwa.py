"""Routing-and-wavelength-assignment tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optical.rwa import assign_wavelengths
from repro.optical.topology import RingTopology
from repro.sim.rng import SeededRng


def _routes(ring, pairs, direction=None):
    return [ring.route(a, b, direction) for a, b in pairs]


class TestFirstFit:
    def test_neighbor_ring_fits_one_wavelength(self):
        # All N neighbor hops are segment-disjoint: a single wavelength
        # suffices (what Ring All-reduce relies on).
        n = 16
        ring = RingTopology(n)
        routes = _routes(ring, [(i, (i + 1) % n) for i in range(n)])
        result = assign_wavelengths(routes, n, n_wavelengths=1)
        assert not result.unassigned
        assert result.peak_wavelength == 1

    def test_group_collect_needs_floor_m_half(self):
        # One WRHT group of m=9 around rep 4: each side's nested routes need
        # 4 distinct wavelengths; the two sides reuse them (two directions).
        ring = RingTopology(32)
        pairs = [(i, 4) for i in range(9) if i != 4]
        routes = [ring.shortest_route(a, b) for a, b in pairs]
        result = assign_wavelengths(routes, 32, n_wavelengths=4)
        assert not result.unassigned
        assert result.peak_wavelength == 4

    def test_insufficient_wavelengths_spills(self):
        ring = RingTopology(32)
        pairs = [(i, 4) for i in range(9) if i != 4]
        routes = [ring.shortest_route(a, b) for a, b in pairs]
        result = assign_wavelengths(routes, 32, n_wavelengths=2)
        assert len(result.unassigned) == 4  # 2 per side spill
        assert len(result.assigned) == 4

    def test_assignment_partition(self):
        ring = RingTopology(16)
        routes = _routes(ring, [(0, 5), (2, 7), (4, 9)])
        result = assign_wavelengths(routes, 16, 2)
        covered = set(result.assigned) | set(result.unassigned)
        assert covered == {0, 1, 2}

    def test_second_fiber_doubles_capacity(self):
        ring = RingTopology(16)
        # Three CW routes over the same segment need 3 channels.
        routes = _routes(ring, [(0, 8), (1, 8), (2, 8)], None)
        only_one = assign_wavelengths(routes, 16, 1, fibers_per_direction=1)
        assert len(only_one.unassigned) == 2
        two_fibers = assign_wavelengths(routes, 16, 1, fibers_per_direction=2)
        assert len(two_fibers.unassigned) == 1

    def test_determinism(self):
        ring = RingTopology(64)
        routes = [ring.shortest_route(i, (i * 7 + 3) % 64) for i in range(30)]
        a = assign_wavelengths(routes, 64, 8)
        b = assign_wavelengths(routes, 64, 8)
        assert a.assigned == b.assigned and a.unassigned == b.unassigned


class TestRandomFit:
    def test_requires_rng(self):
        ring = RingTopology(8)
        with pytest.raises(ValueError, match="rng"):
            assign_wavelengths(_routes(ring, [(0, 2)]), 8, 4, strategy="random_fit")

    def test_no_conflicts(self):
        ring = RingTopology(32)
        routes = [ring.shortest_route(i, 4) for i in range(9) if i != 4]
        result = assign_wavelengths(
            routes, 32, 8, strategy="random_fit", rng=SeededRng(5)
        )
        assert not result.unassigned
        _assert_conflict_free(routes, result)

    def test_seeded_reproducibility(self):
        ring = RingTopology(32)
        routes = [ring.shortest_route(i, (i + 9) % 32) for i in range(10)]
        a = assign_wavelengths(routes, 32, 8, strategy="random_fit", rng=SeededRng(1))
        b = assign_wavelengths(routes, 32, 8, strategy="random_fit", rng=SeededRng(1))
        assert a.assigned == b.assigned


class TestValidation:
    def test_unknown_strategy(self):
        ring = RingTopology(8)
        with pytest.raises(ValueError, match="strategy"):
            assign_wavelengths(_routes(ring, [(0, 1)]), 8, 4, strategy="best_fit")


def _assert_conflict_free(routes, result):
    used: dict[tuple, set] = {}
    for idx, (fiber, lam) in result.assigned.items():
        route = routes[idx]
        key = (route.direction, fiber, lam)
        segments = used.setdefault(key, set())
        overlap = segments & set(route.segments)
        assert not overlap, f"conflict on {key} segments {overlap}"
        segments.update(route.segments)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(4, 64),
    st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63)), min_size=1, max_size=40),
    st.integers(1, 16),
)
def test_firstfit_never_conflicts_property(n, raw_pairs, w):
    ring = RingTopology(n)
    pairs = [(a % n, b % n) for a, b in raw_pairs if a % n != b % n]
    if not pairs:
        return
    routes = [ring.shortest_route(a, b) for a, b in pairs]
    result = assign_wavelengths(routes, n, w)
    assert len(result.assigned) + len(result.unassigned) == len(routes)
    _assert_conflict_free(routes, result)
    assert result.peak_wavelength <= w
