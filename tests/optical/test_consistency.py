"""DES-vs-analytical consistency: the executor must price schedules exactly
as Eq 6 and the per-baseline closed forms predict (when wavelengths
suffice). This is the load-bearing test that makes the fast analytical mode
trustworthy for paper-scale sweeps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.registry import build_schedule
from repro.core.timing import bt_time, hring_time, rd_time, ring_time, wrht_time
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork


def _setup(n, w, interpretation="calibrated"):
    cfg = OpticalSystemConfig(n_nodes=n, n_wavelengths=w, interpretation=interpretation)
    return OpticalRingNetwork(cfg), cfg.cost_model()


class TestExactAgreement:
    def test_ring(self):
        n = 64
        net, cost = _setup(n, 64)
        elems = n * 1000  # divisible -> chunks exact
        sim = net.execute(build_schedule("ring", n, elems)).total_time
        assert sim == pytest.approx(ring_time(n, elems * 4.0, cost), rel=1e-12)

    def test_bt(self):
        n = 100
        net, cost = _setup(n, 64)
        sim = net.execute(build_schedule("bt", n, 5000)).total_time
        assert sim == pytest.approx(bt_time(n, 20000.0, cost), rel=1e-12)

    def test_rd(self):
        for n in (64, 100):
            net, cost = _setup(n, 64)
            sim = net.execute(build_schedule("rd", n, 4096)).total_time
            assert sim == pytest.approx(rd_time(n, 4096 * 4.0, cost), rel=1e-12)

    def test_wrht(self):
        n, w = 1024, 64
        net, cost = _setup(n, w)
        sched = build_schedule("wrht", n, 100_000, n_wavelengths=w, materialize=False)
        sim = net.execute(sched).total_time
        assert sim == pytest.approx(wrht_time(n, 400_000.0, cost, m=129, w=w), rel=1e-12)

    def test_hring_close(self):
        # H-Ring's profile rounds chunk sizes up; agreement within 0.1%.
        n, m, w = 1024, 5, 64
        net, cost = _setup(n, w)
        sched = build_schedule("hring", n, 1_024_000, m=m, materialize=False)
        sim = net.execute(sched).total_time
        analytic = hring_time(n, 1_024_000 * 4.0, cost, m=m, w=w)
        assert sim == pytest.approx(analytic, rel=1e-3)

    def test_strict_interpretation_consistent_too(self):
        n = 32
        net, cost = _setup(n, 64, interpretation="strict")
        elems = n * 100
        sim = net.execute(build_schedule("ring", n, elems)).total_time
        assert sim == pytest.approx(ring_time(n, elems * 4.0, cost), rel=1e-12)


class TestScaling:
    def test_strict_is_8x_slower_payload(self):
        # Same schedule, strict vs calibrated units: the bandwidth term
        # scales by 8; the per-step overhead and per-packet O/E/O terms do
        # not (O/E/O zeroed here to isolate the bandwidth term).
        n = 16
        cfg_c = OpticalSystemConfig(
            n_nodes=n, interpretation="calibrated", oeo_delay_per_packet=0.0
        )
        cfg_s = OpticalSystemConfig(
            n_nodes=n, interpretation="strict", oeo_delay_per_packet=0.0
        )
        sched = build_schedule("bt", n, 1_000_000)
        t_c = OpticalRingNetwork(cfg_c).execute(sched).total_time
        t_s = OpticalRingNetwork(cfg_s).execute(sched).total_time
        overhead = 2 * 4 * 25e-6  # 8 steps x 25 µs
        assert (t_s - overhead) == pytest.approx(8 * (t_c - overhead), rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 128), st.integers(1, 64), st.integers(1, 50))
def test_wrht_des_equals_eq6_property(n, w, kilo_elems):
    net, cost = _setup(n, w)
    elems = kilo_elems * 1000
    sched = build_schedule("wrht", n, elems, n_wavelengths=w, materialize=False)
    result = net.execute(sched)
    m = sched.meta["plan"].m
    analytic = wrht_time(n, elems * 4.0, cost, m=m, w=w)
    if result.total_rounds == result.n_steps:
        # Every step fit its wavelength budget in one round: the executor
        # must reproduce Eq 6 exactly.
        assert result.total_time == pytest.approx(analytic, rel=1e-12)
    else:
        # The plan sized its final all-to-all by the ⌈k²/8⌉ *load* bound of
        # [13]; constructive shortest-path RWA can need a handful more
        # wavelengths at exact-boundary configurations and spills into one
        # extra round per affected step (documented in EXPERIMENTS.md).
        assert result.total_time > analytic
        extra = result.total_rounds - result.n_steps
        assert extra <= result.n_steps
        assert result.total_time <= analytic + extra * (
            cost.step_overhead + cost.payload_time(elems * 4.0)
        ) * (1 + 1e-12)
