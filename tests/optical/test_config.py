"""Optical configuration tests (Table 2 parameters)."""

import pytest

from repro.optical.config import OpticalSystemConfig


class TestInterpretations:
    def test_calibrated_is_gbytes(self):
        cfg = OpticalSystemConfig(n_nodes=8, interpretation="calibrated")
        assert cfg.line_rate == 40e9

    def test_strict_is_gbits(self):
        cfg = OpticalSystemConfig(n_nodes=8, interpretation="strict")
        assert cfg.line_rate == 5e9

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="interpretation"):
            OpticalSystemConfig(n_nodes=8, interpretation="folklore")


class TestDefaults:
    def test_table2_values(self):
        cfg = OpticalSystemConfig(n_nodes=1024)
        assert cfg.n_wavelengths == 64
        assert cfg.mrr_reconfig_delay == pytest.approx(25e-6)
        assert cfg.oeo_delay_per_packet == 497e-15
        assert cfg.packet_bytes == 72

    def test_cost_model_consistency(self):
        cfg = OpticalSystemConfig(n_nodes=8)
        cost = cfg.cost_model()
        assert cost.line_rate == cfg.line_rate
        assert cost.step_overhead == cfg.mrr_reconfig_delay
        assert cost.packet_bytes == cfg.packet_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            OpticalSystemConfig(n_nodes=0)
        with pytest.raises(ValueError):
            OpticalSystemConfig(n_nodes=8, n_wavelengths=0)
        with pytest.raises(ValueError):
            OpticalSystemConfig(n_nodes=8, mrr_reconfig_delay=-1.0)
