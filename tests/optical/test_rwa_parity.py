"""Bitmask RWA kernel vs the preserved seed implementation.

The fast path in :mod:`repro.optical.rwa` (integer-bitmask occupancy,
matmul-built DSATUR conflict graphs, hoisted channel lists) must be
*semantically invisible*: identical assignments, identical round structure,
identical RNG stream consumption. These property tests drive both kernels
over random rings, route sets, strategies, fiber counts and blocked
wavelengths and assert equality against
:mod:`repro.optical._rwa_reference` — the seed code kept verbatim.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.registry import build_schedule
from repro.optical._rwa_reference import (
    assign_wavelengths_reference,
    dsatur_assign_reference,
    plan_rounds_reference,
)
from repro.optical.config import OpticalSystemConfig
from repro.optical.livesim import LiveOpticalSimulation
from repro.optical.network import OpticalRingNetwork
from repro.optical.rwa import (
    RwaInfeasibleError,
    assign_wavelengths,
    dsatur_assign,
    plan_rounds,
)
from repro.optical.topology import RingTopology
from repro.sim.rng import SeededRng


@st.composite
def rwa_instances(draw):
    """A random ring + route set + channel-space configuration."""
    n = draw(st.integers(min_value=4, max_value=24))
    topo = RingTopology(n)
    k = draw(st.integers(min_value=1, max_value=24))
    routes = []
    for _ in range(k):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = (src + draw(st.integers(min_value=1, max_value=n - 1))) % n
        if draw(st.booleans()):
            routes.append(topo.cw_route(src, dst))
        else:
            routes.append(topo.ccw_route(src, dst))
    n_wavelengths = draw(st.integers(min_value=1, max_value=6))
    fibers = draw(st.integers(min_value=1, max_value=3))
    # Block a strict subset so at least one channel survives.
    blocked = frozenset(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=n_wavelengths - 1),
                max_size=n_wavelengths - 1,
            )
        )
    )
    return n, routes, n_wavelengths, fibers, blocked


def _same_assignment(ours, ref):
    assert ours.assigned == ref.assigned
    assert ours.unassigned == ref.unassigned
    assert ours.peak_wavelength == ref.peak_wavelength


class TestSingleRoundParity:
    @given(inst=rwa_instances())
    @settings(max_examples=80, deadline=None)
    def test_first_fit_identical(self, inst):
        n, routes, w, fibers, blocked = inst
        ours = assign_wavelengths(
            routes, n, w, fibers_per_direction=fibers, blocked=blocked
        )
        ref = assign_wavelengths_reference(
            routes, n, w, fibers_per_direction=fibers, blocked=blocked
        )
        _same_assignment(ours, ref)

    @given(inst=rwa_instances(), seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=80, deadline=None)
    def test_random_fit_identical_and_same_rng_consumption(self, inst, seed):
        n, routes, w, fibers, blocked = inst
        rng_ours, rng_ref = SeededRng(seed), SeededRng(seed)
        ours = assign_wavelengths(
            routes, n, w, fibers_per_direction=fibers,
            strategy="random_fit", rng=rng_ours, blocked=blocked,
        )
        ref = assign_wavelengths_reference(
            routes, n, w, fibers_per_direction=fibers,
            strategy="random_fit", rng=rng_ref, blocked=blocked,
        )
        _same_assignment(ours, ref)
        # Both kernels must leave the RNG at the identical stream position,
        # or every later draw in a simulation would silently diverge.
        assert rng_ours.integers(0, 2**30) == rng_ref.integers(0, 2**30)

    @given(inst=rwa_instances())
    @settings(max_examples=60, deadline=None)
    def test_dsatur_identical(self, inst):
        n, routes, w, fibers, blocked = inst
        ours = dsatur_assign(
            routes, n, w, fibers_per_direction=fibers, blocked=blocked
        )
        ref = dsatur_assign_reference(
            routes, n, w, fibers_per_direction=fibers, blocked=blocked
        )
        if ref is None:
            assert ours is None
        else:
            assert ours is not None
            _same_assignment(ours, ref)


class TestRoundStructureParity:
    @given(inst=rwa_instances())
    @settings(max_examples=60, deadline=None)
    def test_plan_rounds_first_fit_identical(self, inst):
        n, routes, w, fibers, blocked = inst
        ours = plan_rounds(
            routes, n, w, fibers_per_direction=fibers, blocked=blocked
        )
        ref = plan_rounds_reference(
            routes, n, w, fibers_per_direction=fibers, blocked=blocked
        )
        assert ours == ref

    @given(inst=rwa_instances(), seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_plan_rounds_random_fit_identical(self, inst, seed):
        n, routes, w, fibers, blocked = inst
        ours = plan_rounds(
            routes, n, w, fibers_per_direction=fibers,
            strategy="random_fit", rng=SeededRng(seed), blocked=blocked,
        )
        ref = plan_rounds_reference(
            routes, n, w, fibers_per_direction=fibers,
            strategy="random_fit", rng=SeededRng(seed), blocked=blocked,
        )
        assert ours == ref


class TestInfeasible:
    def test_fully_blocked_raises_typed_error(self):
        topo = RingTopology(8)
        routes = [topo.cw_route(0, 2), topo.cw_route(1, 3)]
        blocked = frozenset(range(4))
        with pytest.raises(RwaInfeasibleError) as exc_info:
            plan_rounds(routes, 8, 4, blocked=blocked)
        err = exc_info.value
        assert err.routes == routes
        assert err.n_wavelengths == 4
        assert err.fibers_per_direction == 1
        assert err.blocked == blocked
        # Still a RuntimeError, so seed-era handlers keep working.
        assert isinstance(err, RuntimeError)

    def test_seed_raised_plain_runtime_error_here(self):
        topo = RingTopology(8)
        routes = [topo.cw_route(0, 2)]
        with pytest.raises(RuntimeError):
            plan_rounds_reference(routes, 8, 4, blocked=frozenset(range(4)))


class TestLivesimCrossCheck:
    @pytest.mark.parametrize("w_sys", [2, 4, 8])
    def test_round_structure_matches_event_driven_sim(self, w_sys):
        # The live DES replays plan_step_rounds event by event; if the
        # bitmask kernel changed any round's membership the circuit
        # conflict checks or the totals would diverge.
        cfg = OpticalSystemConfig(n_nodes=32, n_wavelengths=w_sys)
        sched = build_schedule("wrht", 32, 320, n_wavelengths=8)
        live = LiveOpticalSimulation(cfg).run(sched)
        fast = OpticalRingNetwork(cfg).execute(sched)
        assert live.n_rounds == fast.total_rounds
        assert live.total_time == pytest.approx(fast.total_time, rel=1e-12)
