"""Optical torus/mesh substrate tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.torus import build_torus_wrht_schedule
from repro.optical.config import OpticalSystemConfig
from repro.optical.torus import TorusOpticalNetwork, TorusTopology


class TestTopology:
    def test_coords_roundtrip(self):
        t = TorusTopology(4, 6)
        for node in range(24):
            r, c = t.coords(node)
            assert t.node(r, c) == node

    def test_row_route_stays_in_row(self):
        t = TorusTopology(4, 8)
        route = t.route(t.node(2, 1), t.node(2, 5))
        assert route.hops == 4
        assert all(seg < t._col_base for seg in route.segments)

    def test_column_route_stays_in_column(self):
        t = TorusTopology(8, 4)
        route = t.route(t.node(1, 3), t.node(6, 3))
        assert route.hops == 3  # wraps: distance min(5, 3)
        assert all(seg >= t._col_base for seg in route.segments)

    def test_torus_wraps_shorter_way(self):
        t = TorusTopology(1, 8)
        assert t.route(0, 7).hops == 1

    def test_mesh_cannot_wrap(self):
        t = TorusTopology(1, 8, wraparound=False)
        assert t.route(0, 7).hops == 7

    def test_dimension_ordered_two_legs(self):
        t = TorusTopology(4, 4)
        route = t.route(t.node(0, 0), t.node(2, 2))
        row_legs = [s for s in route.segments if s < t._col_base]
        col_legs = [s for s in route.segments if s >= t._col_base]
        assert len(row_legs) == 2 and len(col_legs) == 2

    def test_opposite_directions_use_distinct_segments(self):
        t = TorusTopology(1, 6)
        forward = set(t.route(0, 2).segments)
        backward = set(t.route(2, 0).segments)
        assert not forward & backward

    def test_self_route_rejected(self):
        with pytest.raises(ValueError):
            TorusTopology(2, 2).route(1, 1)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 63), st.integers(0, 63))
    def test_route_length_bounded_property(self, rows, cols, a, b):
        t = TorusTopology(rows, cols)
        a, b = a % t.n_nodes, b % t.n_nodes
        if a == b:
            return
        route = t.route(a, b)
        assert 1 <= route.hops <= cols // 2 + rows // 2 + 2
        assert len(set(route.segments)) == route.hops


class TestTorusExecutor:
    def test_grid_must_match_config(self):
        cfg = OpticalSystemConfig(n_nodes=16, n_wavelengths=8)
        with pytest.raises(ValueError, match="grid"):
            TorusOpticalNetwork(cfg, 4, 5)

    def test_wrht_torus_fits_budget(self):
        cfg = OpticalSystemConfig(n_nodes=64, n_wavelengths=16)
        net = TorusOpticalNetwork(cfg, 8, 8)
        sched = build_torus_wrht_schedule(8, 8, 64_000, m=5, n_wavelengths=16)
        result = net.execute(sched)
        assert result.total_rounds == result.n_steps
        assert result.total_time > 0

    def test_scarcity_spills_rounds(self):
        cfg = OpticalSystemConfig(n_nodes=64, n_wavelengths=1)
        net = TorusOpticalNetwork(cfg, 8, 8)
        sched = build_torus_wrht_schedule(8, 8, 640, m=5, n_wavelengths=16)
        result = net.execute(sched)
        assert result.total_rounds > result.n_steps

    def test_per_step_time_matches_cost_model(self):
        cfg = OpticalSystemConfig(n_nodes=16, n_wavelengths=16)
        net = TorusOpticalNetwork(cfg, 4, 4)
        sched = build_torus_wrht_schedule(4, 4, 100_000, m=3, n_wavelengths=16)
        result = net.execute(sched)
        expected = result.n_steps * (
            cfg.cost_model().payload_time(400_000.0) + cfg.mrr_reconfig_delay
        )
        assert result.total_time == pytest.approx(expected, rel=1e-12)

    def test_mesh_and_torus_same_steps(self):
        cfg = OpticalSystemConfig(n_nodes=36, n_wavelengths=16)
        torus = TorusOpticalNetwork(cfg, 6, 6).execute(
            build_torus_wrht_schedule(6, 6, 3600, m=3, n_wavelengths=16)
        )
        mesh = TorusOpticalNetwork(cfg, 6, 6, wraparound=False).execute(
            build_torus_wrht_schedule(
                6, 6, 3600, m=3, n_wavelengths=16, topology="mesh"
            )
        )
        assert torus.n_steps == mesh.n_steps
        # The mesh's longer lines can only cost more rounds, never fewer.
        assert mesh.total_rounds >= torus.total_rounds

    def test_ring_schedule_priced_on_torus(self):
        # Any schedule works — e.g. the plain ring All-reduce mapped onto
        # row-major torus ids (neighbors mostly adjacent within rows).
        from repro.collectives.registry import build_schedule

        cfg = OpticalSystemConfig(n_nodes=16, n_wavelengths=4)
        net = TorusOpticalNetwork(cfg, 4, 4)
        result = net.execute(build_schedule("ring", 16, 160))
        assert result.n_steps == 30
        assert result.total_time > 0
