"""Pattern-compression equivalence: compressed vs uncompressed pricing.

The executors price each distinct step pattern once and multiply by the
run length (that is what makes paper-scale sweeps fast). These tests prove
the shortcut is exact: executing a schedule through its compressed timing
profile must give the same total time as executing every materialized step
individually — on both substrates.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.base import Schedule
from repro.collectives.registry import build_schedule
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.network import ElectricalNetwork
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork


def _uncompressed(schedule: Schedule) -> Schedule:
    """The same schedule with a one-entry-per-step timing profile."""
    steps = list(schedule.iter_steps())
    return Schedule(
        algorithm=schedule.algorithm,
        n_nodes=schedule.n_nodes,
        total_elems=schedule.total_elems,
        steps=steps,
        timing_profile=[(s, 1) for s in steps],
        meta=dict(schedule.meta),
    )


def _build(algo, n, elems):
    kwargs = {"materialize": True}
    if algo == "wrht":
        kwargs["n_wavelengths"] = 8
    if algo == "hring":
        kwargs["m"] = min(5, n)
    return build_schedule(algo, n, elems, **kwargs)


class TestOpticalCompression:
    @pytest.mark.parametrize("algo", ["ring", "bt", "rd", "hring", "wrht"])
    def test_exact_equality(self, algo):
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=32, n_wavelengths=8))
        sched = _build(algo, 32, 320)
        compressed = net.execute(sched)
        uncompressed = net.execute(_uncompressed(sched))
        # H-Ring's profile uses the documented uniform-chunk approximation
        # (meta["profile_exact"] is False); everything else is bit-exact.
        tolerance = 1e-15 if sched.meta.get("profile_exact", True) else 2e-3
        assert compressed.total_time == pytest.approx(
            uncompressed.total_time, rel=tolerance
        )
        assert compressed.total_rounds == uncompressed.total_rounds

    def test_under_wavelength_scarcity(self):
        # Multi-round steps must compress identically too.
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=64, n_wavelengths=2))
        sched = build_schedule("wrht", 64, 128, n_wavelengths=8)
        assert net.execute(sched).total_time == pytest.approx(
            net.execute(_uncompressed(sched)).total_time, rel=1e-15
        )

    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from(["ring", "bt", "rd", "hring", "wrht"]),
        st.integers(2, 40),
        st.integers(1, 400),
    )
    def test_equivalence_property(self, algo, n, elems):
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=n, n_wavelengths=4))
        sched = _build(algo, n, elems)
        tolerance = 1e-15 if sched.meta.get("profile_exact", True) else 0.15
        assert net.execute(sched).total_time == pytest.approx(
            net.execute(_uncompressed(sched)).total_time, rel=tolerance
        )


class TestElectricalCompression:
    @pytest.mark.parametrize("algo", ["ring", "bt", "rd"])
    def test_exact_equality(self, algo):
        net = ElectricalNetwork(ElectricalSystemConfig(n_nodes=32))
        sched = _build(algo, 32, 320)
        assert net.execute(sched).total_time == pytest.approx(
            net.execute(_uncompressed(sched)).total_time, rel=1e-15
        )

    @settings(max_examples=15, deadline=None)
    @given(st.sampled_from(["ring", "bt", "rd"]), st.integers(2, 32), st.integers(1, 200))
    def test_equivalence_property(self, algo, n, elems):
        net = ElectricalNetwork(ElectricalSystemConfig(n_nodes=n))
        sched = _build(algo, n, elems)
        tolerance = 1e-15 if sched.meta.get("profile_exact", True) else 0.15
        assert net.execute(sched).total_time == pytest.approx(
            net.execute(_uncompressed(sched)).total_time, rel=tolerance
        )
