"""Per-route physical-layer validation tests."""

import pytest

from repro.core.constraints import OpticalPhyParams
from repro.optical.phy import (
    PhyViolationError,
    max_feasible_hops,
    path_feasible,
    validate_route_phy,
)
from repro.optical.topology import Direction, Route

PARAMS = OpticalPhyParams()


class TestPathFeasible:
    def test_short_paths_pass(self):
        assert path_feasible(1, PARAMS)
        assert path_feasible(129, PARAMS)

    def test_long_paths_fail(self):
        assert not path_feasible(10_000, PARAMS)

    def test_monotone(self):
        limit = max_feasible_hops(PARAMS)
        assert path_feasible(limit, PARAMS)
        assert not path_feasible(limit + 1, PARAMS)

    def test_default_budget_is_140_hops(self):
        # (13 - 4.5 - 1.5) dB / 0.05 dB per interface = 140.
        assert max_feasible_hops(PARAMS) == 140

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            path_feasible(-1, PARAMS)

    def test_hopeless_budget(self):
        bad = OpticalPhyParams(laser_power_dbm=5.0, modulator_loss_db=5.0)
        assert max_feasible_hops(bad) == 0

    def test_everything_feasible_returns_upper(self):
        # Regression: when every hop count up to ``upper`` is feasible the
        # doubling loop exits on the bound with hi still feasible; the
        # bisection used to treat hi as infeasible and converge to
        # ``upper - 1``.
        assert max_feasible_hops(PARAMS, upper=100) == 100

    @pytest.mark.parametrize("upper", [139, 140, 141])
    def test_upper_clamp_boundary(self, upper):
        # Around the true 140-hop budget the answer is min(limit, upper),
        # exactly.
        assert max_feasible_hops(PARAMS, upper=upper) == min(140, upper)


class TestValidateRoute:
    def test_ok_route(self):
        validate_route_phy(Route(Direction.CW, tuple(range(100))), PARAMS)

    def test_violating_route(self):
        with pytest.raises(PhyViolationError, match="hops"):
            validate_route_phy(Route(Direction.CW, tuple(range(200))), PARAMS)
