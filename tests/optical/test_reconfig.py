"""Reconfiguration model, overlap planning and the reconfigure-vs-hold
estimator (repro.optical.reconfig).

Load-bearing invariants:

- A disabled model (``t_tune == 0``) is bit-identical to the seed executor
  — same totals, same plan payloads, same DES event counts.
- The live DES coordinator prices the same model as the static annotation
  pass, in both overlapped and serial modes.
- Overlap never violates PLAN001 wavelength exclusivity: a claim whose
  channel is still active in the previous round is always classified
  *blocked* (serial), never *free* (overlapped) — property-tested on
  synthetic claim sets and on real partitioned (hold) plans.
- PLAN008 catches a plan whose recorded tuning undercuts the exposure its
  own claims require.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.errors import BackendError
from repro.backend.optical import OpticalBackend
from repro.check.context import optical_context
from repro.check.engine import verify_plan
from repro.check.findings import errors
from repro.collectives.registry import build_schedule
from repro.faults.models import DeadWavelength, FaultEvent
from repro.optical.config import OpticalSystemConfig
from repro.optical.livesim import LiveOpticalSimulation
from repro.optical.network import OpticalRingNetwork
from repro.optical.reconfig import (
    ReconfigModel,
    apply_reconfig,
    choose_plan,
    exposed_tuning,
    plan_total_time,
    split_tuning,
)

T_TUNE = 10e-6


def _net(n, w, t_tune=0.0, **kw):
    cfg = OpticalSystemConfig(n_nodes=n, n_wavelengths=w, t_tune=t_tune)
    return OpticalRingNetwork(cfg, **kw)


class TestDisabledBitIdentity:
    """t_tune=0 must change nothing — not totals, not plans, not events."""

    def test_model_disabled_by_default(self):
        assert not ReconfigModel().enabled
        assert not OpticalSystemConfig(n_nodes=4).reconfig.enabled

    def test_negative_tuning_rejected(self):
        with pytest.raises(ValueError):
            ReconfigModel(t_tune=-1e-6)

    def test_apply_reconfig_disabled_is_identity(self):
        net = _net(8, 8)
        plan = net.lower(build_schedule("swing", 8, 4096))
        assert apply_reconfig(plan, ReconfigModel()) is plan

    @pytest.mark.parametrize("algo", ["swing", "rd", "ring"])
    def test_plans_and_totals_identical(self, algo):
        sched = build_schedule(algo, 8, 4096)
        base = _net(8, 8)
        # overlap is a no-op while the model is disabled; claims capture
        # must not leak into the priced payloads either.
        for kw in ({"overlap": False}, {"capture_claims": True}):
            other = _net(8, 8, **kw)
            t0 = base.execute_plan(base.lower(sched)).total_time
            t1 = other.execute_plan(other.lower(sched)).total_time
            assert t0 == t1
        plan = base.lower(sched)
        assert "reconfig" not in plan.meta
        assert all(rnd.tune_s == 0.0 for e in plan.entries for rnd in e.payload)

    def test_livesim_disabled_identical_events(self):
        sched = build_schedule("swing", 8, 4096)
        cfg = OpticalSystemConfig(n_nodes=8, n_wavelengths=8)
        on = LiveOpticalSimulation(cfg, overlap=True).run(sched)
        off = LiveOpticalSimulation(cfg, overlap=False).run(sched)
        assert on.total_time == off.total_time
        assert on.n_events == off.n_events

    def test_faulted_livesim_disabled_identical(self):
        sched = build_schedule("ring", 8, 1024)
        cfg = OpticalSystemConfig(n_nodes=8, n_wavelengths=4)
        healthy = LiveOpticalSimulation(cfg).run(sched)
        events = (FaultEvent(healthy.total_time / 2, DeadWavelength(0)),)
        a = LiveOpticalSimulation(cfg, fault_events=events, overlap=True).run(sched)
        b = LiveOpticalSimulation(cfg, fault_events=events, overlap=False).run(sched)
        assert a.total_time == b.total_time
        assert a.n_events == b.n_events
        assert a.n_faults == b.n_faults == 1


class TestLiveMatchesStatic:
    """The DES coordinator and the static fold price the same model."""

    @pytest.mark.parametrize("algo", ["swing", "rd", "ring"])
    @pytest.mark.parametrize("overlap", [True, False])
    def test_total_time_agrees(self, algo, overlap):
        cfg = OpticalSystemConfig(n_nodes=8, n_wavelengths=4, t_tune=T_TUNE)
        sched = build_schedule(algo, 8, 4096)
        net = OpticalRingNetwork(cfg, overlap=overlap)
        static = net.execute_plan(net.lower(sched)).total_time
        live = LiveOpticalSimulation(cfg, overlap=overlap).run(sched).total_time
        assert live == pytest.approx(static, rel=1e-9)

    @pytest.mark.parametrize("algo", ["swing", "rd", "ring"])
    def test_overlap_never_loses(self, algo):
        cfg = OpticalSystemConfig(n_nodes=8, n_wavelengths=4, t_tune=T_TUNE)
        sched = build_schedule(algo, 8, 4096)
        on = LiveOpticalSimulation(cfg, overlap=True).run(sched).total_time
        off = LiveOpticalSimulation(cfg, overlap=False).run(sched).total_time
        assert on <= off

    def test_faulted_run_charges_serial_tuning(self):
        # Mid-flight faults force the serial (lookahead-free) path; the
        # tuned run must still complete and cost at least the untuned one.
        sched = build_schedule("ring", 8, 1024)
        base_cfg = OpticalSystemConfig(n_nodes=8, n_wavelengths=4)
        tuned_cfg = OpticalSystemConfig(n_nodes=8, n_wavelengths=4, t_tune=T_TUNE)
        healthy = LiveOpticalSimulation(base_cfg).run(sched)
        events = (FaultEvent(healthy.total_time / 2, DeadWavelength(0)),)
        base = LiveOpticalSimulation(base_cfg, fault_events=events).run(sched)
        tuned = LiveOpticalSimulation(tuned_cfg, fault_events=events).run(sched)
        assert tuned.total_time >= base.total_time
        assert tuned.n_faults == base.n_faults == 1
        assert tuned.n_retries == base.n_retries

    def test_plan_total_time_matches_executor(self):
        net = _net(8, 4, t_tune=T_TUNE)
        plan = net.lower(build_schedule("swing", 8, 4096))
        assert plan_total_time(plan, net.config.mrr_reconfig_delay) == (
            net.execute_plan(plan).total_time
        )


_claims = st.lists(
    st.tuples(
        st.integers(0, 5),
        st.sampled_from(["cw", "ccw"]),
        st.integers(0, 1),
        st.integers(0, 7),
    ),
    max_size=12,
).map(lambda c: tuple(sorted(set(c))))


class TestExclusivityProperties:
    """Overlap must never race a channel the previous round still drives."""

    @settings(max_examples=200, deadline=None)
    @given(prev=_claims, cur=_claims)
    def test_shared_channels_always_blocked(self, prev, cur):
        model = ReconfigModel(t_tune=T_TUNE)
        blocked, free = split_tuning(model, prev, cur)
        prev_set = frozenset(prev)
        prev_channels = {(d, f, lam) for (_, d, f, lam) in prev}
        collides = any(
            c not in prev_set and (c[1], c[2], c[3]) in prev_channels
            for c in cur
        )
        if collides:
            # At least one retune waits for teardown — serial exposure.
            assert blocked >= model.t_tune
        # Overlap may hide free tuning but never blocked tuning.
        for payload in (0.0, 1e-6, 1.0):
            exposed = exposed_tuning(model, prev, cur, payload, overlap=True)
            assert exposed >= blocked
            assert exposed <= exposed_tuning(model, prev, cur, payload, overlap=False)

    @settings(max_examples=100, deadline=None)
    @given(prev=_claims, cur=_claims, p1=st.floats(0, 1e-3), p2=st.floats(0, 1e-3))
    def test_overlap_monotone_in_prev_payload(self, prev, cur, p1, p2):
        model = ReconfigModel(t_tune=T_TUNE, tune_per_channel=1e-7)
        lo, hi = sorted((p1, p2))
        assert exposed_tuning(model, prev, cur, hi, overlap=True) <= (
            exposed_tuning(model, prev, cur, lo, overlap=True)
        )

    def test_held_claims_cost_nothing(self):
        model = ReconfigModel(t_tune=T_TUNE)
        claims = ((0, "cw", 0, 3), (1, "cw", 0, 3))
        assert split_tuning(model, claims, claims) == (0.0, 0.0)
        assert exposed_tuning(model, claims, claims, 0.0, overlap=False) == 0.0

    @pytest.mark.parametrize("algo", ["swing", "rd", "ring"])
    def test_partition_plans_have_no_blocked_boundaries(self, algo):
        # The hold plan's whole point: adjacent steps are channel-disjoint,
        # so every retune is free (overlappable) — never blocked.
        net = _net(8, 32, t_tune=T_TUNE)
        sched = build_schedule(algo, 8, 4096)
        plan = net.lower(sched, partition=True)
        assert plan.meta["reconfig"]["partition"] is True
        model = net.config.reconfig
        prev = ()
        for entry in plan.entries:
            for _ in range(entry.count):
                for rnd in entry.payload:
                    blocked, _free = split_tuning(model, prev, rnd.claims)
                    assert blocked == 0.0
                    prev = rnd.claims

    @pytest.mark.parametrize("algo", ["swing", "rd"])
    def test_partition_plans_verify_clean(self, algo):
        net = _net(8, 32, t_tune=T_TUNE)
        sched = build_schedule(algo, 8, 4096)
        plan = net.lower(sched, partition=True)
        context = optical_context(net, sched, plan)
        assert not errors(verify_plan(context=context))


class TestPlan008:
    def _tuned_plan(self):
        net = _net(8, 8, t_tune=T_TUNE)
        sched = build_schedule("swing", 8, 4096)
        return net, sched, net.lower(sched)

    def test_honest_plan_passes(self):
        net, sched, plan = self._tuned_plan()
        context = optical_context(net, sched, plan)
        assert not errors(verify_plan(context=context))

    def test_undercharged_tuning_rejected(self):
        net, sched, plan = self._tuned_plan()
        # Zero out the tuning of the first round that actually charges
        # any — the claims still demand it, so PLAN008 must fire.
        entries = list(plan.entries)
        for i, entry in enumerate(entries):
            rounds = list(entry.payload)
            j = next(
                (k for k, rnd in enumerate(rounds) if rnd.tune_s > 0), None
            )
            if j is None:
                continue
            rounds[j] = dataclasses.replace(rounds[j], tune_s=0.0)
            entries[i] = dataclasses.replace(entry, payload=tuple(rounds))
            break
        else:
            pytest.fail("expected at least one round with exposed tuning")
        doctored = dataclasses.replace(plan, entries=tuple(entries))
        context = optical_context(net, sched, doctored)
        errs = errors(verify_plan(context=context))
        assert any(e.rule_id == "PLAN008" for e in errs), errs


class TestChoosePlan:
    def test_large_payload_prefers_hold(self):
        # rd at 1M elems: tuning at every boundary outweighs the halved
        # wavelength budget — the alternating partition wins.
        net = _net(8, 32, t_tune=25e-6)
        plan = choose_plan(net, build_schedule("rd", 8, 1_000_000))
        decision = plan.meta["reconfig"]["decision"]
        assert decision["chosen"] == "hold"
        assert decision["hold_s"] < decision["reconfigure_s"]
        assert plan.meta["reconfig"]["partition"] is True

    def test_small_payload_prefers_reconfigure(self):
        net = _net(8, 32, t_tune=25e-6)
        plan = choose_plan(net, build_schedule("swing", 8, 4096))
        decision = plan.meta["reconfig"]["decision"]
        assert decision["chosen"] == "reconfigure"
        assert decision["reconfigure_s"] <= decision["hold_s"]

    def test_single_wavelength_hold_infeasible(self):
        net = _net(4, 1, t_tune=25e-6)
        plan = choose_plan(net, build_schedule("ring", 4, 1024))
        decision = plan.meta["reconfig"]["decision"]
        assert decision["chosen"] == "hold-infeasible"
        assert decision["hold_s"] is None
        with pytest.raises(BackendError):
            net.lower(build_schedule("ring", 4, 1024), partition=True)

    def test_decision_total_matches_execution(self):
        net = _net(8, 32, t_tune=25e-6)
        sched = build_schedule("rd", 8, 1_000_000)
        plan = choose_plan(net, sched)
        decision = plan.meta["reconfig"]["decision"]
        chosen_s = min(
            s for s in (decision["reconfigure_s"], decision["hold_s"])
            if s is not None
        )
        assert net.execute_plan(plan).total_time == chosen_s

    def test_disabled_model_is_plain_lower(self):
        net = _net(8, 8)
        plan = choose_plan(net, build_schedule("swing", 8, 4096))
        assert "reconfig" not in plan.meta

    def test_backend_lower_records_decision(self):
        cfg = OpticalSystemConfig(n_nodes=8, n_wavelengths=32, t_tune=25e-6)
        plan = OpticalBackend(cfg).lower(build_schedule("swing", 8, 4096))
        assert plan.meta["reconfig"]["decision"]["chosen"] in (
            "hold", "reconfigure", "hold-infeasible"
        )


class TestCaptureClaims:
    def test_claims_enable_late_annotation(self):
        # A tuning-free network can still capture claims so the pass can
        # be applied after the fact (what the planning tools do).
        net = _net(8, 8, capture_claims=True)
        sched = build_schedule("swing", 8, 4096)
        plan = net.lower(sched)
        assert all(
            rnd.claims for e in plan.entries for rnd in e.payload if rnd.n_circuits
        )
        annotated = apply_reconfig(plan, ReconfigModel(t_tune=T_TUNE))
        delay = net.config.mrr_reconfig_delay
        assert plan_total_time(annotated, delay) > plan_total_time(plan, delay)
        meta = annotated.meta["reconfig"]
        assert meta["n_profile_entries"] == len(plan.entries)
        assert 0.0 < meta["exposed_tune_s"] <= meta["raw_tune_s"]

    def test_claimless_plan_rejected(self):
        net = _net(8, 8)
        plan = net.lower(build_schedule("swing", 8, 4096))
        with pytest.raises(ValueError, match="no MRR claims"):
            apply_reconfig(plan, ReconfigModel(t_tune=T_TUNE))

    def test_round_claims_cover_both_endpoints(self):
        net = _net(8, 8, t_tune=T_TUNE)
        plan = net.lower(build_schedule("ring", 8, 1024))
        rnd = plan.entries[0].payload[0]
        nodes = {c[0] for c in rnd.claims}
        assert len(rnd.claims) >= 2 * 1  # src + dst MRR per circuit
        assert len(nodes) > 1
        assert rnd.claims == tuple(sorted(rnd.claims))
