"""Ring topology tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.optical.topology import Direction, RingTopology, Route


class TestRoute:
    def test_needs_segments(self):
        with pytest.raises(ValueError):
            Route(Direction.CW, ())

    def test_no_revisits(self):
        with pytest.raises(ValueError):
            Route(Direction.CW, (1, 2, 1))

    def test_hops(self):
        assert Route(Direction.CW, (0, 1, 2)).hops == 3


class TestDirection:
    def test_opposite(self):
        assert Direction.CW.opposite() is Direction.CCW
        assert Direction.CCW.opposite() is Direction.CW


class TestRingTopology:
    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            RingTopology(1)

    def test_cw_route_segments(self):
        ring = RingTopology(8)
        assert ring.cw_route(2, 5).segments == (2, 3, 4)

    def test_cw_route_wraps(self):
        ring = RingTopology(8)
        assert ring.cw_route(6, 1).segments == (6, 7, 0)

    def test_ccw_route_segments(self):
        ring = RingTopology(8)
        # CCW from 5 to 2 crosses segments 4, 3, 2.
        assert ring.ccw_route(5, 2).segments == (4, 3, 2)

    def test_ccw_route_wraps(self):
        ring = RingTopology(8)
        assert ring.ccw_route(1, 6).segments == (0, 7, 6)

    def test_shortest_prefers_fewer_hops(self):
        ring = RingTopology(10)
        assert ring.shortest_route(0, 3).direction is Direction.CW
        assert ring.shortest_route(0, 7).direction is Direction.CCW

    def test_tie_goes_clockwise(self):
        ring = RingTopology(8)
        assert ring.shortest_route(0, 4).direction is Direction.CW

    def test_self_route_rejected(self):
        with pytest.raises(ValueError):
            RingTopology(4).shortest_route(2, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RingTopology(4).cw_route(0, 7)

    @given(st.integers(2, 100), st.integers(0, 99), st.integers(0, 99))
    def test_distance_identity(self, n, a, b):
        a, b = a % n, b % n
        ring = RingTopology(n)
        if a != b:
            assert ring.cw_distance(a, b) + ring.ccw_distance(a, b) == n
            assert ring.cw_route(a, b).hops == ring.cw_distance(a, b)
            assert ring.shortest_route(a, b).hops <= n // 2

    @given(st.integers(2, 60), st.integers(0, 59), st.integers(0, 59))
    def test_routes_end_adjacent_to_destination(self, n, a, b):
        a, b = a % n, b % n
        if a == b:
            return
        ring = RingTopology(n)
        cw = ring.cw_route(a, b)
        assert cw.segments[0] == a
        assert (cw.segments[-1] + 1) % n == b
        ccw = ring.ccw_route(a, b)
        assert ccw.segments[0] == (a - 1) % n
        assert ccw.segments[-1] == b
