"""Cross-module integration tests: the full pipeline, end to end.

Each test exercises a complete user story: plan → schedule → verify →
price on a substrate → compare, or train → sync → converge.
"""

import numpy as np
import pytest

import repro
from repro import (
    DataParallelTrainer,
    ElectricalNetwork,
    ElectricalSystemConfig,
    OpticalRingNetwork,
    OpticalSystemConfig,
    build_schedule,
    plan_wrht,
    verify_allreduce,
)
from repro.dnn.autograd import MLP
from repro.dnn.datasets import SyntheticClassification
from repro.dnn.workload import workload_by_name


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestPlanScheduleExecute:
    def test_full_wrht_pipeline(self):
        plan = plan_wrht(256, 16)
        sched = build_schedule("wrht", 256, 2560, plan=plan)
        verify_allreduce(sched)
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=256, n_wavelengths=16))
        result = net.execute(sched)
        assert result.n_steps == plan.theta
        assert result.peak_wavelength <= 16
        assert result.total_rounds == result.n_steps  # plan fit its budget

    def test_all_algorithms_on_both_substrates(self):
        n, elems = 32, 320
        optical = OpticalRingNetwork(OpticalSystemConfig(n_nodes=n, n_wavelengths=8))
        electrical = ElectricalNetwork(ElectricalSystemConfig(n_nodes=n))
        for algo in ("ring", "bt", "rd", "hring", "wrht"):
            kwargs = {"n_wavelengths": 8} if algo == "wrht" else {}
            sched = build_schedule(algo, n, elems, **kwargs)
            verify_allreduce(sched)
            t_opt = optical.execute(sched).total_time
            t_ele = electrical.execute(sched).total_time
            assert t_opt > 0 and t_ele > 0

    def test_wrht_beats_baselines_on_paper_workload(self):
        # ResNet50 gradient on a 1024-node, 64-wavelength ring.
        wl = workload_by_name("ResNet50")
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=1024, n_wavelengths=64))
        times = {}
        for algo in ("ring", "bt", "hring", "wrht"):
            kwargs = {"materialize": False}
            if algo == "wrht":
                kwargs["n_wavelengths"] = 64
            sched = build_schedule(algo, 1024, wl.n_params, **kwargs)
            times[algo] = net.execute(sched).total_time
        assert times["wrht"] == min(times.values())


class TestTrainingWithCommCost:
    def test_train_and_price_iteration(self):
        # Train a small model data-parallel over 8 workers with WRHT and
        # price each iteration's gradient sync on an 8-node optical ring.
        ds = SyntheticClassification(n_features=16, n_classes=3, seed=4)
        trainer = DataParallelTrainer(
            lambda: MLP.of_widths([16, 12, 3], seed=2),
            n_workers=8, algorithm="wrht", lr=0.05, n_wavelengths=4,
        )
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=8, n_wavelengths=4))
        report = trainer.train(
            [ds.batch(32) for _ in range(3)],
            comm_pricer=lambda t: net.execute(t.schedule).total_time,
        )
        assert len(report.losses) == 3
        assert report.comm_time_per_iter > 0
        trainer.consensus_state()  # replicas must agree exactly

    def test_wrht_sync_cheaper_than_ring_sync(self):
        factory = lambda: MLP.of_widths([64, 64, 64, 10], seed=1)  # noqa: E731
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=16, n_wavelengths=8))
        costs = {}
        for algo in ("ring", "wrht"):
            kwargs = {"n_wavelengths": 8} if algo == "wrht" else {}
            trainer = DataParallelTrainer(factory, 16, algorithm=algo, **kwargs)
            costs[algo] = net.execute(trainer.schedule).total_time
        # 16 nodes: Ring pays 30 steps of latency, WRHT at most 4.
        assert costs["wrht"] < costs["ring"]


class TestFigurePipelines:
    def test_fig6_simulated_small_scale_matches_analytical(self):
        from repro.dnn.workload import DnnWorkload
        from repro.runner.experiments import run_fig6

        workloads = (DnnWorkload("t", 128_000),)
        a = run_fig6(mode="analytical", nodes=(64, 128), n_wavelengths=16,
                     workloads=workloads)
        s = run_fig6(mode="simulated", nodes=(64, 128), n_wavelengths=16,
                     workloads=workloads)
        for key in a.series:
            for va, vs in zip(a.series[key], s.series[key]):
                assert vs == pytest.approx(va, rel=2e-3), key
