"""Adversarial plan mutations: each corruption class trips its rule.

Every test starts from a *valid* schedule/plan, injects one specific defect
— a wavelength collision, a dropped reduce step, a reversed transfer, an
exhausted port budget, an infeasible group size, an order-dependent write —
and asserts the verifier flags it with exactly the expected rule id. This
is the soundness half of the verifier's contract (the golden-plan CLI runs
are the completeness half: valid plans stay clean).
"""

import dataclasses

import pytest

from repro.check import Severity
from repro.check.context import CheckContext, optical_context
from repro.check.engine import run_rules, verify_plan
from repro.collectives import build_schedule
from repro.collectives.base import CommStep, Schedule, Transfer, compress_steps
from repro.core.constraints import OpticalPhyParams
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork


def _net(n=16, w=8, **kwargs):
    return OpticalRingNetwork(
        OpticalSystemConfig(n_nodes=n, n_wavelengths=w), **kwargs
    )


def _error_ids(findings):
    return {f.rule_id for f in findings if f.severity is Severity.ERROR}


def _rebuilt(schedule: Schedule, steps: list[CommStep]) -> Schedule:
    """The same schedule with ``steps`` substituted and re-profiled."""
    return Schedule(
        algorithm=schedule.algorithm,
        n_nodes=schedule.n_nodes,
        total_elems=schedule.total_elems,
        steps=steps,
        timing_profile=compress_steps(steps),
        meta=dict(schedule.meta),
    )


class TestWavelengthConflictInjection:
    def test_duplicated_wavelength_trips_plan001(self):
        net = _net()
        sched = build_schedule("wrht", 16, 160, n_wavelengths=8)
        ctx = optical_context(net, sched)
        assert _error_ids(run_rules(ctx)) == set()  # valid baseline

        # Find two circuits on one (direction, fiber) whose routes share a
        # segment — RWA separated them by wavelength — and force the second
        # onto the first's wavelength: a textbook WDM collision.
        mutated = False
        for rounds in ctx.circuit_rounds.values():
            for rno, circuits in enumerate(rounds):
                for i, b in enumerate(circuits):
                    for a in circuits[:i]:
                        if (
                            a.route.direction is b.route.direction
                            and a.fiber == b.fiber
                            and a.wavelength != b.wavelength
                            and set(a.route.segments) & set(b.route.segments)
                        ):
                            clone = dataclasses.replace(
                                b, wavelength=a.wavelength
                            )
                            rounds[rno] = [
                                *circuits[:i], clone, *circuits[i + 1:]
                            ]
                            mutated = True
                            break
                    if mutated:
                        break
                if mutated:
                    break
            if mutated:
                break
        assert mutated, "fixture never found a collidable circuit pair"
        findings = run_rules(ctx, rule_ids=["PLAN001"])
        assert "PLAN001" in _error_ids(findings)
        assert any("share" in f.message for f in findings)


class TestDroppedStep:
    def test_dropped_reduce_step_trips_plan004(self):
        sched = build_schedule("ring", 8, 64, materialize=True)
        steps = [s for s in sched.steps]
        dropped = next(i for i, s in enumerate(steps) if s.stage == "reduce")
        del steps[dropped]
        mutated = _rebuilt(sched, steps)
        findings = verify_plan(schedule=mutated)
        assert "PLAN004" in _error_ids(findings)

    def test_wrht_theta_mismatch_trips_plan004(self):
        sched = build_schedule("wrht", 16, 160, n_wavelengths=8, materialize=True)
        steps = list(sched.steps)[:-1]
        mutated = _rebuilt(sched, steps)
        findings = verify_plan(schedule=mutated)
        assert "PLAN004" in _error_ids(findings)


class TestSwappedTransfer:
    def test_swapped_src_dst_trips_plan003(self):
        sched = build_schedule("ring", 8, 64, materialize=True)
        steps = list(sched.steps)
        victim = steps[0]
        t = victim.transfers[0]
        swapped = Transfer(src=t.dst, dst=t.src, lo=t.lo, hi=t.hi, op=t.op)
        steps[0] = CommStep(
            transfers=(swapped, *victim.transfers[1:]),
            stage=victim.stage,
            level=victim.level,
        )
        mutated = _rebuilt(sched, steps)
        findings = verify_plan(schedule=mutated)
        ids = _error_ids(findings)
        assert "PLAN003" in ids
        assert any(
            "missing contributions" in f.message or "double-counts" in f.message
            for f in findings
            if f.rule_id == "PLAN003"
        )


class TestRivalCollectiveCorruption:
    """The same soundness contract for the non-paper rivals (Swing/SCRing)."""

    def test_swing_dropped_sum_transfer_trips_plan003(self):
        sched = build_schedule("swing", 8, 64, materialize=True)
        steps = list(sched.steps)
        victim_idx = next(
            i for i, s in enumerate(steps)
            if any(t.op == "sum" for t in s.transfers)
        )
        victim = steps[victim_idx]
        kept = tuple(t for t in victim.transfers if t.op == "sum")[1:]
        copies = tuple(t for t in victim.transfers if t.op != "sum")
        steps[victim_idx] = CommStep(
            transfers=copies + kept, stage=victim.stage, level=victim.level
        )
        findings = verify_plan(schedule=_rebuilt(sched, steps))
        assert "PLAN003" in _error_ids(findings)

    def test_swing_dropped_step_trips_plan004(self):
        sched = build_schedule("swing", 16, 64, materialize=True)
        mutated = _rebuilt(sched, list(sched.steps)[:-1])
        findings = verify_plan(schedule=mutated)
        assert "PLAN004" in _error_ids(findings)

    def test_scring_swapped_src_dst_trips_plan003(self):
        sched = build_schedule("scring", 16, 64, materialize=True, pipeline=2)
        steps = list(sched.steps)
        victim = steps[0]
        t = victim.transfers[0]
        swapped = Transfer(src=t.dst, dst=t.src, lo=t.lo, hi=t.hi, op=t.op)
        steps[0] = CommStep(
            transfers=(swapped, *victim.transfers[1:]),
            stage=victim.stage,
            level=victim.level,
        )
        findings = verify_plan(schedule=_rebuilt(sched, steps))
        assert "PLAN003" in _error_ids(findings)

    def test_scring_dropped_step_trips_plan004(self):
        # The expected count depends on the pipeline knob carried in meta:
        # the rule must read it from the schedule, not assume the default.
        sched = build_schedule("scring", 16, 64, materialize=True, pipeline=2)
        mutated = _rebuilt(sched, list(sched.steps)[:-1])
        findings = verify_plan(schedule=mutated)
        assert "PLAN004" in _error_ids(findings)

    def test_scring_shifted_interval_trips_plan003(self):
        sched = build_schedule("scring", 8, 64, materialize=True)
        steps = list(sched.steps)
        victim_idx = next(
            i for i, s in enumerate(steps)
            if any(t.hi - t.lo > 1 for t in s.transfers)
        )
        victim = steps[victim_idx]
        t = next(t for t in victim.transfers if t.hi - t.lo > 1)
        rest = tuple(u for u in victim.transfers if u is not t)
        shifted = Transfer(src=t.src, dst=t.dst, lo=t.lo + 1, hi=t.hi, op=t.op)
        steps[victim_idx] = CommStep(
            transfers=(shifted, *rest), stage=victim.stage, level=victim.level
        )
        findings = verify_plan(schedule=_rebuilt(sched, steps))
        assert "PLAN003" in _error_ids(findings)


class TestPortBudgetExhaustion:
    def test_tiny_mrr_budget_trips_plan002(self):
        net = _net()
        # WRHT group collect: every member transmits to the collector in
        # one round, so some node handles >1 wavelength per direction.
        sched = build_schedule("wrht", 16, 160, n_wavelengths=8)
        ctx = optical_context(net, sched)
        ctx.mrrs_per_interface = 1
        findings = run_rules(ctx, rule_ids=["PLAN002"])
        assert "PLAN002" in _error_ids(findings)
        assert any("MRR" in f.message for f in findings)


class TestInfeasibleGroupSize:
    def test_m_exceeding_phy_cap_trips_plan005(self):
        net = _net()
        sched = build_schedule("wrht", 16, 160, n_wavelengths=8)
        plan = net.lower(sched, 4.0)
        wrht = sched.meta["plan"]
        # Claim a group size beyond both Lemma 1 and the phy maximum m'.
        sched.meta["plan"] = dataclasses.replace(wrht, m=2 * 8 + 3)
        ctx = CheckContext(
            plan=plan, schedule=sched, phy=OpticalPhyParams()
        )
        findings = run_rules(ctx, rule_ids=["PLAN005"])
        assert "PLAN005" in _error_ids(findings)
        assert any("Lemma 1" in f.message for f in findings)

    def test_wavelength_demand_beyond_budget_trips_plan005(self):
        net = _net()
        sched = build_schedule("wrht", 16, 160, n_wavelengths=8)
        plan = net.lower(sched, 4.0)
        wrht = sched.meta["plan"]
        sched.meta["plan"] = dataclasses.replace(
            wrht, peak_wavelengths=wrht.n_wavelengths + 1
        )
        ctx = CheckContext(plan=plan, schedule=sched)
        findings = run_rules(ctx, rule_ids=["PLAN005"])
        assert "PLAN005" in _error_ids(findings)


class TestOrderDependentWrites:
    def test_copy_sum_overlap_trips_plan006(self):
        step = CommStep(
            transfers=(
                Transfer(0, 2, 0, 8, op="copy"),
                Transfer(1, 2, 4, 12, op="sum"),
            )
        )
        sched = Schedule(
            algorithm="synthetic", n_nodes=3, total_elems=16,
            steps=[step], timing_profile=[(step, 1)],
        )
        findings = verify_plan(schedule=sched)
        assert "PLAN006" in _error_ids(findings)


class TestPlanStructureTampering:
    def test_inconsistent_step_total_trips_plan000(self):
        net = _net()
        sched = build_schedule("ring", 16, 160)
        plan = net.lower(sched, 4.0)
        plan.n_steps += 1
        findings = verify_plan(plan, sched)
        assert "PLAN000" in _error_ids(findings)

    def test_replay_without_priced_pattern_trips_plan000(self):
        net = _net()
        sched = build_schedule("wrht", 16, 160, n_wavelengths=8)
        plan = net.lower(sched, 4.0)
        first = plan.entries[0]
        assert not first.replay
        tampered = dataclasses.replace(first, replay=True)
        plan.entries = (tampered, *plan.entries[1:])
        findings = run_rules(
            CheckContext(plan=plan), rule_ids=["PLAN000"]
        )
        assert "PLAN000" in _error_ids(findings)


class TestDataflowSizeCap:
    def test_oversized_schedule_skips_with_info(self):
        sched = build_schedule("ring", 8, 64, materialize=True)
        ctx = CheckContext(schedule=sched, dataflow_size_limit=1)
        findings = run_rules(ctx, rule_ids=["PLAN003"])
        assert _error_ids(findings) == set()
        assert any(
            f.rule_id == "PLAN003" and f.severity is Severity.INFO
            for f in findings
        )


class TestRandomFitContext:
    def test_random_fit_never_derives_circuits(self):
        from repro.sim.rng import SeededRng

        net = _net(strategy="random_fit", rng=SeededRng(7))
        sched = build_schedule("ring", 16, 160)
        ctx = optical_context(net, sched)
        assert ctx.circuit_rounds is None
        # The RNG stream is untouched by verification: lowering twice from
        # the same seed stays bit-identical.
        net2 = _net(strategy="random_fit", rng=SeededRng(7))
        plan2 = net2.lower(sched, 4.0)
        assert [e.payload for e in plan2.entries] == [
            e.payload for e in ctx.plan.entries
        ]
