"""Rule registry, findings model, and the verify_plan entry point."""

import pickle

import pytest

from repro.check import Finding, Severity
from repro.check.context import CheckContext
from repro.check.engine import (
    PlanVerificationError,
    all_rules,
    get_rule,
    run_rules,
    verify_plan,
)
from repro.collectives import build_schedule


class TestRegistry:
    def test_catalog_registers_plan_rules(self):
        ids = [r.rule_id for r in all_rules()]
        for expected in (
            "PLAN000", "PLAN001", "PLAN002", "PLAN003",
            "PLAN004", "PLAN005", "PLAN006",
        ):
            assert expected in ids
        assert ids == sorted(ids)

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("PLAN999")

    def test_rules_declare_needs(self):
        assert "circuits" in get_rule("PLAN001").needs
        assert "steps" in get_rule("PLAN003").needs


class TestFindings:
    def test_render_includes_rule_and_severity(self):
        f = Finding("PLAN001", Severity.ERROR, "boom", step_index=3)
        text = f.render()
        assert "PLAN001" in text and "error" in text and "boom" in text

    def test_to_dict_round_trips_fields(self):
        f = Finding("REP001", Severity.WARNING, "msg", location="a.py:7")
        d = f.to_dict()
        assert d["rule_id"] == "REP001"
        assert d["severity"] == "warning"
        assert d["location"] == "a.py:7"


class TestVerifyPlan:
    def test_clean_schedule_only_context(self):
        sched = build_schedule("ring", 8, 64, materialize=True)
        findings = verify_plan(schedule=sched)
        assert not [f for f in findings if f.severity is Severity.ERROR]

    def test_rules_skip_when_context_lacks_needs(self):
        sched = build_schedule("ring", 8, 64, materialize=False)
        ctx = CheckContext(schedule=sched)
        # Circuit rules must not run without circuits.
        findings = run_rules(ctx, rule_ids=["PLAN001", "PLAN002"])
        assert findings == []

    def test_report_skipped_names_inapplicable_rules(self):
        """Analytic-backend plans carry no config/circuits: the budget and
        wavelength rules sit out, and report_skipped says so per rule."""
        from repro.backend.analytic import AnalyticBackend
        from repro.optical.config import OpticalSystemConfig

        cfg = OpticalSystemConfig(n_nodes=8, n_wavelengths=4)
        backend = AnalyticBackend(cfg.cost_model(), w=4)
        sched = build_schedule("ring", 8, 64, materialize=True)
        plan = backend.lower(sched, bytes_per_elem=4.0)
        findings = verify_plan(plan, sched, report_skipped=True)
        skipped = [f for f in findings if f.details.get("skipped")]
        assert skipped, "expected at least one skipped rule on analytic plans"
        for f in skipped:
            assert f.severity is Severity.INFO
            assert f.details["missing"]
            assert "skipped" in f.message
        skipped_ids = {f.rule_id for f in skipped}
        # The circuit rule needs circuits; analytic lowering has none.
        assert "PLAN001" in skipped_ids
        # Without report_skipped the same verification stays silent.
        quiet = verify_plan(plan, sched)
        assert not [f for f in quiet if f.details.get("skipped")]

    def test_error_raises_with_findings_attached(self):
        sched = build_schedule("ring", 8, 64, materialize=False)
        # Drop one profile entry: the ring closed form no longer matches.
        step, count = sched.timing_profile[-1]
        sched.timing_profile[-1] = (step, count - 1)
        with pytest.raises(PlanVerificationError) as excinfo:
            verify_plan(schedule=sched, raise_on_error=True)
        assert any(f.rule_id == "PLAN004" for f in excinfo.value.findings)

    def test_verification_error_pickles(self):
        err = PlanVerificationError(
            [Finding("PLAN004", Severity.ERROR, "mismatch")]
        )
        clone = pickle.loads(pickle.dumps(err))
        assert clone.findings[0].rule_id == "PLAN004"
