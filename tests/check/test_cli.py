"""The ``repro check`` CLI: golden-cell enumeration and end-to-end runs."""

import pytest

from repro.check.cli import build_parser, golden_cells, main


class TestGoldenCells:
    def test_every_figure_enumerates(self):
        for fig in ("fig4", "fig5", "fig6", "fig7"):
            cells = golden_cells(fig)
            assert cells, fig
            for cell in cells:
                assert cell["algo"]
                assert cell["n"] >= 2
                assert cell["w"] >= 1

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figure"):
            golden_cells("fig99")


class TestCheckCommand:
    def test_fig5_analytic_verifies_clean(self, capsys):
        assert main(
            ["check", "--fig", "fig5", "--backend", "analytic", "-v"]
        ) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "clean" in out
        assert "FAIL" not in out

    def test_fig7_electrical_verifies_clean(self, capsys):
        assert main(["check", "--fig", "fig7", "--backend", "electrical"]) == 0
        assert "FAIL" not in capsys.readouterr().out

    def test_lint_subcommand_clean_on_src(self):
        assert main(["lint", "src"]) == 0


class TestFlowCommand:
    def test_flow_clean_on_src(self, capsys):
        assert main(["flow", "src"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_flow_flags_violation_and_writes_sarif(self, tmp_path, capsys):
        bad = tmp_path / "svc.py"
        bad.write_text(
            "import time\n\n\nasync def handler():\n    time.sleep(1)\n"
        )
        sarif = tmp_path / "flow.sarif.json"
        assert main(["flow", str(tmp_path), "--sarif", str(sarif)]) == 1
        assert "CONC001" in capsys.readouterr().out
        import json

        log = json.loads(sarif.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "CONC001"

    def test_flow_select_restricts_rules(self, tmp_path, capsys):
        bad = tmp_path / "svc.py"
        bad.write_text(
            "import time\n\n\nasync def handler():\n    time.sleep(1)\n"
        )
        assert main(["flow", str(tmp_path), "--select", "DET001"]) == 0
        assert "CONC001" not in capsys.readouterr().out

    def test_flow_unknown_rule_rejected(self, capsys):
        assert main(["flow", "src", "--select", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_flow_list_rules(self, capsys):
        assert main(["flow", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("CONC001", "CONC005", "DET001", "DET004"):
            assert rule_id in out


class TestParser:
    def test_default_backend_is_optical(self):
        args = build_parser().parse_args(["check"])
        assert args.backend == "optical"

    def test_runner_cli_forwards_check(self, capsys):
        from repro.runner.cli import main as runner_main

        code = runner_main(
            ["check", "--fig", "fig5", "--backend", "analytic"]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_runner_cli_forwards_check_flow(self, capsys):
        from repro.runner.cli import main as runner_main

        assert runner_main(["check", "flow", "src"]) == 0
        assert "0 error(s)" in capsys.readouterr().out
