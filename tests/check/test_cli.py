"""The ``repro check`` CLI: golden-cell enumeration and end-to-end runs."""

import pytest

from repro.check.cli import build_parser, golden_cells, main


class TestGoldenCells:
    def test_every_figure_enumerates(self):
        for fig in ("fig4", "fig5", "fig6", "fig7"):
            cells = golden_cells(fig)
            assert cells, fig
            for cell in cells:
                assert cell["algo"]
                assert cell["n"] >= 2
                assert cell["w"] >= 1

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figure"):
            golden_cells("fig99")


class TestCheckCommand:
    def test_fig5_analytic_verifies_clean(self, capsys):
        assert main(
            ["check", "--fig", "fig5", "--backend", "analytic", "-v"]
        ) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "clean" in out
        assert "FAIL" not in out

    def test_fig7_electrical_verifies_clean(self, capsys):
        assert main(["check", "--fig", "fig7", "--backend", "electrical"]) == 0
        assert "FAIL" not in capsys.readouterr().out

    def test_lint_subcommand_clean_on_src(self):
        assert main(["lint", "src"]) == 0


class TestParser:
    def test_default_backend_is_optical(self):
        args = build_parser().parse_args(["check"])
        assert args.backend == "optical"

    def test_runner_cli_forwards_check(self, capsys):
        from repro.runner.cli import main as runner_main

        code = runner_main(
            ["check", "--fig", "fig5", "--backend", "analytic"]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out
