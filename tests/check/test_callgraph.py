"""Call-graph construction and effect propagation (repro.check.callgraph/effects)."""

import textwrap

from repro.check.callgraph import build_callgraph, module_name
from repro.check.effects import (
    BLOCKING,
    RNG,
    WALLCLOCK,
    key_sink_params,
    propagate_effects,
    tainted_returners,
)


def _graph(*files):
    """Build a graph from (path, source) pairs with dedented sources."""
    pairs = [(path, textwrap.dedent(source)) for path, source in files]
    graph, findings = build_callgraph(pairs)
    assert findings == []
    return graph


class TestModuleName:
    def test_src_layout_maps_to_dotted_module(self):
        assert module_name("src/repro/service/daemon.py") == "repro.service.daemon"

    def test_init_module_drops_suffix(self):
        assert module_name("src/repro/check/__init__.py") == "repro.check"

    def test_loose_file_falls_back_to_stem(self):
        assert module_name("/tmp/scratch.py") == "scratch"


class TestResolution:
    def test_module_level_function_call_resolves(self):
        graph = _graph(("m.py", """
            def helper():
                return 1

            def caller():
                return helper()
        """))
        assert graph.callees("m:caller") == {"m:helper"}

    def test_self_method_call_resolves(self):
        graph = _graph(("m.py", """
            class C:
                def a(self):
                    return self.b()

                def b(self):
                    return 2
        """))
        assert graph.callees("m:C.a") == {"m:C.b"}

    def test_inherited_method_resolves_through_base(self):
        graph = _graph(("m.py", """
            class Base:
                def work(self):
                    return 1

            class Child(Base):
                def go(self):
                    return self.work()
        """))
        assert graph.callees("m:Child.go") == {"m:Base.work"}

    def test_annotated_parameter_dispatches_to_class(self):
        graph = _graph(("m.py", """
            class Store:
                def put(self, key, value):
                    return None

            def save(store: Store, value):
                store.put("k", value)
        """))
        assert graph.callees("m:save") == {"m:Store.put"}

    def test_constructor_attribute_type_inferred(self):
        graph = _graph(("m.py", """
            class Engine:
                def run(self):
                    return 1

            class Service:
                def __init__(self):
                    self.engine = Engine()

                def tick(self):
                    return self.engine.run()
        """))
        assert "m:Engine.run" in graph.callees("m:Service.tick")

    def test_import_alias_normalizes_external_dotted_name(self):
        graph = _graph(("m.py", """
            import numpy as np

            def draw():
                return np.random.default_rng()
        """))
        (site,) = graph.sites("m:draw")
        assert site.external == "numpy.random.default_rng"

    def test_cross_module_import_resolves(self):
        graph = _graph(
            ("src/pkg/util.py", """
                def shared():
                    return 0
            """),
            ("src/pkg/app.py", """
                from pkg.util import shared

                def go():
                    return shared()
            """),
        )
        assert graph.callees("pkg.app:go") == {"pkg.util:shared"}

    def test_syntax_error_reported_not_raised(self):
        graph, findings = build_callgraph([("bad.py", "def broken(:\n")])
        assert [f.rule_id for f in findings] == ["SYNTAX"]
        assert graph.functions == {}


class TestEffectPropagation:
    def test_blocking_propagates_transitively(self):
        graph = _graph(("m.py", """
            import time

            def low():
                time.sleep(1)

            def mid():
                low()

            def high():
                mid()
        """))
        report = propagate_effects(graph)
        assert report.has("m:high", BLOCKING)
        chain = report.chain("m:high", BLOCKING)
        assert chain[0] == "m:high" and chain[-1] == "time.sleep"

    def test_wallclock_and_rng_are_distinct_effects(self):
        graph = _graph(("m.py", """
            import time
            import random

            def now():
                return time.perf_counter()

            def roll():
                return random.Random().random()
        """))
        report = propagate_effects(graph)
        assert report.has("m:now", WALLCLOCK)
        assert not report.has("m:now", RNG)
        assert report.has("m:roll", RNG)

    def test_seeded_rng_has_no_effect(self):
        graph = _graph(("m.py", """
            import random

            def roll():
                return random.Random(7).random()
        """))
        assert not propagate_effects(graph).has("m:roll", RNG)


class TestTaintAndSinks:
    def test_wallclock_taint_crosses_return_chain(self):
        graph = _graph(("m.py", """
            import time

            def clock():
                return time.perf_counter()

            def stamp():
                return clock()
        """))
        from repro.check.effects import WALLCLOCK_EXTERNALS, WALLCLOCK_TERMINALS

        tainted = tainted_returners(graph, WALLCLOCK_EXTERNALS, WALLCLOCK_TERMINALS)
        assert {"m:clock", "m:stamp"} <= tainted

    def test_key_named_function_params_become_sinks(self):
        graph = _graph(("m.py", """
            def make_key(payload, salt):
                return (payload, salt)
        """))
        sinks = key_sink_params(graph)
        assert sinks.get("m:make_key") == {"payload", "salt"}
