"""The REP001–REP007 AST lint: each rule has failing and passing fixtures."""

import textwrap

from repro.check.lint import LINT_RULES, lint_source, main


def _ids(source, **kwargs):
    return [f.rule_id for f in lint_source(textwrap.dedent(source), **kwargs)]


class TestRep001UnseededRng:
    def test_unseeded_default_rng_flagged(self):
        assert _ids("""
            import numpy as np
            rng = np.random.default_rng()
        """) == ["REP001"]

    def test_unseeded_random_flagged(self):
        assert _ids("""
            import random
            r = random.Random()
        """) == ["REP001"]

    def test_global_random_function_flagged(self):
        assert _ids("""
            import random
            x = random.shuffle(items)
        """) == ["REP001"]

    def test_seeded_constructions_pass(self):
        assert _ids("""
            import random
            import numpy as np
            rng = np.random.default_rng(42)
            r = random.Random(7)
        """) == []


class TestRep002TimingEquality:
    def test_duration_equality_flagged(self):
        assert _ids("if a.duration == b.duration:\n    pass\n") == ["REP002"]

    def test_suffix_s_flagged(self):
        assert _ids("ok = max_payload_s != other_s\n") == ["REP002"]

    def test_non_timing_names_pass(self):
        assert _ids("ok = count == total\n") == []

    def test_zero_and_none_guards_pass(self):
        assert _ids("""
            a = duration == 0
            b = elapsed != None
        """) == []


class TestRep003UnpicklableException:
    def test_custom_init_without_hook_flagged(self):
        assert _ids("""
            class SweepError(RuntimeError):
                def __init__(self, step, detail):
                    super().__init__(f"{step}: {detail}")
                    self.step = step
        """) == ["REP003"]

    def test_custom_init_with_reduce_passes(self):
        assert _ids("""
            class SweepError(RuntimeError):
                def __init__(self, step):
                    super().__init__(step)
                    self.step = step

                def __reduce__(self):
                    return (type(self), (self.step,))
        """) == []

    def test_plain_exception_passes(self):
        assert _ids("""
            class SweepError(RuntimeError):
                pass
        """) == []

    def test_non_exception_class_with_init_passes(self):
        assert _ids("""
            class Widget:
                def __init__(self, size):
                    self.size = size
        """) == []


class TestRep005TraceRegistry:
    def test_unregistered_literal_flagged(self):
        assert _ids(
            'tracer.emit(now, "optical.rund", stage=s)\n'
        ) == ["REP005"]

    def test_registered_literal_passes(self):
        assert _ids(
            'tracer.emit(now, "optical.round", stage=s)\n'
        ) == []

    def test_dynamic_category_passes(self):
        assert _ids("tracer.emit(now, category, stage=s)\n") == []


HOT_PATH = "src/repro/optical/network.py"


class TestRep006TransferLoop:
    def test_hot_path_transfer_loop_flagged(self):
        assert _ids("""
            for t in step.transfers:
                price(t)
        """, path=HOT_PATH) == ["REP006"]

    def test_bare_transfers_name_flagged(self):
        assert _ids("""
            for i, t in enumerate(transfers):
                price(t)
        """, path=HOT_PATH) == ["REP006"]

    def test_cold_path_passes(self):
        assert _ids("""
            for t in step.transfers:
                price(t)
        """, path="src/repro/runner/faultsweep.py") == []

    def test_comprehension_passes(self):
        assert _ids(
            "sizes = [t.n_elems for t in step.transfers]\n", path=HOT_PATH
        ) == []

    def test_pragma_on_loop_line_passes(self):
        assert _ids("""
            for t in step.transfers:  # REP006: per-circuit trace emission
                trace(t)
        """, path=HOT_PATH) == []

    def test_pragma_comment_block_above_passes(self):
        assert _ids("""
            # REP006: route construction is per-transfer by nature; the
            # priced hot loop below it is vectorized.
            for t in step.transfers:
                route(t)
        """, path=HOT_PATH) == []

    def test_non_transfer_loop_passes(self):
        assert _ids("""
            for circuits in rounds:
                fold(circuits)
        """, path=HOT_PATH) == []


COLD_PATH = "src/repro/runner/faultsweep.py"


class TestRep007PlanCacheMutation:
    def test_put_outside_seams_flagged(self):
        assert _ids(
            "self.plan_cache.put(key, value)\n", path=COLD_PATH
        ) == ["REP007"]

    def test_clear_on_default_cache_flagged(self):
        assert _ids(
            "default_plan_cache().clear()\n", path=COLD_PATH
        ) == ["REP007"]

    def test_resize_flagged(self):
        assert _ids("plan_cache.resize(0)\n", path=COLD_PATH) == ["REP007"]

    def test_get_passes(self):
        assert _ids("v = self.plan_cache.get(key)\n", path=COLD_PATH) == []

    def test_non_cache_receiver_passes(self):
        assert _ids("registry.put(key, value)\n", path=COLD_PATH) == []

    def test_plain_clear_passes(self):
        assert _ids("self._entries.clear()\n", path=COLD_PATH) == []

    def test_lowering_seam_passes(self):
        assert _ids(
            "self.plan_cache.put(key, value)\n",
            path="src/repro/optical/network.py",
        ) == []

    def test_store_module_passes(self):
        assert _ids(
            "self.plan_cache.put(key, value)\n",
            path="src/repro/service/store.py",
        ) == []

    def test_pragma_passes(self):
        assert _ids(
            "plan_cache.clear()  # REP007: bench cold-path measurement\n",
            path=COLD_PATH,
        ) == []


class TestRep008BarePragma:
    """Lint of the lint: a suppression without a reason is itself flagged."""

    def test_bare_pragma_flagged_and_not_honoured(self):
        source = "plan_cache.clear()  # REP007\n"
        assert sorted(_ids(source, path=COLD_PATH)) == ["REP007", "REP008"]

    def test_reasoned_pragma_passes(self):
        assert _ids(
            "plan_cache.clear()  # REP007: bench cold-path measurement\n",
            path=COLD_PATH,
        ) == []

    def test_bare_conc_pragma_flagged(self):
        # The shared pragma grammar covers the flow rule families too.
        assert _ids("x = 1  # CONC001\n") == ["REP008"]

    def test_rep008_cannot_suppress_itself(self):
        assert _ids("x = 1  # REP006\n# REP008: hush\n") == ["REP008"]


class TestSyntaxErrorHandling:
    def test_unparseable_source_reports_finding_not_raise(self):
        (finding,) = lint_source("def broken(:\n", path="bad.py")
        assert finding.rule_id == "SYNTAX"
        assert finding.location and finding.location.startswith("bad.py:")

    def test_main_exits_nonzero_on_syntax_error(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        assert main([str(tmp_path)]) == 1
        assert "SYNTAX" in capsys.readouterr().out


class TestHarness:
    def test_select_restricts_rules(self):
        source = (
            "plan_cache.resize(0)\n"
            "import random\n"
            "r = random.Random()\n"
        )
        assert _ids(source, select={"REP007"}) == ["REP007"]

    def test_findings_carry_locations(self):
        (finding,) = lint_source(
            "plan_cache.resize(0)\n", path="fixture.py"
        )
        assert finding.location == "fixture.py:1"

    def test_rule_catalog_is_complete(self):
        """REP004 is retired (alias removed in PR 7); the id is not reused."""
        assert sorted(LINT_RULES) == [
            "REP001", "REP002", "REP003", "REP005", "REP006", "REP007",
            "REP008",
        ]

    def test_main_clean_on_src(self):
        assert main(["src"]) == 0

    def test_main_flags_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("default_plan_cache().clear()\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP007" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP001" in out and "REP005" in out
