"""Adversarial fixtures for the CONC/DET flow rules (repro.check.flow).

Each rule id gets at least one injected violation asserting the exact id
fires, plus a near-miss fixture asserting it stays quiet. The suppression
pragma, the SARIF emitter, and the "repo src is clean" gate are covered at
the end.
"""

import json
import textwrap
from pathlib import Path

from repro.check.findings import Severity
from repro.check.flow import FLOW_RULES, analyze_files, analyze_paths
from repro.check.sarif import to_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]


def _ids(*files, select=None):
    pairs = [(path, textwrap.dedent(source)) for path, source in files]
    return [f.rule_id for f in analyze_files(pairs, select=select)]


def _findings(source, select=None):
    return analyze_files([("m.py", textwrap.dedent(source))], select=select)


class TestConc001BlockingInAsync:
    def test_direct_blocking_call_flagged(self):
        assert _ids(("m.py", """
            import time

            async def handler():
                time.sleep(1)
        """)) == ["CONC001"]

    def test_transitive_blocking_via_sync_callee_flagged(self):
        findings = _findings("""
            import subprocess

            def run_tool():
                subprocess.run(["true"])

            async def handler():
                run_tool()
        """)
        assert [f.rule_id for f in findings] == ["CONC001"]
        assert "run_tool" in findings[0].message

    def test_async_sleep_passes(self):
        assert _ids(("m.py", """
            import asyncio

            async def handler():
                await asyncio.sleep(1)
        """)) == []

    def test_blocking_in_sync_function_passes(self):
        assert _ids(("m.py", """
            import time

            def worker():
                time.sleep(1)
        """)) == []


class TestConc002SharedState:
    def test_read_modify_write_across_await_flagged(self):
        assert _ids(("m.py", """
            class Service:
                def __init__(self):
                    self._pending = 0

                async def admit(self, fut):
                    count = self._pending
                    await fut
                    self._pending = count + 1
        """)) == ["CONC002"]

    def test_augassign_after_await_passes(self):
        # += executes atomically between yield points on the loop.
        assert _ids(("m.py", """
            class Service:
                def __init__(self):
                    self._pending = 0

                async def admit(self, fut):
                    self._pending += 1
                    await fut
                    self._pending -= 1
        """)) == []

    def test_executor_dispatched_mutation_flagged(self):
        assert _ids(("m.py", """
            class Service:
                def __init__(self, loop, pool):
                    self._loop = loop
                    self._pool = pool
                    self._stats = {}

                async def poll(self):
                    return self._stats

                async def kick(self):
                    self._loop.run_in_executor(self._pool, self._work)

                def _work(self):
                    self._stats = {}
        """)) == ["CONC002"]

    def test_executor_worker_touching_private_state_passes(self):
        # The worker's attribute is never touched by an async method.
        assert _ids(("m.py", """
            class Service:
                def __init__(self, loop, pool):
                    self._loop = loop
                    self._pool = pool
                    self._scratch = 0

                async def kick(self):
                    self._loop.run_in_executor(self._pool, self._work)

                def _work(self):
                    self._scratch += 1
        """)) == []


class TestConc003UnawaitedCoroutine:
    def test_bare_coroutine_statement_flagged(self):
        assert _ids(("m.py", """
            class Service:
                async def tick(self):
                    pass

                async def run(self):
                    self.tick()
        """)) == ["CONC003"]

    def test_awaited_and_task_wrapped_pass(self):
        assert _ids(("m.py", """
            import asyncio

            class Service:
                async def tick(self):
                    pass

                async def run(self):
                    await self.tick()
                    asyncio.create_task(self.tick())
        """)) == []


class TestConc004ForkIdentity:
    SOURCE = """
        import os
        from pathlib import Path

        class Store:
            def __init__(self, root):
                self.root = Path(root)
                self._owner_pid = os.getpid()

            def _check_owner(self):
                if self._owner_pid != os.getpid():
                    self._owner_pid = os.getpid()

            def put(self, key, value):
                return self.root / f"blob-{self._owner_pid}.pkl"

            def get(self, key):
                self._check_owner()
                return self._owner_pid
    """

    def test_public_method_without_recheck_flagged(self):
        findings = _findings(self.SOURCE)
        assert [f.rule_id for f in findings] == ["CONC004"]
        assert "put()" in findings[0].message

    def test_rechecked_method_passes(self):
        fixed = self.SOURCE.replace(
            'def put(self, key, value):\n                return',
            'def put(self, key, value):\n'
            '                self._check_owner()\n                return',
        )
        assert _ids(("m.py", fixed)) == []

    def test_class_without_cached_pid_passes(self):
        assert _ids(("m.py", """
            import os

            class Store:
                def put(self, key):
                    return os.getpid()
        """)) == []


class TestConc005NonAtomicShardWrite:
    def test_direct_shard_write_flagged(self):
        assert _ids(("m.py", """
            from pathlib import Path

            def flush(root, blob):
                (root / "shard-0.pkl").write_bytes(blob)
        """)) == ["CONC005"]

    def test_var_held_shard_target_flagged(self):
        assert _ids(("m.py", """
            from pathlib import Path

            def flush(root, blob):
                target = root / "shard-0.pkl"
                target.write_bytes(blob)
        """)) == ["CONC005"]

    def test_tmp_plus_replace_passes(self):
        assert _ids(("m.py", """
            import os
            from pathlib import Path

            def flush(root, blob):
                target = root / "shard-0.pkl"
                tmp = target.with_name(target.name + ".tmp")
                tmp.write_bytes(blob)
                os.replace(tmp, target)
        """)) == []

    def test_non_shard_write_passes(self):
        assert _ids(("m.py", """
            def flush(root, blob):
                (root / "report.json").write_bytes(blob)
        """)) == []


class TestDet001WallClockInKeys:
    def test_wall_clock_through_two_hops_reaches_cache_key(self):
        # time.perf_counter -> clock() -> stamp() -> make_key(...) -> put
        findings = _findings("""
            import time

            def clock():
                return time.perf_counter()

            def stamp():
                return clock()

            def make_key(tag, value):
                return (tag, value)

            def remember(cache, value):
                cache.put(make_key("plan", stamp()), value)
        """)
        ids = [f.rule_id for f in findings]
        assert "DET001" in ids
        assert all(rule_id == "DET001" for rule_id in ids)
        assert any("put" in f.message for f in findings)

    def test_wall_clock_into_key_return_flagged(self):
        assert "DET001" in _ids(("m.py", """
            import time

            def cache_key(cfg):
                return (cfg, time.time())
        """))

    def test_wall_clock_outside_keys_passes(self):
        assert _ids(("m.py", """
            import time

            def measure(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
        """)) == []

    def test_config_only_key_passes(self):
        assert _ids(("m.py", """
            def make_key(algo, n, w):
                return (algo, n, w)

            def remember(cache, algo, n, w, value):
                cache.put(make_key(algo, n, w), value)
        """)) == []


class TestDet002SetIterationOnLoweringPath:
    def test_set_iteration_reachable_from_lower_flagged(self):
        findings = _findings("""
            def color(nodes):
                order = []
                for node in set(nodes):
                    order.append(node)
                return order

            def lower(schedule):
                return color(schedule)
        """)
        assert [f.rule_id for f in findings] == ["DET002"]

    def test_sorted_set_iteration_passes(self):
        assert _ids(("m.py", """
            def color(nodes):
                return [n for n in sorted(set(nodes))]

            def lower(schedule):
                return color(schedule)
        """)) == []

    def test_set_iteration_off_lowering_path_passes(self):
        assert _ids(("m.py", """
            def summarize(nodes):
                return [n for n in set(nodes)]
        """)) == []


class TestDet003UnseededRngFromLower:
    def test_rng_two_calls_below_lower_flagged(self):
        findings = _findings("""
            import random

            def jitter():
                return random.Random().random()

            def place(nodes):
                return jitter()

            def lower(schedule):
                return place(schedule)
        """)
        assert [f.rule_id for f in findings] == ["DET003"]
        assert "jitter" in findings[0].details.get("chain", "")

    def test_seeded_rng_below_lower_passes(self):
        assert _ids(("m.py", """
            import random

            def place(nodes, seed):
                return random.Random(seed).random()

            def lower(schedule):
                return place(schedule, 7)
        """)) == []


class TestDet004ProcessLocalIdentity:
    def test_id_in_key_return_flagged(self):
        assert _ids(("m.py", """
            def coalesce_key(request):
                return id(request)
        """), select={"DET004"}) == ["DET004"]

    def test_hash_into_cache_put_flagged(self):
        assert _ids(("m.py", """
            def remember(cache, request, value):
                cache.put(hash(request.text), value)
        """), select={"DET004"}) == ["DET004"]

    def test_sha_digest_key_passes(self):
        assert _ids(("m.py", """
            import hashlib

            def coalesce_key(request):
                return hashlib.sha256(request).hexdigest()
        """), select={"DET004"}) == []


class TestPragmasAndDriver:
    def test_reasoned_pragma_suppresses_flow_finding(self):
        assert _ids(("m.py", """
            import time

            async def handler():
                time.sleep(1)  # CONC001: smoke harness, loop is idle here
        """)) == []

    def test_bare_pragma_does_not_suppress(self):
        assert _ids(("m.py", """
            import time

            async def handler():
                time.sleep(1)  # CONC001
        """)) == ["CONC001"]

    def test_select_restricts_rules(self):
        source = ("m.py", """
            import time

            async def handler():
                time.sleep(1)

            def cache_key(cfg):
                return (cfg, time.time())
        """)
        assert _ids(source, select={"DET001"}) == ["DET001"]
        assert sorted(_ids(source)) == ["CONC001", "DET001"]

    def test_syntax_error_becomes_finding(self):
        findings = analyze_files([("bad.py", "def broken(:\n")])
        assert [f.rule_id for f in findings] == ["SYNTAX"]
        assert findings[0].severity is Severity.ERROR

    def test_findings_carry_location_and_line(self):
        (finding,) = _findings("""
            import time

            async def handler():
                time.sleep(1)
        """)
        assert finding.location == "m.py:5"
        assert finding.details["line"] == 5


class TestRepoIsClean:
    def test_flow_rules_clean_on_src(self):
        findings = analyze_paths([REPO_ROOT / "src"])
        assert findings == [], "\n".join(f.render() for f in findings)


class TestSarif:
    def test_sarif_2_1_0_shape(self):
        findings = _findings("""
            import time

            async def handler():
                time.sleep(1)
        """)
        log = to_sarif(findings, rule_catalog=FLOW_RULES)
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.check.flow"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(set(rule_ids))
        assert set(FLOW_RULES) <= set(rule_ids)
        (result,) = run["results"]
        assert result["ruleId"] == "CONC001"
        assert result["level"] == "error"
        assert rule_ids[result["ruleIndex"]] == "CONC001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "m.py"
        assert location["region"]["startLine"] == 5
        json.dumps(log)  # must be serializable as-is

    def test_severity_level_mapping(self):
        from repro.check.findings import Finding

        log = to_sarif(
            [
                Finding("X001", Severity.WARNING, "warn", location="a.py:1"),
                Finding("X002", Severity.INFO, "note", location="a.py:2"),
            ]
        )
        levels = [r["level"] for r in log["runs"][0]["results"]]
        assert levels == ["warning", "note"]
