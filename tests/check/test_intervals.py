"""The shared interval engine: claims, conflicts, and the set-interval map."""

import pytest

from repro.check.intervals import Claim, IntervalSetMap, find_conflicts


class TestClaim:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError, match="empty claim interval"):
            Claim(resource="r", lo=5, hi=5)

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError, match="empty claim interval"):
            Claim(resource="r", lo=7, hi=3)


class TestFindConflicts:
    def test_disjoint_claims_clean(self):
        claims = [Claim("r", 0, 5), Claim("r", 5, 10), Claim("r", 10, 12)]
        assert find_conflicts(claims) == []

    def test_different_resources_never_conflict(self):
        claims = [Claim("a", 0, 10), Claim("b", 0, 10)]
        assert find_conflicts(claims) == []

    def test_overlap_reported_with_interval(self):
        first, second = Claim("r", 0, 6), Claim("r", 4, 10)
        (conflict,) = find_conflicts([first, second])
        assert conflict.resource == "r"
        assert conflict.overlap == (4, 6)

    def test_two_combinable_claims_coexist(self):
        claims = [
            Claim("r", 0, 8, combinable=True),
            Claim("r", 4, 10, combinable=True),
        ]
        assert find_conflicts(claims) == []

    def test_combinable_vs_exclusive_conflicts(self):
        claims = [Claim("r", 0, 8, combinable=True), Claim("r", 4, 10)]
        assert len(find_conflicts(claims)) == 1

    def test_first_only_stops_early(self):
        claims = [Claim("r", 0, 10), Claim("r", 1, 9), Claim("r", 2, 8)]
        assert len(find_conflicts(claims, first_only=True)) == 1
        assert len(find_conflicts(claims)) == 3

    def test_owner_echoed_back(self):
        first = Claim("r", 0, 5, owner="alpha")
        second = Claim("r", 3, 8, owner="beta")
        (conflict,) = find_conflicts([first, second])
        assert {conflict.first.owner, conflict.second.owner} == {"alpha", "beta"}


class TestIntervalSetMap:
    def test_initial_uniform(self):
        m = IntervalSetMap(total=10, initial=frozenset({3}))
        assert m.uniform_value() == frozenset({3})

    def test_overwrite_replaces_range(self):
        m = IntervalSetMap(total=10, initial=frozenset({0}))
        m.overwrite(2, 6, [(2, 6, frozenset({1}))])
        assert m.values_over(0, 2) == [frozenset({0})]
        assert m.values_over(2, 6) == [frozenset({1})]
        assert m.uniform_value() is None

    def test_union_merges_sets(self):
        m = IntervalSetMap(total=10, initial=frozenset({0}))
        dups = m.union(0, 10, [(0, 10, frozenset({1}))])
        assert dups == []
        assert m.uniform_value() == frozenset({0, 1})

    def test_union_reports_duplicate_contribution(self):
        m = IntervalSetMap(total=10, initial=frozenset({0, 1}))
        dups = m.union(2, 8, [(2, 8, frozenset({1, 2}))])
        assert dups == [(2, 8, frozenset({1}))]
        assert m.values_over(2, 8) == [frozenset({0, 1, 2})]

    def test_adjacent_equal_runs_merge(self):
        m = IntervalSetMap(total=10, initial=frozenset({0}))
        m.overwrite(0, 5, [(0, 5, frozenset({9}))])
        m.overwrite(5, 10, [(5, 10, frozenset({9}))])
        assert m.uniform_value() == frozenset({9})
        assert len(m.values_over(0, 10)) == 1

    def test_partial_union_decomposes_boundaries(self):
        m = IntervalSetMap(total=8, initial=frozenset({0}))
        m.union(2, 6, [(2, 4, frozenset({1})), (4, 6, frozenset({2}))])
        assert m.values_over(0, 8) == [
            frozenset({0}),
            frozenset({0, 1}),
            frozenset({0, 2}),
            frozenset({0}),
        ]

    def test_out_of_range_rejected(self):
        m = IntervalSetMap(total=4, initial=frozenset())
        with pytest.raises(ValueError, match="outside"):
            m.slice(0, 5)
