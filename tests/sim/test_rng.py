"""Seeded RNG tests: reproducibility and stream independence."""

import numpy as np
import pytest

from repro.sim import SeededRng


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = SeededRng(42).normal(size=10)
        b = SeededRng(42).normal(size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SeededRng(1).normal(size=10)
        b = SeededRng(2).normal(size=10)
        assert not np.array_equal(a, b)

    def test_fork_independent_of_consumption(self):
        # Forked stream output must not depend on how much the parent drew.
        r1 = SeededRng(7)
        r1.normal(size=100)
        child1 = r1.fork("worker")
        child2 = SeededRng(7).fork("worker")
        assert np.array_equal(child1.normal(size=5), child2.normal(size=5))

    def test_fork_names_distinct(self):
        root = SeededRng(7)
        a = root.fork("a").normal(size=5)
        b = root.fork("b").normal(size=5)
        assert not np.array_equal(a, b)


class TestHelpers:
    def test_integers_range(self):
        r = SeededRng(0)
        draws = {r.integers(0, 4) for _ in range(200)}
        assert draws == {0, 1, 2, 3}

    def test_choice(self):
        r = SeededRng(0)
        assert r.choice(["only"]) == "only"

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            SeededRng(0).choice([])

    def test_shuffle_is_permutation(self):
        r = SeededRng(3)
        xs = list(range(20))
        shuffled = r.shuffle(list(xs))
        assert sorted(shuffled) == xs

    def test_uniform_bounds(self):
        r = SeededRng(0)
        for _ in range(100):
            assert 2.0 <= r.uniform(2.0, 3.0) < 3.0

    def test_seed_type_checked(self):
        with pytest.raises(TypeError):
            SeededRng("42")
