"""Simulator engine tests: ordering, determinism, causality."""

import pytest

from repro.sim import Simulator
from repro.sim.engine import EmptyCalendar


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_fires_at_delay(self):
        sim = Simulator()
        sim.timeout(2.5)
        assert sim.run() == 2.5

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule_callback(1.0, lambda: fired.append(1))
        sim.schedule_callback(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_run_until_past_rejected(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=0.5)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_step_on_empty_calendar(self):
        with pytest.raises(EmptyCalendar):
            Simulator().step()


class TestOrdering:
    def test_fifo_within_same_time(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule_callback(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_time_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule_callback(3.0, lambda: order.append("c"))
        sim.schedule_callback(1.0, lambda: order.append("a"))
        sim.schedule_callback(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_causality_monotone_clock(self):
        sim = Simulator()
        stamps = []

        def chain(depth):
            stamps.append(sim.now)
            if depth:
                sim.schedule_callback(0.5, lambda: chain(depth - 1))

        chain(5)
        sim.run()
        assert stamps == sorted(stamps)


class TestCounters:
    def test_n_processed_and_pending(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.timeout(2.0)
        assert sim.n_pending == 2
        sim.step()
        assert sim.n_processed == 1
        assert sim.n_pending == 1

    def test_determinism_two_identical_runs(self):
        def build():
            sim = Simulator()
            log = []
            for i in range(50):
                sim.schedule_callback((i * 7919) % 13 * 0.1, lambda i=i: log.append(i))
            sim.run()
            return log

        assert build() == build()
