"""Tracer tests."""

from repro.sim import Tracer
from repro.sim.trace import NULL_TRACER, TraceRecord


class TestTracer:
    def test_emit_and_read(self):
        t = Tracer()
        t.emit(1.0, "optical.round", n_circuits=3)
        records = t.records()
        assert len(records) == 1
        assert records[0].time == 1.0
        assert records[0].payload["n_circuits"] == 3

    def test_category_filter_at_emit(self):
        t = Tracer(categories={"keep"})
        t.emit(0.0, "keep", a=1)
        t.emit(0.0, "drop", a=2)
        assert len(t) == 1

    def test_category_filter_at_read(self):
        t = Tracer()
        t.emit(0.0, "a")
        t.emit(0.0, "b")
        assert len(t.records("a")) == 1

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.emit(0.0, "x")
        assert len(t) == 0

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled

    def test_clear(self):
        t = Tracer()
        t.emit(0.0, "x")
        t.clear()
        assert len(t) == 0

    def test_record_str_format(self):
        r = TraceRecord(0.5, "cat", {"k": 1})
        assert "cat" in str(r) and "k=1" in str(r)

    def test_iteration(self):
        t = Tracer()
        t.emit(0.0, "a")
        t.emit(1.0, "b")
        assert [r.category for r in t] == ["a", "b"]
