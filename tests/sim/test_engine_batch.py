"""Batched drain (:meth:`Simulator.step_batch`) vs per-event stepping.

The batched core must be *order-invisible*: draining every event sharing
the head timestamp in one pass — including events enqueued mid-batch at
that same timestamp — executes in exactly the sequence repeated
``step()`` calls produce. These tests pin that equivalence (callback
order, urgent-priority interleaving, zero-delay chains), the batch-shape
bookkeeping, and byte-identical metrics snapshots between the two drain
styles on a seeded end-to-end run.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator, events
from repro.sim.engine import URGENT, EmptyCalendar


def _drain_order(drive):
    """Execution order of a canned calendar under ``drive(sim)``."""
    sim = Simulator()
    order = []
    for i, t in enumerate([2.0, 1.0, 1.0, 3.0, 1.0, 2.0]):
        sim.schedule_callback(t, lambda i=i: order.append(i))
    drive(sim)
    return order


class TestBatchOrderParity:
    def test_batch_matches_step_order(self):
        def by_steps(sim):
            while sim.n_pending:
                sim.step()

        def by_batches(sim):
            while sim.n_pending:
                sim.step_batch()

        assert _drain_order(by_batches) == _drain_order(by_steps)

    def test_batch_returns_timestamp_cohort_size(self):
        sim = Simulator()
        for t in (1.0, 1.0, 1.0, 2.0):
            sim.schedule_callback(t, lambda: None)
        assert sim.step_batch() == 3
        assert sim.now == 1.0
        assert sim.step_batch() == 1
        assert sim.now == 2.0

    def test_mid_batch_same_time_enqueue_joins_batch(self):
        """A zero-delay chain spawned inside a batch drains in the same
        batch, in heap order — exactly as repeated step() would."""
        sim = Simulator()
        order = []

        def chain():
            order.append("parent")
            sim.schedule_callback(0.0, lambda: order.append("child"))

        sim.schedule_callback(1.0, chain)
        sim.schedule_callback(1.0, lambda: order.append("sibling"))
        n = sim.step_batch()
        assert n == 3
        assert order == ["parent", "sibling", "child"]

    def test_mid_batch_urgent_enqueue_preempts(self):
        """An URGENT zero-delay event enqueued mid-batch runs before any
        remaining NORMAL event at the same timestamp."""
        sim = Simulator()
        order = []

        def spawn_urgent():
            order.append("first")
            urgent = sim.event("urgent")
            urgent.callbacks.append(lambda _e: order.append("urgent"))
            # There is no public urgent-band trigger; mark the event
            # triggered by hand and enqueue it in the URGENT band, the
            # way an engine-internal bookkeeping event would be.
            urgent._ok = True
            urgent._value = None
            urgent._state = events.TRIGGERED
            sim._enqueue(0.0, urgent, priority=URGENT)

        sim.schedule_callback(1.0, spawn_urgent)
        sim.schedule_callback(1.0, lambda: order.append("second"))
        sim.step_batch()
        assert order == ["first", "urgent", "second"]

    def test_empty_calendar_raises(self):
        with pytest.raises(EmptyCalendar):
            Simulator().step_batch()

    def test_run_until_unchanged_by_batching(self):
        sim = Simulator()
        fired = []
        sim.schedule_callback(1.0, lambda: fired.append(1))
        sim.schedule_callback(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0


class TestBatchObservability:
    def test_batch_counters(self):
        sim = Simulator()
        for t in (1.0, 1.0, 2.0):
            sim.schedule_callback(t, lambda: None)
        sim.run()
        assert sim.n_processed == 3
        assert sim.n_batches == 2
        assert sim.max_batch_events == 2

    def test_batch_metrics_emitted(self):
        metrics = MetricsRegistry(enabled=True)
        sim = Simulator(metrics=metrics)
        for t in (1.0, 1.0, 1.0):
            sim.schedule_callback(t, lambda: None)
        sim.run()
        snap = metrics.snapshot()
        assert snap.gauges["sim.batches"] == 1.0
        assert snap.gauges["sim.batch_max_events"] == 3.0

    def test_seeded_snapshot_identical_across_drain_styles(self):
        """End-to-end determinism: a seeded simulation produces the same
        processed-event count and final clock whether driven by run()
        (batched) or by repeated step() calls."""

        def build(sim):
            def chain(depth):
                if depth:
                    sim.schedule_callback(
                        0.5 * depth, lambda: chain(depth - 1)
                    )

            for d in (3, 2, 4):
                sim.schedule_callback(1.0, lambda d=d: chain(d))

        batched = Simulator()
        build(batched)
        batched.run()

        stepped = Simulator()
        build(stepped)
        while stepped.n_pending:
            stepped.step()

        assert batched.now == stepped.now
        assert batched.n_processed == stepped.n_processed
