"""Generator-process tests."""

import pytest

from repro.sim import Interrupted, Simulator


class TestBasicProcesses:
    def test_return_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return 42

        assert sim.run_process(proc()) == 42

    def test_yield_receives_event_value(self):
        sim = Simulator()

        def proc():
            got = yield sim.timeout(1.0, value="payload")
            return got

        assert sim.run_process(proc()) == "payload"

    def test_process_waits_on_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2.0)
            return "child-done"

        def parent():
            v = yield sim.process(child())
            return (v, sim.now)

        assert sim.run_process(parent()) == ("child-done", 2.0)

    def test_waiting_on_already_finished_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            return 5

        def parent(c):
            yield sim.timeout(3.0)
            v = yield c  # already processed
            return v

        c = sim.process(child())
        assert sim.run_process(parent(c)) == 5

    def test_exception_propagates_to_caller(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            raise ValueError("inside process")

        with pytest.raises(ValueError, match="inside process"):
            sim.run_process(proc())

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            raise KeyError("child failed")

        def parent():
            try:
                yield sim.process(child())
            except KeyError:
                return "handled"
            return "not handled"

        assert sim.run_process(parent()) == "handled"

    def test_yielding_non_event_fails(self):
        sim = Simulator()

        def proc():
            yield 42

        with pytest.raises(TypeError, match="must yield Event"):
            sim.run_process(proc())

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(TypeError, match="generator"):
            sim.process(lambda: None)


class TestInterrupt:
    def test_interrupt_raises_inside(self):
        sim = Simulator()
        log = []

        def victim():
            try:
                yield sim.timeout(10.0)
            except Interrupted as exc:
                log.append(exc.cause)
                return "interrupted"
            return "finished"

        def attacker(v):
            yield sim.timeout(1.0)
            v.interrupt(cause="preempted")

        v = sim.process(victim())
        sim.process(attacker(v))
        sim.run()
        assert v.value == "interrupted"
        assert log == ["preempted"]

    def test_interrupt_finished_process_rejected(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(0.1)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(RuntimeError):
            p.interrupt()


class TestDeadlockDetection:
    def test_run_process_reports_deadlock(self):
        sim = Simulator()

        def stuck():
            yield sim.event()  # nobody ever succeeds this

        with pytest.raises(RuntimeError, match="did not finish"):
            sim.run_process(stuck())
