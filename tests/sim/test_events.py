"""Event primitive tests."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator


class TestEventLifecycle:
    def test_pending_then_processed(self):
        sim = Simulator()
        e = sim.event()
        assert not e.triggered
        e.succeed("v")
        assert e.triggered and not e.processed
        sim.run()
        assert e.processed
        assert e.ok
        assert e.value == "v"

    def test_double_trigger_rejected(self):
        sim = Simulator()
        e = sim.event()
        e.succeed()
        with pytest.raises(RuntimeError):
            e.succeed()

    def test_value_before_trigger_rejected(self):
        sim = Simulator()
        with pytest.raises(RuntimeError):
            _ = sim.event().value

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_fail_carries_exception(self):
        sim = Simulator()
        e = sim.event()
        boom = RuntimeError("boom")
        e.fail(boom)
        sim.run()
        assert not e.ok
        assert e.value is boom

    def test_callbacks_run_once(self):
        sim = Simulator()
        e = sim.event()
        hits = []
        e.callbacks.append(lambda ev: hits.append(ev.value))
        e.succeed(7)
        sim.run()
        assert hits == [7]


class TestTimeout:
    def test_carries_value(self):
        sim = Simulator()
        t = sim.timeout(1.0, value="payload")
        sim.run()
        assert t.value == "payload"

    def test_zero_delay_ok(self):
        sim = Simulator()
        t = sim.timeout(0.0)
        sim.run()
        assert t.processed and sim.now == 0.0


class TestConditions:
    def test_all_of_waits_for_slowest(self):
        sim = Simulator()
        a = sim.timeout(1.0, "a")
        b = sim.timeout(3.0, "b")
        combined = AllOf(sim, [a, b])
        sim.run()
        assert combined.processed
        assert combined.value == ("a", "b")
        assert sim.now == 3.0

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        winner = {}
        a = sim.timeout(1.0, "fast")
        b = sim.timeout(3.0, "slow")
        combined = AnyOf(sim, [a, b])
        combined.callbacks.append(lambda e: winner.setdefault("t", sim.now))
        sim.run()
        assert combined.ok
        assert winner["t"] == 1.0

    def test_all_of_empty_is_immediate(self):
        sim = Simulator()
        combined = AllOf(sim, [])
        sim.run()
        assert combined.processed

    def test_all_of_propagates_failure(self):
        sim = Simulator()
        good = sim.timeout(1.0)
        bad = sim.event()
        bad.fail(ValueError("broken"), delay=0.5)
        combined = AllOf(sim, [good, bad])
        sim.run()
        assert combined.triggered and not combined.ok
        assert isinstance(combined.value, ValueError)

    def test_cross_simulator_rejected(self):
        sim1, sim2 = Simulator(), Simulator()
        e = sim2.timeout(1.0)
        with pytest.raises(ValueError):
            AllOf(sim1, [e])

    def test_all_of_over_already_processed_events(self):
        sim = Simulator()
        a = sim.timeout(1.0, "a")
        b = sim.timeout(2.0, "b")
        sim.run()  # both processed before the condition exists
        combined = AllOf(sim, [a, b])
        sim.run()
        assert combined.processed and combined.ok

    def test_all_of_mixed_processed_and_pending(self):
        sim = Simulator()
        done = sim.timeout(1.0, "early")
        sim.run()
        pending = sim.timeout(3.0, "late")
        combined = AllOf(sim, [done, pending])
        sim.run()
        assert combined.ok
        assert sim.now == 4.0

    def test_any_of_with_already_processed_winner(self):
        sim = Simulator()
        done = sim.timeout(0.5)
        sim.run()
        never = sim.event()  # would block forever
        combined = AnyOf(sim, [done, never])
        sim.run()
        assert combined.ok
