"""Resource/Store/Pipe tests."""

import pytest

from repro.sim import Pipe, Resource, Simulator, Store


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), 0)

    def test_grant_when_free(self):
        sim = Simulator()
        r = Resource(sim, 2)
        e = r.acquire()
        sim.run()
        assert e.processed
        assert r.in_use == 1
        assert r.available == 1

    def test_fifo_waiting(self):
        sim = Simulator()
        r = Resource(sim, 1)
        order = []

        def user(name, hold):
            yield r.acquire()
            order.append((name, sim.now))
            yield sim.timeout(hold)
            r.release()

        sim.process(user("a", 1.0))
        sim.process(user("b", 1.0))
        sim.process(user("c", 1.0))
        sim.run()
        assert [n for n, _ in order] == ["a", "b", "c"]
        assert [t for _, t in order] == [0.0, 1.0, 2.0]

    def test_release_without_acquire(self):
        r = Resource(Simulator(), 1)
        with pytest.raises(RuntimeError):
            r.release()

    def test_capacity_two_parallelism(self):
        sim = Simulator()
        r = Resource(sim, 2)
        done = []

        def user(name):
            yield r.acquire()
            yield sim.timeout(1.0)
            r.release()
            done.append((name, sim.now))

        for n in "abcd":
            sim.process(user(n))
        sim.run()
        # Two at a time: a,b at t=1; c,d at t=2.
        assert [t for _, t in done] == [1.0, 1.0, 2.0, 2.0]


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        s = Store(sim)
        s.put("x")
        e = s.get()
        sim.run()
        assert e.value == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        s = Store(sim)
        got = []

        def consumer():
            item = yield s.get()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(2.0)
            s.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 2.0)]

    def test_fifo_order(self):
        sim = Simulator()
        s = Store(sim)
        for i in range(5):
            s.put(i)
        got = []

        def consumer():
            for _ in range(5):
                got.append((yield s.get()))

        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_len(self):
        sim = Simulator()
        s = Store(sim)
        s.put(1)
        s.put(2)
        assert len(s) == 2


class TestPipe:
    def test_serialization_plus_latency(self):
        sim = Simulator()
        p = Pipe(sim, rate=100.0, latency=0.5)
        arrivals = []

        def consumer():
            yield p.get()
            arrivals.append(sim.now)

        p.put("m", size=200.0)  # 2s serialization
        sim.process(consumer())
        sim.run()
        assert arrivals == [2.5]

    def test_back_to_back_serialization(self):
        sim = Simulator()
        p = Pipe(sim, rate=100.0, latency=0.0)
        arrivals = []

        def consumer():
            for _ in range(2):
                yield p.get()
                arrivals.append(sim.now)

        p.put("a", size=100.0)
        p.put("b", size=100.0)  # queued behind a
        sim.process(consumer())
        sim.run()
        assert arrivals == [1.0, 2.0]

    def test_bytes_carried_accounting(self):
        sim = Simulator()
        p = Pipe(sim, rate=10.0)
        p.put("a", 30.0)
        p.put("b", 20.0)
        assert p.bytes_carried == 50.0

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Pipe(sim, rate=0.0)
        with pytest.raises(ValueError):
            Pipe(sim, rate=1.0, latency=-1.0)
        with pytest.raises(ValueError):
            Pipe(sim, rate=1.0).put("x", size=-1.0)
