"""Unit conversion tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.units import (
    GBPS,
    bits_to_bytes,
    bytes_per_second,
    bytes_to_bits,
    format_bytes,
    format_seconds,
    gbit_per_s,
    gbyte_per_s,
    mbyte,
    usec,
)


class TestRates:
    def test_gbps_constant(self):
        assert GBPS == 1e9 / 8

    def test_gbit_per_s(self):
        assert gbit_per_s(40) == 40e9 / 8  # 5 GB/s

    def test_gbyte_per_s(self):
        assert gbyte_per_s(40) == 40e9

    def test_calibrated_is_8x_strict(self):
        assert gbyte_per_s(40) == 8 * gbit_per_s(40)


class TestConversions:
    def test_bits_bytes_roundtrip_exact(self):
        assert bits_to_bytes(bytes_to_bits(123.0)) == 123.0

    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_bits_bytes_roundtrip_property(self, n):
        assert math.isclose(bits_to_bytes(bytes_to_bits(n)), n, rel_tol=1e-12, abs_tol=0)

    def test_mbyte(self):
        assert mbyte(552) == 552e6

    def test_usec(self):
        assert usec(25) == pytest.approx(25e-6, rel=1e-12)

    def test_bytes_per_second(self):
        assert bytes_per_second(100.0, 4.0) == 25.0

    def test_bytes_per_second_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            bytes_per_second(1.0, 0.0)


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, "0 B"), (999, "999 B"), (1000, "1 KB"), (552e6, "552 MB"), (1.5e9, "1.5 GB")],
    )
    def test_format_bytes(self, value, expected):
        assert format_bytes(value) == expected

    @pytest.mark.parametrize(
        "value,contains",
        [(0, "0 s"), (1.5, "1.5 s"), (0.025, "25 ms"), (25e-6, "25 us"), (497e-9, "497 ns")],
    )
    def test_format_seconds(self, value, contains):
        assert format_seconds(value) == contains

    def test_format_seconds_negative(self):
        assert "-25" in format_seconds(-25e-6)
