"""ASCII table renderer tests."""

import pytest

from repro.util.tables import AsciiTable


class TestAsciiTable:
    def test_render_alignment(self):
        t = AsciiTable(["algo", "steps"])
        t.add_row(["Ring", 2046])
        t.add_row(["WRHT", 3])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("algo")
        assert "-+-" in lines[1]
        # Numeric cells right-aligned, text left-aligned.
        assert lines[2].startswith("Ring")
        assert lines[2].rstrip().endswith("2046")
        assert lines[3].rstrip().endswith("3")

    def test_float_formatting(self):
        t = AsciiTable(["v"])
        t.add_row([0.123456789])
        assert "0.1235" in t.render()

    def test_row_width_mismatch(self):
        t = AsciiTable(["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            AsciiTable([])

    def test_n_rows(self):
        t = AsciiTable(["a"])
        assert t.n_rows == 0
        t.add_row([1])
        assert t.n_rows == 1

    def test_no_trailing_whitespace(self):
        t = AsciiTable(["name", "x"])
        t.add_row(["ab", 1])
        for line in t.render().splitlines():
            assert line == line.rstrip()
