"""Validation helper tests."""

import pytest

from repro.util.validation import (
    check_in_range,
    check_nonnegative,
    check_odd,
    check_positive,
    check_positive_int,
    check_power_of_two,
)


class TestCheckPositive:
    def test_accepts_and_returns(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -1e-9)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int("n", 7) == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("n", 3.0)

    def test_rejects_bool(self):
        # bool is an int subclass; a config with n_nodes=True is a bug.
        with pytest.raises(TypeError):
            check_positive_int("n", True)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.1, 0.0, 1.0)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("ok", [1, 2, 4, 1024])
    def test_accepts(self, ok):
        assert check_power_of_two("n", ok) == ok

    @pytest.mark.parametrize("bad", [3, 6, 1023])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_power_of_two("n", bad)


class TestCheckOdd:
    def test_accepts(self):
        assert check_odd("m", 129) == 129

    def test_rejects_even(self):
        with pytest.raises(ValueError):
            check_odd("m", 64)
