"""Grouped collectives and schedule remapping tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.grouped import (
    build_grouped_allreduce,
    remap_schedule,
    verify_grouped_allreduce,
)
from repro.collectives.registry import build_schedule
from repro.collectives.verify import verify_allreduce


class TestRemap:
    def test_identity_mapping(self):
        sched = build_schedule("ring", 6, 12)
        remapped = remap_schedule(sched, list(range(6)), 6)
        verify_allreduce(remapped)

    def test_strided_mapping_still_allreduces(self):
        sched = build_schedule("bt", 4, 8)
        remapped = remap_schedule(sched, [0, 4, 8, 12], 16)
        # Group-wise check: the 4 mapped nodes hold their group sum.
        remapped.meta["groups"] = ((0, 4, 8, 12),)
        verify_grouped_allreduce(remapped)

    def test_mapping_validation(self):
        sched = build_schedule("ring", 4, 8)
        with pytest.raises(ValueError, match="entries"):
            remap_schedule(sched, [0, 1], 8)
        with pytest.raises(ValueError, match="injective"):
            remap_schedule(sched, [0, 1, 1, 2], 8)
        with pytest.raises(ValueError, match="range"):
            remap_schedule(sched, [0, 1, 2, 9], 8)

    def test_structure_preserved(self):
        sched = build_schedule("wrht", 8, 16, n_wavelengths=4)
        remapped = remap_schedule(sched, [3, 5, 7, 9, 11, 13, 15, 1], 16)
        assert remapped.n_steps == sched.n_steps
        assert remapped.meta["mapping"] == (3, 5, 7, 9, 11, 13, 15, 1)


class TestGroupedAllreduce:
    def test_contiguous_groups(self):
        groups = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]
        sched = build_grouped_allreduce(groups, 16, 12, algorithm="ring")
        verify_grouped_allreduce(sched)
        assert sched.n_steps == 6  # one 4-rank ring all-reduce's steps

    def test_strided_groups(self):
        groups = [[0, 4, 8, 12], [1, 5, 9, 13], [2, 6, 10, 14]]
        sched = build_grouped_allreduce(
            groups, 12, 16, algorithm="wrht", n_wavelengths=4
        )
        verify_grouped_allreduce(sched)

    def test_bystanders_untouched(self):
        sched = build_grouped_allreduce([[0, 2], [5, 7]], 8, 10, algorithm="bt")
        verify_grouped_allreduce(sched)  # includes the bystander check

    def test_unequal_groups_rejected(self):
        with pytest.raises(ValueError, match="same size"):
            build_grouped_allreduce([[0, 1], [2, 3, 4]], 8, 8)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            build_grouped_allreduce([[0, 1], [1, 2]], 8, 8)

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            build_grouped_allreduce([], 8, 8)

    def test_verify_needs_groups_meta(self):
        sched = build_schedule("ring", 4, 8)
        with pytest.raises(ValueError, match="groups"):
            verify_grouped_allreduce(sched)

    def test_detects_cross_group_corruption(self):
        from repro.collectives.base import CommStep, Schedule, Transfer

        # A "grouped" schedule that leaks between groups must be rejected.
        step = CommStep((Transfer(0, 2, 0, 4, "sum"), Transfer(2, 0, 0, 4, "sum")))
        bad = Schedule("leaky", 4, 4, steps=[step], timing_profile=[(step, 1)])
        bad.meta["groups"] = ((0, 1), (2, 3))
        with pytest.raises(AssertionError):
            verify_grouped_allreduce(bad)

    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(["ring", "bt", "rd", "wrht"]),
        st.integers(2, 6),
        st.integers(1, 5),
        st.integers(1, 40),
    )
    def test_grouped_property(self, algo, group_size, n_groups, elems):
        n = group_size * n_groups + 3  # leave bystanders
        kwargs = {"n_wavelengths": 4} if algo == "wrht" else {}
        groups = [
            [g * group_size + i for i in range(group_size)]
            for g in range(n_groups)
        ]
        sched = build_grouped_allreduce(groups, elems, n, algorithm=algo, **kwargs)
        verify_grouped_allreduce(sched)
