"""WRHT schedule builder tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.wrht_schedule import build_wrht_schedule
from repro.collectives.verify import verify_allreduce
from repro.core.planner import plan_wrht
from repro.core.steps import wrht_steps


class TestWrhtSchedule:
    def test_paper_config_three_steps(self):
        sched = build_wrht_schedule(1024, 1024, n_wavelengths=64)
        assert sched.n_steps == 3
        stages = [s.stage for s in sched.iter_steps()]
        assert stages == ["reduce", "reduce", "broadcast"]

    def test_motivating_example_15_nodes_2_wavelengths(self):
        # Figure 2(b): 15 nodes, w=2 -> m=5, 3 steps (collect, rep
        # all-to-all, broadcast).
        sched = build_wrht_schedule(15, 15, n_wavelengths=2)
        assert sched.n_steps == 3
        plan = sched.meta["plan"]
        assert plan.m == 5
        assert plan.m_star == 3
        assert plan.alltoall

    def test_alltoall_step_structure(self):
        sched = build_wrht_schedule(15, 15, n_wavelengths=2)
        exchange = list(sched.iter_steps())[1]
        reps = {2, 7, 12}
        assert {t.src for t in exchange.transfers} == reps
        assert {t.dst for t in exchange.transfers} == reps
        assert len(exchange.transfers) == 3 * 2

    def test_without_alltoall_shortcut(self):
        # m=33, w=16: 32 reps survive; their all-to-all needs 128
        # wavelengths > 16, so the final reduce step is a plain collect and
        # the broadcast replays every level: 2L = 4 steps.
        tight = plan_wrht(1024, 16, m=33)
        assert not tight.alltoall
        sched = build_wrht_schedule(1024, 64, plan=tight)
        assert sched.n_steps == wrht_steps(1024, 33, 16) == 2 * tight.n_levels == 4

    def test_full_vector_transfers(self):
        sched = build_wrht_schedule(60, 33, n_wavelengths=4)
        for step in sched.iter_steps():
            for t in step.transfers:
                assert (t.lo, t.hi) == (0, 33)

    def test_plan_ring_mismatch_rejected(self):
        plan = plan_wrht(64, 8)
        with pytest.raises(ValueError, match="plan is for"):
            build_wrht_schedule(128, 10, plan=plan)

    def test_plan_attached_to_meta(self):
        sched = build_wrht_schedule(100, 10, n_wavelengths=8)
        assert sched.meta["plan"].n_nodes == 100

    def test_single_node(self):
        assert build_wrht_schedule(1, 10).n_steps == 0

    def test_theta_always_matches_plan(self):
        for n in (2, 9, 15, 64, 200, 1024):
            for w in (1, 2, 8, 64):
                sched = build_wrht_schedule(n, 8, n_wavelengths=w)
                assert sched.n_steps == sched.meta["plan"].theta, (n, w)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 80), st.integers(1, 32), st.integers(1, 100))
    def test_allreduce_property(self, n, w, elems):
        verify_allreduce(build_wrht_schedule(n, elems, n_wavelengths=w))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 60), st.integers(2, 20))
    def test_allreduce_property_forced_m(self, n, m):
        m = min(m, n)
        w = max(1, m // 2)
        verify_allreduce(build_wrht_schedule(n, 16, n_wavelengths=w, m=m))
