"""Binary-tree All-reduce builder tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.btree import build_bt_schedule
from repro.collectives.verify import verify_allreduce
from repro.core.steps import bt_steps


class TestBtSchedule:
    def test_step_count(self):
        for n in (2, 3, 5, 16, 100, 1024):
            assert build_bt_schedule(n, 8).n_steps == bt_steps(n)

    def test_full_vector_every_transfer(self):
        sched = build_bt_schedule(16, 100)
        for step in sched.iter_steps():
            for t in step.transfers:
                assert (t.lo, t.hi) == (0, 100)

    def test_reduce_targets_node_zero(self):
        sched = build_bt_schedule(16, 8)
        reduce_steps = [s for s in sched.iter_steps() if s.stage == "reduce"]
        # Last reduce step: the surviving half sends to node 0.
        last = reduce_steps[-1]
        assert len(last.transfers) == 1
        assert last.transfers[0].dst == 0

    def test_broadcast_mirrors_reduce(self):
        sched = build_bt_schedule(16, 8)
        steps = list(sched.iter_steps())
        k = len(steps) // 2
        for r, b in zip(steps[:k], reversed(steps[k:])):
            r_pairs = sorted((t.src, t.dst) for t in r.transfers)
            b_pairs = sorted((t.dst, t.src) for t in b.transfers)
            assert r_pairs == b_pairs

    def test_motivating_example_15_nodes_8_steps(self):
        # Figure 2(a): binary tree on 15 nodes takes 8 steps.
        assert build_bt_schedule(15, 4).n_steps == 8

    def test_non_power_of_two_steps_nonempty(self):
        for n in (3, 5, 9, 17, 33):
            for step in build_bt_schedule(n, 4).iter_steps():
                assert step.n_transfers >= 1

    def test_profile_exact(self):
        sched = build_bt_schedule(33, 10)
        assert sched.meta["profile_exact"]
        sched.validate_against_profile()

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 64), st.integers(1, 100))
    def test_allreduce_property(self, n, elems):
        verify_allreduce(build_bt_schedule(n, elems))
