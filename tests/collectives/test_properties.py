"""Cross-algorithm property-based tests.

The invariants every All-reduce schedule in the library must satisfy,
checked uniformly over random (algorithm, N, vector length) draws:

1. exact-sum postcondition on every node,
2. schedule step count equals the algorithm's closed form (where one
   exists exactly),
3. per-step conflict-freedom (no order-dependent writes),
4. conservation: reduce stages never shrink information — the final state
   is reproducible from a fresh run (determinism).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.base import Schedule
from repro.collectives.registry import build_schedule
from repro.collectives.verify import (
    check_step_conflicts,
    initial_buffers,
    run_schedule,
    verify_allreduce,
)
from repro.core.steps import (
    bt_steps,
    rd_steps,
    ring_steps,
    scring_steps,
    swing_steps,
    wrht_steps,
)

ALGORITHMS = ["ring", "bt", "rd", "hring", "wrht", "swing", "scring"]


def _build(algo: str, n: int, elems: int, **kwargs) -> Schedule:
    if algo == "hring":
        kwargs.setdefault("m", min(5, n))
    if algo == "wrht":
        kwargs.setdefault("n_wavelengths", 8)
    return build_schedule(algo, n, elems, materialize=True, **kwargs)


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(ALGORITHMS),
    st.integers(2, 48),
    st.integers(1, 150),
)
def test_allreduce_postcondition(algo, n, elems):
    verify_allreduce(_build(algo, n, elems))


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(ALGORITHMS), st.integers(2, 48))
def test_no_step_conflicts(algo, n):
    sched = _build(algo, n, 32)
    for step in sched.iter_steps():
        check_step_conflicts(step)


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 100))
def test_closed_form_step_counts(n):
    assert _build("ring", n, 8).n_steps == ring_steps(n)
    assert _build("bt", n, 8).n_steps == bt_steps(n)
    assert _build("rd", n, 8).n_steps == rd_steps(n)
    assert _build("wrht", n, 8).n_steps == wrht_steps(n, min(17, n), 8)
    assert _build("swing", n, 8).n_steps == swing_steps(n)
    assert _build("scring", n, 8).n_steps == scring_steps(n)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(ALGORITHMS), st.integers(2, 32), st.integers(1, 64))
def test_determinism(algo, n, elems):
    sched = _build(algo, n, elems)
    a = run_schedule(sched, initial_buffers(n, elems))
    b = run_schedule(sched, initial_buffers(n, elems))
    assert np.array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(ALGORITHMS), st.integers(2, 32))
def test_profile_step_totals_match_materialized(algo, n):
    sched = _build(algo, n, 64)
    assert sched.n_steps == len(list(sched.iter_steps()))


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(["bt", "rd", "wrht", "swing", "scring"]),
    st.integers(2, 32),
    st.integers(1, 50),
)
def test_exact_profiles_validate(algo, n, elems):
    sched = _build(algo, n, elems)
    if sched.meta.get("profile_exact"):
        sched.validate_against_profile()


# -- tentpole-specific closed-form bounds -------------------------------

@settings(max_examples=40, deadline=None)
@given(st.integers(2, 300))
def test_swing_step_bound(n):
    # Swing never exceeds RD's halving-doubling bound 2⌈log2 N⌉ (+2 fold),
    # and materialized schedules match the closed form exactly.
    assert swing_steps(n) <= 2 * ((n - 1).bit_length()) + 2
    assert swing_steps(n) == rd_steps(n, variant="halving_doubling")


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 300), st.integers(1, 200))
def test_scring_step_interpolation(n, pipeline):
    # The pipeline knob interpolates between half-of-Ring and the 2-step
    # early-termination limit, monotonically non-increasing in depth.
    steps = scring_steps(n, pipeline)
    assert 2 <= steps <= ring_steps(n) // 2 + 2
    assert steps >= scring_steps(n, pipeline + 1)
    if 2 * pipeline >= n - 1:
        assert steps == 2


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 48), st.integers(1, 6), st.integers(1, 100))
def test_scring_postcondition_across_pipeline_depths(n, pipeline, elems):
    sched = _build("scring", n, elems, pipeline=pipeline)
    assert sched.n_steps == scring_steps(n, pipeline)
    verify_allreduce(sched)
