"""Property test: the lowering profile faithfully compresses the schedule.

Backends price the compressed ``timing_profile`` (via
``Schedule.lowering_profile``), while the numerical verifier consumes the
materialized steps. This file pins the bridge between the two for every
builder:

- ``profile_exact`` builders (BT, DBTree, RD, WRHT, and Ring at divisible
  sizes): expanding the profile reproduces each materialized step's
  pattern key — identical (src, dst, size, op) multiset, hence identical
  per-step byte totals.
- Ring at non-divisible sizes: the uniform ``⌈d/N⌉`` representative keeps
  the exact (src, dst, op) pattern and is within one element per transfer.
- H-Ring: with uniform groups (``m | N``) the same one-element bound
  holds; with ragged groups the representative is a per-phase envelope —
  every materialized transfer edge appears in it.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.registry import build_schedule

ALGORITHMS = ["ring", "bt", "rd", "hring", "wrht", "dbtree"]


def _build(algo, n, elems):
    if algo == "hring":
        return build_schedule(algo, n, elems, m=min(5, n), materialize=True)
    if algo == "wrht":
        return build_schedule(algo, n, elems, n_wavelengths=8, materialize=True)
    return build_schedule(algo, n, elems, materialize=True)


def _expand(sched):
    """Materialize the profile: one representative per actual step."""
    out = []
    for step, count, key in sched.lowering_profile():
        assert key == step.pattern_key()
        out.extend([step] * count)
    return out


def _edges(step):
    return Counter((t.src, t.dst, t.op) for t in step.transfers)


def _assert_within_one_elem(rep, step):
    """Same (src, dst, op) pattern; per-transfer sizes off by ≤ 1 element."""
    assert _edges(rep) == _edges(step)
    by_edge_rep = sorted((t.src, t.dst, t.op, t.n_elems) for t in rep.transfers)
    by_edge_step = sorted((t.src, t.dst, t.op, t.n_elems) for t in step.transfers)
    for (*re_, rn), (*se, sn) in zip(by_edge_rep, by_edge_step):
        assert re_ == se
        assert abs(rn - sn) <= 1


@settings(max_examples=80, deadline=None)
@given(st.sampled_from(ALGORITHMS), st.integers(2, 40), st.integers(1, 120))
def test_profile_expands_to_materialized_steps(algo, n, elems):
    sched = _build(algo, n, elems)
    reps = _expand(sched)
    steps = list(sched.iter_steps())
    assert len(reps) == len(steps)
    for rep, step in zip(reps, steps):
        if sched.meta.get("profile_exact"):
            assert rep.pattern_key() == step.pattern_key()
        else:
            # Envelope guarantee: every transfer edge the step performs is
            # present in (and charged by) its representative.
            step_edges, rep_edges = _edges(step), _edges(rep)
            assert all(rep_edges[e] >= c for e, c in step_edges.items())


@settings(max_examples=50, deadline=None)
@given(st.integers(2, 40), st.integers(1, 120))
def test_ring_profile_within_one_element(n, elems):
    sched = build_schedule("ring", n, elems, materialize=True)
    for rep, step in zip(_expand(sched), sched.iter_steps()):
        _assert_within_one_elem(rep, step)
        assert abs(rep.total_elems() - step.total_elems()) <= rep.n_transfers


@settings(max_examples=50, deadline=None)
@given(st.integers(2, 6), st.integers(2, 6), st.integers(1, 120))
def test_hring_uniform_groups_within_one_element(n_groups, m, elems):
    sched = build_schedule("hring", n_groups * m, elems, m=m, materialize=True)
    for rep, step in zip(_expand(sched), sched.iter_steps()):
        _assert_within_one_elem(rep, step)


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(ALGORITHMS), st.integers(2, 40), st.integers(1, 120))
def test_exact_profiles_have_exact_byte_totals(algo, n, elems):
    sched = _build(algo, n, elems)
    if not sched.meta.get("profile_exact"):
        return
    sched.validate_against_profile()
    for rep, step in zip(_expand(sched), sched.iter_steps()):
        assert rep.total_elems() == step.total_elems()
