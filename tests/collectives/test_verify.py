"""Numerical executor and verifier tests."""

import numpy as np
import pytest

from repro.collectives.base import CommStep, Schedule, Transfer
from repro.collectives.verify import (
    ScheduleConflictError,
    check_step_conflicts,
    initial_buffers,
    run_schedule,
    verify_allreduce,
)


def _schedule(steps, n, elems):
    return Schedule("test", n, elems, steps=list(steps),
                    timing_profile=[(s, 1) for s in steps])


class TestConflictChecks:
    def test_two_copies_same_range_rejected(self):
        step = CommStep((Transfer(0, 2, 0, 5, "copy"), Transfer(1, 2, 0, 5, "copy")))
        with pytest.raises(ScheduleConflictError):
            check_step_conflicts(step)

    def test_copy_plus_sum_overlap_rejected(self):
        step = CommStep((Transfer(0, 2, 0, 5, "copy"), Transfer(1, 2, 3, 8, "sum")))
        with pytest.raises(ScheduleConflictError):
            check_step_conflicts(step)

    def test_many_sums_allowed(self):
        step = CommStep(tuple(Transfer(i, 9, 0, 5, "sum") for i in range(9)))
        check_step_conflicts(step)  # no raise

    def test_disjoint_copies_allowed(self):
        step = CommStep((Transfer(0, 2, 0, 5, "copy"), Transfer(1, 2, 5, 10, "copy")))
        check_step_conflicts(step)

    def test_empty_transfers_ignored(self):
        step = CommStep((Transfer(0, 2, 3, 3, "copy"), Transfer(1, 2, 0, 5, "copy")))
        check_step_conflicts(step)


class TestRunSchedule:
    def test_sum_semantics(self):
        step = CommStep((Transfer(0, 1, 0, 3, "sum"),))
        buffers = np.array([[1.0, 2.0, 3.0], [10.0, 20.0, 30.0]])
        run_schedule(_schedule([step], 2, 3), buffers)
        assert buffers[1].tolist() == [11.0, 22.0, 33.0]
        assert buffers[0].tolist() == [1.0, 2.0, 3.0]  # source unchanged

    def test_copy_semantics(self):
        step = CommStep((Transfer(0, 1, 1, 3, "copy"),))
        buffers = np.array([[1.0, 2.0, 3.0], [10.0, 20.0, 30.0]])
        run_schedule(_schedule([step], 2, 3), buffers)
        assert buffers[1].tolist() == [10.0, 2.0, 3.0]

    def test_symmetric_exchange_reads_pre_state(self):
        # Both nodes send their pre-step value — order must not matter.
        step = CommStep((Transfer(0, 1, 0, 1, "sum"), Transfer(1, 0, 0, 1, "sum")))
        buffers = np.array([[1.0], [2.0]])
        run_schedule(_schedule([step], 2, 1), buffers)
        assert buffers.tolist() == [[3.0], [3.0]]

    def test_shape_mismatch_rejected(self):
        step = CommStep((Transfer(0, 1, 0, 3, "sum"),))
        with pytest.raises(ValueError, match="shape"):
            run_schedule(_schedule([step], 2, 3), np.zeros((3, 3)))

    def test_conflict_detected_at_runtime(self):
        step = CommStep((Transfer(0, 2, 0, 2, "copy"), Transfer(1, 2, 0, 2, "copy")))
        with pytest.raises(ScheduleConflictError):
            run_schedule(_schedule([step], 3, 2), np.zeros((3, 2)))


class TestVerifyAllreduce:
    def test_initial_buffers_distinguish_cells(self):
        buffers = initial_buffers(4, 6)
        assert len(np.unique(buffers)) == 24

    def test_detects_broken_allreduce(self):
        # A schedule that only reduces to node 0 but never broadcasts.
        step = CommStep((Transfer(1, 0, 0, 4, "sum"),))
        broken = _schedule([step], 2, 4)
        with pytest.raises(AssertionError, match="node 1"):
            verify_allreduce(broken)

    def test_accepts_correct_schedule(self):
        steps = [
            CommStep((Transfer(1, 0, 0, 4, "sum"),)),
            CommStep((Transfer(0, 1, 0, 4, "copy"),)),
        ]
        verify_allreduce(_schedule(steps, 2, 4))
