"""Schedule rendering tests."""

from repro.collectives.base import CommStep, Transfer
from repro.collectives.registry import build_schedule
from repro.collectives.render import render_schedule, render_step


class TestRenderSchedule:
    def test_wrht_grid_shape(self):
        sched = build_schedule("wrht", 15, 15, n_wavelengths=2)
        out = render_schedule(sched)
        lines = out.splitlines()
        assert "wrht: 3 steps x 15 nodes" in lines[0]
        # 3 step rows + header + title + legend.
        assert len(lines) == 6

    def test_motivating_example_symbols(self):
        # 15 nodes, w=2: step 1 collects to reps 2, 7, 12 — reps receive,
        # everyone else sends.
        sched = build_schedule("wrht", 15, 15, n_wavelengths=2)
        out = render_schedule(sched)
        step1 = next(l for l in out.splitlines() if l.startswith("  1"))
        grid = step1.split()[-1]
        for rep in (2, 7, 12):
            assert grid[rep] == "v"
        assert grid.count("v") == 3
        assert set(grid) <= {">", "<", "v"}

    def test_exchange_marks_both(self):
        sched = build_schedule("rd", 8, 8)
        out = render_schedule(sched)
        step1 = next(l for l in out.splitlines() if l.startswith("  1"))
        assert set(step1.split()[-1]) == {"x"}  # everyone sends and receives

    def test_node_clipping(self):
        sched = build_schedule("ring", 128, 128)
        out = render_schedule(sched, max_nodes=16)
        assert "showing first 16 nodes" in out

    def test_step_clipping(self):
        sched = build_schedule("ring", 32, 32)
        out = render_schedule(sched, max_steps=5)
        assert "more steps" in out

    def test_legend_present(self):
        sched = build_schedule("bt", 4, 4)
        assert "legend:" in render_schedule(sched)


class TestRenderStep:
    def test_lists_transfers(self):
        step = CommStep((Transfer(0, 1, 0, 10, "sum"), Transfer(2, 3, 5, 10, "copy")))
        out = render_step(step)
        assert "0 ->     1" in out
        assert "[5, 10)" in out and "copy" in out

    def test_clips_long_steps(self):
        step = CommStep(tuple(Transfer(i, i + 1, 0, 4) for i in range(0, 100, 2)))
        out = render_step(step, max_transfers=10)
        assert "40 more" in out
