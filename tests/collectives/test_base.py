"""Schedule data-model tests."""

import pytest

from repro.collectives.base import (
    CommStep,
    Schedule,
    Transfer,
    compress_steps,
    singleton_schedule,
)


def _step(pairs, size=10, op="sum"):
    return CommStep(tuple(Transfer(a, b, 0, size, op) for a, b in pairs))


class TestTransfer:
    def test_self_transfer_rejected(self):
        with pytest.raises(ValueError):
            Transfer(1, 1, 0, 10)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            Transfer(0, 1, 5, 3)
        with pytest.raises(ValueError):
            Transfer(0, 1, -1, 3)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            Transfer(0, 1, 0, 10, "avg")

    def test_n_elems(self):
        assert Transfer(0, 1, 5, 12).n_elems == 7

    def test_empty_range_allowed(self):
        assert Transfer(0, 1, 3, 3).n_elems == 0


class TestCommStep:
    def test_needs_transfers(self):
        with pytest.raises(ValueError):
            CommStep(())

    def test_pattern_key_ignores_positions(self):
        a = CommStep((Transfer(0, 1, 0, 10, "sum"),))
        b = CommStep((Transfer(0, 1, 90, 100, "sum"),))
        assert a.pattern_key() == b.pattern_key()

    def test_pattern_key_sees_sizes(self):
        a = CommStep((Transfer(0, 1, 0, 10, "sum"),))
        b = CommStep((Transfer(0, 1, 0, 11, "sum"),))
        assert a.pattern_key() != b.pattern_key()

    def test_pattern_key_sees_ops(self):
        a = CommStep((Transfer(0, 1, 0, 10, "sum"),))
        b = CommStep((Transfer(0, 1, 0, 10, "copy"),))
        assert a.pattern_key() != b.pattern_key()

    def test_pattern_key_order_independent(self):
        a = CommStep((Transfer(0, 1, 0, 10), Transfer(2, 3, 0, 10)))
        b = CommStep((Transfer(2, 3, 0, 10), Transfer(0, 1, 0, 10)))
        assert a.pattern_key() == b.pattern_key()

    def test_total_elems(self):
        assert _step([(0, 1), (2, 3)], size=7).total_elems() == 14


class TestCompressSteps:
    def test_runs_collapse(self):
        s = _step([(0, 1)])
        profile = compress_steps([s, s, s])
        assert len(profile) == 1
        assert profile[0][1] == 3

    def test_distinct_steps_kept(self):
        a, b = _step([(0, 1)]), _step([(1, 2)])
        profile = compress_steps([a, a, b])
        assert [count for _, count in profile] == [2, 1]

    def test_non_adjacent_runs_not_merged(self):
        a, b = _step([(0, 1)]), _step([(1, 2)])
        profile = compress_steps([a, b, a])
        assert [count for _, count in profile] == [1, 1, 1]


class TestSchedule:
    def test_n_steps_from_profile(self):
        s = _step([(0, 1)])
        sched = Schedule("x", 2, 10, steps=[s, s], timing_profile=[(s, 2)])
        assert sched.n_steps == 2

    def test_validate_against_profile_detects_count_mismatch(self):
        s = _step([(0, 1)])
        sched = Schedule("x", 2, 10, steps=[s], timing_profile=[(s, 2)])
        with pytest.raises(AssertionError, match="materialized steps"):
            sched.validate_against_profile()

    def test_validate_against_profile_detects_pattern_mismatch(self):
        a, b = _step([(0, 1)]), _step([(1, 0)])
        sched = Schedule("x", 2, 10, steps=[a], timing_profile=[(b, 1)])
        with pytest.raises(AssertionError, match="pattern"):
            sched.validate_against_profile()

    def test_iter_steps_requires_materialization(self):
        s = _step([(0, 1)])
        sched = Schedule("x", 2, 10, steps=None, timing_profile=[(s, 1)])
        with pytest.raises(RuntimeError, match="materialize"):
            list(sched.iter_steps())

    def test_empty_profile_rejected_for_multinode(self):
        with pytest.raises(ValueError):
            Schedule("x", 2, 10, steps=[], timing_profile=[])

    def test_singleton(self):
        sched = singleton_schedule("ring", 100)
        assert sched.n_steps == 0
        assert sched.n_nodes == 1
