"""Ring All-reduce builder tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.ring import build_ring_schedule, chunk_bounds
from repro.collectives.verify import verify_allreduce
from repro.core.steps import ring_steps


class TestChunkBounds:
    def test_divisible(self):
        assert chunk_bounds(12, 4) == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_remainder_goes_to_first_chunks(self):
        assert chunk_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_chunks_than_elems(self):
        bounds = chunk_bounds(2, 4)
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_covers_exactly(self):
        for total, n in [(100, 7), (5, 5), (3, 8)]:
            bounds = chunk_bounds(total, n)
            assert bounds[0][0] == 0 and bounds[-1][1] == total
            for (_, h1), (l2, _) in zip(bounds, bounds[1:]):
                assert h1 == l2


class TestRingSchedule:
    def test_step_count(self):
        for n in (2, 3, 17, 64):
            assert build_ring_schedule(n, 64).n_steps == ring_steps(n)

    def test_all_transfers_are_neighbor_hops(self):
        sched = build_ring_schedule(8, 16)
        for step in sched.iter_steps():
            for t in step.transfers:
                assert t.dst == (t.src + 1) % 8

    def test_chunk_size_is_d_over_n(self):
        sched = build_ring_schedule(8, 64)
        for step in sched.iter_steps():
            for t in step.transfers:
                assert t.n_elems == 8

    def test_stage_split(self):
        sched = build_ring_schedule(4, 8)
        stages = [s.stage for s in sched.iter_steps()]
        assert stages == ["reduce"] * 3 + ["broadcast"] * 3

    def test_profile_compresses_to_two_entries(self):
        sched = build_ring_schedule(512, 512 * 4, materialize=False)
        assert len(sched.timing_profile) == 2
        assert [c for _, c in sched.timing_profile] == [511, 511]

    def test_profile_matches_materialized_when_divisible(self):
        sched = build_ring_schedule(8, 64, materialize=True)
        assert sched.meta["profile_exact"]
        sched.validate_against_profile()

    def test_profile_marked_approximate_when_not_divisible(self):
        sched = build_ring_schedule(8, 63)
        assert not sched.meta["profile_exact"]

    def test_auto_materialization_cutoff(self):
        assert build_ring_schedule(128, 128).steps is not None
        assert build_ring_schedule(129, 129).steps is None

    def test_single_node(self):
        assert build_ring_schedule(1, 10).n_steps == 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 40), st.integers(1, 200))
    def test_allreduce_property(self, n, elems):
        verify_allreduce(build_ring_schedule(n, elems, materialize=True))
