"""Recursive-doubling All-reduce builder tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.rd import build_rd_schedule
from repro.collectives.verify import verify_allreduce
from repro.core.steps import rd_steps


class TestRdSchedule:
    def test_step_count_matches_formula(self):
        for n in (2, 3, 4, 5, 8, 13, 16, 100, 1024):
            assert build_rd_schedule(n, 8).n_steps == rd_steps(n)

    def test_power_of_two_all_exchanges(self):
        sched = build_rd_schedule(8, 10)
        for step in sched.iter_steps():
            assert step.stage == "exchange"
            # Symmetric: for every a->b there is b->a.
            pairs = {(t.src, t.dst) for t in step.transfers}
            assert all((b, a) in pairs for a, b in pairs)

    def test_power_of_two_full_participation(self):
        sched = build_rd_schedule(16, 10)
        for step in sched.iter_steps():
            assert step.n_transfers == 16  # everyone sends every step

    def test_non_power_of_two_fixups(self):
        sched = build_rd_schedule(6, 10)
        steps = list(sched.iter_steps())
        assert steps[0].stage == "reduce"  # fold-in
        assert steps[-1].stage == "broadcast"  # copy-back
        # 6 = 4 + 2 extras: pre-step folds 2 odd nodes.
        assert steps[0].n_transfers == 2
        assert steps[-1].n_transfers == 2

    def test_full_vector_transfers(self):
        sched = build_rd_schedule(8, 77)
        for step in sched.iter_steps():
            for t in step.transfers:
                assert t.n_elems == 77

    def test_meta_power_of_two_flag(self):
        assert build_rd_schedule(16, 4).meta["power_of_two"]
        assert not build_rd_schedule(17, 4).meta["power_of_two"]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 70), st.integers(1, 100))
    def test_allreduce_property(self, n, elems):
        verify_allreduce(build_rd_schedule(n, elems))
