"""H-Ring All-reduce builder tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.hring import build_hring_schedule
from repro.collectives.verify import verify_allreduce
from repro.core.steps import hring_steps


class TestHRingSchedule:
    def test_table1_step_count_1024_m5(self):
        sched = build_hring_schedule(1024, 1024, m=5, materialize=False)
        assert sched.n_steps == 417 == hring_steps(1024, 5, 64)

    def test_divisible_structure(self):
        # N=20, m=5: 4 groups; 2(m-1)=8 intra + 2(G-1)=6 inter + 1 bcast.
        sched = build_hring_schedule(20, 40, m=5)
        assert sched.n_steps == 15
        stages = [s.stage for s in sched.iter_steps()]
        assert stages.count("reduce") == 4 + 3  # intra RS + inter RS
        assert stages[-1] == "broadcast"

    def test_meta(self):
        sched = build_hring_schedule(20, 40, m=5)
        assert sched.meta["n_groups"] == 4
        assert sched.meta["m"] == 5

    def test_single_group_no_inter_phase(self):
        # All nodes in one group: plain intra ring all-reduce, no broadcast.
        sched = build_hring_schedule(5, 10, m=5)
        assert sched.n_steps == 2 * 4

    def test_m1_degenerates_to_leader_ring(self):
        sched = build_hring_schedule(6, 12, m=1)
        assert sched.n_steps == 2 * 5  # pure inter-group ring over 6 leaders
        verify_allreduce(sched)

    def test_group_exceeding_nodes_rejected(self):
        with pytest.raises(ValueError):
            build_hring_schedule(4, 8, m=5)

    def test_uneven_last_group(self):
        sched = build_hring_schedule(13, 26, m=5)  # groups 5,5,3
        verify_allreduce(sched)

    def test_schedule_steps_close_to_closed_form(self):
        # The executable schedule and the Table 1 closed form may differ by
        # the ceil terms for non-divisible N; they must stay within 2 steps.
        for n, m in [(20, 5), (100, 5), (128, 4), (60, 7), (1024, 5)]:
            sched = build_hring_schedule(n, n, m=m, materialize=False)
            assert abs(sched.n_steps - hring_steps(n, m, max(m, 64))) <= 2, (n, m)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 50), st.integers(1, 10), st.integers(1, 120))
    def test_allreduce_property(self, n, m, elems):
        m = min(m, n)
        verify_allreduce(build_hring_schedule(n, elems, m=m, materialize=True))
