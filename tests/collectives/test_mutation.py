"""Mutation tests: the verifier must *fail* on corrupted schedules.

A verification oracle that accepts everything is worse than none. These
tests take correct schedules, apply single-fault mutations (drop a
transfer, flip an op, redirect a destination, shrink a range) and assert
that :func:`verify_allreduce` rejects the result — demonstrating the
exact-sum postcondition actually has teeth.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.collectives.base import CommStep, Schedule, Transfer
from repro.collectives.registry import build_schedule
from repro.collectives.verify import ScheduleConflictError, verify_allreduce

ALGORITHMS = ["ring", "bt", "rd", "hring", "wrht", "swing", "scring"]


def _build(algo: str, n: int = 12, elems: int = 24) -> Schedule:
    kwargs = {}
    if algo == "hring":
        kwargs["m"] = 4
    if algo == "wrht":
        kwargs["n_wavelengths"] = 3
    if algo == "scring":
        kwargs["pipeline"] = 2
    return build_schedule(algo, n, elems, materialize=True, **kwargs)


def _mutate(schedule: Schedule, step_idx: int, kind: str) -> Schedule:
    steps = list(schedule.iter_steps())
    step = steps[step_idx]
    transfers = list(step.transfers)
    victim = max(range(len(transfers)), key=lambda i: transfers[i].n_elems)
    t = transfers[victim]
    if t.n_elems == 0:
        return schedule  # nothing to corrupt meaningfully
    if kind == "drop":
        del transfers[victim]
        if not transfers:
            return schedule
    elif kind == "flip_op":
        transfers[victim] = Transfer(
            t.src, t.dst, t.lo, t.hi, "copy" if t.op == "sum" else "sum"
        )
    elif kind == "redirect":
        # Corrupt the *source*: the original sender's contribution vanishes
        # and another node's is double-counted — unlike redirecting the
        # destination, this can never be repaired downstream (a redirected
        # dst on a chain algorithm still feeds the same accumulation path).
        new_src = (t.src + 1) % schedule.n_nodes
        if new_src == t.dst:
            new_src = (new_src + 1) % schedule.n_nodes
        transfers[victim] = Transfer(new_src, t.dst, t.lo, t.hi, t.op)
    elif kind == "shrink":
        if t.n_elems < 2:
            return schedule
        transfers[victim] = Transfer(t.src, t.dst, t.lo, t.hi - 1, t.op)
    else:  # pragma: no cover
        raise ValueError(kind)
    steps[step_idx] = CommStep(tuple(transfers), stage=step.stage, level=step.level)
    return Schedule(
        algorithm=schedule.algorithm + "-mutated",
        n_nodes=schedule.n_nodes,
        total_elems=schedule.total_elems,
        steps=steps,
        timing_profile=[(s, 1) for s in steps],
    )


class TestSingleFaultDetection:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    @pytest.mark.parametrize("kind", ["drop", "flip_op", "redirect", "shrink"])
    def test_first_step_mutations_detected(self, algo, kind):
        original = _build(algo)
        mutated = _mutate(original, 0, kind)
        if mutated is original:
            pytest.skip("mutation was a no-op for this schedule")
        with pytest.raises((AssertionError, ScheduleConflictError)):
            verify_allreduce(mutated)

    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_last_step_drop_detected(self, algo):
        original = _build(algo)
        last = original.n_steps - 1
        mutated = _mutate(original, last, "drop")
        if mutated is original:
            pytest.skip("mutation was a no-op")
        with pytest.raises((AssertionError, ScheduleConflictError)):
            verify_allreduce(mutated)


class TestExhaustiveFaultCensus:
    """Every (algorithm, step, mutation-kind) single fault, exhaustively.

    Not every fault *should* be detected, because the schedules carry
    genuine replication: broadcast stages leave many nodes with identical
    data (so swapping a copy's source to another finished node is a
    semantic no-op), H-Ring's final leader broadcast masks late all-gather
    copies, and H-Ring's intra-group all-reduce leaves whole groups holding
    identical sums (so a source swap within the group is invisible even on
    a ``sum`` transfer). The census asserts the precise invariant instead:
    **dropping, op-flipping or truncating a ``sum`` transfer is always
    detected** — a lost, doubled-as-copy or truncated contribution can
    never self-repair — source swaps are only maskable by replication, and
    overall detection stays above 80%.
    """

    def test_census(self):
        total = detected = 0
        undetected: list[tuple] = []
        for algo in ALGORITHMS:
            original = _build(algo)
            for step_idx in range(original.n_steps):
                for kind in ("drop", "flip_op", "redirect", "shrink"):
                    victim_op = _victim_op(original, step_idx)
                    mutated = _mutate(original, step_idx, kind)
                    if mutated is original:
                        continue
                    total += 1
                    try:
                        verify_allreduce(mutated)
                    except (AssertionError, ScheduleConflictError):
                        detected += 1
                    else:
                        undetected.append((algo, step_idx, kind, victim_op))
        # Surviving mutations are either on redundant copies, or are
        # source swaps masked by data replication.
        for algo, step_idx, kind, victim_op in undetected:
            assert victim_op == "copy" or kind == "redirect", (
                algo, step_idx, kind, victim_op,
            )
        assert detected / total > 0.8, (detected, total, undetected)


def _victim_op(schedule: Schedule, step_idx: int) -> str:
    steps = list(schedule.iter_steps())
    transfers = steps[step_idx].transfers
    victim = max(range(len(transfers)), key=lambda i: transfers[i].n_elems)
    return transfers[victim].op


class TestHRingRedundancy:
    """A reproduction finding: H-Ring's leader broadcast masks faults in
    intra-group all-gather copies whose only consumer would have been a
    non-leader member — those transfers are redundant work."""

    def test_dropping_redundant_ag_copy_is_harmless(self):
        original = _build("hring")  # N=12, m=4: steps 0-5 intra, 6-9 inter
        # Step 3 is the first intra all-gather step; its copies into
        # non-leader members get overwritten by the final broadcast.
        mutated = _mutate(original, 3, "drop")
        assert mutated is not original
        verify_allreduce(mutated)  # still a correct All-reduce

    def test_dropping_intra_rs_is_fatal(self):
        original = _build("hring")
        mutated = _mutate(original, 0, "drop")  # reduce-scatter feeds leaders
        with pytest.raises(AssertionError):
            verify_allreduce(mutated)

    def test_dropping_final_broadcast_is_fatal(self):
        original = _build("hring")
        mutated = _mutate(original, original.n_steps - 1, "drop")
        with pytest.raises(AssertionError):
            verify_allreduce(mutated)
