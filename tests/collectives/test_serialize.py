"""Schedule serialization tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.registry import build_schedule
from repro.collectives.serialize import (
    dump_schedule,
    load_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.collectives.verify import verify_allreduce
from repro.optical import OpticalRingNetwork, OpticalSystemConfig


def _build(algo, n=16, elems=32):
    kwargs = {"materialize": True}
    if algo == "wrht":
        kwargs["n_wavelengths"] = 4
    return build_schedule(algo, n, elems, **kwargs)


class TestRoundTrip:
    @pytest.mark.parametrize("algo", ["ring", "bt", "dbtree", "rd", "hring", "wrht"])
    def test_structure_survives(self, algo):
        original = _build(algo)
        restored = schedule_from_dict(schedule_to_dict(original))
        assert restored.algorithm == original.algorithm
        assert restored.n_steps == original.n_steps
        for a, b in zip(original.iter_steps(), restored.iter_steps()):
            assert a.transfers == b.transfers
            assert a.stage == b.stage

    @pytest.mark.parametrize("algo", ["ring", "wrht"])
    def test_restored_schedule_still_allreduces(self, algo):
        restored = schedule_from_dict(schedule_to_dict(_build(algo)))
        verify_allreduce(restored)

    def test_restored_schedule_prices_identically(self):
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=16, n_wavelengths=4))
        original = _build("wrht")
        restored = schedule_from_dict(schedule_to_dict(original))
        assert net.execute(restored).total_time == net.execute(original).total_time

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "sched.json")
        original = _build("bt")
        dump_schedule(original, path)
        restored = load_schedule(path)
        assert restored.n_steps == original.n_steps
        verify_allreduce(restored)

    def test_rich_meta_dropped_with_marker(self):
        data = schedule_to_dict(_build("wrht"))
        assert "plan" in data["meta"]["_dropped_meta"]
        assert "plan" not in data["meta"]

    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(["ring", "bt", "dbtree", "rd", "wrht"]),
        st.integers(2, 32),
        st.integers(1, 80),
    )
    def test_round_trip_property(self, algo, n, elems):
        original = _build(algo, n, elems)
        restored = schedule_from_dict(schedule_to_dict(original))
        verify_allreduce(restored)
        assert [c for _, c in restored.timing_profile] == [
            c for _, c in original.timing_profile
        ]


class TestValidation:
    def test_unmaterialized_rejected(self):
        sched = build_schedule("ring", 256, 256, materialize=False)
        with pytest.raises(ValueError, match="materialized"):
            schedule_to_dict(sched)

    def test_version_checked(self):
        data = schedule_to_dict(_build("ring"))
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            schedule_from_dict(data)

    def test_profile_count_mismatch_rejected(self):
        data = schedule_to_dict(_build("ring"))
        data["profile_counts"] = [1]
        with pytest.raises(ValueError, match="counts"):
            schedule_from_dict(data)
