"""Double-binary-tree All-reduce tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.btree import build_bt_schedule
from repro.collectives.dbtree import build_dbtree_schedule
from repro.collectives.verify import verify_allreduce
from repro.core.steps import bt_steps


class TestDbtreeSchedule:
    def test_step_count_equals_bt(self):
        for n in (2, 5, 16, 100, 1024):
            assert build_dbtree_schedule(n, 64).n_steps == bt_steps(n)

    def test_per_transfer_payload_halved(self):
        bt = build_bt_schedule(64, 1000)
        db = build_dbtree_schedule(64, 1000)
        max_bt = max(t.n_elems for s in bt.iter_steps() for t in s.transfers)
        max_db = max(t.n_elems for s in db.iter_steps() for t in s.transfers)
        assert max_db == max_bt // 2

    def test_two_roots_are_distinct(self):
        db = build_dbtree_schedule(16, 100)
        last_reduce = [s for s in db.iter_steps() if s.stage == "reduce"][-1]
        roots = {t.dst for t in last_reduce.transfers}
        assert len(roots) == 2  # tree A's root and tree B's rotated root

    def test_vector_halves_are_disjoint(self):
        db = build_dbtree_schedule(16, 100)
        for step in db.iter_steps():
            for t in step.transfers:
                assert (t.lo, t.hi) in ((0, 50), (50, 100))

    def test_odd_total_elems(self):
        sched = build_dbtree_schedule(8, 7)
        verify_allreduce(sched)

    def test_single_element_vector(self):
        # One half is empty; the schedule must still all-reduce the other.
        verify_allreduce(build_dbtree_schedule(8, 1))

    def test_halves_bt_time_on_the_optical_ring(self):
        from repro.optical import OpticalRingNetwork, OpticalSystemConfig

        cfg = OpticalSystemConfig(n_nodes=64, n_wavelengths=64)
        net = OpticalRingNetwork(cfg)
        elems = 10_000_000
        t_bt = net.execute(build_bt_schedule(64, elems)).total_time
        t_db = net.execute(build_dbtree_schedule(64, elems)).total_time
        overhead = 12 * cfg.mrr_reconfig_delay  # same steps on both
        assert (t_db - overhead) == pytest.approx((t_bt - overhead) / 2, rel=1e-6)

    def test_registry(self):
        from repro.collectives.registry import available_algorithms, build_schedule

        assert "dbtree" in available_algorithms()
        assert build_schedule("DBTree", 8, 16).algorithm == "dbtree"

    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 80), st.integers(1, 150))
    def test_allreduce_property(self, n, elems):
        sched = build_dbtree_schedule(n, elems)
        verify_allreduce(sched)
        assert sched.n_steps == bt_steps(n)
