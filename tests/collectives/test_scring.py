"""Short-circuiting-ring (SCRing) schedule tests (arXiv 2510.03491 idea)."""

import pytest

from repro.collectives.degraded import build_shrunk_schedule
from repro.collectives.registry import build_schedule
from repro.collectives.scring import build_scring_schedule, scring_arcs
from repro.collectives.serialize import schedule_from_dict, schedule_to_dict
from repro.collectives.verify import verify_allreduce
from repro.core.steps import ring_steps, scring_arc_count, scring_steps


class TestArcs:
    @pytest.mark.parametrize("n", [2, 3, 8, 15, 16, 33])
    @pytest.mark.parametrize("pipeline", [1, 2, 4, 100])
    def test_arcs_partition_all_offsets(self, n, pipeline):
        arcs = scring_arcs(n, pipeline)
        assert len(arcs) == scring_arc_count(n, pipeline)
        flat = sorted(offset for arc in arcs for offset in arc)
        assert flat == list(range(1, n))

    def test_arc_heads_are_ring_nearest(self):
        # Each arc is ordered far-end → head; the head (last entry) must be
        # at least as close to the owner (ring distance) as the far end.
        for n in (8, 16, 33):
            for arc in scring_arcs(n, 2):
                head, far = arc[-1], arc[0]
                dist = lambda off: min(off, n - off)  # noqa: E731
                assert dist(head) <= dist(far)

    def test_balanced_lengths(self):
        for n in (16, 33, 64):
            lengths = {len(a) for a in scring_arcs(n, 3)}
            assert max(lengths) - min(lengths) <= 1


class TestSchedule:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 15, 16, 32, 64])
    @pytest.mark.parametrize("pipeline", [1, 2, 4])
    def test_postcondition_and_closed_form(self, n, pipeline):
        sched = build_scring_schedule(n, 64, materialize=True, pipeline=pipeline)
        assert sched.n_steps == scring_steps(n, pipeline)
        verify_allreduce(sched)

    def test_singleton(self):
        assert build_scring_schedule(1, 8).n_steps == 0

    def test_default_depth_halves_ring(self):
        for n in (16, 33, 64):
            assert scring_steps(n, 1) <= ring_steps(n) // 2 + 2

    def test_deep_pipeline_reaches_two_steps(self):
        for n in (4, 16, 33):
            sched = build_scring_schedule(n, 64, materialize=True, pipeline=n)
            assert sched.n_steps == 2
            verify_allreduce(sched)

    def test_meta_tags(self):
        sched = build_scring_schedule(16, 64, materialize=True, pipeline=3)
        assert sched.meta["pipeline"] == 3
        assert sched.meta["arcs"] == 6
        assert sched.meta["power_of_two"] is True
        assert sched.meta["profile_exact"] is True

    def test_materialized_profile_validates(self):
        for n in (8, 15, 24):
            build_scring_schedule(n, 48, materialize=True).validate_against_profile()

    def test_synthetic_profile_keeps_step_count(self):
        for n, pipeline in ((256, 1), (1024, 8)):
            sched = build_scring_schedule(n, n * 10, materialize=False, pipeline=pipeline)
            assert sched.n_steps == scring_steps(n, pipeline)

    def test_registry_spellings(self):
        assert build_schedule("scring", 8, 16).algorithm == "scring"
        assert build_schedule("SCRing", 8, 16).algorithm == "scring"

    def test_degenerate_total_elems(self):
        verify_allreduce(build_scring_schedule(16, 3, materialize=True))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            build_scring_schedule(0, 8)
        with pytest.raises(ValueError):
            build_scring_schedule(8, 8, pipeline=0)


class TestDegraded:
    def test_shrunk_schedule_keeps_pipeline(self):
        survivors = tuple(i for i in range(16) if i != 5)
        sched = build_shrunk_schedule("scring", 16, 64, survivors, pipeline=3)
        assert sched.meta["participants"] == survivors
        assert sched.meta["pipeline"] == 3
        assert sched.n_steps == scring_steps(15, 3)
        touched = {
            node
            for step in sched.iter_steps()
            for t in step.transfers
            for node in (t.src, t.dst)
        }
        assert touched <= set(survivors)


class TestSerialization:
    def test_round_trip_preserves_knobs(self):
        original = build_scring_schedule(15, 48, materialize=True, pipeline=2)
        restored = schedule_from_dict(schedule_to_dict(original))
        verify_allreduce(restored)
        assert restored.meta["pipeline"] == 2
        assert restored.meta["arcs"] == original.meta["arcs"]
