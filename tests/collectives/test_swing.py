"""Swing All-reduce schedule tests (arXiv 2401.09356 construction)."""

import pytest

from repro.collectives.degraded import build_shrunk_schedule
from repro.collectives.registry import build_schedule
from repro.collectives.serialize import schedule_from_dict, schedule_to_dict
from repro.collectives.swing import (
    build_swing_schedule,
    swing_distance,
    swing_peer,
)
from repro.collectives.verify import verify_allreduce
from repro.core.steps import swing_steps


class TestPeerFunction:
    def test_distance_sequence(self):
        # ρ(s) = (1 − (−2)^{s+1})/3: 1, −1, 3, −5, 11, −21, ...
        assert [swing_distance(s) for s in range(6)] == [1, -1, 3, -5, 11, -21]

    @pytest.mark.parametrize("p", [2, 4, 8, 16, 32, 64])
    def test_peer_is_involution_and_parity_flipping(self, p):
        for s in range(p.bit_length() - 1):
            for rank in range(p):
                peer = swing_peer(rank, s, p)
                assert peer != rank
                assert peer % 2 != rank % 2  # even↔odd pairing
                assert swing_peer(peer, s, p) == rank

    @pytest.mark.parametrize("p", [4, 8, 16, 32])
    def test_each_rank_meets_distinct_peers(self, p):
        k = p.bit_length() - 1
        for rank in range(p):
            peers = {swing_peer(rank, s, p) for s in range(k)}
            assert len(peers) == k


class TestSchedule:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 15, 16, 31, 32, 64, 100])
    def test_postcondition_and_closed_form(self, n):
        sched = build_swing_schedule(n, 64, materialize=True)
        assert sched.n_steps == swing_steps(n)
        verify_allreduce(sched)

    def test_singleton(self):
        assert build_swing_schedule(1, 8).n_steps == 0

    def test_meta_tags(self):
        pow2 = build_swing_schedule(16, 64, materialize=True)
        assert pow2.meta["power_of_two"] is True
        assert pow2.meta["profile_exact"] is True
        odd = build_swing_schedule(15, 64, materialize=True)
        assert odd.meta["power_of_two"] is False

    def test_materialized_profile_validates(self):
        for n in (8, 15, 24):
            build_swing_schedule(n, 50, materialize=True).validate_against_profile()

    def test_synthetic_profile_keeps_step_count(self):
        for n in (256, 1000, 1024):
            sched = build_swing_schedule(n, 10_000, materialize=False)
            assert sched.n_steps == swing_steps(n)
            assert sched.meta["profile_exact"] is False

    def test_registry_spellings(self):
        assert build_schedule("swing", 8, 16).algorithm == "swing"
        assert build_schedule("Swing", 8, 16).algorithm == "swing"

    def test_degenerate_total_elems(self):
        # Fewer elements than ranks: zero-size chunks are legal, the sum
        # must still land everywhere.
        verify_allreduce(build_swing_schedule(16, 3, materialize=True))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            build_swing_schedule(0, 8)
        with pytest.raises(ValueError):
            build_swing_schedule(8, 0)


class TestDegraded:
    def test_shrunk_schedule_covers_survivors(self):
        survivors = (0, 1, 2, 4, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15)
        sched = build_shrunk_schedule("swing", 16, 64, survivors)
        assert sched.meta["participants"] == survivors
        assert sched.n_steps == swing_steps(len(survivors))
        touched = {
            node
            for step in sched.iter_steps()
            for t in step.transfers
            for node in (t.src, t.dst)
        }
        assert touched <= set(survivors)


class TestSerialization:
    def test_round_trip(self):
        original = build_swing_schedule(15, 48, materialize=True)
        restored = schedule_from_dict(schedule_to_dict(original))
        verify_allreduce(restored)
        assert restored.meta["power_of_two"] is False
        assert restored.meta["profile_exact"] is True

    def test_dropped_meta_marker_is_idempotent(self):
        sched = build_shrunk_schedule("swing", 16, 64, tuple(range(1, 16)))
        once = schedule_to_dict(sched)
        # participants/mapping are flat int tuples — they must survive as
        # JSON lists, not be dropped.
        assert once["meta"]["participants"] == list(range(1, 16))
        twice = schedule_to_dict(schedule_from_dict(once))
        assert once["meta"].get("_dropped_meta", []) == twice["meta"].get(
            "_dropped_meta", []
        )
