"""Algorithm registry tests."""

import pytest

from repro.collectives.registry import available_algorithms, build_schedule


class TestRegistry:
    def test_all_registered(self):
        assert available_algorithms() == [
            "bt", "dbtree", "hring", "rd", "ring", "wrht",
        ]

    def test_display_names_accepted(self):
        for name in ("Ring", "H-Ring", "BT", "DBTree", "RD", "WRHT"):
            sched = build_schedule(name, 4, 8)
            assert sched.n_nodes == 4

    def test_kwargs_forwarded(self):
        sched = build_schedule("wrht", 64, 8, n_wavelengths=4)
        assert sched.meta["plan"].n_wavelengths == 4
        sched = build_schedule("hring", 20, 8, m=4)
        assert sched.meta["m"] == 4

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            build_schedule("allgatherv", 4, 8)
