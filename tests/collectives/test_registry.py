"""Algorithm registry tests."""

import pytest

from repro.collectives.registry import (
    DISPLAY_NAMES,
    accepted_spellings,
    available_algorithms,
    build_schedule,
)


class TestRegistry:
    def test_all_registered(self):
        assert available_algorithms() == [
            "bt", "dbtree", "hring", "rd", "ring", "scring", "swing", "wrht",
        ]

    def test_display_name_parity(self):
        assert set(DISPLAY_NAMES) == set(available_algorithms())

    def test_display_names_accepted(self):
        for name in (
            "Ring", "H-Ring", "BT", "DBTree", "RD", "WRHT", "Swing", "SCRing"
        ):
            sched = build_schedule(name, 4, 8)
            assert sched.n_nodes == 4

    def test_round_trip_every_algorithm(self):
        # Canonical name, display name, and their case variants all resolve
        # to the same builder.
        for key in available_algorithms():
            display = DISPLAY_NAMES[key]
            for spelling in (key, key.upper(), display, display.lower()):
                sched = build_schedule(spelling, 4, 8)
                assert sched.algorithm == key, (spelling, sched.algorithm)

    def test_accepted_spellings_cover_both_namespaces(self):
        spellings = accepted_spellings()
        assert "swing" in spellings and "scring" in spellings
        assert "h-ring" in spellings  # lowercased display name

    def test_kwargs_forwarded(self):
        sched = build_schedule("wrht", 64, 8, n_wavelengths=4)
        assert sched.meta["plan"].n_wavelengths == 4
        sched = build_schedule("hring", 20, 8, m=4)
        assert sched.meta["m"] == 4
        sched = build_schedule("scring", 16, 32, pipeline=3)
        assert sched.meta["pipeline"] == 3

    def test_unknown_rejected_with_value_error(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            build_schedule("allgatherv", 4, 8)

    def test_near_miss_spelling_rejected(self):
        with pytest.raises(ValueError, match="accepted spellings"):
            build_schedule("w-r-h-t", 4, 8)

    def test_non_string_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            build_schedule(None, 4, 8)
