"""All-to-all exchange step tests."""

import numpy as np
import pytest

from repro.collectives.alltoall import build_alltoall_step
from repro.collectives.base import Schedule
from repro.collectives.verify import run_schedule


class TestAlltoallStep:
    def test_pair_count(self):
        step = build_alltoall_step([1, 5, 9], 10)
        assert step.n_transfers == 6

    def test_all_pairs_present(self):
        nodes = [0, 3, 7, 11]
        step = build_alltoall_step(nodes, 10)
        pairs = {(t.src, t.dst) for t in step.transfers}
        assert pairs == {(a, b) for a in nodes for b in nodes if a != b}

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            build_alltoall_step([3], 10)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            build_alltoall_step([1, 1, 2], 10)

    def test_exchange_computes_sum_everywhere(self):
        nodes = [0, 1, 2, 3]
        step = build_alltoall_step(nodes, 4)
        sched = Schedule("a2a", 4, 4, steps=[step], timing_profile=[(step, 1)])
        buffers = np.arange(16, dtype=float).reshape(4, 4)
        expected = buffers.sum(axis=0)
        run_schedule(sched, buffers)
        for row in buffers:
            assert np.array_equal(row, expected)
