"""Rabenseifner halving-doubling RD variant tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.rd import build_rd_schedule
from repro.collectives.verify import verify_allreduce
from repro.core.steps import rd_steps


class TestHalvingDoubling:
    def test_step_count_power_of_two(self):
        sched = build_rd_schedule(16, 160, variant="halving_doubling")
        assert sched.n_steps == 8 == rd_steps(16, "halving_doubling")

    def test_step_count_non_power(self):
        sched = build_rd_schedule(13, 160, variant="halving_doubling")
        assert sched.n_steps == rd_steps(13, "halving_doubling") == 8

    def test_payload_halves_in_reduce_scatter(self):
        sched = build_rd_schedule(16, 1600, variant="halving_doubling")
        rs = [s for s in sched.iter_steps() if s.stage == "reduce"]
        sizes = [max(t.n_elems for t in s.transfers) for s in rs]
        assert sizes == [800, 400, 200, 100]

    def test_total_traffic_is_rabenseifner_bound(self):
        # Each node moves 2·d·(1 − 1/P) bytes — the large-message optimum.
        sched = build_rd_schedule(16, 1600, variant="halving_doubling")
        per_node: dict[int, int] = {}
        for step in sched.iter_steps():
            for t in step.transfers:
                per_node[t.src] = per_node.get(t.src, 0) + t.n_elems
        assert set(per_node.values()) == {2 * 1600 * 15 // 16}

    def test_much_less_traffic_than_full_vector_variant(self):
        def traffic(variant):
            sched = build_rd_schedule(64, 6400, variant=variant)
            return sum(
                t.n_elems for s in sched.iter_steps() for t in s.transfers
            )

        assert traffic("halving_doubling") < traffic("doubling") / 2

    def test_meta_records_variant(self):
        sched = build_rd_schedule(8, 10, variant="halving_doubling")
        assert sched.meta["variant"] == "halving_doubling"
        assert build_rd_schedule(8, 10).meta["variant"] == "doubling"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            build_rd_schedule(8, 10, variant="quartering")
        with pytest.raises(ValueError, match="variant"):
            rd_steps(8, "quartering")

    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 80), st.integers(1, 200))
    def test_allreduce_property(self, n, elems):
        sched = build_rd_schedule(n, elems, variant="halving_doubling")
        verify_allreduce(sched)
        assert sched.n_steps == rd_steps(n, "halving_doubling")
