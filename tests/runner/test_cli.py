"""CLI tests (parser wiring and command output)."""

import pytest

from repro.runner.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("table1", "fig4", "fig5", "fig6", "fig7", "plan", "verify", "all"):
            args = parser.parse_args([cmd] if cmd != "verify" else [cmd, "ring"])
            assert callable(args.fn)


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "2046" in out and "Ring" in out and "WRHT" in out

    def test_table1_custom_size(self, capsys):
        assert main(["table1", "--nodes", "256", "--wavelengths", "16"]) == 0
        assert "510" in capsys.readouterr().out

    def test_plan(self, capsys):
        assert main(["plan", "--nodes", "1024", "--wavelengths", "64"]) == 0
        out = capsys.readouterr().out
        assert "m=129" in out and "θ=3" in out

    def test_plan_with_phy(self, capsys):
        assert main(["plan", "--phy"]) == 0

    def test_plan_forced_group_size(self, capsys):
        assert main(["plan", "--group-size", "17"]) == 0
        assert "m=17" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["ring", "bt", "rd", "hring", "wrht"])
    def test_verify(self, algo, capsys):
        assert main(["verify", algo, "--nodes", "16"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "normalized" in out

    def test_fig6_summary(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "WRHT vs Ring" in out and "avg reduction" in out

    def test_show(self, capsys):
        assert main(["show", "wrht", "--nodes", "15", "--wavelengths", "2"]) == 0
        out = capsys.readouterr().out
        assert "3 steps x 15 nodes" in out
        assert "legend:" in out

    def test_show_other_algorithms(self, capsys):
        for algo in ("ring", "bt", "rd", "hring"):
            assert main(["show", algo, "--nodes", "8"]) == 0

    def test_report(self, tmp_path, capsys):
        path = str(tmp_path / "OUT.md")
        assert main(["report", "--output", path]) == 0
        text = open(path).read()
        assert "Table 1" in text and "fig7" in text
        assert "wrote" in capsys.readouterr().out


class TestBackendFlag:
    def test_choices_come_from_registry(self):
        from repro.backend import registry

        parser = build_parser()
        args = parser.parse_args(["fig5", "--backend", "analytic"])
        assert args.backend == "analytic"
        for name in registry.available():
            parser.parse_args(["fig5", "--backend", name])

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--backend", "quantum"])

    def test_fig5_analytic_matches_default(self, capsys):
        # Analytical mode already prices through the analytic backend, so
        # forcing it must reproduce the default output verbatim.
        assert main(["fig5"]) == 0
        default = capsys.readouterr().out
        assert main(["fig5", "--backend", "analytic"]) == 0
        assert capsys.readouterr().out == default

    def test_report_notes_backend_override(self, tmp_path):
        path = str(tmp_path / "OUT.md")
        assert main(["report", "--output", path, "--backend", "analytic"]) == 0
        assert "Backend override: analytic." in open(path).read()
