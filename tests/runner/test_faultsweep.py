"""Fault-scenario sweep tests (availability/overhead records)."""

import pytest

from repro.core.planner import plan_wrht
from repro.runner.faultsweep import (
    FAULT_BACKENDS,
    FaultScenarioResult,
    default_fault_scenarios,
    run_fault_scenario,
    run_fault_sweep,
)

N, W, ELEMS = 16, 8, 10_000


class TestScenarios:
    def test_default_scenarios_cover_every_fault_kind(self):
        scenarios = default_fault_scenarios(N, W)
        assert set(scenarios) == {
            "dead-wavelength", "dead-representative", "stuck-mrr",
            "cut-fiber", "laser-droop", "compound",
        }

    def test_dropped_node_is_a_representative(self):
        scenarios = default_fault_scenarios(N, W)
        rep = plan_wrht(N, W).levels[0].groups[0].representative
        dead = scenarios["dead-representative"].dead_nodes
        assert dead == frozenset({rep})


class TestRunScenario:
    @pytest.mark.parametrize("backend", FAULT_BACKENDS)
    def test_dead_wavelength_cell(self, backend):
        scenarios = default_fault_scenarios(N, W)
        cell = run_fault_scenario(
            "dead-wavelength", scenarios["dead-wavelength"],
            n_nodes=N, n_wavelengths=W, total_elems=ELEMS, backend=backend,
        )
        assert isinstance(cell, FaultScenarioResult)
        assert cell.n_errors == 0
        assert cell.degraded_time >= cell.healthy_time > 0
        assert 0 < cell.availability <= 1.0
        assert cell.slowdown_pct >= 0

    def test_unknown_backend_rejected(self):
        scenarios = default_fault_scenarios(N, W)
        with pytest.raises(ValueError, match="backend"):
            run_fault_scenario(
                "dead-wavelength", scenarios["dead-wavelength"],
                n_nodes=N, n_wavelengths=W, backend="electrical",
            )


class TestRunSweep:
    def test_full_grid_verifies_clean(self):
        cells = run_fault_sweep(
            n_nodes=N, n_wavelengths=W, total_elems=ELEMS
        )
        assert len(cells) == 6 * len(FAULT_BACKENDS)
        assert all(c.n_errors == 0 for c in cells)
        compound = [c for c in cells if c.scenario == "compound"]
        assert all(c.n_survivors == N - 1 for c in compound)

    def test_grid_order_is_scenario_major(self):
        cells = run_fault_sweep(
            scenarios={
                k: v
                for k, v in default_fault_scenarios(N, W).items()
                if k in ("dead-wavelength", "compound")
            },
            n_nodes=N, n_wavelengths=W, total_elems=ELEMS,
        )
        assert [(c.scenario, c.backend) for c in cells] == [
            ("dead-wavelength", "optical"), ("dead-wavelength", "analytic"),
            ("compound", "optical"), ("compound", "analytic"),
        ]
