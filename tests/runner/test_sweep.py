"""Sweep helper tests."""

import pytest

from repro.runner.sweep import sweep


class TestSweep:
    def test_cartesian_product(self):
        results = sweep(lambda a, b: a * b, {"a": [1, 2], "b": [10, 20]})
        assert results == {(1, 10): 10, (1, 20): 20, (2, 10): 20, (2, 20): 40}

    def test_key_order_follows_mapping(self):
        results = sweep(lambda x, y: (x, y), {"x": [1], "y": [2]})
        assert list(results) == [(1, 2)]

    def test_single_parameter(self):
        assert sweep(lambda n: n + 1, {"n": [0, 1]}) == {(0,): 1, (1,): 2}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sweep(lambda: None, {})
