"""Sweep helper tests: serial semantics, process-pool parity, error capture."""

import os
import pickle

import pytest

from repro.runner.sweep import SweepCombinationError, SweepFailure, sweep


def _product(a, b):
    """Module-level so the process-pool tests can pickle it."""
    return a * b


def _fragile(a, b):
    """Fails on one specific combination; the rest succeed."""
    if a == 2 and b == 10:
        raise ValueError("bad cell")
    return a * b


def _kill_worker(a, b):
    """Kills its worker process on the first combination in product order.

    ``os._exit`` bypasses every exception handler, so the pool breaks
    instead of the worker capturing a failure — the pool-level path.
    """
    if a == 1 and b == 10:
        os._exit(1)
    return a * b


def _unpicklable(a, b):
    """Succeeds worker-side, but the result cannot pickle back."""
    return lambda: a * b


class TestSweep:
    def test_cartesian_product(self):
        results = sweep(lambda a, b: a * b, {"a": [1, 2], "b": [10, 20]})
        assert results == {(1, 10): 10, (1, 20): 20, (2, 10): 20, (2, 20): 40}

    def test_key_order_follows_mapping(self):
        results = sweep(lambda x, y: (x, y), {"x": [1], "y": [2]})
        assert list(results) == [(1, 2)]

    def test_single_parameter(self):
        assert sweep(lambda n: n + 1, {"n": [0, 1]}) == {(0,): 1, (1,): 2}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sweep(lambda: None, {})

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError):
            sweep(lambda n: n, {"n": [1]}, on_error="ignore")


class TestParallelSweep:
    PARAMS = {"a": [1, 2, 3], "b": [10, 20]}

    def test_workers_match_serial_results_and_order(self):
        serial = sweep(_product, self.PARAMS)
        parallel = sweep(_product, self.PARAMS, workers=2)
        assert parallel == serial
        assert list(parallel) == list(serial)  # product order preserved

    def test_chunk_size_one_still_deterministic(self):
        parallel = sweep(_product, self.PARAMS, workers=2, chunk_size=1)
        assert parallel == sweep(_product, self.PARAMS)

    def test_workers_one_runs_serially(self):
        # Lambdas don't pickle; workers<=1 must stay in-process.
        assert sweep(lambda n: n, {"n": [5]}, workers=1) == {(5,): 5}

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            sweep(_product, self.PARAMS, workers=2, chunk_size=0)


class TestErrorHandling:
    PARAMS = {"a": [1, 2, 3], "b": [10, 20]}

    def test_serial_raise_propagates(self):
        with pytest.raises(ValueError):
            sweep(_fragile, self.PARAMS)

    def test_parallel_raise_names_the_combination(self):
        with pytest.raises(SweepCombinationError) as exc_info:
            sweep(_fragile, self.PARAMS, workers=2)
        assert exc_info.value.params == {"a": 2, "b": 10}
        assert "ValueError" in exc_info.value.error

    @pytest.mark.parametrize("workers", [None, 2])
    def test_capture_isolates_the_failing_combo(self, workers):
        results = sweep(_fragile, self.PARAMS, workers=workers, on_error="capture")
        failure = results[(2, 10)]
        assert isinstance(failure, SweepFailure)
        assert failure.params == {"a": 2, "b": 10}
        assert "bad cell" in failure.traceback
        assert not failure  # falsy, so `if result:` filters failures
        good = {k: v for k, v in results.items() if k != (2, 10)}
        assert good == {k: v for k, v in sweep(_product, self.PARAMS).items()
                        if k != (2, 10)}


class TestPoolLevelFailure:
    """A whole chunk dying at pool level (killed worker, unpicklable
    result) must keep the product-order contract, not hang or KeyError."""

    PARAMS = {"a": [1, 2, 3], "b": [10, 20]}

    def test_killed_worker_capture_fills_every_slot(self):
        results = sweep(
            _kill_worker, self.PARAMS, workers=2, on_error="capture"
        )
        import itertools

        combos = list(itertools.product(self.PARAMS["a"], self.PARAMS["b"]))
        assert list(results) == combos  # every slot, product order
        # The chunk whose worker died (and every chunk the broken pool
        # refuses afterwards) carries per-slot failures with the right
        # params; chunks that finished before the breakage keep their
        # values. Either way no slot may be missing.
        failures = 0
        for (a, b), payload in results.items():
            if isinstance(payload, SweepFailure):
                failures += 1
                assert payload.params == {"a": a, "b": b}
                assert not payload
            else:
                assert payload == a * b
        assert isinstance(results[(1, 10)], SweepFailure)
        assert failures >= 1

    def test_killed_worker_raise_names_first_combination(self):
        with pytest.raises(SweepCombinationError) as exc_info:
            sweep(_kill_worker, self.PARAMS, workers=2)
        # The pool cannot say which combo of the chunk killed the worker;
        # the error is pinned to the chunk's first combination in product
        # order, which is also the sweep's first combination here.
        assert exc_info.value.params == {"a": 1, "b": 10}
        assert exc_info.value.__cause__ is not None

    def test_unpicklable_result_capture(self):
        results = sweep(
            _unpicklable, self.PARAMS, workers=2, chunk_size=1,
            on_error="capture",
        )
        assert len(results) == 6
        for (a, b), payload in results.items():
            assert isinstance(payload, SweepFailure)
            assert payload.params == {"a": a, "b": b}

    def test_unpicklable_result_raise(self):
        with pytest.raises(SweepCombinationError) as exc_info:
            sweep(_unpicklable, self.PARAMS, workers=2, chunk_size=1)
        assert exc_info.value.params == {"a": 1, "b": 10}


class TestFailurePickling:
    """Failure payloads cross process boundaries; they must round-trip."""

    PARAMS = {"a": [1, 2, 3], "b": [10, 20]}

    def test_sweep_failure_round_trips(self):
        failure = SweepFailure(
            params={"a": 2, "b": 10},
            error="ValueError('bad cell')",
            traceback="Traceback (most recent call last): ...",
        )
        back = pickle.loads(pickle.dumps(failure))
        assert back == failure
        assert not back  # falsiness survives too

    def test_combination_error_round_trips(self):
        err = SweepCombinationError(
            {"a": 2, "b": 10}, "ValueError('bad cell')", "worker traceback"
        )
        back = pickle.loads(pickle.dumps(err))
        assert type(back) is SweepCombinationError
        assert back.params == {"a": 2, "b": 10}
        assert back.error == "ValueError('bad cell')"
        assert back.traceback == "worker traceback"
        assert str(back) == str(err)

    def test_captured_worker_failure_round_trips(self):
        # End to end: the worker built this SweepFailure in another process
        # already; it must survive a further pickle hop intact.
        results = sweep(_fragile, self.PARAMS, workers=2, on_error="capture")
        failure = results[(2, 10)]
        back = pickle.loads(pickle.dumps(failure))
        assert back == failure
        assert back.params == {"a": 2, "b": 10}
        assert "bad cell" in back.traceback

    def test_raised_worker_error_round_trips(self):
        with pytest.raises(SweepCombinationError) as exc_info:
            sweep(_fragile, self.PARAMS, workers=2)
        back = pickle.loads(pickle.dumps(exc_info.value))
        assert back.params == exc_info.value.params
        assert back.traceback == exc_info.value.traceback
