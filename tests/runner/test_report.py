"""Report container tests."""

import pytest

from repro.runner.report import ExperimentResult, percent_reduction


def _result():
    r = ExperimentResult(
        name="demo", mode="analytical", interpretation="calibrated",
        x_label="nodes", x_values=[2, 4],
        workloads=["A", "B"],
    )
    r.series[("A", "Ring")] = [10.0, 20.0]
    r.series[("A", "WRHT")] = [5.0, 5.0]
    r.series[("B", "Ring")] = [100.0, 200.0]
    r.series[("B", "WRHT")] = [50.0, 50.0]
    return r


class TestPercentReduction:
    def test_basic(self):
        assert percent_reduction([10.0], [5.0]) == 50.0

    def test_mean_over_cells(self):
        assert percent_reduction([10.0, 100.0], [5.0, 25.0]) == pytest.approx(62.5)

    def test_negative_when_slower(self):
        assert percent_reduction([10.0], [20.0]) == -100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percent_reduction([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            percent_reduction([], [])
        with pytest.raises(ValueError):
            percent_reduction([0.0], [1.0])


class TestExperimentResult:
    def test_cell_lookup(self):
        assert _result().cell("A", "Ring", 4) == 20.0

    def test_cells_row_major(self):
        assert _result().cells("Ring") == [10.0, 20.0, 100.0, 200.0]

    def test_reduction_vs(self):
        # (0.5 + 0.75 + 0.5 + 0.75) / 4 = 62.5%.
        assert _result().reduction_vs("Ring") == pytest.approx(62.5)

    def test_algorithms_order(self):
        assert _result().algorithms() == ["Ring", "WRHT"]

    def test_normalized(self):
        norm = _result().normalized("A", "WRHT", 2)
        assert norm[("A", "Ring")] == [2.0, 4.0]

    def test_normalized_bad_reference(self):
        r = _result()
        r.series[("A", "WRHT")] = [0.0, 1.0]
        with pytest.raises(ValueError):
            r.normalized("A", "WRHT", 2)

    def test_table_and_render(self):
        out = _result().render()
        assert "demo" in out and "-- A --" in out and "Ring" in out
