"""Results-document generator tests."""

import pytest

from repro.runner.results import (
    PAPER_REDUCTIONS,
    PAPER_TABLE1,
    _markdown_table,
    generate_report,
    write_report,
)


class TestMarkdownTable:
    def test_structure(self):
        out = _markdown_table(["a", "b"], [[1, 2.5], ["x", 3]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 | 2.5 |" in lines
        assert "| x | 3 |" in lines


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report()

    def test_contains_every_experiment(self, report):
        for section in ("Table 1", "fig4", "fig5", "fig6", "fig7"):
            assert section in report

    def test_contains_paper_anchors(self, report):
        for name, steps in PAPER_TABLE1.items():
            assert f"| {name} | {steps} | {steps} |" in report

    def test_contains_reduction_comparisons(self, report):
        for reductions in PAPER_REDUCTIONS.values():
            for baseline, target, _ in reductions:
                assert f"{target} vs {baseline}" in report

    def test_contains_all_workloads(self, report):
        for workload in ("BEiT-L", "VGG16", "AlexNet", "ResNet50"):
            assert workload in report

    def test_write_report_round_trips(self, tmp_path, report):
        path = tmp_path / "RESULTS.md"
        text = write_report(str(path))
        assert path.read_text() == text
        assert "Table 1" in text
