"""Experiment definition tests.

Full paper-scale analytical runs plus reduced-scale simulated runs (kept
small so the suite stays fast; the benches run paper scale). The headline
assertions encode the paper's qualitative results — who wins where.
"""

import pytest

from repro.dnn.workload import DnnWorkload
from repro.runner.experiments import run_fig4, run_fig5, run_fig6, run_fig7, run_table1

SMALL = (DnnWorkload("tiny", 200_000), DnnWorkload("small", 1_000_000))


class TestTable1:
    def test_paper_anchor(self):
        assert run_table1() == {
            "Ring": 2046, "H-Ring": 417, "BT": 20, "RD": 10, "WRHT": 3,
        }

    def test_other_configuration(self):
        counts = run_table1(n_nodes=256, n_wavelengths=16)
        assert counts["Ring"] == 510
        assert counts["WRHT"] == 3  # m=33: ceil(log33 256)=2 levels, a2a fits


class TestFig4:
    def test_analytical_paper_scale(self):
        r = run_fig4()
        # Monotone non-increasing in m, flattening at the end (Sec 5.3).
        for wl in r.workloads:
            times = r.series[(wl, "WRHT")]
            assert times == sorted(times, reverse=True)
            assert times[2] == times[3]  # m=65 and m=129 both reach 3 steps

    def test_normalization_reference(self):
        r = run_fig4()
        norm = r.normalized("ResNet50", "WRHT", 129)
        assert norm[("ResNet50", "WRHT")][-1] == 1.0

    def test_simulated_mode_agrees(self):
        # w=16 leaves the final all-to-all 2x wavelength slack, so the
        # constructive RWA fits every step in one round and the simulated
        # mode must reproduce the closed form exactly.
        a = run_fig4(mode="analytical", workloads=SMALL, n_nodes=128,
                     group_sizes=(5, 9, 17), n_wavelengths=16)
        s = run_fig4(mode="simulated", workloads=SMALL, n_nodes=128,
                     group_sizes=(5, 9, 17), n_wavelengths=16)
        for key, values in a.series.items():
            assert values == pytest.approx(s.series[key], rel=1e-9)


class TestFig5:
    def test_paper_claims(self):
        r = run_fig5()
        # WRHT improves with wavelengths; Ring/BT are w-invariant.
        for wl in r.workloads:
            wrht = r.series[(wl, "WRHT")]
            assert wrht[0] >= wrht[-1]
            assert len(set(r.series[(wl, "Ring")])) == 1
            assert len(set(r.series[(wl, "BT")])) == 1
        # Fig 5(b): at w=4 Ring beats WRHT on the big models.
        assert r.cell("BEiT-L", "WRHT", 4) > r.cell("BEiT-L", "Ring", 4)
        assert r.cell("VGG16", "WRHT", 4) > r.cell("VGG16", "Ring", 4)
        # At w=64 WRHT wins everywhere.
        for wl in r.workloads:
            for algo in ("Ring", "H-Ring", "BT"):
                assert r.cell(wl, "WRHT", 64) < r.cell(wl, algo, 64)

    def test_average_reductions_positive(self):
        r = run_fig5()
        assert r.reduction_vs("BT") > 60
        assert r.reduction_vs("Ring") > 0
        assert r.reduction_vs("H-Ring") > 0


class TestFig6:
    def test_paper_claims(self):
        r = run_fig6()
        # WRHT lowest for all models at every node count (Sec 5.5).
        for wl in r.workloads:
            for algo in ("Ring", "H-Ring", "BT"):
                for n in r.x_values:
                    assert r.cell(wl, "WRHT", n) < r.cell(wl, algo, n), (wl, algo, n)
        # Ring grows (near) linearly; WRHT stays nearly flat.
        ring = r.series[("ResNet50", "Ring")]
        assert ring[-1] > 2.0 * ring[0]
        wrht = r.series[("ResNet50", "WRHT")]
        assert max(wrht) < 1.5 * min(wrht)

    def test_average_reductions_near_paper(self):
        r = run_fig6()
        # Paper: 65.23 / 43.81 / 82.22. Accept the calibrated model's band.
        assert 55 < r.reduction_vs("Ring") < 80
        assert 35 < r.reduction_vs("H-Ring") < 60
        assert 75 < r.reduction_vs("BT") < 92


class TestFig7:
    def test_reduced_scale_shape(self):
        r = run_fig7(nodes=(32, 64), workloads=SMALL)
        for wl in [w.name for w in SMALL]:
            for n in r.x_values:
                e_ring = r.cell(wl, "E-Ring", n)
                o_ring = r.cell(wl, "O-Ring", n)
                wrht = r.cell(wl, "WRHT", n)
                assert o_ring < e_ring  # optical beats electrical, same algo
                assert wrht < o_ring  # WRHT beats O-Ring
                assert wrht < r.cell(wl, "RD", n)

    def test_reductions_positive(self):
        r = run_fig7(nodes=(32, 64), workloads=SMALL)
        assert r.reduction_vs("E-Ring", "O-Ring") > 0
        assert r.reduction_vs("E-Ring", "WRHT") > 0
        assert r.reduction_vs("RD", "WRHT") > 0


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError):
            run_fig5(mode="vibes")
