"""Electrical configuration tests."""

import pytest

from repro.electrical.config import ElectricalSystemConfig


class TestConfig:
    def test_table2_defaults(self):
        cfg = ElectricalSystemConfig(n_nodes=128)
        assert cfg.router_radix == 32
        assert cfg.hosts_per_edge == 16
        assert cfg.n_core == 16
        assert cfg.router_delay == pytest.approx(25e-6)
        assert cfg.packet_bytes == 72

    def test_interpretations(self):
        assert ElectricalSystemConfig(n_nodes=4, interpretation="strict").line_rate == 5e9
        assert ElectricalSystemConfig(n_nodes=4, interpretation="calibrated").line_rate == 40e9

    def test_odd_radix_rejected(self):
        with pytest.raises(ValueError, match="even"):
            ElectricalSystemConfig(n_nodes=4, router_radix=31)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ElectricalSystemConfig(n_nodes=4, router_delay=-1.0)

    def test_bad_interpretation(self):
        with pytest.raises(ValueError):
            ElectricalSystemConfig(n_nodes=4, interpretation="light-speed")
