"""Packet-level simulation tests: the fluid model's ground truth check."""

import pytest

from repro.collectives.base import CommStep, Schedule, Transfer
from repro.collectives.registry import build_schedule
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.network import ElectricalNetwork
from repro.electrical.packets import PacketLevelNetwork


def _schedule(transfers, n, elems):
    step = CommStep(tuple(transfers))
    return Schedule("test", n, elems, steps=[step], timing_profile=[(step, 1)])


def _config(n=32):
    return ElectricalSystemConfig(n_nodes=n)


class TestSingleFlow:
    def test_intra_edge_flow_matches_closed_form(self):
        # One flow, 1 router: serialization + one 25 µs pipeline latency.
        cfg = _config()
        elems = 1800  # 7200 B = 100 packets
        sched = _schedule([Transfer(0, 1, 0, elems)], 32, elems)
        result = PacketLevelNetwork(cfg).execute(sched)
        expected = elems * 4 / cfg.line_rate + cfg.router_delay
        # Store-and-forward adds one packet serialization per extra hop.
        assert result.total_time == pytest.approx(expected, rel=0.02)
        assert result.n_packets == 100

    def test_cross_edge_flow_three_router_delays(self):
        cfg = _config()
        elems = 1800
        sched = _schedule([Transfer(0, 20, 0, elems)], 32, elems)
        result = PacketLevelNetwork(cfg).execute(sched)
        expected = elems * 4 / cfg.line_rate + 3 * cfg.router_delay
        assert result.total_time == pytest.approx(expected, rel=0.02)

    def test_agrees_with_fluid_model(self):
        cfg = _config()
        elems = 3600
        sched = _schedule([Transfer(0, 20, 0, elems)], 32, elems)
        packet = PacketLevelNetwork(cfg).execute(sched).total_time
        fluid = ElectricalNetwork(cfg).execute(sched).total_time
        assert packet == pytest.approx(fluid, rel=0.02)


class TestContention:
    def test_two_flows_sharing_host_link(self):
        # Two flows out of host 0 share its NIC: step takes ~2x one flow.
        cfg = _config()
        elems = 1800
        one = _schedule([Transfer(0, 1, 0, elems)], 32, elems)
        two = _schedule(
            [Transfer(0, 1, 0, elems), Transfer(0, 2, 0, elems)], 32, elems
        )
        t1 = PacketLevelNetwork(cfg).execute(one).total_time
        t2 = PacketLevelNetwork(cfg).execute(two).total_time
        assert t2 == pytest.approx(2 * t1 - cfg.router_delay, rel=0.05)

    def test_disjoint_flows_run_concurrently(self):
        cfg = _config()
        elems = 1800
        one = _schedule([Transfer(0, 1, 0, elems)], 32, elems)
        many = _schedule(
            [Transfer(2 * i, 2 * i + 1, 0, elems) for i in range(8)], 32, elems
        )
        t1 = PacketLevelNetwork(cfg).execute(one).total_time
        t8 = PacketLevelNetwork(cfg).execute(many).total_time
        assert t8 == pytest.approx(t1, rel=0.02)

    def test_contended_step_close_to_fluid(self):
        # A BT reduce step (several concurrent flows, some cross-edge) —
        # packet-level and fluid agree within store-and-forward effects.
        cfg = _config()
        sched = build_schedule("bt", 32, 1440)
        packet = PacketLevelNetwork(cfg).execute(sched).total_time
        fluid = ElectricalNetwork(cfg).execute(sched).total_time
        assert packet == pytest.approx(fluid, rel=0.1)


class TestMechanics:
    def test_ring_allreduce_runs(self):
        cfg = _config(16)
        sched = build_schedule("ring", 8, 160)
        result = PacketLevelNetwork(cfg).execute(sched)
        assert len(result.per_step) == 14
        assert result.total_time == pytest.approx(sum(result.per_step))

    def test_empty_transfers_cost_nothing(self):
        sched = _schedule([Transfer(0, 1, 3, 3), Transfer(1, 2, 0, 9)], 32, 9)
        result = PacketLevelNetwork(_config()).execute(sched)
        assert result.n_packets == 1  # 36 B -> 1 packet; empty one skipped

    def test_size_guard(self):
        sched = build_schedule("ring", 64, 64)
        with pytest.raises(ValueError, match="hosts"):
            PacketLevelNetwork(_config(32)).execute(sched)

    def test_deterministic(self):
        cfg = _config()
        sched = build_schedule("bt", 16, 720)
        a = PacketLevelNetwork(cfg).execute(sched)
        b = PacketLevelNetwork(cfg).execute(sched)
        assert a.total_time == b.total_time
        assert a.n_events == b.n_events
