"""Max-min fair fluid simulation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.electrical.flows import Flow, FluidSimulation, max_min_rates


class TestMaxMinRates:
    def test_single_flow_gets_capacity(self):
        flows = [Flow(0, (0,), 100.0)]
        rates = max_min_rates(flows, [10.0])
        assert rates[0] == 10.0

    def test_equal_sharing(self):
        flows = [Flow(i, (0,), 100.0) for i in range(4)]
        rates = max_min_rates(flows, [8.0])
        assert np.allclose(rates, 2.0)

    def test_classic_three_flow_example(self):
        # Links A (cap 10) and B (cap 10). Flow 1 on A, flow 2 on B,
        # flow 3 on both. Max-min: flow 3 gets 5, flows 1,2 get 5... then
        # residuals let flows 1,2 take the rest: 5 each -> all 5? No:
        # bottleneck share on both links is 10/2 = 5; flows 1 and 2 then
        # take the remaining 5 each.
        flows = [Flow(0, (0,), 1.0), Flow(1, (1,), 1.0), Flow(2, (0, 1), 1.0)]
        rates = max_min_rates(flows, [10.0, 10.0])
        assert rates[2] == pytest.approx(5.0)
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(5.0)

    def test_unequal_bottlenecks(self):
        # Flow 0 alone on a fat link; flow 1 shares a thin link with flow 2.
        flows = [Flow(0, (0,), 1.0), Flow(1, (1,), 1.0), Flow(2, (1,), 1.0)]
        rates = max_min_rates(flows, [100.0, 10.0])
        assert rates[0] == pytest.approx(100.0)
        assert rates[1] == rates[2] == pytest.approx(5.0)

    def test_empty(self):
        assert max_min_rates([], [1.0]).size == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 5), min_size=1, max_size=3, unique=True),
            min_size=1, max_size=12,
        )
    )
    def test_feasibility_and_saturation_property(self, routes):
        capacities = [10.0] * 6
        flows = [Flow(i, tuple(r), 1.0) for i, r in enumerate(routes)]
        rates = max_min_rates(flows, capacities)
        # Feasible: no link oversubscribed.
        load = np.zeros(6)
        for f, r in zip(flows, rates):
            for link in f.links:
                load[link] += r
        assert np.all(load <= 10.0 + 1e-6)
        # Every flow crosses at least one saturated link (max-min property).
        for f, r in zip(flows, rates):
            assert any(load[l] >= 10.0 - 1e-6 for l in f.links) or r >= 10.0 - 1e-6


class TestFluidSimulation:
    def test_single_flow_finish_time(self):
        sim = FluidSimulation([10.0])
        flow = Flow(0, (0,), 100.0, latency=0.5)
        assert sim.run([flow]) == pytest.approx(10.5)
        assert flow.finish_time == pytest.approx(10.5)

    def test_shared_then_released_bandwidth(self):
        # Two flows share a link; the short one finishes and the long one
        # speeds up: 50@5 takes 10s together... short(25) done at t=5,
        # long has 25 left at 10 B/s -> finishes 7.5.
        sim = FluidSimulation([10.0])
        short = Flow(0, (0,), 25.0)
        long = Flow(1, (0,), 50.0)
        total = sim.run([short, long])
        assert short.finish_time == pytest.approx(5.0)
        assert long.finish_time == pytest.approx(7.5)
        assert total == pytest.approx(7.5)

    def test_zero_size_flow(self):
        sim = FluidSimulation([10.0])
        flow = Flow(0, (0,), 0.0, latency=0.25)
        assert sim.run([flow]) == pytest.approx(0.25)

    def test_no_flows(self):
        assert FluidSimulation([1.0]).run([]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FluidSimulation([])
        with pytest.raises(ValueError):
            FluidSimulation([0.0])
        with pytest.raises(ValueError):
            Flow(0, (), 1.0)
        with pytest.raises(ValueError):
            Flow(0, (0,), -1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(1.0, 1e6), min_size=1, max_size=10))
    def test_conservation_property(self, sizes):
        # All flows on one link: total time = total bytes / capacity.
        sim = FluidSimulation([100.0])
        flows = [Flow(i, (0,), s) for i, s in enumerate(sizes)]
        total = sim.run(flows)
        assert total == pytest.approx(sum(sizes) / 100.0, rel=1e-6)
