"""Hash vs ideal ECMP mode tests."""

import pytest

from repro.collectives.registry import build_schedule
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.fattree import FatTree
from repro.electrical.network import ElectricalNetwork
from repro.electrical.routing import ideal_core, route


class TestIdealCore:
    def test_each_host_owns_an_uplink(self):
        cores = {ideal_core(h, 16, 16) for h in range(16)}
        assert cores == set(range(16))

    def test_same_pattern_every_edge(self):
        assert ideal_core(5, 16, 16) == ideal_core(21, 16, 16)


class TestRoutingModes:
    def test_ideal_route_uses_owned_uplink(self):
        tree = FatTree(ElectricalSystemConfig(n_nodes=64))
        path = route(tree, 3, 40, ecmp="ideal")
        assert path.links[1] == tree.up[0][3]

    def test_unknown_mode_rejected(self):
        tree = FatTree(ElectricalSystemConfig(n_nodes=64))
        with pytest.raises(ValueError, match="ecmp"):
            route(tree, 0, 40, ecmp="quantum")
        with pytest.raises(ValueError, match="ecmp"):
            ElectricalSystemConfig(n_nodes=4, ecmp="quantum")


class TestCongestionAblation:
    def test_ideal_ecmp_removes_rd_collisions(self):
        n = 128
        sched = build_schedule("rd", n, n * 100, materialize=False)
        hash_net = ElectricalNetwork(ElectricalSystemConfig(n_nodes=n, ecmp="hash"))
        ideal_net = ElectricalNetwork(ElectricalSystemConfig(n_nodes=n, ecmp="ideal"))
        hash_result = hash_net.execute(sched)
        ideal_result = ideal_net.execute(sched)
        assert hash_result.max_link_share > 1
        assert ideal_result.max_link_share == 1
        assert ideal_result.total_time < hash_result.total_time

    def test_ring_unaffected_by_mode(self):
        # E-Ring is collision-free under both modes (one cross-edge flow
        # per edge boundary).
        n = 64
        sched = build_schedule("ring", n, n * 100, materialize=False)
        times = []
        for mode in ("hash", "ideal"):
            net = ElectricalNetwork(ElectricalSystemConfig(n_nodes=n, ecmp=mode))
            result = net.execute(sched)
            assert result.max_link_share == 1
            times.append(result.total_time)
        assert times[0] == pytest.approx(times[1], rel=1e-12)
