"""Fat-tree routing and ECMP tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.fattree import FatTree
from repro.electrical.routing import ecmp_core, route


def _tree(n=64):
    return FatTree(ElectricalSystemConfig(n_nodes=n))


class TestRoutes:
    def test_intra_edge_one_router(self):
        tree = _tree()
        path = route(tree, 0, 15)  # both on edge 0
        assert path.n_routers == 1
        assert len(path.links) == 2
        assert path.links == (tree.host_up[0], tree.host_down[15])

    def test_cross_edge_three_routers(self):
        tree = _tree()
        path = route(tree, 0, 20)
        assert path.n_routers == 3
        assert len(path.links) == 4

    def test_cross_edge_uses_consistent_core(self):
        tree = _tree()
        path = route(tree, 0, 20)
        core = ecmp_core(0, 20, tree.n_core)
        assert path.links[1] == tree.up[0][core]
        assert path.links[2] == tree.down[core][1]

    def test_self_route_rejected(self):
        with pytest.raises(ValueError):
            route(_tree(), 3, 3)


class TestEcmp:
    def test_deterministic(self):
        assert ecmp_core(7, 23, 16) == ecmp_core(7, 23, 16)

    def test_in_range(self):
        for s in range(50):
            for d in range(50):
                assert 0 <= ecmp_core(s, d, 16) < 16

    def test_no_power_of_two_degeneracy(self):
        # Recursive doubling's peers at distance 2^k must not all hash to
        # one core (the failure mode of linear hashes).
        for dist in (16, 32, 64, 128, 256, 512):
            cores = {ecmp_core(s, s ^ dist, 16) for s in range(0, 1024)}
            assert len(cores) >= 8, f"distance {dist} collapsed to {cores}"

    def test_reasonable_spread(self):
        from collections import Counter

        counts = Counter(ecmp_core(s, d, 16) for s in range(64) for d in range(64))
        assert min(counts.values()) > 0.5 * (64 * 64 / 16)
        assert max(counts.values()) < 2.0 * (64 * 64 / 16)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 127), st.integers(0, 127))
def test_route_endpoints_property(src, dst):
    tree = _tree(128)
    if src == dst:
        return
    path = route(tree, src, dst)
    links = [tree.links[lid] for lid in path.links]
    assert links[0].kind == "host_up" and links[0].a == src
    assert links[-1].kind == "host_down" and links[-1].b == dst
    # Consecutive links connect.
    if len(links) == 4:
        assert links[0].b == links[1].a  # edge switch
        assert links[1].b == links[2].a  # core switch
        assert links[2].b == links[3].a  # edge switch
