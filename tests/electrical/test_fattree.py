"""Fat-tree topology builder tests."""

import pytest

from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.fattree import FatTree


def _tree(n, **kwargs):
    return FatTree(ElectricalSystemConfig(n_nodes=n), **kwargs)


class TestStructure:
    def test_edge_count(self):
        assert _tree(128).n_edges == 8
        assert _tree(129).n_edges == 9  # partial edge

    def test_host_placement(self):
        tree = _tree(64)
        assert tree.edge_of(0) == 0
        assert tree.edge_of(15) == 0
        assert tree.edge_of(16) == 1

    def test_host_out_of_range(self):
        with pytest.raises(ValueError):
            _tree(64).edge_of(64)

    def test_link_count(self):
        # 64 hosts: 128 host links + 4 edges x 16 cores x 2 = 256.
        tree = _tree(64)
        assert tree.n_links == 2 * 64 + 2 * 4 * 16

    def test_all_links_at_line_rate(self):
        tree = _tree(32)
        rate = tree.config.line_rate
        assert all(link.capacity == rate for link in tree.links)

    def test_full_bisection_uplinks(self):
        # Every edge has one uplink to every core.
        tree = _tree(64)
        for e in range(tree.n_edges):
            assert len(tree.up[e]) == tree.n_core
            assert len({tree.up[e][c] for c in range(tree.n_core)}) == tree.n_core


class TestRadixAccounting:
    def test_edge_ports_exactly_radix(self):
        tree = _tree(128)
        for edge in tree.edges:
            assert edge.ports_used == 32  # 16 hosts + 16 uplinks

    def test_512_hosts_fit_natively(self):
        assert not _tree(512).radix_exceeded

    def test_1024_hosts_oversubscribe_core_radix(self):
        # Table 2's two-level 32-port tree caps at 512 hosts; the paper's
        # 1024-node point needs the documented radix relaxation.
        tree = _tree(1024)
        assert tree.radix_exceeded
        assert tree.n_edges == 64

    def test_strict_radix_mode_rejects(self):
        with pytest.raises(ValueError, match="radix"):
            _tree(1024, allow_oversubscribed_radix=False)

    def test_capacities_indexable_by_link_id(self):
        tree = _tree(48)
        caps = tree.capacities()
        assert len(caps) == tree.n_links
        for link in tree.links:
            assert caps[link.link_id] == link.capacity
