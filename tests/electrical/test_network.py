"""Electrical executor tests."""

import pytest

from repro.collectives.registry import build_schedule
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.network import ElectricalNetwork
from repro.sim.trace import Tracer


def _net(n, **kwargs):
    return ElectricalNetwork(ElectricalSystemConfig(n_nodes=n), **kwargs)


class TestExecution:
    def test_intra_edge_ring_is_congestion_free(self):
        # 16 hosts on one edge: neighbor flows use dedicated host links.
        net = _net(16)
        result = net.execute(build_schedule("ring", 16, 160))
        assert result.max_link_share == 1

    def test_router_latency_charged(self):
        # One tiny intra-edge transfer: ~1 router crossing = 25 µs dominates.
        net = _net(16)
        result = net.execute(build_schedule("ring", 2, 2))
        per_step = result.total_time / result.n_steps
        assert per_step == pytest.approx(25e-6, rel=1e-2)

    def test_cross_edge_latency_is_three_routers(self):
        net = _net(32)
        sched = build_schedule("bt", 32, 1)  # includes a 0->16 cross-edge hop
        result = net.execute(sched)
        cross_steps = [t for t in result.step_timings if t.duration > 70e-6]
        assert cross_steps, "expected at least one 3-router (75 µs) step"

    def test_rd_congestion_visible(self):
        # Large-distance RD steps cross the core and collide on ECMP.
        net = _net(128)
        result = net.execute(build_schedule("rd", 128, 1000))
        assert result.max_link_share > 1

    def test_e_ring_slower_than_ideal_wire(self):
        n = 64
        net = _net(n)
        elems = n * 100
        result = net.execute(build_schedule("ring", n, elems))
        ideal = result.n_steps * (elems / n * 4.0 / net.config.line_rate)
        assert result.total_time > ideal  # router delays on top

    def test_total_time_sums_step_durations(self):
        net = _net(32)
        result = net.execute(build_schedule("bt", 32, 64))
        assert result.total_time == pytest.approx(
            sum(t.duration * t.count for t in result.step_timings)
        )

    def test_bytes_accounting(self):
        net = _net(8)
        result = net.execute(build_schedule("bt", 8, 100), bytes_per_elem=4.0)
        assert result.total_bytes == 14 * 400.0

    def test_size_guard(self):
        with pytest.raises(ValueError, match="hosts"):
            _net(8).execute(build_schedule("ring", 16, 16))

    def test_bad_bytes_per_elem(self):
        with pytest.raises(ValueError):
            _net(8).execute(build_schedule("ring", 8, 8), bytes_per_elem=-1)

    def test_tracing(self):
        tracer = Tracer()
        net = _net(16, tracer=tracer)
        net.execute(build_schedule("bt", 16, 32))
        assert len(tracer.records("electrical.step")) >= 1

    def test_pattern_cache_consistency(self):
        # Same pattern priced once must equal pricing it in a fresh network.
        net1, net2 = _net(32), _net(32)
        sched = build_schedule("ring", 32, 320, materialize=False)
        assert net1.execute(sched).total_time == net2.execute(sched).total_time


class TestOpticalVsElectrical:
    def test_o_ring_beats_e_ring(self):
        # The Fig 7 headline at small scale: same algorithm, optical wins on
        # per-step latency (25 µs reconfig vs up to 75 µs of router delays).
        from repro.optical.config import OpticalSystemConfig
        from repro.optical.network import OpticalRingNetwork

        n, elems = 64, 6400
        sched = build_schedule("ring", n, elems)
        e = _net(n).execute(sched).total_time
        o = OpticalRingNetwork(
            OpticalSystemConfig(n_nodes=n, n_wavelengths=64)
        ).execute(sched).total_time
        assert o < e
