"""Suite-wide pytest configuration.

Loads the :mod:`repro.check` plan-verification plugin: every plan lowered
anywhere in the suite is statically verified against the structural rules
(disable with ``--no-plan-verify``).
"""

pytest_plugins = ["repro.check.pytest_plugin"]
