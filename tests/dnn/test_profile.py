"""Workload profiling tests."""

import pytest

from repro.dnn.models import MODEL_BUILDERS
from repro.dnn.profile import DeviceModel, profile_model

DEVICE = DeviceModel()


class TestDeviceModel:
    def test_time(self):
        dev = DeviceModel(peak_flops=1e12, efficiency=0.5)
        assert dev.time(1e12) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceModel(peak_flops=0)
        with pytest.raises(ValueError):
            DeviceModel(efficiency=0)
        with pytest.raises(ValueError):
            DEVICE.time(-1.0)


class TestProfiles:
    @pytest.mark.parametrize("name", list(MODEL_BUILDERS))
    def test_param_totals_match_catalog(self, name):
        profile = profile_model(name)
        assert profile.total_params == MODEL_BUILDERS[name]().param_count

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            profile_model("LeNet")

    def test_compute_scales_with_batch(self):
        profile = profile_model("ResNet50")
        assert profile.forward_time(256, DEVICE) == pytest.approx(
            2 * profile.forward_time(128, DEVICE)
        )

    def test_backward_twice_forward(self):
        profile = profile_model("VGG16")
        assert profile.backward_time(32, DEVICE) == pytest.approx(
            2 * profile.forward_time(32, DEVICE)
        )


class TestReleaseSchedule:
    def test_release_order_is_output_to_input(self):
        profile = profile_model("AlexNet")
        schedule = profile.gradient_release_schedule(32, DEVICE)
        indices = [layer.index for layer, _ in schedule]
        assert indices == sorted(indices, reverse=True)

    def test_release_times_monotone(self):
        profile = profile_model("ResNet50")
        times = [t for _, t in profile.gradient_release_schedule(32, DEVICE)]
        assert times == sorted(times)
        assert times[0] > 0

    def test_last_release_is_backward_total(self):
        profile = profile_model("VGG16")
        schedule = profile.gradient_release_schedule(32, DEVICE)
        # Every VGG16 layer has parameters, and the input conv is the last
        # to release — at exactly the full backward time.
        assert schedule[-1][1] == pytest.approx(profile.backward_time(32, DEVICE))

    def test_only_parameterized_layers_release(self):
        profile = profile_model("ResNet50")
        schedule = profile.gradient_release_schedule(32, DEVICE)
        assert all(layer.params > 0 for layer, _ in schedule)
