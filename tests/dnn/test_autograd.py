"""Forward/backward propagation tests, including numerical gradient checks
of Eqs 2–3."""

import numpy as np
import pytest

from repro.dnn.autograd import (
    MLP,
    Conv2D,
    Dense,
    relu,
    softmax,
    softmax_cross_entropy,
)


def _numeric_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestActivations:
    def test_relu(self):
        assert relu(np.array([-1.0, 0.0, 2.0])).tolist() == [0.0, 0.0, 2.0]

    def test_softmax_rows_sum_to_one(self):
        p = softmax(np.random.default_rng(0).normal(size=(5, 7)))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_softmax_stability(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(p, 0.5)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        _, grad = softmax_cross_entropy(logits.copy(), labels)
        num = _numeric_grad(
            lambda: softmax_cross_entropy(logits, labels)[0], logits
        )
        assert np.allclose(grad, num, atol=1e-6)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros(5, dtype=int))


class TestDense:
    def test_forward_eq1(self):
        layer = Dense(3, 2, activation="identity")
        layer.weight[...] = np.arange(6).reshape(3, 2)
        layer.bias[...] = [1.0, -1.0]
        out = layer.forward(np.array([[1.0, 1.0, 1.0]]))
        assert out.tolist() == [[0 + 2 + 4 + 1, 1 + 3 + 5 - 1]]

    def test_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        layer = Dense(4, 3, activation="relu", rng=rng)
        x = rng.normal(size=(5, 4))
        labels = np.array([0, 1, 2, 0, 1])

        def loss():
            return softmax_cross_entropy(layer.forward(x), labels)[0]

        loss()  # populate caches
        _, grad_out = softmax_cross_entropy(layer.forward(x), labels)
        layer.backward(grad_out)
        num = _numeric_grad(loss, layer.weight)
        assert np.allclose(layer.grad_weight, num, atol=1e-5)
        num_b = _numeric_grad(loss, layer.bias)
        assert np.allclose(layer.grad_bias, num_b, atol=1e-5)

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        layer = Dense(4, 3, activation="relu", rng=rng)
        x = rng.normal(size=(2, 4))
        labels = np.array([1, 2])

        def loss():
            return softmax_cross_entropy(layer.forward(x), labels)[0]

        _, grad_out = softmax_cross_entropy(layer.forward(x), labels)
        dx = layer.backward(grad_out)
        num = _numeric_grad(loss, x)
        assert np.allclose(dx, num, atol=1e-5)

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            Dense(2, 2, activation="swishish")

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2).backward(np.zeros((1, 2)))


class TestConv2D:
    def test_forward_matches_direct_convolution(self):
        rng = np.random.default_rng(4)
        conv = Conv2D(2, 3, kernel=3, activation="identity", rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = conv.forward(x)
        assert out.shape == (1, 3, 3, 3)
        # Check one output element against the definition.
        w = conv.weight.reshape(2, 3, 3, 3)  # (C, kh, kw, F)
        manual = sum(
            x[0, c, 1 + di, 2 + dj] * w[c, di, dj, 1]
            for c in range(2)
            for di in range(3)
            for dj in range(3)
        ) + conv.bias[1]
        assert out[0, 1, 1, 2] == pytest.approx(manual)

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(5)
        conv = Conv2D(2, 2, kernel=2, activation="relu", rng=rng)
        x = rng.normal(size=(2, 2, 4, 4))
        labels = np.array([0, 1])

        def loss():
            out = conv.forward(x)
            flat = out.reshape(2, -1)[:, :2]
            return softmax_cross_entropy(flat, labels)[0]

        out = conv.forward(x)
        flat = out.reshape(2, -1)
        _, g = softmax_cross_entropy(flat[:, :2], labels)
        gfull = np.zeros_like(flat)
        gfull[:, :2] = g
        dx = conv.backward(gfull.reshape(out.shape))
        assert np.allclose(conv.grad_weight, _numeric_grad(loss, conv.weight), atol=1e-5)
        assert np.allclose(conv.grad_bias, _numeric_grad(loss, conv.bias), atol=1e-5)
        assert np.allclose(dx, _numeric_grad(loss, x), atol=1e-5)

    def test_kernel_too_large(self):
        conv = Conv2D(1, 1, kernel=5)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 1, 3, 3)))

    def test_channel_mismatch(self):
        conv = Conv2D(3, 1, kernel=2)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 2, 4, 4)))


class TestMLP:
    def test_of_widths_structure(self):
        mlp = MLP.of_widths([10, 8, 4])
        assert len(mlp.layers) == 2
        assert mlp.layers[-1].activation == "identity"
        assert mlp.n_params == (10 * 8 + 8) + (8 * 4 + 4)

    def test_gradient_vector_roundtrip(self):
        mlp = MLP.of_widths([6, 5, 3], seed=1)
        x = np.random.default_rng(0).normal(size=(4, 6))
        mlp.loss_and_gradients(x, np.array([0, 1, 2, 0]))
        vec = mlp.gradient_vector()
        assert vec.shape == (mlp.n_params,)
        mlp.set_gradient_vector(vec * 2)
        assert np.allclose(mlp.gradient_vector(), vec * 2)

    def test_state_vector_roundtrip(self):
        a = MLP.of_widths([4, 3], seed=1)
        b = MLP.of_widths([4, 3], seed=2)
        b.load_state_vector(a.state_vector())
        assert np.array_equal(a.state_vector(), b.state_vector())

    def test_sgd_descends_on_separable_data(self):
        rng = np.random.default_rng(7)
        x = np.vstack([rng.normal(-2, 0.3, (30, 2)), rng.normal(2, 0.3, (30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        mlp = MLP.of_widths([2, 8, 2], seed=0)
        first = mlp.loss_and_gradients(x, y)
        for _ in range(50):
            mlp.loss_and_gradients(x, y)
            mlp.sgd_step(0.1)
        last = mlp.loss_and_gradients(x, y)
        assert last < first / 5

    def test_lr_validation(self):
        mlp = MLP.of_widths([2, 2])
        with pytest.raises(ValueError):
            mlp.sgd_step(0.0)

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            MLP([])
