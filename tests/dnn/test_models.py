"""Model catalog tests: derived counts against the paper's Sec 5.1 sizes."""

import pytest

from repro.dnn.models import MODEL_BUILDERS, alexnet, beit_large, resnet50, vgg16

# Paper headline sizes and the tolerance we accept for variant ambiguity.
PAPER = {"BEiT-L": 307e6, "VGG16": 138e6, "AlexNet": 62.3e6, "ResNet50": 25e6}


class TestExactCounts:
    def test_vgg16_exact(self):
        # The canonical torchvision number.
        assert vgg16().param_count == 138_357_544

    def test_resnet50_exact(self):
        assert resnet50().param_count == 25_557_032

    def test_alexnet_original(self):
        # Krizhevsky's grouped two-tower network.
        assert alexnet().param_count == 60_965_224

    def test_beit_large_scale(self):
        assert 300e6 < beit_large().param_count < 310e6


class TestPaperAgreement:
    @pytest.mark.parametrize("name", list(PAPER))
    def test_within_tolerance(self, name):
        derived = MODEL_BUILDERS[name]().param_count
        assert abs(derived - PAPER[name]) / PAPER[name] < 0.03, (
            f"{name}: {derived:,} vs paper {PAPER[name]:.3g}"
        )

    def test_size_ordering_matches_paper(self):
        sizes = {n: MODEL_BUILDERS[n]().param_count for n in PAPER}
        assert sizes["BEiT-L"] > sizes["VGG16"] > sizes["AlexNet"] > sizes["ResNet50"]


class TestModelSpec:
    def test_gradient_bytes_float32(self):
        m = resnet50()
        assert m.gradient_bytes() == m.param_count * 4

    def test_gradient_bytes_validation(self):
        with pytest.raises(ValueError):
            resnet50().gradient_bytes(0)

    def test_class_count_configurable(self):
        assert vgg16(10).param_count < vgg16(1000).param_count

    def test_layer_counts(self):
        assert vgg16().n_layers == 16  # 13 convs + 3 fcs
        assert alexnet().n_layers == 8
        assert beit_large().n_layers == 24 + 3  # blocks + embed + norm + head
