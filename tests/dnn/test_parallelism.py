"""Hybrid parallelism (Sec 6.2 extension) tests."""

import pytest

from repro.collectives.grouped import verify_grouped_allreduce
from repro.dnn.models import gpt3, resnet50
from repro.dnn.parallelism import (
    HybridParallelComm,
    MemoryModel,
    ParallelismPlan,
)
from repro.optical import OpticalRingNetwork, OpticalSystemConfig


class TestParallelismPlan:
    def test_grid_must_cover_ring(self):
        with pytest.raises(ValueError, match="n_nodes"):
            ParallelismPlan(64, tp=8, pp=4, dp=4)

    def test_node_layout(self):
        plan = ParallelismPlan(64, tp=4, pp=4, dp=4)
        assert plan.node(0, 0, 0) == 0
        assert plan.node(0, 0, 3) == 3
        assert plan.node(0, 1, 0) == 4
        assert plan.node(1, 0, 0) == 16

    def test_tp_groups_contiguous(self):
        plan = ParallelismPlan(32, tp=4, pp=2, dp=4)
        for group in plan.tp_groups():
            assert group == list(range(group[0], group[0] + 4))
        assert len(plan.tp_groups()) == 8

    def test_dp_groups_strided(self):
        plan = ParallelismPlan(32, tp=4, pp=2, dp=4)
        groups = plan.dp_groups()
        assert len(groups) == 8
        for group in groups:
            strides = {b - a for a, b in zip(group, group[1:])}
            assert strides == {8}  # pp*tp

    def test_pp_pairs_adjacent_stages(self):
        plan = ParallelismPlan(16, tp=2, pp=4, dp=2)
        pairs = plan.pp_pairs()
        assert len(pairs) == 2 * 3 * 2
        for a, b in pairs:
            assert b - a == 2  # next stage, same tp index

    def test_coordinate_validation(self):
        plan = ParallelismPlan(8, tp=2, pp=2, dp=2)
        with pytest.raises(ValueError):
            plan.node(2, 0, 0)


class TestMemoryModel:
    def test_gpt3_cannot_train_data_parallel(self):
        # Sec 6.2's claim, quantified: a full 175B replica needs ~3 TB of
        # parameter state — no 80 GB accelerator holds it at any dp.
        model = gpt3()
        memory = MemoryModel()
        assert not memory.fits(model, ParallelismPlan(1024, dp=1024))

    def test_gpt3_fits_with_hybrid(self):
        model = gpt3()
        memory = MemoryModel()
        plan = ParallelismPlan(1024, tp=8, pp=16, dp=8)
        assert memory.fits(model, plan)
        assert memory.per_rank_bytes(model, plan) < 30e9

    def test_resnet_fits_data_parallel(self):
        assert MemoryModel().fits(resnet50(), ParallelismPlan(64, dp=64))

    def test_memory_decreases_with_model_parallelism(self):
        model = gpt3()
        memory = MemoryModel()
        small = memory.per_rank_bytes(model, ParallelismPlan(64, tp=8, pp=8, dp=1))
        large = memory.per_rank_bytes(model, ParallelismPlan(64, tp=2, pp=2, dp=16))
        assert small < large


class TestHybridComm:
    @pytest.fixture(scope="class")
    def setup(self):
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=32, n_wavelengths=16))
        plan = ParallelismPlan(32, tp=4, pp=4, dp=2)
        comm = HybridParallelComm(
            gpt3(), plan, net, dp_algorithm="wrht",
            hidden=512, seq_len=128, n_wavelengths=16,
        )
        return plan, comm

    def test_tp_schedule_is_correct_grouped_allreduce(self, setup):
        _, comm = setup
        verify_grouped_allreduce(comm.tp_schedule(micro_batch=1))

    def test_dp_structure_is_correct_grouped_allreduce(self, setup):
        # The real DP shard is ~10.9B elements; verify the *structure* on a
        # small vector with the same groups and algorithm (correctness is
        # payload-size independent).
        from repro.collectives.grouped import build_grouped_allreduce

        plan, comm = setup
        small = build_grouped_allreduce(
            plan.dp_groups(), 24, plan.n_nodes,
            algorithm=comm.dp_algorithm, **comm._dp_kwargs,
        )
        verify_grouped_allreduce(small)

    def test_step_cost_components_positive(self, setup):
        _, comm = setup
        cost = comm.step_cost(micro_batch=1, n_micro_batches=2, n_layers=4)
        assert cost.tp_time > 0
        assert cost.pp_time > 0
        assert cost.dp_time > 0
        assert cost.total == pytest.approx(
            cost.tp_time + cost.pp_time + cost.dp_time
        )

    def test_degenerate_dimensions_have_no_cost(self):
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=8, n_wavelengths=4))
        plan = ParallelismPlan(8, tp=1, pp=1, dp=8)
        comm = HybridParallelComm(
            resnet50(), plan, net, dp_algorithm="ring", hidden=64, seq_len=8
        )
        assert comm.tp_schedule(1) is None
        assert comm.pp_schedule(1) is None
        cost = comm.step_cost(n_layers=2)
        assert cost.tp_time == 0 and cost.pp_time == 0 and cost.dp_time > 0
