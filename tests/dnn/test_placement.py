"""Ring placement (layout) tests for hybrid parallelism."""

import pytest

from repro.collectives.grouped import build_grouped_allreduce, verify_grouped_allreduce
from repro.dnn.parallelism import ParallelismPlan
from repro.optical import OpticalRingNetwork, OpticalSystemConfig


class TestLayouts:
    def test_tp_inner_contiguous_tp(self):
        plan = ParallelismPlan(32, tp=4, pp=4, dp=2, layout="tp_inner")
        for group in plan.tp_groups():
            assert group == list(range(group[0], group[0] + 4))

    def test_dp_inner_contiguous_dp(self):
        plan = ParallelismPlan(32, tp=4, pp=4, dp=2, layout="dp_inner")
        for group in plan.dp_groups():
            assert group == list(range(group[0], group[0] + 2))

    def test_layout_is_a_bijection(self):
        for layout in ("tp_inner", "dp_inner"):
            plan = ParallelismPlan(24, tp=2, pp=3, dp=4, layout=layout)
            nodes = {
                plan.node(d, p, t)
                for d in range(4) for p in range(3) for t in range(2)
            }
            assert nodes == set(range(24))

    def test_unknown_layout(self):
        with pytest.raises(ValueError, match="layout"):
            ParallelismPlan(8, tp=2, pp=2, dp=2, layout="ring_major")

    def test_grouped_allreduce_correct_under_both_layouts(self):
        for layout in ("tp_inner", "dp_inner"):
            plan = ParallelismPlan(24, tp=2, pp=3, dp=4, layout=layout)
            for groups in (plan.tp_groups(), plan.dp_groups()):
                sched = build_grouped_allreduce(groups, 12, 24, algorithm="ring")
                verify_grouped_allreduce(sched)


class TestPlacementCostTradeoff:
    def test_contiguity_cheapens_the_contiguous_collective(self):
        """The placement trade-off, measured: making a dimension contiguous
        makes *that* dimension's grouped All-reduce cheaper (shorter routes,
        fewer wavelength conflicts across groups)."""
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=64, n_wavelengths=16))
        elems = 64_000
        costs = {}
        for layout in ("tp_inner", "dp_inner"):
            plan = ParallelismPlan(64, tp=8, pp=1, dp=8, layout=layout)
            dp_sched = build_grouped_allreduce(
                plan.dp_groups(), elems, 64, algorithm="ring"
            )
            costs[layout] = net.execute(dp_sched).total_time
        assert costs["dp_inner"] <= costs["tp_inner"]
