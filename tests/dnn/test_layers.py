"""Layer-spec parameter counting tests."""

import pytest

from repro.dnn.layers import (
    AttentionSpec,
    BatchNormSpec,
    Conv2DSpec,
    DenseSpec,
    EmbeddingSpec,
    LayerNormSpec,
    TransformerBlockSpec,
)


class TestDense:
    def test_with_bias(self):
        assert DenseSpec(4096, 1000).param_count == 4096 * 1000 + 1000

    def test_without_bias(self):
        assert DenseSpec(4096, 1000, bias=False).param_count == 4096 * 1000

    def test_vgg_fc6(self):
        assert DenseSpec(7 * 7 * 512, 4096).param_count == 102_764_544


class TestConv2D:
    def test_plain(self):
        assert Conv2DSpec(3, 96, 11, 11).param_count == 3 * 96 * 121 + 96

    def test_grouped_halves_fan_in(self):
        plain = Conv2DSpec(96, 256, 5, 5).param_count
        grouped = Conv2DSpec(96, 256, 5, 5, groups=2).param_count
        assert grouped == (plain - 256) // 2 + 256

    def test_no_bias(self):
        assert Conv2DSpec(64, 64, 3, 3, bias=False).param_count == 64 * 64 * 9

    def test_groups_must_divide(self):
        with pytest.raises(ValueError):
            Conv2DSpec(3, 64, 3, 3, groups=2)


class TestNorms:
    def test_batchnorm_two_per_feature(self):
        assert BatchNormSpec(256).param_count == 512

    def test_layernorm_two_per_feature(self):
        assert LayerNormSpec(1024).param_count == 2048


class TestEmbedding:
    def test_table_size(self):
        assert EmbeddingSpec(1000, 64).param_count == 64_000


class TestAttention:
    def test_vit_large_attention(self):
        # dim=1024: qkv (1024*3072 + 3072) + proj (1024*1024 + 1024).
        spec = AttentionSpec(1024, 16)
        assert spec.param_count == 1024 * 3072 + 3072 + 1024 * 1024 + 1024

    def test_relative_position_bias_counts_per_head(self):
        base = AttentionSpec(64, 8).param_count
        with_rel = AttentionSpec(64, 8, relative_position_entries=10).param_count
        assert with_rel == base + 80

    def test_heads_must_divide_dim(self):
        with pytest.raises(ValueError):
            AttentionSpec(100, 16)


class TestTransformerBlock:
    def test_vit_large_block(self):
        block = TransformerBlockSpec(1024, 16, mlp_ratio=4)
        attn = AttentionSpec(1024, 16).param_count
        mlp = DenseSpec(1024, 4096).param_count + DenseSpec(4096, 1024).param_count
        assert block.param_count == attn + mlp + 2 * 2048

    def test_layer_scale_adds_two_gammas(self):
        plain = TransformerBlockSpec(64, 8).param_count
        scaled = TransformerBlockSpec(64, 8, layer_scale=True).param_count
        assert scaled == plain + 128
