"""Workload catalog tests."""

import pytest

from repro.dnn.workload import PAPER_WORKLOADS, DnnWorkload, workload_by_name


class TestPaperWorkloads:
    def test_four_models(self):
        assert [w.name for w in PAPER_WORKLOADS] == [
            "BEiT-L", "VGG16", "AlexNet", "ResNet50",
        ]

    def test_headline_sizes(self):
        sizes = {w.name: w.n_params for w in PAPER_WORKLOADS}
        assert sizes == {
            "BEiT-L": 307_000_000,
            "VGG16": 138_000_000,
            "AlexNet": 62_300_000,
            "ResNet50": 25_000_000,
        }

    def test_gradient_bytes_float32(self):
        w = workload_by_name("ResNet50")
        assert w.gradient_bytes == 100_000_000


class TestLookup:
    def test_by_name(self):
        assert workload_by_name("VGG16").n_params == 138_000_000

    def test_derived_differs_slightly(self):
        paper = workload_by_name("VGG16")
        derived = workload_by_name("VGG16", derived=True)
        assert derived.n_params == 138_357_544
        assert derived.n_params != paper.n_params

    def test_unknown(self):
        with pytest.raises(KeyError):
            workload_by_name("GPT-3")
        with pytest.raises(KeyError):
            workload_by_name("GPT-3", derived=True)


class TestValidation:
    def test_positive_params(self):
        with pytest.raises(ValueError):
            DnnWorkload("x", 0)

    def test_from_model(self):
        from repro.dnn.models import resnet50

        w = DnnWorkload.from_model(resnet50())
        assert w.name == "ResNet50"
        assert w.gradient_bytes == 25_557_032 * 4
