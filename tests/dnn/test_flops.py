"""FLOP counting tests, anchored to literature MAC counts."""

import pytest

from repro.dnn.flops import (
    attention_flops,
    conv2d_flops,
    dense_flops,
    layer_backward_flops,
    layer_forward_flops,
    norm_flops,
)
from repro.dnn.layers import AttentionSpec, Conv2DSpec, DenseSpec, LayerNormSpec
from repro.dnn.profile import profile_model

# Published per-sample forward MAC counts (1 MAC = 2 FLOPs in our
# convention): AlexNet ~0.72 GMAC, VGG16 ~15.5, ResNet50 ~4.1, ViT-L ~61.6.
LITERATURE_GMACS = {
    "AlexNet": 0.72,
    "VGG16": 15.5,
    "ResNet50": 4.1,
    "BEiT-L": 61.6,
}


class TestPrimitives:
    def test_dense(self):
        assert dense_flops(DenseSpec(4096, 1000)) == 2 * 4096 * 1000

    def test_conv(self):
        spec = Conv2DSpec(3, 96, 11, 11)
        assert conv2d_flops(spec, (55, 55)) == 2 * 3 * 11 * 11 * 96 * 55 * 55

    def test_grouped_conv_divides_fan_in(self):
        plain = conv2d_flops(Conv2DSpec(96, 256, 5, 5), (27, 27))
        grouped = conv2d_flops(Conv2DSpec(96, 256, 5, 5, groups=2), (27, 27))
        assert grouped == plain / 2

    def test_conv_requires_spatial(self):
        with pytest.raises(ValueError, match="output_spatial"):
            layer_forward_flops(Conv2DSpec(3, 8, 3, 3))
        with pytest.raises(ValueError):
            conv2d_flops(Conv2DSpec(3, 8, 3, 3), (0, 5))

    def test_attention_scales_quadratically_in_seq(self):
        spec = AttentionSpec(256, 8)
        f1 = attention_flops(spec, 100)
        f2 = attention_flops(spec, 200)
        assert f2 > 2 * f1  # projections double, attention quadruples

    def test_norm_cheap(self):
        assert norm_flops(1024) == 10240

    def test_backward_is_twice_forward(self):
        spec = DenseSpec(100, 50)
        assert layer_backward_flops(spec) == 2 * layer_forward_flops(spec)

    def test_unknown_spec_rejected(self):
        with pytest.raises(TypeError):
            layer_forward_flops(object())


class TestModelTotals:
    @pytest.mark.parametrize("name,gmacs", LITERATURE_GMACS.items())
    def test_within_literature_band(self, name, gmacs):
        profile = profile_model(name)
        fwd_gmacs = sum(l.forward_flops for l in profile.layers) / 2 / 1e9
        # Accept the usual counting-convention spread (pooling/activation
        # layers, grouped-variant differences): within 2x either way is the
        # order-of-magnitude fidelity the iteration model needs.
        assert gmacs / 2 < fwd_gmacs < gmacs * 2.1, (name, fwd_gmacs)

    def test_vgg_and_resnet_tight(self):
        # These two have unambiguous catalogs; expect within 5%.
        for name, gmacs in (("VGG16", 15.47), ("ResNet50", 3.87)):
            profile = profile_model(name)
            fwd = sum(l.forward_flops for l in profile.layers) / 2 / 1e9
            assert fwd == pytest.approx(gmacs, rel=0.06), name

    def test_norms_are_negligible(self):
        profile = profile_model("ResNet50")
        norm_share = sum(
            l.forward_flops for l in profile.layers if "Norm" in l.label
        ) / sum(l.forward_flops for l in profile.layers)
        assert norm_share < 0.02
