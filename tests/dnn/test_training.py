"""Data-parallel training tests: the Eq 5 equivalence, for every collective.

This is the end-to-end proof that the schedules are real All-reduces: k
workers synchronizing gradients through any of the five algorithms must
produce the same weights as one worker training on the full batch.
"""

import numpy as np
import pytest

from repro.dnn.autograd import MLP
from repro.dnn.datasets import SyntheticClassification
from repro.dnn.training import DataParallelTrainer

ALGORITHMS = ["ring", "bt", "rd", "hring", "wrht"]


def _factory():
    return MLP.of_widths([12, 10, 4], seed=11)


def _batches(n=4, batch=24):
    ds = SyntheticClassification(n_features=12, n_classes=4, seed=9)
    return [ds.batch(batch) for _ in range(n)]


def _single_worker_reference(batches, lr=0.05):
    model = _factory()
    losses = []
    for x, y in batches:
        losses.append(model.loss_and_gradients(x, y))
        model.sgd_step(lr)
    return model.state_vector(), losses


class TestEquivalence:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_matches_single_worker(self, algo):
        batches = _batches()
        ref_state, ref_losses = _single_worker_reference(batches)
        kwargs = {"n_wavelengths": 2} if algo == "wrht" else {}
        trainer = DataParallelTrainer(_factory, 6, algorithm=algo, lr=0.05, **kwargs)
        report = trainer.train(batches)
        assert np.allclose(trainer.consensus_state(), ref_state, rtol=1e-9, atol=1e-12)
        assert np.allclose(report.losses, ref_losses, rtol=1e-9)

    @pytest.mark.parametrize("n_workers", [2, 3, 5, 8])
    def test_worker_counts(self, n_workers):
        batches = _batches(n=2)
        ref_state, _ = _single_worker_reference(batches)
        trainer = DataParallelTrainer(
            _factory, n_workers, algorithm="wrht", lr=0.05, n_wavelengths=4
        )
        trainer.train(batches)
        assert np.allclose(trainer.consensus_state(), ref_state, rtol=1e-9, atol=1e-12)

    def test_uneven_shards_still_exact(self):
        # 25 samples over 6 workers: shards of 5,4,4,4,4,4 — the shard-size
        # re-weighting must keep the full-batch gradient exact.
        ds = SyntheticClassification(n_features=12, n_classes=4, seed=2)
        batches = [ds.batch(25)]
        ref_state, _ = _single_worker_reference(batches)
        trainer = DataParallelTrainer(_factory, 6, algorithm="ring", lr=0.05)
        trainer.train(batches)
        assert np.allclose(trainer.consensus_state(), ref_state, rtol=1e-9, atol=1e-12)


class TestTrainerMechanics:
    def test_single_worker_needs_no_schedule(self):
        trainer = DataParallelTrainer(_factory, 1, algorithm="ring")
        assert trainer.schedule is None
        trainer.train(_batches(n=1))

    def test_replicas_start_identical(self):
        trainer = DataParallelTrainer(_factory, 4, algorithm="bt")
        states = [w.state_vector() for w in trainer.workers]
        for s in states[1:]:
            assert np.array_equal(s, states[0])

    def test_losses_decrease(self):
        ds = SyntheticClassification(n_features=12, n_classes=4, noise_scale=0.3, seed=3)
        batches = [ds.batch(48) for _ in range(30)]
        trainer = DataParallelTrainer(_factory, 4, algorithm="wrht", lr=0.1,
                                      n_wavelengths=2)
        report = trainer.train(batches)
        assert np.mean(report.losses[-5:]) < np.mean(report.losses[:5]) / 2

    def test_batch_smaller_than_workers_rejected(self):
        trainer = DataParallelTrainer(_factory, 8, algorithm="ring")
        ds = SyntheticClassification(n_features=12, n_classes=4)
        with pytest.raises(ValueError, match="split"):
            trainer.train_step(*ds.batch(4))

    def test_comm_pricer_hook(self):
        from repro.optical import OpticalRingNetwork, OpticalSystemConfig

        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=4, n_wavelengths=4))

        def pricer(trainer):
            return net.execute(trainer.schedule).total_time

        trainer = DataParallelTrainer(_factory, 4, algorithm="wrht", n_wavelengths=4)
        report = trainer.train(_batches(n=1), comm_pricer=pricer)
        assert report.comm_time_per_iter > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DataParallelTrainer(_factory, 0)
        with pytest.raises(ValueError):
            DataParallelTrainer(_factory, 2, lr=0.0)
