"""Sparse (top-k) gradient synchronization tests."""

import numpy as np
import pytest

from repro.dnn.autograd import MLP
from repro.dnn.compression import CompressedDataParallelTrainer, TopKCompressor
from repro.dnn.datasets import SyntheticClassification
from repro.dnn.training import DataParallelTrainer


def _factory():
    return MLP.of_widths([16, 12, 4], seed=9)


def _batches(n=20, batch=32):
    ds = SyntheticClassification(n_features=16, n_classes=4, noise_scale=0.4, seed=6)
    return [ds.batch(batch) for _ in range(n)]


class TestTopKCompressor:
    def test_selects_largest_magnitudes(self):
        comp = TopKCompressor(ratio=0.25, error_feedback=False)
        grad = np.array([0.1, -5.0, 0.2, 3.0, -0.1, 0.0, 1.0, -0.3])
        indices, values = comp.compress(grad)
        assert set(indices.astype(int)) == {1, 3}
        assert set(values) == {-5.0, 3.0}

    def test_k_at_least_one(self):
        assert TopKCompressor(ratio=1e-9).k_for(100) == 1

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            TopKCompressor(ratio=0.0)
        with pytest.raises(ValueError):
            TopKCompressor(ratio=1.5)

    def test_error_feedback_retransmits_dropped_mass(self):
        comp = TopKCompressor(ratio=0.5, error_feedback=True)
        grad = np.array([4.0, 1.0])
        idx1, val1 = comp.compress(grad)
        assert idx1.astype(int).tolist() == [0]
        # Next round with zero new gradient: the dropped entry resurfaces.
        idx2, val2 = comp.compress(np.zeros(2))
        assert idx2.astype(int).tolist() == [1]
        assert val2.tolist() == [1.0]

    def test_no_feedback_drops_mass(self):
        comp = TopKCompressor(ratio=0.5, error_feedback=False)
        comp.compress(np.array([4.0, 1.0]))
        idx2, val2 = comp.compress(np.zeros(2))
        assert val2.tolist() == [0.0]

    def test_reset(self):
        comp = TopKCompressor(ratio=0.5)
        comp.compress(np.array([4.0, 1.0]))
        comp.reset()
        _, val = comp.compress(np.zeros(2))
        assert val.tolist() == [0.0]


class TestCompressedTrainer:
    def test_full_ratio_matches_dense_training(self):
        batches = _batches(n=4)
        dense = DataParallelTrainer(_factory, 4, algorithm="ring", lr=0.05)
        sparse = CompressedDataParallelTrainer(
            _factory, 4, compression_ratio=1.0, lr=0.05
        )
        for x, y in batches:
            dense.train_step(x, y)
            sparse.train_step(x, y)
        assert np.allclose(
            sparse.consensus_state(), dense.consensus_state(),
            rtol=1e-9, atol=1e-12,
        )

    def test_sparse_training_converges(self):
        trainer = CompressedDataParallelTrainer(
            _factory, 4, compression_ratio=0.1, lr=0.1
        )
        report = trainer.train(_batches(n=40, batch=48))
        assert np.mean(report.losses[-5:]) < np.mean(report.losses[:5]) / 2

    def test_error_feedback_helps(self):
        batches = _batches(n=40, batch=48)
        with_ef = CompressedDataParallelTrainer(
            _factory, 4, compression_ratio=0.05, error_feedback=True, lr=0.1
        ).train(batches)
        without = CompressedDataParallelTrainer(
            _factory, 4, compression_ratio=0.05, error_feedback=False, lr=0.1
        ).train(batches)
        assert np.mean(with_ef.losses[-5:]) < np.mean(without.losses[-5:])

    def test_replicas_stay_consistent(self):
        trainer = CompressedDataParallelTrainer(_factory, 6, compression_ratio=0.2)
        trainer.train(_batches(n=3))
        trainer.consensus_state()  # raises on divergence

    def test_traffic_reduction_accounting(self):
        trainer = CompressedDataParallelTrainer(_factory, 4, compression_ratio=0.01)
        assert trainer.bytes_per_sync < trainer.dense_bytes_per_sync / 10
        assert trainer.k == max(1, int(np.ceil(0.01 * trainer.n_params)))

    def test_single_worker_degenerates(self):
        trainer = CompressedDataParallelTrainer(_factory, 1, compression_ratio=0.5)
        report = trainer.train(_batches(n=2))
        assert len(report.losses) == 2
