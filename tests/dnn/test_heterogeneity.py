"""Heterogeneous-fleet tests (future-work extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn.autograd import MLP
from repro.dnn.datasets import SyntheticClassification
from repro.dnn.heterogeneity import (
    HeterogeneousIteration,
    proportional_shards,
)
from repro.dnn.profile import DeviceModel, profile_model
from repro.dnn.training import DataParallelTrainer

PROFILE = profile_model("ResNet50")


class TestProportionalShards:
    def test_homogeneous_is_equal(self):
        assert proportional_shards(32, [1.0] * 4) == [8, 8, 8, 8]

    def test_proportionality(self):
        shards = proportional_shards(30, [1.0, 2.0])
        assert shards == [10, 20]

    def test_exact_total_property(self):
        shards = proportional_shards(17, [1.0, 3.0, 2.2])
        assert sum(shards) == 17
        assert all(s >= 1 for s in shards)

    def test_validation(self):
        with pytest.raises(ValueError):
            proportional_shards(4, [])
        with pytest.raises(ValueError):
            proportional_shards(4, [1.0, -1.0])
        with pytest.raises(ValueError):
            proportional_shards(2, [1.0, 1.0, 1.0])

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 12),
        st.integers(12, 500),
        st.lists(st.floats(0.1, 10.0), min_size=1, max_size=12),
    )
    def test_total_and_minimum_property(self, _, batch, speeds):
        shards = proportional_shards(batch, speeds)
        assert sum(shards) == batch
        assert all(s >= 1 for s in shards)
        assert len(shards) == len(speeds)


class TestHeterogeneousIteration:
    def test_straggler_governs_naive_policy(self):
        fast = HeterogeneousIteration(PROFILE, [1.0] * 4, lambda b: 0.0)
        mixed = HeterogeneousIteration(PROFILE, [1.0, 1.0, 1.0, 0.5], lambda b: 0.0)
        batch = 64
        assert mixed.equal_shards(batch).compute == pytest.approx(
            2 * fast.equal_shards(batch).compute
        )

    def test_balancing_recovers_most_of_the_loss(self):
        mixed = HeterogeneousIteration(
            PROFILE, [1.0, 1.0, 1.0, 0.5], lambda b: 0.0
        )
        assert mixed.balancing_speedup(70) > 1.3

    def test_homogeneous_fleet_gains_nothing(self):
        fleet = HeterogeneousIteration(PROFILE, [1.0] * 8, lambda b: 1e-3)
        assert fleet.balancing_speedup(64) == pytest.approx(1.0)

    def test_comm_fraction_rises_with_stragglers_removed(self):
        # Balancing shrinks compute, so the (fixed) comm share grows.
        mixed = HeterogeneousIteration(
            PROFILE, [1.0, 0.25], lambda b: 5e-3
        )
        naive = mixed.equal_shards(32)
        balanced = mixed.balanced_shards(32)
        assert balanced.comm_fraction > naive.comm_fraction
        assert balanced.total < naive.total

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousIteration(PROFILE, [], lambda b: 0.0)
        with pytest.raises(ValueError):
            HeterogeneousIteration(PROFILE, [1.0, 0.0], lambda b: 0.0)


class TestTrainerIntegration:
    def test_uneven_shards_stay_exact(self):
        """Speed-proportional sharding must not change the training
        trajectory at all — the Eq 5 exactness extends to uneven splits."""
        ds = SyntheticClassification(n_features=10, n_classes=3, seed=1)
        batches = [ds.batch(24) for _ in range(3)]
        factory = lambda: MLP.of_widths([10, 8, 3], seed=5)  # noqa: E731

        reference = factory()
        for x, y in batches:
            reference.loss_and_gradients(x, y)
            reference.sgd_step(0.05)

        trainer = DataParallelTrainer(factory, 4, algorithm="wrht",
                                      n_wavelengths=2, lr=0.05)
        shards = proportional_shards(24, [2.0, 1.0, 1.0, 0.5])
        for x, y in batches:
            trainer.train_step(x, y, shard_sizes=shards)
        assert np.allclose(
            trainer.consensus_state(), reference.state_vector(),
            rtol=1e-9, atol=1e-12,
        )

    def test_shard_size_validation(self):
        ds = SyntheticClassification(n_features=10, n_classes=3)
        trainer = DataParallelTrainer(
            lambda: MLP.of_widths([10, 3]), 4, algorithm="ring"
        )
        x, y = ds.batch(20)
        with pytest.raises(ValueError, match="shard sizes"):
            trainer.train_step(x, y, shard_sizes=[5, 5, 5])
        with pytest.raises(ValueError, match="sum"):
            trainer.train_step(x, y, shard_sizes=[5, 5, 5, 6])