"""Synthetic dataset tests."""

import numpy as np
import pytest

from repro.dnn.datasets import SyntheticClassification


class TestSyntheticClassification:
    def test_shapes(self):
        ds = SyntheticClassification(n_features=20, n_classes=4)
        x, y = ds.batch(16)
        assert x.shape == (16, 20)
        assert y.shape == (16,)
        assert set(np.unique(y)) <= set(range(4))

    def test_deterministic_across_instances(self):
        a = SyntheticClassification(seed=5).batch(8)
        b = SyntheticClassification(seed=5).batch(8)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_stream_advances(self):
        ds = SyntheticClassification(seed=5)
        x1, _ = ds.batch(8)
        x2, _ = ds.batch(8)
        assert not np.array_equal(x1, x2)

    def test_classes_are_separable(self):
        # With small noise, nearest-centroid classification must be easy —
        # that's what makes the training examples meaningful.
        ds = SyntheticClassification(
            n_features=10, n_classes=3, noise_scale=0.1, seed=1
        )
        x, y = ds.batch(300)
        centroids = ds._centroids
        pred = np.argmin(
            ((x[:, None, :] - centroids[None]) ** 2).sum(-1), axis=1
        )
        assert (pred == y).mean() > 0.99

    def test_image_batch_shape(self):
        ds = SyntheticClassification(n_features=784)
        x, _ = ds.image_batch(4)
        assert x.shape == (4, 1, 28, 28)

    def test_image_batch_shape_mismatch(self):
        ds = SyntheticClassification(n_features=100)
        with pytest.raises(ValueError):
            ds.image_batch(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticClassification(noise_scale=-1.0)
        with pytest.raises(ValueError):
            SyntheticClassification().batch(0)
