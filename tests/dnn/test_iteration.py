"""Iteration (compute/communication overlap) model tests."""

import pytest

from repro.core.timing import CostModel
from repro.dnn.iteration import (
    IterationModel,
    comm_backend_from_analytical,
    make_buckets,
)
from repro.dnn.profile import DeviceModel, profile_model

DEVICE = DeviceModel()
PROFILE = profile_model("ResNet50")


def flat_comm(seconds: float):
    """A pricing function charging a constant per call (latency-only)."""
    return lambda grad_bytes: seconds


def linear_comm(rate: float):
    """Pure-bandwidth pricing."""
    return lambda grad_bytes: grad_bytes / rate


class TestBuckets:
    def test_zero_threshold_one_bucket_per_layer(self):
        buckets = make_buckets(PROFILE, 32, DEVICE, bucket_bytes=0)
        schedule = PROFILE.gradient_release_schedule(32, DEVICE)
        assert len(buckets) == len(schedule)

    def test_infinite_threshold_single_bucket(self):
        buckets = make_buckets(PROFILE, 32, DEVICE, bucket_bytes=float("inf"))
        assert len(buckets) == 1
        assert buckets[0].grad_bytes == PROFILE.total_params * 4

    def test_bytes_conserved(self):
        buckets = make_buckets(PROFILE, 32, DEVICE, bucket_bytes=5e6)
        assert sum(b.grad_bytes for b in buckets) == PROFILE.total_params * 4

    def test_release_times_monotone(self):
        buckets = make_buckets(PROFILE, 32, DEVICE, bucket_bytes=5e6)
        times = [b.release_time for b in buckets]
        assert times == sorted(times)

    def test_threshold_respected(self):
        buckets = make_buckets(PROFILE, 32, DEVICE, bucket_bytes=5e6)
        for bucket in buckets[:-1]:
            assert bucket.grad_bytes >= 5e6

    def test_extras_ride_last_bucket(self):
        beit = profile_model("BEiT-L")
        buckets = make_buckets(beit, 8, DEVICE, bucket_bytes=float("inf"))
        assert buckets[0].grad_bytes == beit.total_params * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            make_buckets(PROFILE, 32, DEVICE, bucket_bytes=-1)


class TestIterationModel:
    def test_no_overlap_decomposition(self):
        model = IterationModel(PROFILE, flat_comm(0.5), DEVICE)
        breakdown = model.no_overlap(32)
        assert breakdown.comm_exposed == 0.5
        assert breakdown.total == pytest.approx(
            breakdown.forward + breakdown.backward + 0.5
        )

    def test_full_overlap_hides_cheap_comm(self):
        # Communication far cheaper than backward: fully hidden except the
        # last bucket's tail.
        model = IterationModel(PROFILE, linear_comm(1e12), DEVICE)
        breakdown = model.overlapped(128, bucket_bytes=1e6)
        assert breakdown.comm_exposed < 0.05 * breakdown.comm_total + 1e-3
        assert breakdown.total < model.no_overlap(128).total

    def test_expensive_comm_dominates_regardless(self):
        model = IterationModel(PROFILE, linear_comm(1e6), DEVICE)  # 1 MB/s
        serial = model.no_overlap(32)
        overlapped = model.overlapped(32)
        assert serial.comm_fraction > 0.9
        assert overlapped.comm_fraction > 0.9

    def test_overlap_never_slower_with_single_bucket(self):
        model = IterationModel(PROFILE, linear_comm(40e9), DEVICE)
        serial = model.no_overlap(32)
        one_bucket = model.overlapped(32, bucket_bytes=float("inf"))
        # A single bucket releasing at backward end reproduces the serial
        # schedule exactly.
        assert one_bucket.total == pytest.approx(serial.total)

    def test_latency_bound_comm_punishes_small_buckets(self):
        # Constant per-call cost: more buckets = more exposed time.
        model = IterationModel(PROFILE, flat_comm(0.01), DEVICE)
        few = model.overlapped(32, bucket_bytes=float("inf"))
        many = model.overlapped(32, bucket_bytes=0)
        assert many.comm_total > few.comm_total

    def test_comm_fraction_bounds(self):
        model = IterationModel(PROFILE, flat_comm(1.0), DEVICE)
        breakdown = model.no_overlap(32)
        assert 0 <= breakdown.comm_fraction < 1

    def test_analytical_backend_adapter(self):
        cost = CostModel(line_rate=40e9, step_overhead=25e-6)
        price = comm_backend_from_analytical("WRHT", 1024, cost, w=64)
        assert price(100e6) == pytest.approx(3 * (100e6 / 40e9 + 25e-6))


class TestMotivationClaim:
    def test_comm_fraction_grows_with_cluster_size(self):
        """Sec 1 [35]: at fixed global batch, scaling out shrinks per-worker
        compute while E-Ring communication grows — the fraction must rise
        monotonically and reach the 50%+ regime at scale (strict units)."""
        cost = CostModel(line_rate=5e9, step_overhead=75e-6)  # E-Ring-like
        global_batch = 1024
        fractions = []
        for n in (16, 64, 256, 1024):
            price = comm_backend_from_analytical("Ring", n, cost)
            model = IterationModel(PROFILE, price, DEVICE)
            breakdown = model.no_overlap(max(1, global_batch // n))
            fractions.append(breakdown.comm_fraction)
        assert fractions == sorted(fractions)
        assert fractions[0] < 0.5
        assert fractions[-1] > 0.5
