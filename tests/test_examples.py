"""Example-script smoke tests.

Every example must stay runnable — examples are the quickstart surface of
the repository and rot silently otherwise. The fast ones run end to end in
a subprocess; the two long-running sweeps are exercised with reduced
arguments or skipped with a marker explaining why.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST = [
    ("quickstart.py", [], "Table 1 step counts"),
    ("torus_extension.py", [], "passed the exact-sum"),
    ("mpi_style_collectives.py", [], "reduce_scatter + allgather"),
    ("design_space_exploration.py", [], "optical constraints"),
    ("failure_recovery.py", [], "replanning"),
    ("train_data_parallel.py", ["--algorithm", "bt"], "correct All-reduce"),
]


def _run(script: str, args: list[str], timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, (script, result.stderr[-2000:])
    return result.stdout


@pytest.mark.parametrize("script,args,marker", FAST, ids=[f[0] for f in FAST])
def test_fast_examples_run(script, args, marker):
    stdout = _run(script, args)
    assert marker in stdout, f"{script} output missing {marker!r}"


def test_interconnect_comparison_reduced():
    stdout = _run("interconnect_comparison.py", ["--nodes", "32", "64"])
    assert "O-Ring vs E-Ring" in stdout


def test_llm_hybrid_parallelism_runs():
    stdout = _run("llm_hybrid_parallelism.py", [], timeout=300)
    assert "per-step communication" in stdout
    assert "NO" in stdout  # the pure-DP infeasibility row


def test_every_example_has_a_docstring_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""')), script
        assert '__name__ == "__main__"' in text, script
