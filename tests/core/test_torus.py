"""Torus/mesh WRHT extension tests (Sec 6.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.verify import verify_allreduce
from repro.core.torus import (
    build_torus_wrht_schedule,
    torus_alltoall_wavelengths,
    torus_wrht_steps,
)


class TestAlltoallRequirement:
    def test_torus_vs_mesh(self):
        # The mesh line model needs twice the wavelengths of the torus ring.
        assert torus_alltoall_wavelengths(8, "torus") == 8
        assert torus_alltoall_wavelengths(8, "mesh") == 16

    def test_single_node(self):
        assert torus_alltoall_wavelengths(1) == 0

    def test_bad_topology(self):
        with pytest.raises(ValueError):
            torus_alltoall_wavelengths(4, "hypercube")


class TestStepFormula:
    def test_square_torus(self):
        # 8x8 torus, m=5: rows need ceil(log5 8)=2 levels; column phase over
        # 8 reps: 2 levels, all-to-all feasible (8 wavelengths <= 64).
        assert torus_wrht_steps(8, 8, 5, 64) == 2 * 2 + (2 * 2 - 1)

    def test_degenerate_row(self):
        assert torus_wrht_steps(1, 8, 3, 64) == 2 * 2  # rows=1: row phase only

    def test_degenerate_column(self):
        assert torus_wrht_steps(8, 1, 3, 64) == 3  # pure column all-reduce


class TestScheduleCorrectness:
    @pytest.mark.parametrize(
        "rows,cols,m",
        [(2, 2, 2), (3, 3, 3), (4, 4, 3), (4, 8, 3), (8, 8, 5), (1, 8, 3), (8, 1, 3), (5, 7, 4)],
    )
    def test_allreduce_postcondition(self, rows, cols, m):
        sched = build_torus_wrht_schedule(rows, cols, 30, m=m, n_wavelengths=16)
        verify_allreduce(sched)

    def test_step_count_matches_formula(self):
        for rows, cols, m, w in [(4, 4, 3, 16), (8, 8, 5, 64), (3, 9, 3, 4)]:
            sched = build_torus_wrht_schedule(rows, cols, 10, m=m, n_wavelengths=w)
            assert sched.n_steps == torus_wrht_steps(rows, cols, m, w)

    def test_mesh_topology_also_correct(self):
        sched = build_torus_wrht_schedule(4, 4, 20, m=3, n_wavelengths=8, topology="mesh")
        verify_allreduce(sched)

    def test_mesh_may_lose_shortcut_torus_keeps(self):
        # 8 wavelengths: torus all-to-all among 8 reps fits (needs 8), the
        # mesh line model does not (needs 16) -> mesh takes one more step.
        torus = build_torus_wrht_schedule(8, 8, 10, m=8, n_wavelengths=8, topology="torus")
        mesh = build_torus_wrht_schedule(8, 8, 10, m=8, n_wavelengths=8, topology="mesh")
        assert torus.n_steps + 1 == mesh.n_steps

    def test_single_node(self):
        sched = build_torus_wrht_schedule(1, 1, 10)
        assert sched.n_steps == 0

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            build_torus_wrht_schedule(4, 4, 10, m=1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 10), st.integers(1, 10), st.integers(2, 6), st.integers(1, 64))
    def test_allreduce_property(self, rows, cols, m, w):
        sched = build_torus_wrht_schedule(rows, cols, 12, m=m, n_wavelengths=w)
        if sched.n_steps:
            verify_allreduce(sched)
