"""Optical constraint tests (Sec 4.4, Eqs 7–13)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.constraints import (
    OpticalPhyParams,
    ber_from_snr,
    crosstalk_feasible,
    group_size_feasible,
    insertion_loss_db,
    loss_feasible,
    max_communication_length,
    max_group_size,
    required_snr_for_ber,
    snr_db,
    worst_case_crosstalk_power,
)

PARAMS = OpticalPhyParams()


class TestMaxCommunicationLength:
    def test_single_level_is_half_group(self):
        # Eq 7 first branch: log_m' N == 1.
        assert max_communication_length(129, 100) == 64

    def test_two_levels_is_m_power(self):
        # Eq 7 second branch: m'^(levels-1).
        assert max_communication_length(129, 1024) == 129

    def test_three_levels(self):
        assert max_communication_length(5, 100) == 25  # levels=3 -> 5^2

    def test_monotone_in_n_for_fixed_m(self):
        assert max_communication_length(5, 4) <= max_communication_length(5, 1000)


class TestInsertionLoss:
    def test_eq8_linear_in_hops(self):
        assert insertion_loss_db(100, PARAMS) == pytest.approx(
            PARAMS.modulator_loss_db + 100 * PARAMS.per_interface_loss_db
        )

    def test_eq9_budget(self):
        # Default budget: (13 - 4.5 - 1.5) / 0.05 = 140 hops max.
        assert loss_feasible(129, 1024, PARAMS)  # L_max = 129 <= 140
        assert not loss_feasible(257, 1024, PARAMS)  # L_max = 257 > 140

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            insertion_loss_db(-1, PARAMS)


class TestCrosstalk:
    def test_eq12_noise_accumulates_with_hops(self):
        assert worst_case_crosstalk_power(10, PARAMS) < worst_case_crosstalk_power(100, PARAMS)

    def test_eq11_snr(self):
        assert snr_db(1.0, 1e-8, 0.0) == pytest.approx(80.0)

    def test_eq13_ber_roundtrip(self):
        for ber in (1e-9, 1e-12, 1e-6):
            assert ber_from_snr(required_snr_for_ber(ber)) == pytest.approx(ber)

    def test_ber_target_snr_value(self):
        # BER <= 1e-9 needs SNR >= -4 ln(2e-9) ~ 80.1.
        assert required_snr_for_ber(1e-9) == pytest.approx(-4 * math.log(2e-9))

    def test_trivial_ber(self):
        assert required_snr_for_ber(0.5) == 0.0

    def test_crosstalk_binds_near_paper_scale(self):
        assert crosstalk_feasible(129, 1024, PARAMS)
        assert not crosstalk_feasible(301, 1024, PARAMS)


class TestMaxGroupSize:
    def test_paper_configuration_is_feasible(self):
        # Defaults are tuned so the paper's largest evaluated group size
        # (m=129 on 1024 nodes) passes both constraints.
        assert group_size_feasible(129, 1024, PARAMS)

    def test_returns_odd(self):
        assert max_group_size(1024, PARAMS) % 2 == 1

    def test_wavelength_cap(self):
        assert max_group_size(1024, PARAMS, w=8) <= 17

    def test_default_params(self):
        assert max_group_size(1024) >= 129

    def test_infeasible_budget_raises(self):
        tight = OpticalPhyParams(laser_power_dbm=1.0)
        with pytest.raises(ValueError, match="no feasible group size"):
            max_group_size(1024, tight)

    @given(st.integers(4, 4096))
    def test_result_always_feasible(self, n):
        m = max_group_size(n, PARAMS, w=64)
        assert group_size_feasible(m, n, PARAMS)
        assert 3 <= m <= min(n, 129)


class TestParamValidation:
    def test_rejects_nonpositive_loss(self):
        with pytest.raises(ValueError):
            OpticalPhyParams(per_interface_loss_db=0.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            OpticalPhyParams(other_noise_mw=-1.0)
