"""Step-count formula tests (Table 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.steps import bt_steps, hring_steps, rd_steps, ring_steps, steps_table, wrht_steps


class TestTable1Anchors:
    """The exact rightmost column of Table 1 (N=1024, w=64)."""

    def test_ring(self):
        assert ring_steps(1024) == 2046

    def test_hring_m5(self):
        assert hring_steps(1024, 5, 64) == 417

    def test_bt(self):
        assert bt_steps(1024) == 20

    def test_wrht_m129(self):
        assert wrht_steps(1024, 129, 64) == 3

    def test_full_table(self):
        table = steps_table(1024, 64)
        assert table == {"Ring": 2046, "H-Ring": 417, "BT": 20, "RD": 10, "WRHT": 3}


class TestRing:
    @given(st.integers(1, 100_000))
    def test_formula(self, n):
        assert ring_steps(n) == 2 * (n - 1)


class TestBT:
    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 2), (3, 4), (4, 4), (1024, 20), (1025, 22)])
    def test_values(self, n, expected):
        assert bt_steps(n) == expected


class TestRD:
    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (4, 2), (1024, 10)])
    def test_powers_of_two(self, n, expected):
        assert rd_steps(n) == expected

    @pytest.mark.parametrize("n,expected", [(3, 3), (5, 4), (1000, 11)])
    def test_non_powers_add_fixups(self, n, expected):
        assert rd_steps(n) == expected


class TestHRing:
    def test_wavelength_regimes(self):
        # w >= m: first closed form; w < m: serialized form with more steps.
        assert hring_steps(1024, 5, 64) == 417
        assert hring_steps(1024, 5, 4) == math.ceil(2 * (2 * 25 + 1024) / 5) - 6

    def test_serialized_form_has_more_steps(self):
        assert hring_steps(1024, 5, 4) > hring_steps(1024, 5, 5)

    def test_group_larger_than_nodes_rejected(self):
        with pytest.raises(ValueError):
            hring_steps(4, 5, 64)


class TestWrht:
    def test_alltoall_shortcut_saves_one_step(self):
        # w=64 allows the 8-rep all-to-all; w=7 does not.
        assert wrht_steps(1024, 129, 64) == 3
        assert wrht_steps(1024, 129, 7) == 4

    def test_unconstrained_wavelengths(self):
        assert wrht_steps(1024, 129, None) == 3

    def test_single_node(self):
        assert wrht_steps(1, 5, 64) == 0

    def test_m_below_2_rejected(self):
        with pytest.raises(ValueError):
            wrht_steps(10, 1, 64)

    @given(st.integers(2, 5000), st.integers(2, 300), st.integers(1, 256))
    def test_bounds(self, n, m, w):
        theta = wrht_steps(n, m, w)
        levels = 0
        remaining = n
        while remaining > 1:
            remaining = math.ceil(remaining / m)
            levels += 1
        assert theta in (2 * levels, 2 * levels - 1)

    def test_lemma1_lower_bound(self):
        # At m = 2w+1, no larger group size can reduce steps further for
        # the same wavelength budget (Lemma 1).
        n, w = 1024, 64
        best = wrht_steps(n, 2 * w + 1, w)
        for m in (3, 5, 17, 33, 65, 101, 129):
            assert wrht_steps(n, m, w) >= best

    @given(st.integers(2, 4096), st.integers(1, 128))
    def test_monotone_nonincreasing_in_m_at_lemma_optimum(self, n, w):
        m_opt = 2 * w + 1
        theta_opt = wrht_steps(n, min(m_opt, max(n, 2)), w)
        for m in (2, 3, max(2, m_opt // 2)):
            assert wrht_steps(n, m, w) >= theta_opt
