"""Hierarchical grouping tests (Sec 4.1.1 structure)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.grouping import (
    Group,
    hierarchical_grouping,
    middle_index,
    partition_ring,
)


class TestMiddleIndex:
    @pytest.mark.parametrize("size,expected", [(1, 0), (2, 1), (3, 1), (5, 2), (129, 64)])
    def test_values(self, size, expected):
        assert middle_index(size) == expected

    def test_odd_sides_balanced(self):
        # Odd groups: exactly ⌊m/2⌋ members on each side of the middle.
        for m in (3, 5, 129):
            g = Group(tuple(range(m)), middle_index(m))
            before, after = g.sides()
            assert len(before) == len(after) == m // 2


class TestGroup:
    def test_rep_must_be_member(self):
        with pytest.raises(ValueError):
            Group((0, 1, 2), representative=9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Group((), representative=0)

    def test_sides_order_nearest_first(self):
        g = Group((10, 11, 12, 13, 14), representative=12)
        before, after = g.sides()
        assert before == (11, 10)  # nearest to rep first
        assert after == (13, 14)

    def test_non_representatives(self):
        g = Group((0, 1, 2), representative=1)
        assert g.non_representatives == (0, 2)


class TestPartitionRing:
    def test_paper_example_15_nodes_m5(self):
        # The motivating example: 15 nodes, three groups of 5, middle reps.
        groups = partition_ring(list(range(15)), 5)
        assert len(groups) == 3
        assert [g.representative for g in groups] == [2, 7, 12]

    def test_partial_last_group(self):
        groups = partition_ring(list(range(7)), 3)
        assert [g.size for g in groups] == [3, 3, 1]

    def test_covers_population_exactly(self):
        pop = list(range(100))
        groups = partition_ring(pop, 7)
        flat = [n for g in groups for n in g.members]
        assert flat == pop

    def test_duplicate_population_rejected(self):
        with pytest.raises(ValueError):
            partition_ring([1, 1, 2], 2)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            partition_ring([], 3)

    @given(st.integers(1, 300), st.integers(1, 50))
    def test_partition_property(self, n, m):
        groups = partition_ring(list(range(n)), m)
        assert sum(g.size for g in groups) == n
        assert len(groups) == math.ceil(n / m)
        for g in groups:
            assert g.size <= m
            assert g.representative == g.members[len(g.members) // 2]


class TestHierarchicalGrouping:
    def test_paper_config_1024_m129(self):
        levels = hierarchical_grouping(1024, 129)
        assert len(levels) == 2
        assert len(levels[0].groups) == 8
        assert len(levels[1].groups) == 1
        assert levels[1].groups[0].size == 8

    def test_level_count_matches_log(self):
        for n in (2, 10, 100, 1000, 4096):
            for m in (2, 3, 5, 17, 129):
                levels = hierarchical_grouping(n, m)
                expected = 0
                remaining = n
                while remaining > 1:
                    remaining = math.ceil(remaining / m)
                    expected += 1
                assert len(levels) == expected, (n, m)

    def test_single_node_no_levels(self):
        assert hierarchical_grouping(1, 5) == ()

    def test_m1_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_grouping(10, 1)

    def test_level1_population_is_all_nodes(self):
        levels = hierarchical_grouping(50, 7)
        assert levels[0].population == tuple(range(50))

    def test_next_level_population_is_prev_reps(self):
        levels = hierarchical_grouping(200, 6)
        for prev, cur in zip(levels, levels[1:]):
            assert cur.population == prev.representatives

    @given(st.integers(2, 500), st.integers(2, 40))
    def test_hierarchy_terminates_with_single_group(self, n, m):
        levels = hierarchical_grouping(n, m)
        assert len(levels[-1].groups) == 1
        # Every original node appears exactly once at level 1.
        assert sorted(levels[0].population) == list(range(n))
