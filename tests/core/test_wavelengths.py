"""Wavelength arithmetic tests (Sec 4.1.2, Lemma 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.grouping import hierarchical_grouping
from repro.core.wavelengths import (
    alltoall_feasible,
    alltoall_wavelengths,
    group_wavelengths,
    optimal_group_size,
    reduce_levels,
    representatives_at_last_level,
    wrht_wavelength_requirement,
)


class TestGroupWavelengths:
    @pytest.mark.parametrize("m,expected", [(1, 0), (2, 1), (3, 1), (5, 2), (129, 64)])
    def test_floor_half(self, m, expected):
        assert group_wavelengths(m) == expected


class TestAlltoallWavelengths:
    @pytest.mark.parametrize("k,expected", [(1, 0), (2, 1), (3, 2), (8, 8), (32, 128)])
    def test_ceil_k2_over_8(self, k, expected):
        assert alltoall_wavelengths(k) == expected


class TestOptimalGroupSize:
    def test_lemma1(self):
        assert optimal_group_size(64) == 129
        assert optimal_group_size(1) == 3

    def test_consistency_with_group_requirement(self):
        # The optimum is the largest m whose collect fits in w wavelengths.
        for w in (1, 4, 16, 64):
            m = optimal_group_size(w)
            assert group_wavelengths(m) == w
            assert group_wavelengths(m + 1) > w


class TestReduceLevels:
    @pytest.mark.parametrize(
        "n,m,expected",
        [(1, 5, 0), (5, 5, 1), (6, 5, 2), (1024, 129, 2), (1024, 2, 10), (4096, 129, 2)],
    )
    def test_values(self, n, m, expected):
        assert reduce_levels(n, m) == expected

    @given(st.integers(2, 100_000), st.integers(2, 200))
    def test_matches_ceil_log(self, n, m):
        levels = reduce_levels(n, m)
        # levels is the minimal L with m^L >= N... for the iterated-ceil
        # recurrence; it is always within the ceil-log bound.
        assert m ** levels >= n
        if levels > 0:
            assert math.ceil(n / m ** (levels - 1)) > 1


class TestLastLevelReps:
    def test_paper_config(self):
        assert representatives_at_last_level(1024, 129) == 8

    def test_matches_grouping(self):
        for n in (7, 64, 300, 1024):
            for m in (3, 5, 17, 129):
                levels = hierarchical_grouping(n, m)
                if not levels:
                    continue
                assert representatives_at_last_level(n, m) == len(
                    levels[-1].population
                ), (n, m)


class TestFeasibility:
    def test_paper_config_alltoall_fits(self):
        # N=1024, m=129: m*=8 reps need ceil(64/8)=8 <= 64 wavelengths.
        assert alltoall_feasible(1024, 129, 64)

    def test_infeasible_with_too_few_wavelengths(self):
        assert not alltoall_feasible(1024, 129, 7)

    def test_whole_group_alltoall_when_n_equals_m(self):
        # N=m: the single step can be an all-to-all among all N nodes.
        assert alltoall_feasible(5, 5, 1000)

    def test_single_node_never_alltoall(self):
        assert not alltoall_feasible(1, 5, 1000)

    def test_requirement_is_peak_demand(self):
        for n, m in [(1024, 129), (100, 5), (64, 3)]:
            req = wrht_wavelength_requirement(n, m)
            assert req == group_wavelengths(min(m, n))
