"""Analytical cost model tests (Eq 6 and baselines)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.steps import bt_steps, hring_steps, rd_steps, ring_steps, wrht_steps
from repro.core.timing import (
    CostModel,
    algorithm_time,
    bt_time,
    hring_time,
    rd_time,
    ring_time,
    wrht_time,
)

# Table 2 calibrated parameters: 40 GB/s per wavelength, 25 µs per step.
MODEL = CostModel(line_rate=40e9, step_overhead=25e-6)


class TestCostModel:
    def test_payload_time_pure_bandwidth(self):
        m = CostModel(line_rate=100.0, step_overhead=0.0)
        assert m.payload_time(250.0) == 2.5

    def test_oeo_term_per_packet(self):
        m = CostModel(
            line_rate=1e12, step_overhead=0.0,
            oeo_delay_per_packet=1e-9, packet_bytes=72,
        )
        # 144 bytes = 2 packets.
        assert m.payload_time(144.0) == pytest.approx(144 / 1e12 + 2e-9)

    def test_step_time_adds_overhead(self):
        assert MODEL.step_time(0.0) == 25e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(line_rate=0.0, step_overhead=1.0)
        with pytest.raises(ValueError):
            CostModel(line_rate=1.0, step_overhead=-1.0)
        with pytest.raises(ValueError):
            MODEL.payload_time(-1.0)


class TestEquationSix:
    """T = d·θ/B + a·θ for the constant-payload algorithms."""

    def test_wrht_matches_eq6(self):
        n, m, w, d = 1024, 129, 64, 100e6
        theta = wrht_steps(n, m, w)
        assert wrht_time(n, d, MODEL, m, w) == pytest.approx(
            theta * (d / 40e9 + 25e-6)
        )

    def test_bt_full_payload_per_step(self):
        n, d = 1024, 552e6
        assert bt_time(n, d, MODEL) == pytest.approx(bt_steps(n) * (d / 40e9 + 25e-6))

    def test_rd_full_payload_per_step(self):
        n, d = 256, 1e6
        assert rd_time(n, d, MODEL) == pytest.approx(rd_steps(n) * (d / 40e9 + 25e-6))

    def test_ring_chunked_payload(self):
        n, d = 1024, 1024e6
        assert ring_time(n, d, MODEL) == pytest.approx(
            ring_steps(n) * (d / n / 40e9 + 25e-6)
        )

    def test_single_node_costs_nothing(self):
        assert ring_time(1, 1e6, MODEL) == 0.0
        assert wrht_time(1, 1e6, MODEL, m=5, w=4) == 0.0


class TestHRingTime:
    def test_overhead_matches_closed_form_step_count(self):
        n, m, w = 1024, 5, 64
        # With d -> 0 only the per-step overhead remains.
        t = hring_time(n, 1e-9, MODEL, m, w)
        assert t == pytest.approx(hring_steps(n, m, w) * 25e-6, rel=1e-6)

    def test_payload_decomposition_smaller_than_bt(self):
        # H-Ring chunks its payloads; BT sends full d — H-Ring must win on
        # pure bandwidth for large d.
        n, d = 1024, 1e9
        free = CostModel(line_rate=40e9, step_overhead=0.0)
        assert hring_time(n, d, free, 5, 64) < bt_time(n, d, free)

    def test_wavelength_scarcity_costs_time(self):
        n, d = 1024, 100e6
        assert hring_time(n, d, MODEL, 5, 4) > hring_time(n, d, MODEL, 5, 64)


class TestPaperShapeClaims:
    """Qualitative claims from Sec 5.4–5.5, checked analytically."""

    def test_wrht_flat_in_n_at_fixed_w(self):
        # Fig 6: WRHT communication time nearly constant from 1024 to 4096.
        d = 100e6
        times = [algorithm_time("WRHT", n, d, MODEL, w=64) for n in (1024, 2048, 4096)]
        assert max(times) / min(times) < 1.5

    def test_ring_linear_rise_in_n(self):
        d = 100e6
        t1 = algorithm_time("Ring", 1024, d, MODEL)
        t4 = algorithm_time("Ring", 4096, d, MODEL)
        assert t4 > 1.8 * t1  # latency-dominated linear growth

    def test_bt_worst_for_large_models(self):
        # Fig 6: BT worst for BEiT/VGG16 at any node count.
        d_beit = 307e6 * 4
        for n in (1024, 4096):
            bt = algorithm_time("BT", n, d_beit, MODEL)
            for other in ("Ring", "H-Ring", "WRHT"):
                assert bt > algorithm_time(other, n, d_beit, MODEL, w=64)

    def test_bt_competitive_for_resnet(self):
        # ...but BT beats Ring on the small ResNet50 gradient at 1024 nodes.
        d_resnet = 25e6 * 4
        assert algorithm_time("BT", 1024, d_resnet, MODEL) < algorithm_time(
            "Ring", 1024, d_resnet, MODEL
        )

    def test_wrht_loses_at_tiny_wavelength_budget_on_large_model(self):
        # Fig 5(b): at w=4, Ring beats WRHT for BEiT/VGG16.
        d_vgg = 138e6 * 4
        wrht = algorithm_time("WRHT", 1024, d_vgg, MODEL, w=4, wrht_m=9)
        ring = algorithm_time("Ring", 1024, d_vgg, MODEL)
        assert wrht > ring

    def test_wrht_wins_at_w64_on_all_workloads(self):
        for d in (307e6 * 4, 138e6 * 4, 62.3e6 * 4, 25e6 * 4):
            wrht = algorithm_time("WRHT", 1024, d, MODEL, w=64)
            for other in ("Ring", "H-Ring", "BT"):
                assert wrht < algorithm_time(other, 1024, d, MODEL, w=64), (d, other)


class TestDispatch:
    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            algorithm_time("Nope", 4, 1.0, MODEL)

    @given(st.integers(2, 2048), st.floats(1.0, 1e10))
    def test_all_algorithms_positive(self, n, d):
        for name in ("Ring", "BT", "RD", "WRHT"):
            assert algorithm_time(name, n, d, MODEL, w=64) > 0
