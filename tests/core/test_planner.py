"""WRHT planner tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import OpticalPhyParams
from repro.core.planner import plan_wrht
from repro.core.steps import wrht_steps
from repro.core.wavelengths import group_wavelengths


class TestPaperPlan:
    def test_1024_nodes_64_wavelengths(self):
        plan = plan_wrht(1024, 64)
        assert plan.m == 129
        assert plan.n_levels == 2
        assert plan.m_star == 8
        assert plan.alltoall
        assert plan.theta == 3
        assert plan.reduce_steps == 2
        assert plan.broadcast_steps == 1
        assert plan.peak_wavelengths == 64
        assert plan.limited_by == "wavelengths"

    def test_describe_mentions_key_facts(self):
        text = plan_wrht(1024, 64).describe()
        assert "m=129" in text and "θ=3" in text and "all-to-all=yes" in text


class TestGroupSizeSelection:
    def test_small_ring_limited_by_n(self):
        plan = plan_wrht(16, 64)
        assert plan.m == 16
        assert plan.limited_by == "n_nodes"
        assert plan.theta in (1, 2)

    def test_phy_cap_applies(self):
        # A 100-hop budget: two-level plans need L_max = m <= 100, so the
        # largest feasible odd group is 99 < Lemma 1's 129.
        tight = OpticalPhyParams(laser_power_dbm=11.0)
        plan = plan_wrht(1024, 64, phy=tight)
        assert plan.limited_by == "phy"
        assert plan.m == 99

    def test_eq7_penalizes_small_groups(self):
        # Counter-intuitive consequence of Eq 7: on 1024 nodes, m=3 needs 7
        # levels and a 729-hop top-level span — infeasible while m=129 (one
        # 129-hop span) is fine.
        from repro.core.constraints import group_size_feasible

        params = OpticalPhyParams()
        assert group_size_feasible(129, 1024, params)
        assert not group_size_feasible(3, 1024, params)

    def test_forced_m_respected(self):
        plan = plan_wrht(1024, 64, m=17)
        assert plan.m == 17
        assert plan.limited_by == "user"
        assert plan.theta == wrht_steps(1024, 17, 64)

    def test_forced_m_over_wavelength_budget_rejected(self):
        with pytest.raises(ValueError, match="wavelengths"):
            plan_wrht(1024, 4, m=129)

    def test_single_node_rejected(self):
        with pytest.raises(ValueError):
            plan_wrht(1, 64)


class TestPlanConsistency:
    @settings(max_examples=60)
    @given(st.integers(2, 2048), st.integers(1, 128))
    def test_theta_matches_formula(self, n, w):
        plan = plan_wrht(n, w)
        assert plan.theta == wrht_steps(n, plan.m, w)
        assert plan.theta == plan.reduce_steps + plan.broadcast_steps

    @settings(max_examples=60)
    @given(st.integers(2, 2048), st.integers(1, 128))
    def test_peak_demand_within_budget(self, n, w):
        plan = plan_wrht(n, w)
        assert plan.peak_wavelengths <= w
        assert group_wavelengths(plan.m) <= w

    @settings(max_examples=40)
    @given(st.integers(2, 1024), st.integers(1, 64))
    def test_last_level_population_is_m_star(self, n, w):
        plan = plan_wrht(n, w)
        assert len(plan.levels[-1].population) == plan.m_star
