"""Lower-bound tests: every algorithm must respect them, WRHT must meet
the step bound (the strong form of Lemma 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lowerbounds import (
    min_allreduce_steps,
    min_allreduce_time,
    min_bandwidth_time,
    optimality_report,
)
from repro.core.steps import bt_steps, rd_steps, ring_steps, wrht_steps
from repro.core.timing import CostModel
from repro.core.wavelengths import optimal_group_size

MODEL = CostModel(line_rate=40e9, step_overhead=25e-6)


class TestStepBound:
    def test_paper_configuration(self):
        # N=1024, w=64: any All-reduce needs >= 2 steps; WRHT takes 3 —
        # within 2x of the universal bound, optimal within tree algorithms.
        assert min_allreduce_steps(1024, 64) == 2
        assert wrht_steps(1024, 129, 64) == 3

    def test_single_node(self):
        assert min_allreduce_steps(1, 64) == 0

    def test_two_nodes_one_step(self):
        # Pairwise exchange finishes All-reduce in one step.
        assert min_allreduce_steps(2, 1) == 1

    @settings(max_examples=80, deadline=None)
    @given(st.integers(2, 8192), st.integers(1, 256))
    def test_every_algorithm_respects_it(self, n, w):
        floor = min_allreduce_steps(n, w)
        assert ring_steps(n) >= floor
        assert bt_steps(n) >= floor
        assert rd_steps(n) >= floor
        assert wrht_steps(n, min(optimal_group_size(w), n), w) >= floor

    @settings(max_examples=60, deadline=None)
    @given(st.integers(2, 4096), st.integers(1, 128))
    def test_wrht_within_twice_the_universal_bound(self, n, w):
        # The hierarchical structure costs at most a 2x factor over the
        # gossip-style information bound (Lemma 1's family optimum).
        floor = min_allreduce_steps(n, w)
        theta = wrht_steps(n, min(optimal_group_size(w), n), w)
        assert floor <= theta <= 2 * floor


class TestTimeBounds:
    def test_bandwidth_floor_scales_with_payload(self):
        assert min_bandwidth_time(64, 2e9, 64, MODEL) == pytest.approx(
            2 * min_bandwidth_time(64, 1e9, 64, MODEL)
        )

    def test_combined_floor_latency_regime(self):
        # Tiny payload: the step term dominates.
        floor = min_allreduce_time(1024, 1.0, 64, MODEL)
        assert floor == pytest.approx(2 * 25e-6)

    def test_combined_floor_bandwidth_regime(self):
        # Huge payload at one wavelength: ingress dominates.
        floor = min_allreduce_time(1024, 1e12, 1, MODEL)
        assert floor == pytest.approx(
            min_bandwidth_time(1024, 1e12, 1, MODEL)
        )

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 2048), st.floats(1e3, 1e12), st.integers(1, 128))
    def test_no_algorithm_beats_the_floor(self, n, d, w):
        report = optimality_report(n, d, w, MODEL)
        for entry in report:
            assert entry.time_ratio >= 1.0 - 1e-9, entry


class TestOptimalityReport:
    def test_wrht_closest_to_bounds_at_paper_scale(self):
        report = {
            e.algorithm: e
            for e in optimality_report(1024, 100e6, 64, MODEL)
        }
        assert report["WRHT"].step_ratio == pytest.approx(3 / 2)
        assert report["Ring"].step_ratio == pytest.approx(2046 / 2)
        # WRHT is the closest to both floors among the paper's algorithms.
        best = min(report.values(), key=lambda e: e.time_ratio)
        assert best.algorithm == "WRHT"
        best_steps = min(report.values(), key=lambda e: e.step_ratio)
        assert best_steps.algorithm == "WRHT"
