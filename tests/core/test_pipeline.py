"""Pipelined (bucketed) WRHT extension tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.verify import verify_allreduce
from repro.core.pipeline import (
    PipelinedPlan,
    build_pipelined_wrht_schedule,
    optimal_bucket_count,
    pipelined_wrht_time,
)
from repro.core.planner import plan_wrht
from repro.core.timing import CostModel, wrht_time

MODEL = CostModel(line_rate=40e9, step_overhead=25e-6)


class TestPipelinedPlan:
    def test_b1_degenerates_to_plain_wrht(self):
        plan = plan_wrht(1024, 64)
        pipe = PipelinedPlan(plan, 1)
        assert pipe.theta == plan.theta
        d = 1e8
        assert pipelined_wrht_time(pipe, d, MODEL) == pytest.approx(
            wrht_time(1024, d, MODEL, m=plan.m, w=64)
        )

    def test_theta_formula(self):
        plan = plan_wrht(1024, 64)  # L=2, all-to-all on
        # reduce: L+B-1; broadcast: (L-1)+B-1.
        assert PipelinedPlan(plan, 4).theta == (2 + 3) + (1 + 3)

    def test_theta_without_shortcut(self):
        plan = plan_wrht(1024, 16, m=33)  # m*=32 needs 128 > 16: no shortcut
        assert not plan.alltoall
        assert PipelinedPlan(plan, 3).theta == (2 + 2) + (2 + 2)

    def test_peak_demand_sums_levels(self):
        plan = plan_wrht(1024, 64, m=33)  # L=2, m*=32, no shortcut at...
        pipe = PipelinedPlan(plan, 4)
        # level demands: 16 (collect m=33) + final level need.
        assert pipe.peak_wavelengths >= 16

    def test_alltoall_demand_counted(self):
        plan = plan_wrht(1024, 64, m=65)  # m*=16, a2a needs 32
        pipe = PipelinedPlan(plan, 2)
        assert pipe.peak_wavelengths == 32 + 32


class TestOptimalBuckets:
    def test_zero_overhead_wants_max(self):
        free = CostModel(line_rate=1e9, step_overhead=0.0)
        plan = plan_wrht(1024, 16, m=33)  # no shortcut: c = 2L-2 > 0
        assert optimal_bucket_count(plan, 1e9, free, max_buckets=64) == 64

    def test_tiny_payload_wants_one(self):
        plan = plan_wrht(1024, 64)
        assert optimal_bucket_count(plan, 1.0, MODEL) == 1

    def test_single_level_never_pipelines(self):
        # θ(B) grows one-for-one with B when only one level exists.
        plan = plan_wrht(16, 64)
        assert plan.n_levels == 1
        assert optimal_bucket_count(plan, 1e9, MODEL) == 1

    def test_optimum_beats_neighbours(self):
        d = 552e6
        plan = plan_wrht(1024, 64)
        best = optimal_bucket_count(plan, d, MODEL)

        def time_at(b):
            return pipelined_wrht_time(PipelinedPlan(plan, b), d, MODEL)

        assert time_at(best) <= time_at(max(1, best - 1))
        assert time_at(best) <= time_at(best + 1)

    def test_pipelining_beats_plain_for_large_gradients(self):
        plan = plan_wrht(1024, 64)
        d = 552e6  # VGG16
        best = optimal_bucket_count(plan, d, MODEL)
        assert pipelined_wrht_time(PipelinedPlan(plan, best), d, MODEL) < (
            0.8 * wrht_time(1024, d, MODEL, m=plan.m, w=64)
        )


class TestPipelinedSchedule:
    def test_step_count_matches_plan(self):
        sched = build_pipelined_wrht_schedule(64, 60, n_wavelengths=8, n_buckets=3)
        assert sched.n_steps == sched.meta["pipelined_plan"].theta

    def test_correctness_paper_scale_structure(self):
        sched = build_pipelined_wrht_schedule(1024, 40, n_wavelengths=64, n_buckets=2)
        verify_allreduce(sched)

    def test_bucket_ranges_partition_vector(self):
        sched = build_pipelined_wrht_schedule(15, 10, n_wavelengths=2, n_buckets=3)
        reduce_ranges = set()
        for step in sched.iter_steps():
            for t in step.transfers:
                reduce_ranges.add((t.lo, t.hi))
        assert (0, 4) in reduce_ranges and (4, 7) in reduce_ranges and (7, 10) in reduce_ranges

    def test_des_agreement_when_demand_fits(self):
        # m=33, B=8 on w=64: steady-state demand 32 <= 64, so the optical
        # executor reproduces the pipelined closed form exactly and the
        # pipeline genuinely beats plain WRHT end to end.
        from repro.optical import OpticalRingNetwork, OpticalSystemConfig

        cfg = OpticalSystemConfig(n_nodes=1024, n_wavelengths=64)
        net = OpticalRingNetwork(cfg)
        d_elems = 138_000_000
        plan = plan_wrht(1024, 64, m=33)
        sched = build_pipelined_wrht_schedule(1024, d_elems, n_buckets=8, plan=plan)
        result = net.execute(sched)
        assert result.total_rounds == result.n_steps
        analytic = pipelined_wrht_time(
            sched.meta["pipelined_plan"], d_elems * 4.0, cfg.cost_model()
        )
        assert result.total_time == pytest.approx(analytic, rel=1e-9)
        plain = wrht_time(1024, d_elems * 4.0, cfg.cost_model(), m=129, w=64)
        assert result.total_time < 0.8 * plain

    def test_validation(self):
        with pytest.raises(ValueError):
            build_pipelined_wrht_schedule(8, 10, n_buckets=0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 64), st.integers(1, 16), st.integers(1, 6), st.integers(1, 60))
    def test_allreduce_property(self, n, w, buckets, elems):
        sched = build_pipelined_wrht_schedule(
            n, elems, n_wavelengths=w, n_buckets=buckets
        )
        verify_allreduce(sched)
