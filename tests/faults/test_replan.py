"""Degraded replanning tests: survivors, budgets, fallback, re-election."""

import numpy as np
import pytest

from repro.collectives import shrunk_representatives
from repro.collectives.verify import initial_buffers, run_schedule
from repro.core.planner import plan_wrht
from repro.faults import (
    apply_faults,
    build_degraded_wrht_schedule,
    degraded_wavelength_budget,
    plan_wrht_degraded,
    surviving_nodes,
)
from repro.faults.models import DeadWavelength, DroppedNode, FaultSet
from repro.optical.config import OpticalSystemConfig


class TestBudgets:
    def test_surviving_nodes(self):
        fs = FaultSet.of(DroppedNode(0), DroppedNode(3))
        assert surviving_nodes(5, fs) == (1, 2, 4)

    def test_budget_unions_config_failures(self):
        fs = FaultSet.of(DeadWavelength(0), DeadWavelength(1))
        assert degraded_wavelength_budget(8, fs) == 6
        # Overlap with the config's own failed set counts once.
        assert degraded_wavelength_budget(8, fs, failed_wavelengths={1, 2}) == 5

    def test_budget_ignores_out_of_range(self):
        fs = FaultSet.of(DeadWavelength(100))
        assert degraded_wavelength_budget(8, fs) == 8

    def test_budget_exhausted_raises(self):
        fs = FaultSet.of(*[DeadWavelength(i) for i in range(4)])
        with pytest.raises(ValueError, match="no usable wavelengths"):
            degraded_wavelength_budget(4, fs)


class TestDegradedPlanning:
    def test_plan_over_survivors_with_degraded_budget(self):
        fs = FaultSet.of(DroppedNode(5), DeadWavelength(0))
        plan = plan_wrht_degraded(16, fs, n_wavelengths=8)
        assert plan.n_nodes == 15
        assert plan.n_wavelengths == 7

    def test_alltoall_falls_back_to_broadcast_level(self):
        # N=64, w=8 plans the all-to-all shortcut (θ = 2L − 1); killing
        # half the comb drops the budget below ⌈(m*)²/8⌉ and the planner
        # must flip to the extra broadcast level (θ back to 2L).
        healthy = plan_wrht(64, 8)
        assert healthy.alltoall
        fs = FaultSet.of(*[DeadWavelength(i) for i in range(4)])
        degraded = plan_wrht_degraded(64, fs, n_wavelengths=8)
        assert not degraded.alltoall
        assert degraded.theta == healthy.theta + 1

    def test_too_few_survivors_raises(self):
        fs = FaultSet.of(DroppedNode(0), DroppedNode(1), DroppedNode(2))
        with pytest.raises(ValueError, match="at least 2 surviving"):
            plan_wrht_degraded(4, fs, n_wavelengths=8)

    def test_out_of_range_fault_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            plan_wrht_degraded(16, FaultSet.of(DroppedNode(99)), n_wavelengths=8)


class TestDegradedSchedule:
    def test_no_dead_nodes_keeps_full_population(self):
        fs = FaultSet.of(DeadWavelength(0))
        sched = build_degraded_wrht_schedule(16, 1000, fs, n_wavelengths=8)
        assert sched.n_nodes == 16
        assert "participants" not in sched.meta

    def test_dead_nodes_shrink_and_tag_participants(self):
        fs = FaultSet.of(DroppedNode(7))
        sched = build_degraded_wrht_schedule(16, 1000, fs, n_wavelengths=8)
        assert sched.n_nodes == 16
        assert sched.meta["participants"] == tuple(
            i for i in range(16) if i != 7
        )
        assert sched.meta["plan"].n_nodes == 15

    def test_shrunk_schedule_computes_survivor_sum(self):
        fs = FaultSet.of(DroppedNode(3), DroppedNode(11))
        sched = build_degraded_wrht_schedule(16, 64, fs, n_wavelengths=8)
        buffers = initial_buffers(16, 64)
        original = buffers.copy()
        run_schedule(sched, buffers)
        survivors = list(sched.meta["participants"])
        expected = original[survivors].sum(axis=0)
        for node in survivors:
            assert np.array_equal(buffers[node], expected)
        for dead in (3, 11):
            assert np.array_equal(buffers[dead], original[dead])

    def test_dead_representative_is_reelected_away(self):
        # N=16, w=8 plans one 16-node group whose representative is the
        # middle member; dropping it must elect a survivor instead.
        healthy = plan_wrht(16, 8)
        rep = healthy.levels[0].groups[0].representative
        fs = FaultSet.of(DroppedNode(rep))
        sched = build_degraded_wrht_schedule(16, 1000, fs, n_wavelengths=8)
        plan = sched.meta["plan"]
        reps = shrunk_representatives(plan, sched.meta["participants"])
        flat = {r for level in reps for r in level}
        assert rep not in flat
        assert flat  # someone got elected
        # No transfer may touch the dead node.
        for step in sched.iter_steps():
            for t in step.transfers:
                assert rep not in (t.src, t.dst)


class TestApplyFaults:
    def test_merges_into_config(self):
        cfg = OpticalSystemConfig(
            n_nodes=16, n_wavelengths=8, faults=FaultSet.of(DeadWavelength(0))
        )
        faulted = apply_faults(cfg, DroppedNode(2))
        assert faulted.faults == FaultSet.of(DeadWavelength(0), DroppedNode(2))
        assert cfg.faults == FaultSet.of(DeadWavelength(0))  # original intact

    def test_merge_validates(self):
        cfg = OpticalSystemConfig(n_nodes=16, n_wavelengths=8)
        with pytest.raises(ValueError, match="out of range"):
            apply_faults(cfg, DeadWavelength(8))
