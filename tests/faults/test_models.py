"""Fault model tests: normalization, derived views, validation."""

import pytest

from repro.core.constraints import OpticalPhyParams
from repro.faults.models import (
    EMPTY_FAULTS,
    CutFiber,
    DeadWavelength,
    DroppedNode,
    FaultEvent,
    FaultSet,
    MrrPortFault,
    PowerDroop,
)
from repro.optical.config import OpticalSystemConfig
from repro.optical.topology import Direction


class TestFaultSetNormalization:
    def test_order_insensitive_equality_and_hash(self):
        a = FaultSet.of(DeadWavelength(3), DroppedNode(7))
        b = FaultSet.of(DroppedNode(7), DeadWavelength(3))
        assert a == b
        assert hash(a) == hash(b)

    def test_duplicates_collapse(self):
        assert len(FaultSet.of(DeadWavelength(1), DeadWavelength(1))) == 1

    def test_empty_is_falsy(self):
        assert not EMPTY_FAULTS
        assert bool(FaultSet.of(DeadWavelength(0)))

    def test_with_fault_is_pure(self):
        base = FaultSet.of(DeadWavelength(0))
        grown = base.with_fault(DroppedNode(1))
        assert len(base) == 1
        assert len(grown) == 2
        assert grown == FaultSet.of(DroppedNode(1), DeadWavelength(0))

    def test_iterable(self):
        faults = [DeadWavelength(0), DroppedNode(2)]
        assert set(FaultSet.of(*faults)) == set(faults)


class TestDerivedViews:
    def test_dead_wavelengths_and_nodes(self):
        fs = FaultSet.of(DeadWavelength(2), DeadWavelength(5), DroppedNode(3))
        assert fs.dead_wavelengths == frozenset({2, 5})
        assert fs.dead_nodes == frozenset({3})

    def test_droop_stacks_additively_in_db(self):
        fs = FaultSet.of(PowerDroop(1.0), PowerDroop(0.5))
        assert fs.droop_db == pytest.approx(1.5)

    def test_is_cut_direction_scoping(self):
        fs = FaultSet.of(CutFiber(4, direction="cw"))
        assert fs.is_cut(4, Direction.CW)
        assert not fs.is_cut(4, Direction.CCW)
        both = FaultSet.of(CutFiber(4))
        assert both.is_cut(4, Direction.CW) and both.is_cut(4, Direction.CCW)

    @pytest.mark.parametrize("mode", ["dead", "stuck"])
    def test_endpoint_blocked_covers_both_modes(self, mode):
        fs = FaultSet.of(MrrPortFault(3, 1, mode=mode))
        assert fs.endpoint_blocked(3, Direction.CW) == frozenset({1})
        assert fs.endpoint_blocked(3, Direction.CCW) == frozenset({1})
        assert fs.endpoint_blocked(4, Direction.CW) == frozenset()

    def test_endpoint_blocked_direction_scoped(self):
        fs = FaultSet.of(MrrPortFault(3, 1, direction="ccw"))
        assert fs.endpoint_blocked(3, Direction.CW) == frozenset()
        assert fs.endpoint_blocked(3, Direction.CCW) == frozenset({1})

    def test_quarantine_masks_span_adjacent_segments(self):
        fs = FaultSet.of(MrrPortFault(3, 0, mode="stuck"))
        masks = fs.segment_quarantine_masks(8)
        span = (1 << 3) | (1 << 2)
        assert masks == {
            (Direction.CW, 0): span,
            (Direction.CCW, 0): span,
        }

    def test_quarantine_wraps_at_node_zero(self):
        fs = FaultSet.of(MrrPortFault(0, 2, mode="stuck", direction="cw"))
        masks = fs.segment_quarantine_masks(8)
        assert masks == {(Direction.CW, 2): (1 << 0) | (1 << 7)}

    def test_dead_mode_never_quarantines(self):
        fs = FaultSet.of(MrrPortFault(3, 0, mode="dead"))
        assert fs.segment_quarantine_masks(8) == {}

    def test_effective_phy_derates_both_budgets(self):
        phy = OpticalPhyParams()
        derated = FaultSet.of(PowerDroop(2.0)).effective_phy(phy)
        assert derated.laser_power_dbm == pytest.approx(phy.laser_power_dbm - 2.0)
        assert derated.signal_power_mw == pytest.approx(
            phy.signal_power_mw * 10 ** -0.2
        )

    def test_effective_phy_identity_cases(self):
        phy = OpticalPhyParams()
        assert EMPTY_FAULTS.effective_phy(phy) is phy
        assert FaultSet.of(PowerDroop(1.0)).effective_phy(None) is None


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            lambda: DeadWavelength(-1),
            lambda: MrrPortFault(-1, 0),
            lambda: MrrPortFault(0, -1),
            lambda: MrrPortFault(0, 0, mode="broken"),
            lambda: MrrPortFault(0, 0, direction="up"),
            lambda: CutFiber(-1),
            lambda: CutFiber(0, direction="up"),
            lambda: DroppedNode(-1),
            lambda: PowerDroop(0.0),
            lambda: FaultEvent(-1.0, DeadWavelength(0)),
        ],
    )
    def test_constructor_bounds(self, bad):
        with pytest.raises(ValueError):
            bad()

    @pytest.mark.parametrize(
        "fault",
        [
            DeadWavelength(8),
            MrrPortFault(16, 0),
            MrrPortFault(0, 8),
            CutFiber(16),
            DroppedNode(16),
        ],
    )
    def test_out_of_range_vs_system(self, fault):
        with pytest.raises(ValueError, match="out of range"):
            FaultSet.of(fault).validate(16, 8)

    def test_everything_dead_rejected(self):
        all_lams = FaultSet.of(*[DeadWavelength(i) for i in range(4)])
        with pytest.raises(ValueError, match="wavelength must survive"):
            all_lams.validate(8, 4)
        all_nodes = FaultSet.of(*[DroppedNode(i) for i in range(4)])
        with pytest.raises(ValueError, match="node must survive"):
            all_nodes.validate(4, 8)


class TestConfigIntegration:
    def test_faults_fold_into_dead_wavelengths(self):
        cfg = OpticalSystemConfig(
            n_nodes=16,
            n_wavelengths=8,
            failed_wavelengths=frozenset({1}),
            faults=FaultSet.of(DeadWavelength(2)),
        )
        assert cfg.dead_wavelengths == frozenset({1, 2})
        assert cfg.usable_wavelengths == 6

    def test_empty_faultset_config_equals_default(self):
        # The plan cache keys on the frozen config, so attaching an empty
        # fault set must not create a distinct key.
        plain = OpticalSystemConfig(n_nodes=16, n_wavelengths=8)
        gated = OpticalSystemConfig(
            n_nodes=16, n_wavelengths=8, faults=FaultSet()
        )
        assert plain == gated
        assert hash(plain) == hash(gated)

    def test_config_validates_fault_bounds(self):
        with pytest.raises(ValueError, match="out of range"):
            OpticalSystemConfig(
                n_nodes=16, n_wavelengths=8,
                faults=FaultSet.of(DeadWavelength(8)),
            )

    def test_config_coerces_iterables(self):
        cfg = OpticalSystemConfig(
            n_nodes=16, n_wavelengths=8, faults=[DeadWavelength(0)]
        )
        assert isinstance(cfg.faults, FaultSet)
        assert cfg.faults == FaultSet.of(DeadWavelength(0))

    def test_effective_phy_on_config(self):
        cfg = OpticalSystemConfig(
            n_nodes=16, n_wavelengths=8, phy=OpticalPhyParams(),
            faults=FaultSet.of(PowerDroop(1.0)),
        )
        assert cfg.effective_phy.laser_power_dbm == pytest.approx(
            cfg.phy.laser_power_dbm - 1.0
        )

    def test_effective_phy_none_without_phy(self):
        cfg = OpticalSystemConfig(
            n_nodes=16, n_wavelengths=8, faults=FaultSet.of(PowerDroop(1.0))
        )
        assert cfg.effective_phy is None
