"""Degraded lowering: RWA masking, detours, PLAN007, cache salting."""

import pytest

from repro.backend.analytic import AnalyticBackend
from repro.backend.errors import BackendConfigError, BackendError
from repro.backend.plancache import PlanCache
from repro.check.context import CheckContext, optical_context
from repro.check.engine import verify_plan
from repro.check.findings import errors
from repro.collectives import build_wrht_schedule
from repro.core.planner import plan_wrht
from repro.faults import apply_faults, build_degraded_wrht_schedule
from repro.faults.models import (
    CutFiber,
    DeadWavelength,
    DroppedNode,
    FaultSet,
    MrrPortFault,
)
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.optical.topology import Direction

N, W = 16, 8


def _cfg(faults=None, **kwargs):
    return OpticalSystemConfig(
        n_nodes=N, n_wavelengths=W,
        faults=FaultSet() if faults is None else faults, **kwargs,
    )


def _circuits(net, schedule, bytes_per_elem=4.0):
    """Every circuit the network would actually establish, flattened."""
    out = []
    for step in schedule.iter_steps():
        for rounds in [net.plan_step_rounds(step, bytes_per_elem)]:
            for circuits in rounds:
                out.extend(circuits)
    return out


class TestAcceptanceScenario:
    """ISSUE acceptance: dead wavelength + dead representative lowers to a
    degraded plan that passes every repro.check rule, PLAN007 included."""

    def test_degraded_plan_verifies_clean(self):
        rep = plan_wrht(N, W).levels[0].groups[0].representative
        faults = FaultSet.of(DeadWavelength(2), DroppedNode(rep))
        config = _cfg(faults)
        schedule = build_degraded_wrht_schedule(N, 4096, faults, n_wavelengths=W)
        net = OpticalRingNetwork(config)
        context = optical_context(net, schedule)
        findings = verify_plan(context=context, raise_on_error=False)
        assert errors(findings) == []

    def test_degraded_lowering_avoids_every_failed_resource(self):
        rep = plan_wrht(N, W).levels[0].groups[0].representative
        faults = FaultSet.of(DeadWavelength(2), DroppedNode(rep))
        schedule = build_degraded_wrht_schedule(N, 4096, faults, n_wavelengths=W)
        net = OpticalRingNetwork(_cfg(faults))
        circuits = _circuits(net, schedule)
        assert circuits
        for c in circuits:
            assert c.wavelength != 2
            assert rep not in (c.transfer.src, c.transfer.dst)


class TestRwaMasking:
    def test_dead_wavelength_never_assigned(self):
        faults = FaultSet.of(DeadWavelength(0))
        net = OpticalRingNetwork(_cfg(faults))
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        used = {c.wavelength for c in _circuits(net, schedule)}
        assert 0 not in used
        assert used  # the masking did not empty the assignment

    def test_dead_port_bans_endpoint_wavelength(self):
        # first_fit on the healthy system gives wavelength 3 to the
        # 3 -> 8 circuit; a dead MRR for it at node 3 must push every
        # circuit terminating there off that wavelength.
        faults = FaultSet.of(MrrPortFault(3, 3, mode="dead"))
        net = OpticalRingNetwork(_cfg(faults))
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        touching = [
            c for c in _circuits(net, schedule)
            if 3 in (c.transfer.src, c.transfer.dst)
        ]
        assert touching
        for c in touching:
            assert c.wavelength != 3

    def test_stuck_port_quarantines_adjacent_segments(self):
        faults = FaultSet.of(MrrPortFault(3, 0, mode="stuck"))
        net = OpticalRingNetwork(_cfg(faults))
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        for c in _circuits(net, schedule):
            if c.wavelength == 0:
                assert not ({2, 3} & set(c.route.segments))

    def test_fault_free_rounds_bit_identical(self):
        # The fault extensions must not perturb the healthy DSATUR order.
        plain = OpticalRingNetwork(OpticalSystemConfig(n_nodes=N, n_wavelengths=W))
        gated = OpticalRingNetwork(_cfg(FaultSet()))
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        for step in schedule.iter_steps():
            a = plain.plan_step_rounds(step, 4.0)
            b = gated.plan_step_rounds(step, 4.0)
            assert a == b


class TestCutFiber:
    def test_one_direction_cut_takes_the_long_way(self):
        faults = FaultSet.of(CutFiber(0, direction="cw"))
        net = OpticalRingNetwork(_cfg(faults))
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        circuits = _circuits(net, schedule)
        assert circuits
        for c in circuits:
            if c.route.direction is Direction.CW:
                assert 0 not in c.route.segments

    def test_cut_both_ways_around_is_an_error(self):
        # Transfer 0 -> 1 crosses segment 0 clockwise; the detour goes
        # counter-clockwise through segment 3. Cutting both leaves no path.
        from repro.collectives.base import CommStep, Transfer

        faults = FaultSet.of(
            CutFiber(0, direction="cw"), CutFiber(3, direction="ccw")
        )
        net = OpticalRingNetwork(_cfg(faults))
        step = CommStep(transfers=(Transfer(0, 1, 0, 10, "sum"),))
        with pytest.raises(BackendError, match="both ring directions"):
            net.plan_step_rounds(step, 4.0)


class TestDeadNodeGuard:
    def test_lowering_over_a_dead_node_refuses(self):
        faults = FaultSet.of(DroppedNode(5))
        net = OpticalRingNetwork(_cfg(faults))
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        with pytest.raises(BackendConfigError, match="survivors"):
            net.lower(schedule, 4.0)


class TestPlan007:
    def _healthy_evidence(self, schedule):
        """Plan + circuits derived on the *healthy* substrate."""
        net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=N, n_wavelengths=W))
        return optical_context(net, schedule)

    def _against(self, schedule, faults):
        healthy = self._healthy_evidence(schedule)
        context = CheckContext(
            plan=healthy.plan,
            schedule=schedule,
            config=_cfg(faults),
            circuit_rounds=healthy.circuit_rounds,
        )
        return [
            f
            for f in verify_plan(context=context, rule_ids=["PLAN007"])
        ]

    def test_inert_on_healthy_config(self):
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        assert self._against(schedule, FaultSet()) == []

    def test_flags_dead_wavelength(self):
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        findings = self._against(schedule, FaultSet.of(DeadWavelength(0)))
        assert findings and all(f.rule_id == "PLAN007" for f in findings)
        assert any("dead wavelength" in f.message for f in findings)

    def test_flags_dropped_node(self):
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        findings = self._against(schedule, FaultSet.of(DroppedNode(8)))
        assert any("dropped node 8" in f.message for f in findings)

    def test_flags_dead_port_endpoint(self):
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        # The healthy RWA terminates wavelength 3 at node 3 (the 3 -> 8
        # circuit), so a dead port for that pair must be flagged.
        findings = self._against(
            schedule, FaultSet.of(MrrPortFault(3, 3, mode="dead"))
        )
        assert any("failed MRR port" in f.message for f in findings)

    def test_flags_cut_segment(self):
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        findings = self._against(schedule, FaultSet.of(CutFiber(0)))
        assert any("cut segment" in f.message for f in findings)

    def test_flags_quarantined_segment(self):
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        findings = self._against(
            schedule, FaultSet.of(MrrPortFault(3, 0, mode="stuck"))
        )
        assert any("quarantined segment" in f.message for f in findings)


class TestParticipantsAwareRules:
    def test_plan003_needs_the_participants_tag(self):
        faults = FaultSet.of(DroppedNode(7))
        schedule = build_degraded_wrht_schedule(N, 64, faults, n_wavelengths=W)
        clean = verify_plan(schedule=schedule, rule_ids=["PLAN003"])
        assert errors(clean) == []
        # Stripping the tag makes the shrunk schedule look like a broken
        # full-population All-reduce: PLAN003 must fail.
        del schedule.meta["participants"]
        broken = verify_plan(schedule=schedule, rule_ids=["PLAN003"])
        assert errors(broken)

    def test_plan004_counts_steps_against_survivors(self):
        faults = FaultSet.of(DroppedNode(7))
        schedule = build_degraded_wrht_schedule(N, 64, faults, n_wavelengths=W)
        findings = verify_plan(schedule=schedule, rule_ids=["PLAN004"])
        assert errors(findings) == []


class TestCacheSalting:
    def test_faulted_config_gets_its_own_cache_entry(self):
        cache = PlanCache(maxsize=64)
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        healthy = OpticalRingNetwork(
            OpticalSystemConfig(n_nodes=N, n_wavelengths=W), plan_cache=cache
        )
        faulted = OpticalRingNetwork(
            _cfg(FaultSet.of(DeadWavelength(0))), plan_cache=cache
        )
        p1 = healthy.lower(schedule, 4.0)
        p2 = faulted.lower(schedule, 4.0)
        assert p1.cache.misses > 0 and p1.cache.hits == 0
        assert p2.cache.misses > 0 and p2.cache.hits == 0  # no aliasing
        p3 = healthy.lower(schedule, 4.0)
        assert p3.cache.hits > 0 and p3.cache.misses == 0

    def test_empty_faultset_hits_healthy_entries(self):
        cache = PlanCache(maxsize=64)
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        OpticalRingNetwork(
            OpticalSystemConfig(n_nodes=N, n_wavelengths=W), plan_cache=cache
        ).lower(schedule, 4.0)
        gated = OpticalRingNetwork(_cfg(FaultSet()), plan_cache=cache)
        plan = gated.lower(schedule, 4.0)
        assert plan.cache.hits > 0 and plan.cache.misses == 0


class TestAnalyticDegraded:
    def test_effective_budget_prices_like_a_smaller_comb(self):
        cfg = OpticalSystemConfig(n_nodes=64, n_wavelengths=8)
        sched = build_wrht_schedule(64, 4096, n_wavelengths=8, materialize=False)
        degraded = AnalyticBackend(
            cfg.cost_model(), w=8,
            faults=FaultSet.of(DeadWavelength(0), DeadWavelength(1)),
        )
        shrunk = AnalyticBackend(cfg.cost_model(), w=6)
        a = degraded.execute(degraded.lower(sched)).total_time
        b = shrunk.execute(shrunk.lower(sched)).total_time
        assert a == b

    def test_no_budget_left_refuses(self):
        cfg = OpticalSystemConfig(n_nodes=16, n_wavelengths=8)
        with pytest.raises(BackendConfigError, match="no usable wavelengths"):
            AnalyticBackend(
                cfg.cost_model(), w=2,
                faults=FaultSet.of(DeadWavelength(0), DeadWavelength(1)),
            )

    def test_key_salting_no_aliasing(self):
        cache = PlanCache(maxsize=64)
        cfg = OpticalSystemConfig(n_nodes=64, n_wavelengths=8)
        sched = build_wrht_schedule(64, 4096, n_wavelengths=8, materialize=False)
        healthy = AnalyticBackend(cfg.cost_model(), w=8, plan_cache=cache)
        faulted = AnalyticBackend(
            cfg.cost_model(), w=8, plan_cache=cache,
            faults=FaultSet.of(DeadWavelength(0)),
        )
        assert healthy.lower(sched).cache.misses == 1
        assert faulted.lower(sched).cache.misses == 1  # distinct key
        assert healthy.lower(sched).cache.hits == 1

    def test_empty_faults_share_healthy_keys(self):
        cache = PlanCache(maxsize=64)
        cfg = OpticalSystemConfig(n_nodes=64, n_wavelengths=8)
        sched = build_wrht_schedule(64, 4096, n_wavelengths=8, materialize=False)
        AnalyticBackend(cfg.cost_model(), w=8, plan_cache=cache).lower(sched)
        gated = AnalyticBackend(
            cfg.cost_model(), w=8, plan_cache=cache, faults=FaultSet()
        )
        assert gated.lower(sched).cache.hits == 1


class TestApplyFaultsLowering:
    def test_apply_faults_end_to_end(self):
        config = OpticalSystemConfig(n_nodes=N, n_wavelengths=W)
        faulted = apply_faults(config, DeadWavelength(0))
        net = OpticalRingNetwork(faulted)
        schedule = build_wrht_schedule(N, 4096, n_wavelengths=W)
        used = {c.wavelength for c in _circuits(net, schedule)}
        assert 0 not in used
