"""Live-executor fault tests: determinism, retries, parity, token hygiene."""

import pytest

from repro.backend.errors import BackendConfigError, BackendExecutionError
from repro.collectives import build_wrht_schedule
from repro.faults.models import DeadWavelength, DroppedNode, FaultEvent, FaultSet
from repro.optical.config import OpticalSystemConfig
from repro.optical.livesim import LiveOpticalSimulation
from repro.optical.network import OpticalRingNetwork
from repro.sim.trace import Tracer

N, W = 16, 8
ELEMS = 50_000  # payloads long enough that a mid-run fault lands mid-flight


def _fixture():
    config = OpticalSystemConfig(n_nodes=N, n_wavelengths=W)
    schedule = build_wrht_schedule(N, ELEMS, n_wavelengths=W)
    healthy = LiveOpticalSimulation(config).run(schedule)
    return config, schedule, healthy


class TestEmptyFaultParity:
    def test_exactly_matches_step_timing(self):
        # With no faults the live path must not merely approximate the
        # step-timing executor — the floats must be identical.
        config, schedule, healthy = _fixture()
        fast = OpticalRingNetwork(config).execute(schedule)
        assert healthy.total_time == fast.total_time

    def test_counters_stay_zero(self):
        _, _, healthy = _fixture()
        assert healthy.n_faults == 0
        assert healthy.n_retries == 0
        assert healthy.n_interrupted == 0
        assert healthy.downtime == 0.0


class TestMidFlightFault:
    def _faulted(self, config, schedule, healthy, **kwargs):
        events = (FaultEvent(healthy.total_time / 2, DeadWavelength(0)),)
        return LiveOpticalSimulation(
            config, fault_events=events, **kwargs
        ).run(schedule)

    def test_interrupts_retries_and_recovers(self):
        config, schedule, healthy = _fixture()
        result = self._faulted(config, schedule, healthy)
        assert result.n_faults == 1
        assert result.n_interrupted >= 1
        assert result.n_retries >= 1
        assert result.downtime > 0.0
        assert result.total_time > healthy.total_time

    def test_two_runs_identical(self):
        # The acceptance criterion: same inputs, identical retry counts
        # and total time, bit for bit.
        config, schedule, healthy = _fixture()
        a = self._faulted(config, schedule, healthy)
        b = self._faulted(config, schedule, healthy)
        assert (a.total_time, a.n_retries, a.n_interrupted, a.n_events) == (
            b.total_time, b.n_retries, b.n_interrupted, b.n_events
        )

    def test_retried_circuits_avoid_the_dead_wavelength(self):
        # If an interrupted circuit leaked any channel token, the retry
        # round would block on it and the run would raise
        # ChannelBlockedError — completing cleanly is the leak regression.
        config, schedule, healthy = _fixture()
        tracer = Tracer()
        events = (FaultEvent(healthy.total_time / 2, DeadWavelength(0)),)
        result = LiveOpticalSimulation(
            config, fault_events=events, tracer=tracer
        ).run(schedule)
        assert result.n_retries >= 1
        assert tracer.records("optical.live.fault")
        assert tracer.records("optical.live.retry")

    def test_retry_budget_exhaustion_raises(self):
        config, schedule, healthy = _fixture()
        with pytest.raises(BackendExecutionError, match="unfinished"):
            self._faulted(config, schedule, healthy, max_retries=0)

    def test_fault_after_completion_is_ignored(self):
        config, schedule, healthy = _fixture()
        events = (FaultEvent(healthy.total_time * 10, DeadWavelength(0)),)
        result = LiveOpticalSimulation(config, fault_events=events).run(schedule)
        assert result.n_faults == 0
        assert result.total_time == healthy.total_time

    def test_dropped_node_mid_flight_demands_replanning(self):
        # A dead compute endpoint cannot be retried around: the degraded
        # planner refuses and tells the caller to shrink the schedule.
        config, schedule, healthy = _fixture()
        events = (FaultEvent(healthy.total_time / 2, DroppedNode(8)),)
        with pytest.raises(BackendConfigError, match="survivors"):
            LiveOpticalSimulation(config, fault_events=events).run(schedule)


class TestStaticFaults:
    def test_config_faults_degrade_from_time_zero(self):
        config = OpticalSystemConfig(
            n_nodes=N, n_wavelengths=W, faults=FaultSet.of(DeadWavelength(0))
        )
        schedule = build_wrht_schedule(N, ELEMS, n_wavelengths=W)
        live = LiveOpticalSimulation(config).run(schedule)
        fast = OpticalRingNetwork(config).execute(schedule)
        assert live.total_time == pytest.approx(fast.total_time, rel=1e-12)
        assert live.n_faults == 0  # static faults are not events


class TestInputValidation:
    def test_bad_knobs_rejected(self):
        config = OpticalSystemConfig(n_nodes=N, n_wavelengths=W)
        with pytest.raises(ValueError, match="max_retries"):
            LiveOpticalSimulation(config, max_retries=-1)
        with pytest.raises(ValueError, match="backoff_base"):
            LiveOpticalSimulation(config, backoff_base=-1.0)
        with pytest.raises(ValueError, match="backoff_factor"):
            LiveOpticalSimulation(config, backoff_factor=0.5)

    def test_fault_events_validated_eagerly(self):
        config = OpticalSystemConfig(n_nodes=N, n_wavelengths=W)
        events = (FaultEvent(1.0, DeadWavelength(W)),)
        with pytest.raises(ValueError, match="out of range"):
            LiveOpticalSimulation(config, fault_events=events)
