"""Energy model tests."""

import pytest

from repro.analysis.energy import (
    ElectricalEnergyModel,
    EnergyBreakdown,
    OpticalEnergyModel,
    electrical_allreduce_energy,
    optical_allreduce_energy,
)
from repro.collectives.registry import build_schedule
from repro.electrical.config import ElectricalSystemConfig
from repro.optical.config import OpticalSystemConfig


class TestBreakdown:
    def test_total_and_pj_per_bit(self):
        b = EnergyBreakdown({"a": 1.0, "b": 2.0}, payload_bits=3e12)
        assert b.total == 3.0
        assert b.pj_per_bit == pytest.approx(1.0)

    def test_zero_payload(self):
        assert EnergyBreakdown({}, 0).pj_per_bit == float("inf")

    def test_model_validation(self):
        with pytest.raises(ValueError):
            OpticalEnergyModel(laser_wall_power_w=0)
        with pytest.raises(ValueError):
            ElectricalEnergyModel(switch_energy_per_bit=-1)


class TestOpticalEnergy:
    def test_components_present(self):
        cfg = OpticalSystemConfig(n_nodes=32, n_wavelengths=8)
        sched = build_schedule("wrht", 32, 32_000, n_wavelengths=8)
        energy = optical_allreduce_energy(sched, cfg)
        assert set(energy.components) == {"laser", "mrr_tuning", "oeo", "reconfig"}
        assert energy.total > 0

    def test_energy_scales_with_payload(self):
        cfg = OpticalSystemConfig(n_nodes=16, n_wavelengths=8)
        small = optical_allreduce_energy(
            build_schedule("bt", 16, 10_000), cfg
        )
        large = optical_allreduce_energy(
            build_schedule("bt", 16, 1_000_000), cfg
        )
        assert large.total > 10 * small.total

    def test_payload_bits_accounting(self):
        cfg = OpticalSystemConfig(n_nodes=8, n_wavelengths=8)
        sched = build_schedule("bt", 8, 100)
        energy = optical_allreduce_energy(sched, cfg, bytes_per_elem=4.0)
        assert energy.payload_bits == 14 * 400 * 8  # see bt byte tests


class TestElectricalEnergy:
    def test_components_present(self):
        cfg = ElectricalSystemConfig(n_nodes=32)
        sched = build_schedule("ring", 32, 3200)
        energy = electrical_allreduce_energy(sched, cfg)
        assert set(energy.components) == {"switching", "nic"}
        assert energy.total > 0

    def test_cross_edge_costs_more_switching(self):
        cfg = ElectricalSystemConfig(n_nodes=32)
        intra = build_schedule("ring", 16, 1600)  # all hosts on one edge
        inter = build_schedule("rd", 32, 800)  # crosses the core
        e_intra = electrical_allreduce_energy(intra, cfg)
        e_inter = electrical_allreduce_energy(inter, cfg)
        # Per bit, core crossings pay 3 router traversals vs 1.
        assert e_inter.components["switching"] / e_inter.payload_bits > (
            e_intra.components["switching"] / e_intra.payload_bits
        )


class TestPaperClaim:
    def test_optical_cheaper_per_bit_at_scale(self):
        """Sec 1: optical interconnects consume less power — per payload
        bit, the optical ring undercuts the electrical fat-tree for the
        same All-reduce at the paper's scale."""
        n, elems = 128, 1_000_000
        sched = build_schedule("ring", n, elems, materialize=False)
        optical = optical_allreduce_energy(
            sched, OpticalSystemConfig(n_nodes=n, n_wavelengths=64)
        )
        electrical = electrical_allreduce_energy(
            sched, ElectricalSystemConfig(n_nodes=n)
        )
        assert optical.pj_per_bit < electrical.pj_per_bit

    def test_wrht_energy_competitive_with_ring_optical(self):
        # WRHT moves θ·d total vs Ring's ~2d, so it pays more payload
        # energy — but far less reconfiguration energy. At the small-model
        # scale, totals stay within an order of magnitude.
        n = 128
        cfg = OpticalSystemConfig(n_nodes=n, n_wavelengths=64)
        ring = optical_allreduce_energy(
            build_schedule("ring", n, 100_000, materialize=False), cfg
        )
        wrht = optical_allreduce_energy(
            build_schedule("wrht", n, 100_000, n_wavelengths=64, materialize=False),
            cfg,
        )
        assert wrht.components["reconfig"] < ring.components["reconfig"]
        assert wrht.total < 10 * ring.total
