"""Scaling decomposition tests."""

import pytest

from repro.analysis.scaling import scaling_series
from repro.core.timing import CostModel

MODEL = CostModel(line_rate=40e9, step_overhead=25e-6)
NODES = (128, 256, 512, 1024, 2048)
D = 100e6  # ResNet50 gradient


class TestDecomposition:
    @pytest.mark.parametrize("algo", ["Ring", "BT", "RD", "H-Ring", "WRHT"])
    def test_terms_sum_to_total(self, algo):
        for p in scaling_series(algo, NODES, D, MODEL):
            assert p.total_time == pytest.approx(
                p.latency_time + p.bandwidth_time
            )
            assert 0 <= p.latency_fraction <= 1

    def test_latency_equals_steps_times_overhead(self):
        for p in scaling_series("Ring", NODES, D, MODEL):
            assert p.latency_time == pytest.approx(p.steps * 25e-6)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            scaling_series("AllToAll", NODES, D, MODEL)


class TestPaperTrends:
    def test_ring_becomes_latency_bound_at_scale(self):
        # "Ring rises linearly": its latency term overtakes bandwidth.
        points = scaling_series("Ring", NODES, D, MODEL)
        fractions = [p.latency_fraction for p in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] > 0.5

    def test_ring_bandwidth_term_flat(self):
        points = scaling_series("Ring", NODES, D, MODEL)
        bw = [p.bandwidth_time for p in points]
        assert max(bw) < 1.05 * min(bw)  # ~2d/B regardless of N

    def test_wrht_stays_bandwidth_bound(self):
        # WRHT's few steps keep latency negligible even at 2048 nodes.
        for p in scaling_series("WRHT", NODES, D, MODEL):
            assert p.latency_fraction < 0.05

    def test_bt_bandwidth_grows_with_log_n(self):
        points = scaling_series("BT", NODES, D, MODEL)
        assert points[-1].bandwidth_time > points[0].bandwidth_time

    def test_steps_determine_winner_ordering_on_small_payloads(self):
        # "communication time is primarily determined by the number of
        # communication steps" — true in the latency-bound regime.
        tiny = 1e4
        totals = {
            algo: scaling_series(algo, (1024,), tiny, MODEL)[0]
            for algo in ("Ring", "BT", "WRHT")
        }
        by_steps = sorted(totals, key=lambda a: totals[a].steps)
        by_time = sorted(totals, key=lambda a: totals[a].total_time)
        assert by_steps == by_time
