"""Run manifests: schema, fingerprints, duck-typed result coverage."""

import json

from repro.backend.optical import OpticalBackend
from repro.collectives.registry import build_schedule
from repro.faults.models import DeadWavelength, FaultSet
from repro.obs.manifest import (
    SCHEMA,
    build_run_manifest,
    fingerprint,
    git_sha,
    write_run_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.optical.config import OpticalSystemConfig


def _run(metrics=None):
    config = OpticalSystemConfig(n_nodes=8, n_wavelengths=4)
    backend = OpticalBackend(
        config, metrics=metrics if metrics is not None else MetricsRegistry()
    )
    result = backend.run(build_schedule("ring", 8, 800, materialize=False))
    return config, result


class TestFingerprint:
    def test_stable_and_short(self):
        config = OpticalSystemConfig(n_nodes=8, n_wavelengths=4)
        same = OpticalSystemConfig(n_nodes=8, n_wavelengths=4)
        assert fingerprint(config) == fingerprint(same)
        assert len(fingerprint(config)) == 16

    def test_differs_across_configs(self):
        a = OpticalSystemConfig(n_nodes=8, n_wavelengths=4)
        b = OpticalSystemConfig(n_nodes=8, n_wavelengths=8)
        assert fingerprint(a) != fingerprint(b)


class TestGitSha:
    def test_returns_sha_or_none_without_crashing(self):
        sha = git_sha()
        assert sha is None or (isinstance(sha, str) and len(sha) >= 7)

    def test_none_outside_a_checkout(self, tmp_path):
        assert git_sha(tmp_path) is None


class TestBuildRunManifest:
    def test_schema_and_core_fields(self):
        config, result = _run()
        manifest = build_run_manifest(result, config=config)
        assert manifest["schema"] == SCHEMA
        assert manifest["backend"] == "optical"
        assert manifest["algorithm"] == result.algorithm
        assert manifest["n_steps"] == result.n_steps
        assert manifest["total_time"] == result.total_time
        assert manifest["config"]["hash"] == fingerprint(config)
        assert manifest["cache"] == result.cache.as_dict()
        assert manifest["metrics"]["counters"]  # enabled run embeds metrics

    def test_fault_set_fingerprinted_separately(self):
        faults = FaultSet((DeadWavelength(0),))
        config = OpticalSystemConfig(n_nodes=8, n_wavelengths=4, faults=faults)
        manifest = build_run_manifest(object(), config=config)
        assert manifest["faults"] == {"hash": fingerprint(faults), "n_faults": 1}

    def test_metrics_null_for_disabled_run(self):
        from repro.obs.metrics import NULL_METRICS

        _, result = _run(metrics=NULL_METRICS)
        assert build_run_manifest(result)["metrics"] is None

    def test_extra_is_copied(self):
        extra = {"figure": "fig6"}
        manifest = build_run_manifest(object(), extra=extra)
        extra["figure"] = "mutated"
        assert manifest["extra"] == {"figure": "fig6"}

    def test_write_round_trips_through_json(self, tmp_path):
        config, result = _run()
        manifest = build_run_manifest(result, config=config)
        path = write_run_manifest(manifest, tmp_path / "run.json")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(manifest)
        )
