"""The ``wrht-repro obs`` CLI: table, metrics summary, manifest, forwarding."""

import json

from repro.obs.cli import main as obs_main
from repro.obs.manifest import SCHEMA
from repro.runner.cli import main as runner_main

# A cheap cell: fig5 at w=8 on 64 nodes (the default N=1024 would route
# thousands of transfers per step).
CELL = ["fig5", "--x", "8", "--nodes", "64", "--workload", "AlexNet"]


class TestObsCli:
    def test_renders_table_and_metrics(self, capsys):
        assert obs_main(CELL) == 0
        out = capsys.readouterr().out
        assert "fig5 cell: WRHT on AlexNet" in out
        assert "wavelengths w=8" in out
        assert "stage" in out and "time %" in out  # timing table header
        assert "counters:" in out
        assert "rwa.rounds" in out
        assert "spans (wall clock):" in out

    def test_no_metrics_flag_drops_the_summary(self, capsys):
        assert obs_main([*CELL, "--no-metrics"]) == 0
        out = capsys.readouterr().out
        assert "stage" in out
        assert "counters:" not in out

    def test_manifest_written(self, tmp_path, capsys):
        path = tmp_path / "cell.json"
        assert obs_main([*CELL, "--manifest", str(path)]) == 0
        manifest = json.loads(path.read_text())
        assert manifest["schema"] == SCHEMA
        assert manifest["extra"]["figure"] == "fig5"
        assert manifest["extra"]["x"] == 8
        assert manifest["metrics"]["counters"]
        assert manifest["config"]["hash"]

    def test_unknown_algo_for_figure_rejected(self, capsys):
        assert obs_main(["fig4", "--algo", "E-Ring"]) == 2
        assert "no algorithm 'E-Ring'" in capsys.readouterr().err

    def test_runner_cli_forwards_verbatim(self, capsys):
        # ``wrht-repro obs ...`` must behave exactly like ``python -m
        # repro.obs ...`` — including leading optionals that argparse
        # REMAINDER would otherwise swallow.
        assert runner_main(["obs", *CELL, "--no-metrics"]) == 0
        assert "fig5 cell: WRHT on AlexNet" in capsys.readouterr().out
