"""The bench gate: comparator unit tests plus the script's exit contract."""

import json
import subprocess
import sys
from pathlib import Path

from repro.obs.benchgate import (
    GateReport,
    GateViolation,
    compare_collectives,
    compare_faults,
    compare_reconfig,
    compare_repair,
    compare_rwa,
    compare_service,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
GATE_SCRIPT = REPO_ROOT / "scripts" / "bench_gate.py"

_RWA_BASELINE = {
    "micro": [
        {"case": "dense-alltoall", "n": 64, "transfers": 240, "speedup": 12.0},
    ]
}

_FAULT_ROW = {
    "scenario": "cut-fiber", "backend": "optical", "n_survivors": 64,
    "healthy_s": 1e-4, "degraded_s": 2e-4, "slowdown_pct": 100.0,
    "availability": 0.5, "n_errors": 0,
}
_FAULT_BASELINE = {"scenarios": [dict(_FAULT_ROW)]}


class TestCompareRwa:
    def _row(self, **over):
        row = {"case": "dense-alltoall", "n": 64, "transfers": 240,
               "speedup": 11.0}
        row.update(over)
        return row

    def test_pass(self):
        report = compare_rwa([self._row()], _RWA_BASELINE, perf_floor=0.25)
        assert report.ok
        assert len(report.checked) == 2

    def test_perf_floor_breach(self):
        report = compare_rwa(
            [self._row(speedup=1.0)], _RWA_BASELINE, perf_floor=0.25
        )
        assert [v.kind for v in report.violations] == ["floor"]
        assert "0.25" in report.violations[0].allowed

    def test_above_floor_but_below_baseline_passes(self):
        # Wall clock is noisy: only a floor breach fails, not any slowdown.
        report = compare_rwa(
            [self._row(speedup=4.0)], _RWA_BASELINE, perf_floor=0.25
        )
        assert report.ok

    def test_transfer_count_exact(self):
        report = compare_rwa([self._row(transfers=239)], _RWA_BASELINE)
        assert [v.kind for v in report.violations] == ["exact"]

    def test_missing_baseline_row_is_a_violation(self):
        report = compare_rwa([self._row(n=256)], _RWA_BASELINE)
        assert {v.kind for v in report.violations} == {"missing-baseline"}
        assert len(report.violations) == 2  # transfers and speedup


_REPAIR_BASELINE = {
    "repair": [
        {"case": "dead-wavelength", "n": 1024, "transfers": 240,
         "fallbacks": 0, "speedup": 12.0},
    ]
}


class TestCompareRepair:
    def _row(self, **over):
        row = {"case": "dead-wavelength", "n": 1024, "transfers": 240,
               "fallbacks": 0, "speedup": 11.0}
        row.update(over)
        return row

    def test_pass(self):
        report = compare_repair([self._row()], _REPAIR_BASELINE)
        assert report.ok
        assert len(report.checked) == 3

    def test_perf_floor_breach_reports_measured_ratio(self):
        report = compare_repair(
            [self._row(speedup=1.2)], _REPAIR_BASELINE, perf_floor=0.25
        )
        assert [v.kind for v in report.violations] == ["floor"]
        # The violation message names the measured current/baseline ratio
        # (1.2 / 12.0 = 0.1x), not just the bound.
        assert "measured 0.1 x baseline" in report.violations[0].allowed

    def test_fallback_is_a_regression(self):
        report = compare_repair([self._row(fallbacks=1)], _REPAIR_BASELINE)
        assert [v.metric for v in report.violations] == [
            "repair.dead-wavelength.n1024.fallbacks"
        ]
        assert report.violations[0].kind == "exact"

    def test_transfer_count_exact(self):
        report = compare_repair([self._row(transfers=239)], _REPAIR_BASELINE)
        assert [v.kind for v in report.violations] == ["exact"]

    def test_missing_baseline_row(self):
        report = compare_repair([self._row(n=64)], _REPAIR_BASELINE)
        # fallbacks is gated against the constant 0 even without a baseline.
        assert len(report.violations) == 2
        assert {v.kind for v in report.violations} == {"missing-baseline"}


class TestCompareFaults:
    def test_pass(self):
        report = compare_faults([dict(_FAULT_ROW)], _FAULT_BASELINE)
        assert report.ok
        assert len(report.checked) == 6

    def test_rel_drift_fails(self):
        row = dict(_FAULT_ROW, availability=0.500001)
        report = compare_faults([row], _FAULT_BASELINE, rel_tol=1e-6)
        assert [v.metric for v in report.violations] == [
            "faults.cut-fiber.optical.availability"
        ]
        assert report.violations[0].kind == "rel"

    def test_rel_tolerance_is_configurable(self):
        row = dict(_FAULT_ROW, availability=0.500001)
        assert compare_faults([row], _FAULT_BASELINE, rel_tol=1e-3).ok

    def test_nonzero_check_errors_fail(self):
        row = dict(_FAULT_ROW, n_errors=2)
        report = compare_faults([row], _FAULT_BASELINE)
        assert "n_errors" in report.violations[0].metric

    def test_survivor_count_exact(self):
        row = dict(_FAULT_ROW, n_survivors=63)
        report = compare_faults([row], _FAULT_BASELINE)
        assert [v.kind for v in report.violations] == ["exact"]

    def test_missing_baseline_row(self):
        row = dict(_FAULT_ROW, scenario="unknown")
        report = compare_faults([row], _FAULT_BASELINE)
        # n_errors is gated against the constant 0 even without a baseline.
        assert len(report.violations) == 5
        assert {v.kind for v in report.violations} == {"missing-baseline"}


_CURVE_ROW = {
    "algorithm": "swing", "backend": "analytic", "n_nodes": 64,
    "elems": 100_000, "n_steps": 12, "total_time_s": 1e-3,
}
_COLLECTIVE_FAULT_ROW = {
    "algorithm": "scring-p4", "scenario": "cut-fiber", "n_survivors": 15,
    "healthy_s": 1e-4, "degraded_s": 2e-4, "availability": 0.5, "n_errors": 0,
}
_COLLECTIVES_BASELINE = {
    "curves": [dict(_CURVE_ROW)],
    "faults": [dict(_COLLECTIVE_FAULT_ROW)],
}


class TestCompareCollectives:
    def _current(self, curve_over=None, fault_over=None):
        return {
            "curves": [dict(_CURVE_ROW, **(curve_over or {}))],
            "faults": [dict(_COLLECTIVE_FAULT_ROW, **(fault_over or {}))],
        }

    def test_pass(self):
        report = compare_collectives(self._current(), _COLLECTIVES_BASELINE)
        assert report.ok
        # 2 curve fields + 5 fault fields.
        assert len(report.checked) == 7

    def test_step_count_exact(self):
        report = compare_collectives(
            self._current(curve_over={"n_steps": 13}), _COLLECTIVES_BASELINE
        )
        assert [v.metric for v in report.violations] == [
            "collectives.swing.analytic.n64.e100000.n_steps"
        ]
        assert report.violations[0].kind == "exact"

    def test_time_drift_fails_at_tight_tol(self):
        report = compare_collectives(
            self._current(curve_over={"total_time_s": 1.00001e-3}),
            _COLLECTIVES_BASELINE,
            rel_tol=1e-6,
        )
        assert [v.kind for v in report.violations] == ["rel"]
        assert compare_collectives(
            self._current(curve_over={"total_time_s": 1.00001e-3}),
            _COLLECTIVES_BASELINE,
            rel_tol=1e-3,
        ).ok

    def test_fault_row_must_verify_clean(self):
        # n_errors is gated against the constant 0, baseline or not.
        report = compare_collectives(
            self._current(fault_over={"n_errors": 3}), _COLLECTIVES_BASELINE
        )
        assert [v.metric for v in report.violations] == [
            "collectives.scring-p4.cut-fiber.n_errors"
        ]
        assert report.violations[0].kind == "exact"
        # Even without any baseline, a dirty row still fails.
        bare = compare_collectives(
            {"faults": [dict(_COLLECTIVE_FAULT_ROW, n_errors=3)]}, None
        )
        assert any(
            v.metric.endswith(".n_errors") and v.kind == "exact"
            for v in bare.violations
        )

    def test_missing_baseline_row(self):
        report = compare_collectives(
            self._current(curve_over={"n_nodes": 256}), _COLLECTIVES_BASELINE
        )
        assert {v.kind for v in report.violations} == {"missing-baseline"}
        assert len(report.violations) == 2  # n_steps and total_time_s


_RECONFIG_ROW = {
    "algorithm": "rd", "backend": "optical", "n_nodes": 8, "elems": 1_000_000,
    "t_tune_us": 25.0, "no_overlap_s": 2e-3, "overlap_s": 1.5e-3,
    "hold_s": 1.2e-3, "decision": "hold", "chosen_s": 1.2e-3, "n_errors": 0,
}
_RECONFIG_BASELINE = {"reconfig": [dict(_RECONFIG_ROW)]}


class TestCompareReconfig:
    def _row(self, **over):
        row = dict(_RECONFIG_ROW)
        row.update(over)
        return row

    def test_pass(self):
        report = compare_reconfig([self._row()], _RECONFIG_BASELINE)
        assert report.ok
        # 6 per-row fields + the baseline-independent overlap_wins check.
        assert len(report.checked) == 7

    def test_decision_flip_exact(self):
        report = compare_reconfig(
            [self._row(decision="reconfigure")], _RECONFIG_BASELINE
        )
        assert [v.metric for v in report.violations] == [
            "reconfig.rd.optical.n8.e1000000.decision"
        ]
        assert report.violations[0].kind == "exact"

    def test_time_drift_fails_at_tight_tol(self):
        report = compare_reconfig(
            [self._row(chosen_s=1.20001e-3)], _RECONFIG_BASELINE, rel_tol=1e-6
        )
        assert [v.kind for v in report.violations] == ["rel"]
        assert compare_reconfig(
            [self._row(chosen_s=1.20001e-3)], _RECONFIG_BASELINE, rel_tol=1e-3
        ).ok

    def test_row_must_verify_clean(self):
        # n_errors gates against the constant 0 even without a baseline.
        report = compare_reconfig([self._row(n_errors=2)], None)
        assert any(
            v.metric.endswith(".n_errors") and v.kind == "exact"
            for v in report.violations
        )

    def test_hold_feasibility_flip_is_exact(self):
        report = compare_reconfig([self._row(hold_s=None)], _RECONFIG_BASELINE)
        violations = [
            v for v in report.violations if v.metric.endswith(".hold_s")
        ]
        assert [v.kind for v in violations] == ["exact"]
        assert "None-ness" in violations[0].allowed

    def test_both_hold_none_passes(self):
        baseline = {
            "reconfig": [dict(_RECONFIG_ROW, hold_s=None, decision="hold-infeasible")]
        }
        current = [self._row(hold_s=None, decision="hold-infeasible")]
        assert compare_reconfig(current, baseline).ok

    def test_missing_baseline_row(self):
        report = compare_reconfig(
            [self._row(n_nodes=16)], _RECONFIG_BASELINE
        )
        # decision + 3 rel fields + hold_s; n_errors/overlap_wins still pass.
        assert {v.kind for v in report.violations} == {"missing-baseline"}
        assert len(report.violations) == 5

    def test_overlap_must_win_somewhere(self):
        stuck = self._row(overlap_s=_RECONFIG_ROW["no_overlap_s"])
        report = compare_reconfig(
            [stuck], {"reconfig": [dict(stuck)]}
        )
        assert [v.metric for v in report.violations] == ["reconfig.overlap_wins"]
        assert report.violations[0].kind == "floor"
        # Electrical-only rows carry no overlap machinery — no floor check.
        electric = self._row(
            backend="electrical", overlap_s=2e-3, chosen_s=2e-3,
            hold_s=None, decision="n/a",
        )
        assert compare_reconfig(
            [electric],
            {"reconfig": [dict(electric)]},
        ).ok


_SERVICE_BASELINE = {
    "service": [
        {"case": "service-micro", "tenants": 4, "requests": 400,
         "distinct_cells": 10, "rps": 1600.0, "p50_ms": 2.0, "p99_ms": 5.0},
    ]
}


class TestCompareService:
    def _row(self, **over):
        row = {"case": "service-micro", "tenants": 4, "requests": 400,
               "distinct_cells": 10, "rps": 1500.0, "p50_ms": 2.5,
               "p99_ms": 6.0}
        row.update(over)
        return row

    def test_pass(self):
        report = compare_service([self._row()], _SERVICE_BASELINE)
        assert report.ok
        assert len(report.checked) == 5

    def test_perf_floor_breach(self):
        report = compare_service(
            [self._row(rps=450.0)], _SERVICE_BASELINE, perf_floor=0.25
        )
        # 450 clears 0.25 x 1600 = 400 but breaches the absolute >=500 floor.
        assert [v.metric for v in report.violations] == [
            "service.service-micro.rps_absolute"
        ]
        report = compare_service(
            [self._row(rps=350.0)], _SERVICE_BASELINE, perf_floor=0.5
        )
        assert {v.metric for v in report.violations} == {
            "service.service-micro.rps",
            "service.service-micro.rps_absolute",
        }

    def test_absolute_floor_is_configurable(self):
        assert compare_service(
            [self._row(rps=520.0)], _SERVICE_BASELINE, min_rps=500.0
        ).ok
        report = compare_service(
            [self._row(rps=520.0)], _SERVICE_BASELINE, min_rps=1000.0
        )
        assert [v.metric for v in report.violations] == [
            "service.service-micro.rps_absolute"
        ]

    def test_structural_counts_exact(self):
        report = compare_service([self._row(requests=399)], _SERVICE_BASELINE)
        assert [v.kind for v in report.violations] == ["exact"]

    def test_missing_baseline_row(self):
        report = compare_service([self._row(case="other")], _SERVICE_BASELINE)
        # The absolute rps floor still applies without a baseline row.
        assert len(report.violations) == 4
        assert {v.kind for v in report.violations} == {"missing-baseline"}


class TestGateReport:
    def test_merge_accumulates(self):
        a = GateReport(checked=["x"], violations=[])
        b = GateReport(
            checked=["y"],
            violations=[GateViolation("y", "rel", 1.0, 2.0, "<= 1e-6")],
        )
        assert a.merge(b) is a
        assert a.checked == ["x", "y"]
        assert not a.ok

    def test_to_dict_round_trips_through_json(self):
        report = compare_rwa([], _RWA_BASELINE)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is True
        assert data["n_checked"] == 0

    def test_render_mentions_counts(self):
        assert "0 violation(s)" in GateReport().render()


def _run_gate(*argv):
    return subprocess.run(
        [sys.executable, str(GATE_SCRIPT), "--skip-perf", *argv],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=300,
    )


class TestBenchGateScript:
    def test_green_against_committed_baseline(self, tmp_path):
        out = tmp_path / "diff.json"
        proc = _run_gate("--json", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert json.loads(out.read_text())["ok"] is True

    def test_perturbed_baseline_fails(self, tmp_path):
        baseline = json.loads((REPO_ROOT / "BENCH_faults.json").read_text())
        baseline["scenarios"][0]["availability"] *= 0.9
        path = tmp_path / "perturbed.json"
        path.write_text(json.dumps(baseline))
        out = tmp_path / "diff.json"
        proc = _run_gate(
            "--baseline-faults", str(path), "--json", str(out)
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        diff = json.loads(out.read_text())
        assert diff["ok"] is False
        assert any(
            v["metric"].endswith(".availability") for v in diff["violations"]
        )

    def test_missing_baseline_exits_2(self, tmp_path):
        proc = _run_gate("--baseline-faults", str(tmp_path / "absent.json"))
        assert proc.returncode == 2
        assert "missing or unreadable baseline" in proc.stderr

    def test_update_baseline_rewrites_measured_cells(self, tmp_path):
        """--update-baseline splices fresh rows into the pinned JSON; the
        deterministic fault rows must round-trip identically."""
        baseline = json.loads((REPO_ROOT / "BENCH_faults.json").read_text())
        baseline["scenarios"][0]["availability"] *= 0.9  # stale cell
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(baseline))
        # Redirect the collectives baseline too so the test never rewrites
        # the committed BENCH_collectives.json.
        proc = _run_gate(
            "--update-baseline", "--baseline-faults", str(path),
            "--baseline-collectives", str(tmp_path / "collectives.json"),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        updated = json.loads(path.read_text())
        committed = json.loads((REPO_ROOT / "BENCH_faults.json").read_text())
        assert updated["scenarios"] == committed["scenarios"]

    def test_update_baseline_creates_missing_file(self, tmp_path):
        path = tmp_path / "fresh.json"
        collectives = tmp_path / "collectives.json"
        proc = _run_gate(
            "--update-baseline", "--baseline-faults", str(path),
            "--baseline-collectives", str(collectives),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert json.loads(path.read_text())["scenarios"]
        fresh = json.loads(collectives.read_text())
        assert fresh["curves"] and fresh["faults"]
