"""The metrics registry: recording semantics, cost contract, serialization."""

import json

import pytest

from repro.obs.metrics import (
    COUNT_EDGES,
    DURATION_EDGES,
    NULL_METRICS,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        assert m.snapshot().counters == {"a": 5}

    def test_gauge_last_write_wins(self):
        m = MetricsRegistry()
        m.gauge("x", 1.0)
        m.gauge("x", 2.5)
        assert m.snapshot().gauges == {"x": 2.5}


class TestHistograms:
    def test_bucketing(self):
        m = MetricsRegistry()
        edges = (1.0, 2.0, 4.0)
        for v in (0.5, 1.0, 3.0, 100.0):
            m.observe("h", v, edges=edges)
        hist = m.snapshot().histograms["h"]
        # counts[i] tallies value <= edges[i]; the last slot is overflow.
        assert hist["edges"] == [1.0, 2.0, 4.0]
        assert hist["counts"] == [2, 0, 1, 1]
        assert hist["n"] == 4
        assert hist["total"] == pytest.approx(104.5)
        assert hist["min"] == 0.5
        assert hist["max"] == 100.0

    def test_first_registration_wins_on_edges(self):
        m = MetricsRegistry()
        m.observe("h", 1.0, edges=COUNT_EDGES)
        m.observe("h", 2.0, edges=DURATION_EDGES)  # ignored, not an error
        assert m.snapshot().histograms["h"]["edges"] == list(COUNT_EDGES)

    def test_empty_histogram_min_max_are_none_after_round_trip(self):
        m = MetricsRegistry()
        m.observe("h", 1.0)
        snap = MetricsSnapshot.from_dict(json.loads(m.snapshot().to_json()))
        assert snap.histograms["h"]["min"] == 1.0

    def test_default_edges_are_fixed_decades(self):
        assert DURATION_EDGES[0] == 1e-9
        assert DURATION_EDGES[-1] == 1e3
        assert list(DURATION_EDGES) == sorted(DURATION_EDGES)
        assert list(COUNT_EDGES) == [float(2**e) for e in range(13)]


class TestSpans:
    def test_span_records_count_and_time(self):
        m = MetricsRegistry()
        with m.span("stage"):
            pass
        with m.span("stage"):
            pass
        stat = m.snapshot().spans["stage"]
        assert stat["count"] == 2
        assert stat["total_s"] >= 0.0

    def test_span_records_on_exception(self):
        m = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with m.span("stage"):
                raise RuntimeError("boom")
        assert m.snapshot().spans["stage"]["count"] == 1


class TestDisabledRegistry:
    def test_everything_is_a_no_op(self):
        m = MetricsRegistry(enabled=False)
        m.inc("a")
        m.gauge("g", 1.0)
        m.observe("h", 2.0)
        with m.span("s"):
            pass
        snap = m.snapshot()
        assert snap.counters == snap.gauges == snap.histograms == snap.spans == {}

    def test_disabled_span_is_the_shared_null_instance(self):
        # The cost contract: a disabled emission is one branch, with no
        # per-call allocation.
        m = MetricsRegistry(enabled=False)
        assert m.span("a") is m.span("b") is NULL_METRICS.span("c")

    def test_null_metrics_is_disabled(self):
        assert NULL_METRICS.enabled is False


class TestSnapshot:
    def _populated(self):
        m = MetricsRegistry()
        m.inc("c", 3)
        m.gauge("g", 1.5)
        m.observe("h", 0.25, edges=(1.0, 2.0))
        with m.span("s"):
            pass
        return m.snapshot()

    def test_json_round_trip(self):
        snap = self._populated()
        back = MetricsSnapshot.from_dict(json.loads(snap.to_json()))
        assert back.to_json() == snap.to_json()

    def test_wall_clock_false_drops_span_seconds_only(self):
        snap = self._populated()
        data = snap.to_dict(wall_clock=False)
        assert data["spans"]["s"] == {"count": 1}
        assert "total_s" in snap.to_dict()["spans"]["s"]
        assert data["counters"] == {"c": 3}  # deterministic groups untouched

    def test_snapshot_is_a_copy(self):
        m = MetricsRegistry()
        m.inc("c")
        snap = m.snapshot()
        m.inc("c")
        assert snap.counters == {"c": 1}

    def test_clear_drops_registration_state(self):
        m = MetricsRegistry()
        m.observe("h", 1.0, edges=(10.0,))
        m.clear()
        m.observe("h", 1.0, edges=(5.0,))  # re-registration after clear
        assert m.snapshot().histograms["h"]["edges"] == [5.0]
