"""The observability determinism contract.

Two guarantees, both acceptance criteria for the metrics layer:

1. Identical seeded runs produce **byte-identical** deterministic
   serializations (``MetricsSnapshot.to_json(wall_clock=False)``) — the
   counters, gauges and histograms record only simulated quantities.
2. Enabling metrics never changes the simulated timings: a metered run's
   floats equal the unmetered run's bit for bit.
"""

from repro.backend import PlanCache
from repro.backend.optical import OpticalBackend
from repro.collectives import build_wrht_schedule
from repro.collectives.registry import build_schedule
from repro.faults.models import DeadWavelength, FaultEvent
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.optical.config import OpticalSystemConfig
from repro.optical.livesim import LiveOpticalSimulation

N, W = 16, 8


def _backend_run(metrics):
    # A fresh plan cache per run: the shared cross-run cache would make the
    # first run cold and the second warm, legitimately changing the
    # plan_cache.* counters.
    backend = OpticalBackend(
        OpticalSystemConfig(n_nodes=N, n_wavelengths=W),
        plan_cache=PlanCache(maxsize=64),
        metrics=metrics,
    )
    schedule = build_schedule("wrht", N, N * 40, n_wavelengths=W, materialize=False)
    return backend.run(schedule)


def _live_run(metrics, fault_time):
    config = OpticalSystemConfig(n_nodes=N, n_wavelengths=W)
    schedule = build_wrht_schedule(N, 50_000, n_wavelengths=W)
    events = (FaultEvent(fault_time, DeadWavelength(0)),)
    return LiveOpticalSimulation(
        config, fault_events=events, metrics=metrics
    ).run(schedule)


class TestBackendDeterminism:
    def test_two_runs_byte_identical(self):
        a = _backend_run(MetricsRegistry()).metrics
        b = _backend_run(MetricsRegistry()).metrics
        assert a.to_json(wall_clock=False) == b.to_json(wall_clock=False)

    def test_wall_clock_form_differs_only_in_span_seconds(self):
        snap = _backend_run(MetricsRegistry()).metrics
        full = snap.to_dict()
        det = snap.to_dict(wall_clock=False)
        assert full["counters"] == det["counters"]
        assert full["histograms"] == det["histograms"]
        assert all("total_s" in s for s in full["spans"].values())
        assert all(set(s) == {"count"} for s in det["spans"].values())

    def test_metrics_do_not_change_simulated_timings(self):
        metered = _backend_run(MetricsRegistry())
        plain = _backend_run(NULL_METRICS)
        assert metered.total_time == plain.total_time
        assert metered.timeline == plain.timeline
        assert plain.metrics is None


class TestLiveDeterminism:
    def test_two_faulted_runs_byte_identical(self):
        healthy = _live_run(NULL_METRICS, fault_time=1.0)  # fault never fires
        fault_time = healthy.total_time / 2
        a = _live_run(MetricsRegistry(), fault_time).metrics
        b = _live_run(MetricsRegistry(), fault_time).metrics
        assert a.counters["optical.live.retries"] >= 1
        assert a.to_json(wall_clock=False) == b.to_json(wall_clock=False)

    def test_metrics_do_not_change_live_timings(self):
        healthy = _live_run(NULL_METRICS, fault_time=1.0)
        fault_time = healthy.total_time / 2
        metered = _live_run(MetricsRegistry(), fault_time)
        plain = _live_run(NULL_METRICS, fault_time)
        assert metered.total_time == plain.total_time
        assert metered.n_retries == plain.n_retries
        assert metered.n_events == plain.n_events
        assert plain.metrics is None

    def test_live_metrics_cover_kernel_and_executor(self):
        healthy = _live_run(NULL_METRICS, fault_time=1.0)
        snap = _live_run(MetricsRegistry(), healthy.total_time / 2).metrics
        assert snap.counters["sim.run_calls"] == 1
        assert snap.counters["rwa.rounds"] >= 1
        assert snap.counters["optical.live.faults"] == 1
        assert snap.histograms["optical.live.step_s"]["n"] == healthy.n_steps
        assert snap.gauges["optical.live.downtime_s"] > 0.0
