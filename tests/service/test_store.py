"""Persistent plan store: sharing, corruption tolerance, fork safety."""

import multiprocessing
import os
import pickle

import pytest

from repro.backend.plancache import (
    PlanCache,
    default_plan_cache,
    set_default_plan_cache,
)
from repro.service.store import (
    STORE_ENV,
    STORE_VERSION,
    PersistentPlanCache,
    PlanStore,
    ensure_worker_store,
    install_persistent_cache,
    key_digest,
)


@pytest.fixture(autouse=True)
def _restore_default_cache():
    """Keep the process-wide default cache pristine across tests."""
    before = default_plan_cache()
    yield
    set_default_plan_cache(before)


class TestStoreBasics:
    def test_round_trip(self, tmp_path):
        store = PlanStore(tmp_path)
        key = ("pattern", ("cfg", 1.25), 4.0)
        store.put(key, {"t": 0.125})
        assert store.get(key) == {"t": 0.125}
        assert store.stats.writes == 1
        assert store.stats.hits == 1

    def test_miss_counted(self, tmp_path):
        store = PlanStore(tmp_path)
        assert store.get(("absent",)) is None
        assert store.stats.misses == 1

    def test_survives_process_restart(self, tmp_path):
        PlanStore(tmp_path).put(("k",), 1.5)
        reopened = PlanStore(tmp_path)
        assert reopened.get(("k",)) == 1.5

    def test_flush_batching(self, tmp_path):
        store = PlanStore(tmp_path, flush_every=10)
        store.put(("a",), 1)
        assert store.stats.flushes == 0  # buffered
        assert PlanStore(tmp_path).get(("a",)) is None  # not on disk yet
        store.flush()
        assert PlanStore(tmp_path).get(("a",)) == 1

    def test_equal_keys_digest_identically(self):
        assert key_digest(("a", 1, 2.5)) == key_digest(("a", 1, 2.5))
        assert key_digest(("a", 1)) != key_digest(("a", 2))

    def test_len_spans_writers(self, tmp_path):
        PlanStore(tmp_path).put(("k1",), 1)
        store = PlanStore(tmp_path)
        store.put(("k2",), 2)
        assert len(store) == 2


class TestCorruptionTolerance:
    def test_truncated_shard_is_a_miss(self, tmp_path):
        store = PlanStore(tmp_path, n_shards=1)
        store.put(("k",), 1)
        (shard,) = tmp_path.glob("shard-*.pkl")
        shard.write_bytes(shard.read_bytes()[:7])
        fresh = PlanStore(tmp_path, n_shards=1)
        assert fresh.get(("k",)) is None
        assert fresh.stats.corrupt_files == 1

    def test_garbage_shard_is_a_miss(self, tmp_path):
        store = PlanStore(tmp_path, n_shards=1)
        store.put(("k",), 1)
        (shard,) = tmp_path.glob("shard-*.pkl")
        shard.write_bytes(b"\x00garbage, not a pickle")
        fresh = PlanStore(tmp_path, n_shards=1)
        assert fresh.get(("k",)) is None
        assert fresh.stats.corrupt_files == 1

    def test_wrong_payload_shape_is_a_miss(self, tmp_path):
        store = PlanStore(tmp_path, n_shards=1)
        store.put(("k",), 1)
        (shard,) = tmp_path.glob("shard-*.pkl")
        shard.write_bytes(pickle.dumps(["not", "a", "dict"]))
        fresh = PlanStore(tmp_path, n_shards=1)
        assert fresh.get(("k",)) is None
        assert fresh.stats.corrupt_files == 1

    def test_version_mismatch_ignored_not_crashed(self, tmp_path):
        store = PlanStore(tmp_path, n_shards=1)
        store.put(("k",), 1)
        (shard,) = tmp_path.glob("shard-*.pkl")
        payload = pickle.loads(shard.read_bytes())
        payload["version"] = STORE_VERSION + 1
        shard.write_bytes(pickle.dumps(payload))
        fresh = PlanStore(tmp_path, n_shards=1)
        assert fresh.get(("k",)) is None
        assert fresh.stats.stale_files == 1
        assert fresh.stats.corrupt_files == 0

    def test_one_bad_writer_does_not_hide_good_ones(self, tmp_path):
        good = PlanStore(tmp_path, n_shards=1)
        good.put(("k",), 42)
        (tmp_path / "shard-000.99999.pkl").write_bytes(b"junk")
        fresh = PlanStore(tmp_path, n_shards=1)
        assert fresh.get(("k",)) == 42
        assert fresh.stats.corrupt_files == 1


def _worker_writes(root, worker_id, n_keys, out):
    """Write this worker's keys, then read everything back (own + disk)."""
    store = PlanStore(root, flush_every=1)
    for i in range(n_keys):
        store.put(("w", worker_id, i), worker_id * 1000 + i)
    store.flush()
    out.put((worker_id, os.getpid()))


class TestMultiProcessSharing:
    def test_concurrent_writers_never_clobber(self, tmp_path):
        """Two processes writing the same store keep every entry."""
        ctx = multiprocessing.get_context("fork")
        out = ctx.Queue()
        n_keys = 25
        procs = [
            ctx.Process(target=_worker_writes, args=(str(tmp_path), w, n_keys, out))
            for w in (1, 2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        pids = {out.get(timeout=5)[1] for _ in procs}
        assert len(pids) == 2  # genuinely distinct writer processes
        merged = PlanStore(tmp_path)
        for w in (1, 2):
            for i in range(n_keys):
                assert merged.get(("w", w, i)) == w * 1000 + i

    def test_writers_use_per_pid_files(self, tmp_path):
        store = PlanStore(tmp_path, n_shards=1)
        store.put(("k",), 1)
        (shard,) = tmp_path.glob("shard-*.pkl")
        assert f".{os.getpid()}." in shard.name

    def test_fork_rekeys_writer_identity(self, tmp_path):
        """A forked child must not rewrite the parent's shard files."""
        store = PlanStore(tmp_path, n_shards=1)
        store.put(("parent-key",), "parent")
        parent_file = tmp_path / f"shard-000.{os.getpid()}.pkl"
        assert parent_file.exists()

        ctx = multiprocessing.get_context("fork")

        def child():
            # The inherited store re-keys to the child pid on first use.
            store.put(("child-key",), "child")
            store.flush()

        p = ctx.Process(target=child)
        p.start()
        p.join(timeout=30)
        assert p.exitcode == 0
        child_files = [
            f for f in tmp_path.glob("shard-000.*.pkl") if f != parent_file
        ]
        assert len(child_files) == 1  # child wrote its own file
        merged = PlanStore(tmp_path, n_shards=1)
        assert merged.get(("parent-key",)) == "parent"
        assert merged.get(("child-key",)) == "child"

    def test_refresh_sees_other_writers(self, tmp_path):
        reader = PlanStore(tmp_path, n_shards=1)
        assert reader.get(("late",)) is None  # snapshot now cached
        writer = PlanStore(tmp_path, n_shards=1)
        writer.put(("late",), 7)
        reader.refresh()
        assert reader.get(("late",)) == 7


class TestPersistentPlanCache:
    def test_write_through_and_disk_fallback(self, tmp_path):
        cache = PersistentPlanCache(PlanStore(tmp_path))
        cache.put(("k",), 3.5)
        cold = PersistentPlanCache(PlanStore(tmp_path))
        assert len(cold) == 0  # memory empty
        assert cold.get(("k",)) == 3.5  # served from disk
        assert cold.stats.hits == 1

    def test_disk_hit_promotes_without_rewriting(self, tmp_path):
        PersistentPlanCache(PlanStore(tmp_path)).put(("k",), 1)
        cache = PersistentPlanCache(PlanStore(tmp_path))
        assert cache.get(("k",)) == 1
        assert cache.store.stats.writes == 0
        assert len(cache) == 1  # promoted into memory
        assert cache.get(("k",)) == 1
        assert cache.store.stats.hits == 1  # second hit was memory-only

    def test_is_a_plan_cache(self, tmp_path):
        assert isinstance(PersistentPlanCache(PlanStore(tmp_path)), PlanCache)


def _worker_plan_probe(n_kb):
    """Sweep cell: lower a plan through the process-default cache."""
    from repro.backend.plancache import default_plan_cache
    from repro.service.api import PlanEngine, PlanRequest

    cache = default_plan_cache()
    engine = PlanEngine(plan_cache=cache)
    result = engine.evaluate(
        PlanRequest("WRHT", 8, 1024 * n_kb, n_wavelengths=8)
    )
    engine.flush()
    return (os.getpid(), type(cache).__name__, result.total_time)


class TestSweepWorkerStore:
    def test_workers_inherit_env_store(self, tmp_path, monkeypatch):
        """With WRHT_PLAN_STORE set, sweep workers share one on-disk store."""
        from repro.runner.sweep import sweep

        monkeypatch.setenv(STORE_ENV, str(tmp_path))
        results = sweep(
            _worker_plan_probe, {"n_kb": [1, 2, 3, 4]}, workers=2, chunk_size=1
        )
        assert {r[1] for r in results.values()} == {"PersistentPlanCache"}
        shard_files = list(tmp_path.glob("shard-*.pkl"))
        assert shard_files  # workers spilled lowerings to disk
        writer_pids = {f.name.split(".")[1] for f in shard_files}
        worker_pids = {str(r[0]) for r in results.values()}
        assert writer_pids <= worker_pids  # per-worker files, never clobbered
        assert len(PlanStore(tmp_path)) > 0

    def test_serial_sweep_untouched_without_env(self, tmp_path, monkeypatch):
        from repro.runner.sweep import sweep

        monkeypatch.delenv(STORE_ENV, raising=False)
        results = sweep(_worker_plan_probe, {"n_kb": [1]}, workers=2)
        assert {r[1] for r in results.values()} == {"PlanCache"}
        assert not list(tmp_path.glob("shard-*.pkl"))


class TestWorkerStoreHook:
    def test_install_sets_process_default(self, tmp_path):
        cache = install_persistent_cache(tmp_path)
        assert default_plan_cache() is cache

    def test_ensure_refreshes_installed_cache(self, tmp_path):
        cache = install_persistent_cache(tmp_path)
        assert ensure_worker_store() is cache

    def test_ensure_installs_from_env(self, tmp_path, monkeypatch):
        set_default_plan_cache(PlanCache())
        monkeypatch.setenv(STORE_ENV, str(tmp_path))
        cache = ensure_worker_store()
        assert isinstance(cache, PersistentPlanCache)
        assert default_plan_cache() is cache

    def test_ensure_noop_without_env(self, monkeypatch):
        plain = PlanCache()
        set_default_plan_cache(plain)
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert ensure_worker_store() is None
        assert default_plan_cache() is plain
