"""Request model and engine: round-trips, coalescing identity, parity."""

import pytest

from repro.backend.plancache import PlanCache
from repro.dnn.workload import DnnWorkload
from repro.faults.models import DeadWavelength, FaultSet
from repro.runner.experiments import (
    _build_cell_schedule,
    get_backend,
)
from repro.service.api import (
    ALGORITHMS,
    PlanEngine,
    PlanRequest,
    comparable_dict,
    fault_from_wire,
    fault_to_wire,
    request_without_tenant,
)
from repro.service.errors import ServiceRequestError


class TestFaultCodec:
    @pytest.mark.parametrize(
        "wire",
        [
            ("dead_wavelength", 3),
            ("mrr_port", 2, 1, "stuck", "cw"),
            ("cut_fiber", 4, "cw"),
            ("dropped_node", 7),
            ("power_droop", 1.5),
        ],
    )
    def test_round_trip(self, wire):
        fault = fault_from_wire(wire)
        assert fault_to_wire(fault) == wire

    def test_json_list_accepted(self):
        assert fault_from_wire(["dead_wavelength", 3]) == DeadWavelength(3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceRequestError):
            fault_from_wire(("laser_on_fire", 1))

    def test_bad_args_rejected(self):
        with pytest.raises(ServiceRequestError):
            fault_from_wire(("dead_wavelength",))


class TestPlanRequest:
    def test_dict_round_trip(self):
        req = PlanRequest(
            "WRHT", 16, 4096, n_wavelengths=8, m=5, tenant="alice",
            faults=(("dead_wavelength", 2),),
        )
        assert PlanRequest.from_dict(req.to_dict()) == req

    def test_json_shaped_faults_normalize(self):
        a = PlanRequest("Ring", 8, 100, faults=(("dead_wavelength", 2),))
        b = PlanRequest.from_dict(
            {**a.to_dict(), "faults": [["dead_wavelength", 2]]}
        )
        assert a == b

    def test_fault_order_normalized(self):
        a = PlanRequest(
            "Ring", 8, 100,
            faults=(("dead_wavelength", 5), ("dead_wavelength", 2)),
        )
        b = PlanRequest(
            "Ring", 8, 100,
            faults=(("dead_wavelength", 2), ("dead_wavelength", 5)),
        )
        assert a == b
        assert a.coalesce_key() == b.coalesce_key()

    def test_malformed_rejected(self):
        with pytest.raises(ServiceRequestError):
            PlanRequest.from_dict({"algorithm": "Ring"})  # missing sizes
        with pytest.raises(ServiceRequestError):
            PlanRequest.from_dict("not an object")

    def test_fault_set_decodes(self):
        req = PlanRequest("Ring", 8, 100, faults=(("dead_wavelength", 2),))
        assert req.fault_set() == FaultSet((DeadWavelength(2),))


class TestCoalesceKey:
    def test_identical_requests_share_a_key(self):
        a = PlanRequest("WRHT", 16, 4096, n_wavelengths=8)
        b = PlanRequest("WRHT", 16, 4096, n_wavelengths=8)
        assert a.coalesce_key() == b.coalesce_key()

    def test_tenant_never_splits_the_key(self):
        a = PlanRequest("WRHT", 16, 4096, tenant="alice")
        b = PlanRequest("WRHT", 16, 4096, tenant="bob")
        assert a.coalesce_key() == b.coalesce_key()
        assert request_without_tenant(a) == request_without_tenant(b)

    def test_distinct_cells_split_the_key(self):
        a = PlanRequest("WRHT", 16, 4096)
        assert a.coalesce_key() != PlanRequest("WRHT", 32, 4096).coalesce_key()
        assert a.coalesce_key() != PlanRequest("Ring", 16, 4096).coalesce_key()
        assert (
            a.coalesce_key()
            != PlanRequest("WRHT", 16, 4096, backend="analytic").coalesce_key()
        )

    def test_faults_delta_salt_the_key(self):
        healthy = PlanRequest("WRHT", 16, 4096, n_wavelengths=8)
        faulted = PlanRequest(
            "WRHT", 16, 4096, n_wavelengths=8,
            faults=(("dead_wavelength", 2),),
        )
        assert healthy.coalesce_key() != faulted.coalesce_key()
        assert faulted.coalesce_key()[0] == "delta"
        assert faulted.coalesce_key()[1] == healthy.coalesce_key()


class TestPlanEngine:
    @pytest.mark.parametrize("backend", ["optical", "electrical", "analytic"])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_parity_with_runner_path(self, backend, algorithm):
        """Engine answers are bit-identical to the experiment runners'."""
        engine = PlanEngine(plan_cache=PlanCache())
        request = PlanRequest(algorithm, 8, 4096, backend=backend, n_wavelengths=8)
        mine = comparable_dict(engine.evaluate(request))
        workload = DnnWorkload("cell", 4096)
        be = get_backend(backend, 8, 8, "calibrated")
        schedule = _build_cell_schedule(
            algorithm, 8, 8, workload, wrht_m=None, hring_m=5
        )
        theirs = comparable_dict(
            be.run(schedule, bytes_per_elem=workload.bytes_per_param)
        )
        assert mine == theirs

    def test_result_json_round_trips_exactly(self):
        import json

        from repro.backend.base import ExecutionResult

        engine = PlanEngine(plan_cache=PlanCache())
        result = engine.evaluate(PlanRequest("WRHT", 8, 4096, n_wavelengths=8))
        wire = json.loads(json.dumps(result.to_dict()))
        assert comparable_dict(ExecutionResult.from_dict(wire)) == comparable_dict(
            result
        )

    def test_faulted_optical_served_via_repair(self):
        engine = PlanEngine(plan_cache=PlanCache())
        result = engine.evaluate(
            PlanRequest(
                "WRHT", 8, 4096, n_wavelengths=8,
                faults=(("dead_wavelength", 2),),
            )
        )
        assert result.meta["repair"] is True
        assert result.meta["n_faults"] == 1
        assert result.total_time > 0

    def test_faulted_non_optical_rejected(self):
        engine = PlanEngine(plan_cache=PlanCache())
        with pytest.raises(ServiceRequestError):
            engine.evaluate(
                PlanRequest(
                    "Ring", 8, 4096, backend="electrical",
                    faults=(("dead_wavelength", 2),),
                )
            )

    def test_unknown_algorithm_rejected(self):
        engine = PlanEngine(plan_cache=PlanCache())
        with pytest.raises(ServiceRequestError):
            engine.evaluate(PlanRequest("Butterfly", 8, 4096))

    def test_unknown_backend_rejected(self):
        engine = PlanEngine(plan_cache=PlanCache())
        with pytest.raises(ServiceRequestError):
            engine.evaluate(PlanRequest("Ring", 8, 4096, backend="quantum"))

    def test_invalid_fault_set_rejected(self):
        engine = PlanEngine(plan_cache=PlanCache())
        with pytest.raises(ServiceRequestError):
            engine.evaluate(
                PlanRequest(
                    "WRHT", 8, 4096, n_wavelengths=8,
                    faults=(("dead_wavelength", 99),),  # out of budget
                )
            )

    def test_lowerings_fill_the_shared_cache(self):
        cache = PlanCache()
        engine = PlanEngine(plan_cache=cache)
        engine.evaluate(PlanRequest("WRHT", 8, 4096, n_wavelengths=8))
        assert len(cache) > 0
