"""Client ↔ daemon integration: bit-identity, coalescing, admission, quotas."""

import asyncio
import contextlib
import socket
import threading
import time

import pytest

from repro.backend.plancache import PlanCache
from repro.service.api import PlanEngine, PlanRequest, comparable_dict
from repro.service.client import PlanClient
from repro.service.daemon import PlanningService
from repro.service.errors import (
    ServiceError,
    ServiceQuotaError,
    ServiceRequestError,
    ServiceUnavailableError,
)
from repro.service.protocol import PROTOCOL, recv_frame, send_frame

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="planning daemon needs unix sockets"
)


class SlowEngine(PlanEngine):
    """An engine with an artificial per-evaluation delay (coalescing tests)."""

    def __init__(self, delay: float) -> None:
        super().__init__(plan_cache=PlanCache())
        self.delay = delay
        self.calls = 0

    def evaluate(self, request):
        self.calls += 1
        time.sleep(self.delay)
        return super().evaluate(request)


@contextlib.contextmanager
def running_service(tmp_path, **kwargs):
    """A PlanningService live on a temp socket, shut down on exit."""
    sock_path = str(tmp_path / "plan.sock")
    service = PlanningService(sock_path, **kwargs)
    thread = threading.Thread(target=lambda: asyncio.run(service.run()), daemon=True)
    thread.start()
    deadline = time.monotonic() + 10.0
    while not (tmp_path / "plan.sock").exists():
        if time.monotonic() > deadline:
            raise RuntimeError("daemon socket never appeared")
        time.sleep(0.005)
    try:
        yield service, sock_path
    finally:
        with contextlib.suppress(Exception):
            with PlanClient(sock_path, timeout=5.0) as client:
                client.shutdown()
        thread.join(timeout=10.0)


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["optical", "electrical", "analytic"])
    def test_daemon_equals_in_process(self, tmp_path, backend):
        request = PlanRequest("WRHT", 16, 4096, backend=backend, n_wavelengths=8)
        with running_service(tmp_path) as (_service, sock_path):
            with PlanClient(sock_path, timeout=30.0) as remote:
                served = remote.submit(request)
        local = PlanClient(engine=PlanEngine(plan_cache=PlanCache())).submit(request)
        assert served.remote and not local.remote
        assert comparable_dict(served.result) == comparable_dict(local.result)

    def test_faulted_request_repair_served(self, tmp_path):
        request = PlanRequest(
            "WRHT", 16, 4096, n_wavelengths=8,
            faults=(("dead_wavelength", 2),),
        )
        with running_service(tmp_path) as (_service, sock_path):
            with PlanClient(sock_path, timeout=30.0) as remote:
                served = remote.submit(request)
        assert served.result.meta["repair"] is True
        assert served.result.meta["n_faults"] == 1

    def test_persistent_store_warm_restart(self, tmp_path):
        """A daemon restarted on the same store re-serves from disk."""
        request = PlanRequest("WRHT", 16, 4096, n_wavelengths=8)
        store_root = tmp_path / "store"
        with running_service(tmp_path, store_root=store_root) as (_s, sock_path):
            with PlanClient(sock_path, timeout=30.0) as remote:
                first = remote.submit(request)
        with running_service(tmp_path, store_root=store_root) as (service, sock_path):
            with PlanClient(sock_path, timeout=30.0) as remote:
                second = remote.submit(request)
            store_stats = service.engine.plan_cache.store.stats
        assert comparable_dict(first.result) == comparable_dict(second.result)
        assert store_stats.hits > 0  # second run priced nothing from scratch


class TestCoalescing:
    def test_identical_inflight_requests_share_one_lowering(self, tmp_path):
        engine = SlowEngine(0.4)
        request = PlanRequest("WRHT", 16, 4096, n_wavelengths=8)
        responses = []
        with running_service(tmp_path, engine=engine) as (_service, sock_path):
            def submit():
                with PlanClient(sock_path, timeout=30.0) as client:
                    responses.append(client.submit(request))

            threads = [threading.Thread(target=submit) for _ in range(3)]
            for t in threads:
                t.start()
                time.sleep(0.05)  # all arrive inside the leader's window
            for t in threads:
                t.join(timeout=30)
        assert engine.calls == 1  # one lowering served everyone
        assert sorted(r.coalesced for r in responses) == [False, True, True]
        assert len({r.result.total_time for r in responses}) == 1

    def test_different_tenants_still_coalesce(self, tmp_path):
        engine = SlowEngine(0.4)
        responses = []
        with running_service(tmp_path, engine=engine) as (_service, sock_path):
            def submit(tenant):
                request = PlanRequest(
                    "WRHT", 16, 4096, n_wavelengths=8, tenant=tenant
                )
                with PlanClient(sock_path, timeout=30.0) as client:
                    responses.append(client.submit(request))

            threads = [
                threading.Thread(target=submit, args=(t,))
                for t in ("alice", "bob")
            ]
            for t in threads:
                t.start()
                time.sleep(0.05)
            for t in threads:
                t.join(timeout=30)
        assert engine.calls == 1


class TestAdmissionAndQuota:
    def test_admission_rejects_beyond_max_pending(self, tmp_path):
        engine = SlowEngine(0.6)
        errors = []
        with running_service(
            tmp_path, engine=engine, max_pending=1
        ) as (_service, sock_path):
            slow = threading.Thread(
                target=lambda: PlanClient(sock_path, timeout=30.0).submit(
                    PlanRequest("WRHT", 16, 4096, n_wavelengths=8)
                )
            )
            slow.start()
            time.sleep(0.2)  # the slow request is now in flight
            try:
                PlanClient(sock_path, timeout=30.0).submit(
                    PlanRequest("Ring", 16, 4096, n_wavelengths=8)
                )
            except ServiceError as exc:
                errors.append(exc)
            slow.join(timeout=30)
        assert len(errors) == 1
        assert isinstance(errors[0], ServiceUnavailableError)
        assert errors[0].kind == "admission"

    def test_tenant_quota_rejects_same_tenant_flood(self, tmp_path):
        engine = SlowEngine(0.6)
        errors = []
        with running_service(
            tmp_path, engine=engine, max_pending=64, tenant_quota=1
        ) as (_service, sock_path):
            slow = threading.Thread(
                target=lambda: PlanClient(sock_path, timeout=30.0).submit(
                    PlanRequest("WRHT", 16, 4096, n_wavelengths=8, tenant="alice")
                )
            )
            slow.start()
            time.sleep(0.2)
            try:
                PlanClient(sock_path, timeout=30.0).submit(
                    PlanRequest("Ring", 16, 4096, n_wavelengths=8, tenant="alice")
                )
            except ServiceError as exc:
                errors.append(exc)
            slow.join(timeout=30)
        assert len(errors) == 1
        assert isinstance(errors[0], ServiceQuotaError)

    def test_other_tenants_unaffected_by_a_flooded_one(self, tmp_path):
        engine = SlowEngine(0.6)
        with running_service(
            tmp_path, engine=engine, max_pending=64, tenant_quota=1
        ) as (_service, sock_path):
            slow = threading.Thread(
                target=lambda: PlanClient(sock_path, timeout=30.0).submit(
                    PlanRequest("WRHT", 16, 4096, n_wavelengths=8, tenant="alice")
                )
            )
            slow.start()
            time.sleep(0.2)
            response = PlanClient(sock_path, timeout=30.0).submit(
                PlanRequest("Ring", 16, 4096, n_wavelengths=8, tenant="bob")
            )
            slow.join(timeout=30)
        assert response.result.total_time > 0


class TestControlPlane:
    def test_ping_reports_protocol(self, tmp_path):
        with running_service(tmp_path) as (_service, sock_path):
            with PlanClient(sock_path, timeout=10.0) as client:
                pong = client.ping()
        assert pong["ok"] and pong["protocol"] == PROTOCOL

    def test_stats_counts_served_requests(self, tmp_path):
        with running_service(tmp_path) as (_service, sock_path):
            with PlanClient(sock_path, timeout=30.0) as client:
                client.submit(PlanRequest("WRHT", 16, 4096, n_wavelengths=8))
                stats = client.stats()["stats"]
        assert stats["metrics"]["counters"]["service.requests"] == 1
        assert stats["metrics"]["counters"]["service.lowerings"] == 1
        assert stats["metrics"]["counters"]["service.tenant.default.requests"] == 1

    def test_bad_request_raises_typed_error(self, tmp_path):
        with running_service(tmp_path) as (_service, sock_path):
            with PlanClient(sock_path, timeout=10.0) as client:
                with pytest.raises(ServiceRequestError):
                    client.submit(PlanRequest("Butterfly", 16, 4096))

    def test_unknown_op_answered_not_dropped(self, tmp_path):
        with running_service(tmp_path) as (_service, sock_path):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(10.0)
            sock.connect(sock_path)
            try:
                send_frame(sock, {"op": "frobnicate"})
                response = recv_frame(sock)
            finally:
                sock.close()
        assert response["ok"] is False
        assert response["kind"] == "bad-request"

    def test_pipelined_requests_echo_ids(self, tmp_path):
        request = PlanRequest("WRHT", 16, 4096, n_wavelengths=8)
        with running_service(tmp_path) as (_service, sock_path):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(30.0)
            sock.connect(sock_path)
            try:
                for i in (1, 2):
                    send_frame(
                        sock, {"op": "plan", "request": request.to_dict(), "id": i}
                    )
                ids = {recv_frame(sock)["id"] for _ in (1, 2)}
            finally:
                sock.close()
        assert ids == {1, 2}

    def test_in_process_client_needs_no_daemon(self):
        with PlanClient(engine=PlanEngine(plan_cache=PlanCache())) as client:
            assert not client.remote
            assert client.ping()["ok"]
            total = client.total_time("WRHT", 16, 4096, n_wavelengths=8)
        assert total > 0

    def test_in_process_shutdown_is_an_error(self):
        with PlanClient(engine=PlanEngine(plan_cache=PlanCache())) as client:
            with pytest.raises(ServiceError):
                client.shutdown()
