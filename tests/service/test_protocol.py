"""Wire protocol: framing round-trips, truncation, oversize, EOF."""

import asyncio
import socket
import struct

import pytest

from repro.service.errors import ServiceProtocolError
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_body,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
)


class TestFrameCodec:
    def test_round_trip(self):
        payload = {"op": "plan", "request": {"n": 8}, "id": 3}
        frame = encode_frame(payload)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_body(frame[4:]) == payload

    def test_non_ascii_round_trip(self):
        payload = {"error": "tenant über quota"}
        frame = encode_frame(payload)
        assert decode_body(frame[4:]) == payload

    def test_garbled_body_raises(self):
        with pytest.raises(ServiceProtocolError):
            decode_body(b"not json at all{")

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(ServiceProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 16)})


class TestBlockingSockets:
    def _pair(self):
        return socket.socketpair()

    def test_send_recv_round_trip(self):
        a, b = self._pair()
        try:
            send_frame(a, {"op": "ping"})
            assert recv_frame(b) == {"op": "ping"}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = self._pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = self._pair()
        try:
            frame = encode_frame({"op": "stats"})
            a.sendall(frame[: len(frame) - 2])
            a.close()
            with pytest.raises(ServiceProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_header_raises(self):
        a, b = self._pair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ServiceProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestAsyncReader:
    def _read(self, data: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await read_frame(reader)

        return asyncio.run(go())

    def test_reads_one_frame(self):
        assert self._read(encode_frame({"ok": True})) == {"ok": True}

    def test_clean_eof_returns_none(self):
        assert self._read(b"") is None

    def test_mid_header_eof_raises(self):
        with pytest.raises(ServiceProtocolError):
            self._read(b"\x00\x00")

    def test_mid_body_eof_raises(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(ServiceProtocolError):
            self._read(frame[:-1])
