"""Plan-cache behavior through the ``lower()`` seam (every backend).

The PR-1 cross-run cache used to live inside the optical executor; it now
sits behind ``Backend.lower``. These tests pin the contract there:
counters on the lowered plan (and execution result), bit-identical warm
replay, LRU eviction, and no stale reuse when the configuration changes.
"""

import dataclasses

from repro.backend import (
    AnalyticBackend,
    OpticalBackend,
    PlanCache,
)
from repro.collectives.registry import build_schedule
from repro.core.timing import CostModel
from repro.optical.config import OpticalSystemConfig


def _optical(cache, **cfg):
    config = OpticalSystemConfig(n_nodes=16, n_wavelengths=4, **cfg)
    return OpticalBackend(config, plan_cache=cache)


def _ring(n=16, elems=1600):
    return build_schedule("ring", n, elems, materialize=False)


class TestOpticalCounters:
    def test_cold_then_warm(self):
        cache = PlanCache(maxsize=64)
        be = _optical(cache)
        sched = _ring()
        cold = be.run(sched)
        assert cold.cache.misses > 0
        assert cold.cache.hits == 0
        warm = be.run(sched)
        assert warm.cache.hits == cold.cache.misses
        assert warm.cache.misses == 0
        # Lifetime tallies accumulate on the cache itself.
        assert cache.stats.hits == warm.cache.hits
        assert cache.stats.misses == cold.cache.misses

    def test_warm_replay_bit_identical(self):
        cache = PlanCache(maxsize=64)
        be = _optical(cache)
        for algo, kwargs in [("ring", {}), ("wrht", {"n_wavelengths": 4})]:
            sched = build_schedule(algo, 16, 1600, materialize=False, **kwargs)
            cold = be.run(sched)
            warm = be.run(sched)
            assert warm.total_time == cold.total_time
            assert warm.timeline == cold.timeline

    def test_eviction_counted(self):
        cache = PlanCache(maxsize=1)
        be = _optical(cache)
        # H-Ring lowers several distinct patterns; capacity 1 must evict.
        result = be.run(build_schedule("hring", 16, 1600, m=4, materialize=False))
        assert result.cache.evictions > 0
        assert len(cache) == 1

    def test_shared_cache_across_instances(self):
        cache = PlanCache(maxsize=64)
        cold = _optical(cache).run(_ring())
        warm = _optical(cache).run(_ring())
        assert warm.cache.hits == cold.cache.misses
        assert warm.total_time == cold.total_time


class TestAnalyticCounters:
    MODEL = CostModel(line_rate=5e9, step_overhead=25e-6)

    def test_cold_then_warm_bit_identical(self):
        cache = PlanCache(maxsize=64)
        be = AnalyticBackend(self.MODEL, w=4, plan_cache=cache)
        sched = _ring()
        cold = be.run(sched)
        assert (cold.cache.hits, cold.cache.misses) == (0, 1)
        warm = be.run(sched)
        assert (warm.cache.hits, warm.cache.misses) == (1, 0)
        assert warm.total_time == cold.total_time
        assert warm.timeline == cold.timeline

    def test_eviction_counted(self):
        cache = PlanCache(maxsize=1)
        be = AnalyticBackend(self.MODEL, w=4, plan_cache=cache)
        be.run(_ring(elems=1600))
        result = be.run(_ring(elems=3200))  # different size → second entry
        assert result.cache.evictions == 1


class TestNoStaleReuse:
    def test_optical_config_change_misses(self):
        cache = PlanCache(maxsize=64)
        base = _optical(cache)
        cold = base.run(_ring())
        # Same topology, one dark wavelength: keys embed the frozen config,
        # so nothing from the healthy run may be reused.
        degraded = _optical(cache, failed_wavelengths=frozenset({0}))
        result = degraded.run(_ring())
        assert result.cache.hits == 0
        assert result.cache.misses > 0
        # Re-pricing really happened: the ring now avoids wavelength 0.
        assert cold.peak_wavelength == 1
        assert result.peak_wavelength == 2

    def test_optical_phy_change_misses(self):
        cache = PlanCache(maxsize=64)
        _optical(cache).run(_ring())
        slower = _optical(cache, mrr_reconfig_delay=50e-6)
        result = slower.run(_ring())
        assert result.cache.hits == 0

    def test_analytic_model_change_misses(self):
        cache = PlanCache(maxsize=64)
        AnalyticBackend(self.model(), w=4, plan_cache=cache).run(_ring())
        other = AnalyticBackend(
            dataclasses.replace(self.model(), step_overhead=50e-6),
            w=4,
            plan_cache=cache,
        )
        result = other.run(_ring())
        assert (result.cache.hits, result.cache.misses) == (0, 1)

    def test_cache_not_shared_across_backend_kinds(self):
        cache = PlanCache(maxsize=64)
        _optical(cache).run(_ring())
        result = AnalyticBackend(self.model(), w=4, plan_cache=cache).run(_ring())
        assert result.cache.hits == 0

    @staticmethod
    def model():
        return CostModel(line_rate=5e9, step_overhead=25e-6)


class TestDisabledCache:
    def test_maxsize_zero_never_stores(self):
        cache = PlanCache(maxsize=0)
        be = _optical(cache)
        a = be.run(_ring())
        b = be.run(_ring())
        assert a.cache.hits == b.cache.hits == 0
        assert len(cache) == 0
        assert a.total_time == b.total_time
