"""Per-backend behavior: uniform results, typed errors, knob recovery."""

import pickle

import pytest

from repro.backend import (
    AnalyticBackend,
    BackendConfigError,
    BackendError,
    ElectricalBackend,
    OpticalBackend,
    PlanCache,
)
from repro.collectives.registry import build_schedule
from repro.core.timing import CostModel, algorithm_time
from repro.electrical.config import ElectricalSystemConfig
from repro.optical.config import OpticalSystemConfig
from repro.optical.rwa import RwaInfeasibleError
from repro.optical.topology import RingTopology


def _model():
    return CostModel(line_rate=5e9, step_overhead=25e-6)


class TestOpticalBackend:
    def test_events_harvested(self):
        be = OpticalBackend(
            OpticalSystemConfig(n_nodes=8, n_wavelengths=4), collect_events=True
        )
        result = be.run(build_schedule("ring", 8, 800, materialize=False))
        categories = {cat for _, cat, _ in result.events}
        assert "optical.round" in categories
        assert all(isinstance(p, dict) for _, _, p in result.events)

    def test_oversized_schedule_is_config_error(self):
        be = OpticalBackend(OpticalSystemConfig(n_nodes=8, n_wavelengths=4))
        sched = build_schedule("ring", 16, 1600, materialize=False)
        with pytest.raises(BackendConfigError, match="schedule spans 16 nodes"):
            be.run(sched)

    def test_rwa_failure_annotated_with_backend_and_step(self, monkeypatch):
        # Force the RWA stage to fail: lower() must attach the backend name
        # and the profile-entry index before re-raising.
        import repro.optical.network as net_mod

        def boom(*args, **kwargs):
            raise RwaInfeasibleError([], 4, 1, frozenset())

        monkeypatch.setattr(net_mod, "plan_rounds", boom)
        be = OpticalBackend(
            OpticalSystemConfig(n_nodes=8, n_wavelengths=4),
            plan_cache=PlanCache(maxsize=16),  # fresh: force the cold path
        )
        with pytest.raises(RwaInfeasibleError) as exc_info:
            be.run(build_schedule("ring", 8, 800, materialize=False))
        assert exc_info.value.backend == "optical"
        assert exc_info.value.step_index == 0

    def test_rwa_error_is_backend_error_and_pickles(self):
        topo = RingTopology(8)
        err = RwaInfeasibleError(
            [topo.cw_route(0, 2)], 4, 1, frozenset(range(4))
        )
        err.backend = "optical"
        err.step_index = 3
        assert isinstance(err, BackendError)
        back = pickle.loads(pickle.dumps(err))
        assert type(back) is RwaInfeasibleError
        assert back.n_wavelengths == 4
        assert back.blocked == frozenset(range(4))
        assert back.backend == "optical"
        assert back.step_index == 3
        assert str(back) == str(err)


class TestElectricalBackend:
    def test_uniform_result(self):
        be = ElectricalBackend(ElectricalSystemConfig(n_nodes=8))
        result = be.run(build_schedule("ring", 8, 800, materialize=False))
        assert result.backend == "electrical"
        assert result.total_time > 0
        assert result.n_steps == 2 * (8 - 1)
        assert result.max_link_share >= 1
        assert all(r.n_transfers > 0 for r in result.timeline)

    def test_events_harvested(self):
        be = ElectricalBackend(
            ElectricalSystemConfig(n_nodes=8), collect_events=True
        )
        result = be.run(build_schedule("ring", 8, 800, materialize=False))
        assert {cat for _, cat, _ in result.events} == {"electrical.step"}

    def test_oversized_schedule_is_config_error(self):
        be = ElectricalBackend(ElectricalSystemConfig(n_nodes=8))
        sched = build_schedule("ring", 16, 1600, materialize=False)
        with pytest.raises(BackendConfigError, match="fat-tree has"):
            be.run(sched)


class TestAnalyticBackend:
    def test_total_matches_closed_form_bit_exactly(self):
        be = AnalyticBackend(_model(), w=8)
        sched = build_schedule("wrht", 64, 1_000_000, n_wavelengths=8, m=9,
                               materialize=False)
        result = be.run(sched, bytes_per_elem=4)
        expected = algorithm_time(
            "WRHT", 64, 4_000_000, _model(), wrht_m=9, hring_m=5, w=8
        )
        assert result.total_time == expected
        assert result.meta["wrht_m"] == 9

    def test_timeline_sum_agrees_with_total(self):
        be = AnalyticBackend(_model(), w=8)
        for algo, kwargs in [
            ("ring", {}),
            ("hring", {"m": 4}),
            ("bt", {}),
            ("rd", {}),
            ("wrht", {"n_wavelengths": 8}),
        ]:
            sched = build_schedule(algo, 16, 160_000, materialize=False, **kwargs)
            result = be.run(sched)
            folded = sum(r.duration * r.count for r in result.timeline)
            assert folded == pytest.approx(result.total_time, rel=1e-12), algo

    def test_hring_m_recovered_from_meta(self):
        be = AnalyticBackend(_model(), w=8)
        sched = build_schedule("hring", 16, 160_000, m=4, materialize=False)
        assert be.run(sched).meta["hring_m"] == 4

    def test_dbtree_rejected(self):
        be = AnalyticBackend(_model(), w=8)
        sched = build_schedule("dbtree", 16, 160_000, materialize=False)
        with pytest.raises(BackendConfigError, match="no closed-form model"):
            be.run(sched)

    def test_single_node_is_free(self):
        be = AnalyticBackend(_model(), w=8)
        sched = build_schedule("ring", 1, 100, materialize=False)
        result = be.run(sched)
        assert result.total_time == 0.0
        assert result.timeline == ()
