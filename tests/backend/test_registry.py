"""Registry tests: the three built-ins plus custom registration."""

import pytest

from repro.backend import Backend, registry
from repro.collectives.registry import build_schedule
from repro.optical.config import OpticalSystemConfig


class TestBuiltins:
    def test_lists_at_least_three_backends(self):
        names = registry.available()
        assert {"analytic", "electrical", "optical"} <= set(names)
        assert names == sorted(names)

    def test_create_optical(self):
        be = registry.create(
            "optical", config=OpticalSystemConfig(n_nodes=16, n_wavelengths=4)
        )
        assert be.name == "optical"
        sched = build_schedule("ring", 16, 1600, materialize=False)
        result = be.run(sched)
        assert result.backend == "optical"
        assert result.total_time > 0

    def test_create_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            registry.create("quantum")


class TestCustomRegistration:
    def test_register_and_unregister(self):
        class NullBackend(Backend):
            name = "null"

            def lower(self, schedule, *, bytes_per_elem=4.0):
                raise NotImplementedError

            def execute(self, plan):
                raise NotImplementedError

        registry.register("null", NullBackend)
        try:
            assert "null" in registry.available()
            assert isinstance(registry.create("null"), NullBackend)
        finally:
            registry.unregister("null")
        assert "null" not in registry.available()

    def test_register_empty_name_rejected(self):
        with pytest.raises(ValueError):
            registry.register("", lambda: None)
