"""Contract tests for the shared backend data model and typed errors."""

import json
import pickle

import pytest

from repro.backend import (
    BackendConfigError,
    BackendError,
    BackendExecutionError,
    ExecutionResult,
    PlanCacheCounters,
    StepRecord,
)


class TestStepRecord:
    def test_round_trip(self):
        rec = StepRecord(
            stage="reduce", count=3, duration=1.5e-4, bytes_per_step=4096.0,
            n_transfers=8, rounds=2, peak_wavelength=4, max_link_share=0,
        )
        assert StepRecord.from_dict(rec.to_dict()) == rec

    def test_round_trip_through_json(self):
        rec = StepRecord(stage="broadcast", count=1, duration=0.5, bytes_per_step=1.0)
        assert StepRecord.from_dict(json.loads(json.dumps(rec.to_dict()))) == rec


class TestExecutionResult:
    def _result(self):
        return ExecutionResult(
            backend="optical",
            algorithm="wrht",
            n_steps=3,
            total_time=4.5e-4,
            total_bytes=1.2e7,
            timeline=(
                StepRecord("reduce", 2, 1.5e-4, 4e6, n_transfers=4, rounds=2,
                           peak_wavelength=8),
                StepRecord("broadcast", 1, 1.5e-4, 4e6, n_transfers=4,
                           peak_wavelength=2),
            ),
            events=((0.0, "optical.round", {"round": 1}),),
            cache=PlanCacheCounters(hits=1, misses=2),
            meta={"interpretation": "calibrated"},
        )

    def test_round_trip(self):
        res = self._result()
        back = ExecutionResult.from_dict(json.loads(json.dumps(res.to_dict())))
        assert back == res

    def test_derived_properties(self):
        res = self._result()
        assert res.total_rounds == 2 * 2 + 1 * 1
        assert res.peak_wavelength == 8
        assert res.max_link_share == 0

    def test_empty_timeline_properties(self):
        res = ExecutionResult(
            backend="analytic", algorithm="ring", n_steps=0,
            total_time=0.0, total_bytes=0.0,
        )
        assert res.total_rounds == 0
        assert res.peak_wavelength == 0
        assert res.max_link_share == 0


class TestBackendErrors:
    def test_str_carries_backend_and_step(self):
        err = BackendError("boom", backend="optical", step_index=7)
        assert "[backend=optical, step=7] boom" == str(err)

    def test_str_without_context(self):
        assert str(BackendError("boom")) == "boom"

    def test_config_error_is_value_error(self):
        # Pre-refactor entry points raised ValueError; callers that still
        # catch ValueError must keep working.
        assert issubclass(BackendConfigError, ValueError)
        assert issubclass(BackendConfigError, BackendError)

    def test_execution_error_is_runtime_error(self):
        assert issubclass(BackendExecutionError, RuntimeError)

    @pytest.mark.parametrize(
        "cls", [BackendError, BackendConfigError, BackendExecutionError]
    )
    def test_pickle_round_trip(self, cls):
        err = cls("lowering failed", backend="electrical", step_index=3)
        back = pickle.loads(pickle.dumps(err))
        assert type(back) is cls
        assert back.backend == "electrical"
        assert back.step_index == 3
        assert str(back) == str(err)
