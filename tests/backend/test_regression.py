"""Bit-identity regression: the backend refactor must not move a float.

Golden values below were captured by running the pre-refactor executors
(the PR-1 tree) on the same inputs. Every assertion is exact ``==`` — the
lowering split reorders no accumulation and caches exact floats, so any
drift here is a real behavior change, not tolerance noise.
"""

import pytest

from repro.backend import OpticalBackend
from repro.collectives.registry import build_schedule
from repro.dnn.workload import DnnWorkload
from repro.optical.config import OpticalSystemConfig
from repro.runner.experiments import run_fig5, run_fig6, run_fig7

TINY = DnnWorkload("tiny", 200_000)
SMALL = DnnWorkload("small", 1_000_000)

# (n_nodes, n_wavelengths, algo, builder kwargs) -> (total_time, total_bytes,
# peak_wavelength) on the optical executor, 1M elems at 4 B each.
NETWORK_GOLDEN = {
    (128, 16, "ring"): ({}, (0.00654850511353, 1016065024.0, 1)),
    (128, 16, "wrht"): (
        {"n_wavelengths": 16},
        (0.00037508283399599997, 1040000000.0, 16),
    ),
    (128, 16, "hring"): ({"m": 5}, (0.0019274348970939998, 1427202400.0, 4)),
    (128, 16, "bt"): ({}, (0.0017503865586479999, 1016000000.0, 1)),
    (64, 8, "wrht"): (
        {"n_wavelengths": 8, "m": 9},
        (0.000500110445328, 672000000.0, 8),
    ),
    (64, 8, "rd"): ({}, (0.001000220890656, 1536000000.0, 8)),
}

FIG6_GOLDEN = {
    ("small", "BT"): [0.00125027611332, 0.0015003313359839999],
    ("small", "H-Ring"): [0.000956548728912, 0.0012697403729159998],
    ("small", "Ring"): [0.0017438035239179998, 0.0033469294185179996],
    ("small", "WRHT"): [0.00037508283399599997, 0.00037508283399599997],
    ("tiny", "BT"): [0.00045005522664, 0.000540066271968],
    ("tiny", "H-Ring"): [0.0006113102321439999, 0.0009139485597519999],
    ("tiny", "Ring"): [0.0015887607232719998, 0.0031893858962279997],
    ("tiny", "WRHT"): [0.000135016567992, 0.000135016567992],
}

FIG7_GOLDEN = {
    "E-Ring": 0.004688749999999999,
    "O-Ring": 0.0015887607232719998,
    "RD": 0.00031499999999999996,
    "WRHT": 0.000135016567992,
}

FIG5_GOLDEN = {
    "WRHT": [
        0.017679831944830998, 0.010102761111332,
        0.007577070833498999, 0.007577070833498999,
    ],
    "Ring": [0.056146497069234] * 4,
    "H-Ring": [
        0.023584052867488, 0.021908638699993,
        0.021908638699993, 0.021908638699993,
    ],
    "BT": [0.05051380555666] * 4,
}


class TestOpticalBackendGolden:
    @pytest.mark.parametrize("case", sorted(NETWORK_GOLDEN, key=str))
    def test_network_level(self, case):
        n, w, algo = case
        kwargs, (t, b, peak) = NETWORK_GOLDEN[case]
        be = OpticalBackend(OpticalSystemConfig(n_nodes=n, n_wavelengths=w))
        sched = build_schedule(algo, n, 1_000_000, materialize=False, **kwargs)
        result = be.run(sched, bytes_per_elem=4)
        assert result.total_time == t
        assert result.total_bytes == b
        assert result.peak_wavelength == peak


class TestFigureGolden:
    def test_fig6_simulated(self):
        result = run_fig6(
            mode="simulated", nodes=(32, 64), n_wavelengths=8,
            workloads=(TINY, SMALL),
        )
        for key, values in FIG6_GOLDEN.items():
            assert result.series[key] == values, key

    def test_fig6_explicit_optical_backend_identical(self):
        default = run_fig6(
            mode="simulated", nodes=(32, 64), n_wavelengths=8,
            workloads=(TINY, SMALL),
        )
        explicit = run_fig6(
            mode="simulated", nodes=(32, 64), n_wavelengths=8,
            workloads=(TINY, SMALL), backend="optical",
        )
        assert explicit.series == default.series

    def test_fig7_simulated(self):
        result = run_fig7(
            mode="simulated", nodes=(32,), n_wavelengths=8, workloads=(TINY,)
        )
        for algo, value in FIG7_GOLDEN.items():
            assert result.series[("tiny", algo)][0] == value, algo

    def test_fig7_backend_flag_optical_side_identical(self):
        # Forcing --backend optical routes E-Ring/RD through the optical
        # ring too; the optical flavors must not move.
        default = run_fig7(
            mode="simulated", nodes=(32,), n_wavelengths=8, workloads=(TINY,)
        )
        forced = run_fig7(
            mode="simulated", nodes=(32,), n_wavelengths=8, workloads=(TINY,),
            backend="optical",
        )
        for algo in ("O-Ring", "WRHT"):
            assert (
                forced.series[("tiny", algo)] == default.series[("tiny", algo)]
            )

    def test_fig5_analytical_paper_scale(self):
        result = run_fig5()
        for algo, values in FIG5_GOLDEN.items():
            assert result.series[("ResNet50", algo)] == values, algo

    def test_fig5_explicit_analytic_backend_identical(self):
        assert run_fig5(backend="analytic").series == run_fig5().series

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_fig5(backend="quantum", workloads=(TINY,))
