"""Cross-run plan cache shared by every lowering backend.

Backends already price each distinct step *pattern* once per ``lower()``
call. A paper-figure sweep, however, lowers thousands of schedules across
(N, w, d) combinations, and identical patterns under identical
configurations re-price from scratch on every call. This module provides a
bounded LRU cache shared across backend instances and ``lower()`` calls.
Keys are backend-composed tuples of

``(pattern_key, config fingerprint, bytes_per_elem, ...)``

— the full set of inputs that determine a pattern's priced plan — and the
value is whatever priced summary the backend stores (the optical backends
store a :class:`CachedRound` tuple; the electrical backend a fluid-timing
summary; the analytic backend a closed-form decomposition). Replay is
bit-identical by construction: cached entries hold the exact floats the
cold path produced, and backends fold them in the identical order.

Correctness guards:

- ``random_fit`` optical executors bypass the cache entirely (their RNG
  stream must advance exactly as an uncached run would);
- frozen config dataclasses are part of every key, so any change to
  ``failed_wavelengths``, the PHY parameters or the rates is automatically
  a different entry — no manual invalidation is ever needed (an explicit
  :meth:`PlanCache.clear` exists for benchmarks);
- per-``lower()`` hit/miss/eviction tallies are exposed on the lowered
  plan and its :class:`~repro.backend.base.ExecutionResult`; lifetime
  tallies live on :attr:`PlanCache.stats`.

The cache itself is per-process state. Parallel sweep workers each warm
their own copy (fork inherits the parent's warmed cache for free on
Linux); :mod:`repro.service.store` layers a sharded, versioned on-disk
store underneath (:class:`~repro.service.store.PersistentPlanCache`) when
warm plans should survive the process and be shared across workers —
:func:`set_default_plan_cache` swaps it in process-wide.

This module started life as ``repro.optical.plancache`` (PR 1); it moved
here when the cache went behind the unified ``lower()`` seam so that every
backend benefits (the old module remained as a deprecated alias until its
removal in PR 7).

Delta-salted keys
-----------------

Incremental repair (:mod:`repro.optical.repair`) produces plans that are
valid for a degraded config but were *derived* from a base solution, and a
repaired coloring need not equal the from-scratch coloring for the same
final fault set. Such entries are keyed with :func:`delta_salted_key` —
``(base key, delta)`` instead of the final config — so the two can never
alias: a from-scratch lowering of the degraded config keys on its own
frozen config, a repair keys on where it came from plus what changed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass
class PlanCacheCounters:
    """Hit/miss/eviction tallies (lifetime on a cache, per-run on results).

    Attributes:
        hits: Lookups served from the cache.
        misses: Lookups that had to price the step from scratch.
        evictions: Entries dropped to respect ``maxsize``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (used by result serialization)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class CachedRound:
    """Priced summary of one RWA round of an optical step pattern.

    Enough to rebuild the step's timing and replay its ``optical.round``
    trace events without re-running RWA.

    Attributes:
        n_circuits: Circuits established in the round.
        max_payload_s: The round's slowest payload serialization (seconds).
        peak_wavelength: Highest wavelength index used in the round, plus 1.
        payload_bytes: Total payload bytes the round moves.
        claims: MRR endpoint claims ``(node, direction, fiber, wavelength)``
            of the round's circuits, sorted — captured only when the
            network's reconfiguration model is enabled (empty otherwise, so
            legacy summaries and on-disk cache entries compare equal).
        tune_s: Exposed (non-overlapped) MRR tuning seconds charged before
            this round. Written by the reconfiguration pass
            (:func:`repro.optical.reconfig.apply_reconfig`); 0.0 keeps the
            pre-reconfig timings bit-identical.
    """

    n_circuits: int
    max_payload_s: float
    peak_wavelength: int
    payload_bytes: float
    claims: tuple = ()
    tune_s: float = 0.0


class PlanCache:
    """A bounded LRU mapping plan keys to priced summaries.

    ``maxsize=0`` disables the cache (every lookup misses, nothing is
    stored) — used by benchmarks to measure cold-path performance.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.stats = PlanCacheCounters()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    @property
    def enabled(self) -> bool:
        """Whether lookups can ever hit (``maxsize > 0``)."""
        return self.maxsize > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """The cached value for ``key`` (refreshing its LRU position)."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> int:
        """Store ``value`` under ``key``; returns how many entries were
        evicted to make room (0 or 1, or nothing stored when disabled)."""
        if not self.enabled:
            return 0
        self._entries[key] = value
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            evicted += 1
        self.stats.evictions += evicted
        return evicted

    def resize(self, maxsize: int) -> None:
        """Change capacity; shrinking evicts oldest entries immediately.

        ``resize(0)`` disables and empties the cache (benchmarks use this
        to measure the cold path through unmodified backend code).
        """
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        while len(self._entries) > maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters keep their lifetime values)."""
        self._entries.clear()


def delta_salted_key(base_key: Hashable, delta: Hashable) -> tuple:
    """Key base for plans *derived* from another plan by a delta.

    Repaired lowerings are a function of (what they repaired, what
    changed), not of the final config alone — two different repair
    lineages reaching the same fault set may legitimately cache different
    plans. The ``"delta"`` sentinel keeps the derived namespace disjoint
    from every config-keyed entry.
    """
    return ("delta", base_key, delta)


_DEFAULT_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide cache backends share unless given their own."""
    return _DEFAULT_CACHE


def set_default_plan_cache(cache: PlanCache) -> PlanCache:
    """Replace the process-wide default cache; returns the previous one.

    Backends capture the default at construction time, so install a
    replacement (e.g. a :class:`~repro.service.store.PersistentPlanCache`)
    *before* building the backends that should lower through it.
    """
    global _DEFAULT_CACHE
    if not isinstance(cache, PlanCache):
        raise TypeError(f"expected a PlanCache, got {type(cache).__name__}")
    previous = _DEFAULT_CACHE
    _DEFAULT_CACHE = cache
    return previous
