"""The backend contract: one schedule-lowering pipeline for every executor.

Every way of pricing a :class:`~repro.collectives.base.Schedule` — the
optical circuit executor, the electrical fat-tree, the closed-form
analytic model — implements the same two-stage contract:

``lower(schedule) -> LoweredPlan``
    Everything pattern-dependent: pattern extraction over the schedule's
    timing profile, routing / RWA / flow construction, and pricing of each
    distinct pattern. Lowering is where the cross-run
    :class:`~repro.backend.plancache.PlanCache` sits, so *every* backend
    gets warm-replay for free and the hit/miss/eviction counters mean the
    same thing everywhere.

``execute(plan) -> ExecutionResult``
    Deterministic timeline folding: walk the lowered entries in order,
    accumulate the clock, emit step records and trace events. Execution
    performs no routing and no cache lookups — replaying a plan is
    bit-identical to executing it the first time.

``run(schedule)`` composes the two and is what the experiment harness
calls. The split matters because lowering is the expensive, cacheable,
config-keyed half while execution is cheap and stateless: a lowered plan
can be executed many times, serialized for inspection, or fed to analyses
(e.g. :mod:`repro.analysis.energy` prices energy off the same lowered
plans the timing came from, so the two can never disagree).

:class:`ExecutionResult` and its :class:`StepRecord` timeline are plain
serializable data (``to_dict``/``from_dict`` round-trip through JSON), so
results can cross process boundaries in sweeps and be archived next to
the figures they produced.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.backend.errors import BackendConfigError
from repro.backend.plancache import PlanCacheCounters
from repro.collectives.base import Schedule
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, MetricsSnapshot


@dataclass(frozen=True)
class LoweredStep:
    """One lowered timing-profile entry.

    Attributes:
        stage: Stage label of the representative step.
        count: How many consecutive schedule steps share this pattern.
        n_transfers: Concurrent transfers per step.
        payload: Backend-specific priced summary for one step of this
            pattern (optical: a ``CachedRound`` tuple; electrical: a fluid
            timing summary; analytic: a closed-form step class).
        replay: True when an earlier entry of the *same plan* already
            priced this pattern — executors emit a compact ``step_cached``
            trace event instead of re-tracing every round.
    """

    stage: str
    count: int
    n_transfers: int
    payload: Any
    replay: bool = False


@dataclass
class LoweredPlan:
    """A schedule lowered by one backend: priced patterns, ready to fold.

    Attributes:
        backend: Name of the backend that produced the plan.
        algorithm: Source schedule's algorithm name.
        n_nodes: Source schedule's node count.
        n_steps: Total communication steps the plan covers.
        bytes_per_elem: Element width the pricing used.
        entries: One :class:`LoweredStep` per timing-profile entry, in
            schedule order.
        cache: Plan-cache hit/miss/eviction tallies for this ``lower()``
            call (zeros when the backend bypassed the cache).
        meta: Backend-specific extras (e.g. the analytic backend stores
            its authoritative closed-form total here).
    """

    backend: str
    algorithm: str
    n_nodes: int
    n_steps: int
    bytes_per_elem: float
    entries: tuple[LoweredStep, ...]
    cache: PlanCacheCounters = field(default_factory=PlanCacheCounters)
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class StepRecord:
    """One entry of an execution timeline (a run of identical steps).

    Attributes:
        stage: Stage label of the representative step.
        count: Steps sharing this pattern.
        duration: Seconds per step (all rounds included).
        bytes_per_step: Payload bytes a single step moves.
        n_transfers: Concurrent transfers per step (0 when not modeled).
        rounds: Rounds (reconfigurations) each step needed.
        peak_wavelength: Distinct wavelength indices touched (optical; 0
            elsewhere).
        max_link_share: Largest number of flows sharing one link
            (electrical; 0 elsewhere).
    """

    stage: str
    count: int
    duration: float
    bytes_per_step: float
    n_transfers: int = 0
    rounds: int = 1
    peak_wavelength: int = 0
    max_link_share: int = 0

    def to_dict(self) -> dict:
        """Plain-dict view (JSON-ready)."""
        return {
            "stage": self.stage,
            "count": self.count,
            "duration": self.duration,
            "bytes_per_step": self.bytes_per_step,
            "n_transfers": self.n_transfers,
            "rounds": self.rounds,
            "peak_wavelength": self.peak_wavelength,
            "max_link_share": self.max_link_share,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StepRecord":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


StepTimeline = tuple[StepRecord, ...]
"""The per-step timeline of an execution: one record per profile entry."""


@dataclass
class ExecutionResult:
    """Uniform result of executing a lowered plan on any backend.

    Attributes:
        backend: Backend name (``"optical"``, ``"electrical"``,
            ``"analytic"``, ...).
        algorithm: Schedule's algorithm name.
        n_steps: Total communication steps.
        total_time: End-to-end communication seconds.
        total_bytes: Payload bytes moved across all steps.
        timeline: Per-profile-entry :class:`StepRecord` sequence.
        events: Trace events the execution emitted, as
            ``(time, category, payload)`` tuples (empty when event
            collection is off).
        cache: Plan-cache tallies inherited from the plan's ``lower()``.
        meta: Backend-specific extras (peak wavelength, congestion, the
            interpretation used, ...).
        metrics: :class:`~repro.obs.metrics.MetricsSnapshot` of the run
            when the backend had metrics enabled, else ``None``.
    """

    backend: str
    algorithm: str
    n_steps: int
    total_time: float
    total_bytes: float
    timeline: StepTimeline = ()
    events: tuple[tuple[float, str, dict], ...] = ()
    cache: PlanCacheCounters = field(default_factory=PlanCacheCounters)
    meta: dict = field(default_factory=dict)
    metrics: MetricsSnapshot | None = None

    @property
    def total_rounds(self) -> int:
        """Reconfiguration rounds across the whole run."""
        return sum(r.rounds * r.count for r in self.timeline)

    @property
    def peak_wavelength(self) -> int:
        """Max wavelengths any round used (0 on non-optical backends)."""
        return max((r.peak_wavelength for r in self.timeline), default=0)

    @property
    def max_link_share(self) -> int:
        """Worst link sharing across steps (0 on non-electrical backends)."""
        return max((r.max_link_share for r in self.timeline), default=0)

    def to_dict(self) -> dict:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "backend": self.backend,
            "algorithm": self.algorithm,
            "n_steps": self.n_steps,
            "total_time": self.total_time,
            "total_bytes": self.total_bytes,
            "timeline": [r.to_dict() for r in self.timeline],
            "events": [list(e[:2]) + [dict(e[2])] for e in self.events],
            "cache": self.cache.as_dict(),
            "meta": dict(self.meta),
            "metrics": None if self.metrics is None else self.metrics.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionResult":
        """Rebuild from :meth:`to_dict` output (JSON round-trip safe)."""
        return cls(
            backend=data["backend"],
            algorithm=data["algorithm"],
            n_steps=data["n_steps"],
            total_time=data["total_time"],
            total_bytes=data["total_bytes"],
            timeline=tuple(StepRecord.from_dict(r) for r in data["timeline"]),
            events=tuple(
                (e[0], e[1], dict(e[2])) for e in data.get("events", ())
            ),
            cache=PlanCacheCounters(**data.get("cache", {})),
            meta=dict(data.get("meta", {})),
            metrics=(
                MetricsSnapshot.from_dict(data["metrics"])
                if data.get("metrics") is not None
                else None
            ),
        )


class Backend(abc.ABC):
    """Abstract schedule-pricing backend (the two-stage contract).

    Subclasses set :attr:`name` and implement :meth:`lower` and
    :meth:`execute`; :meth:`run` composes them.

    Backends built with a :class:`~repro.obs.metrics.MetricsRegistry` bind
    it to :attr:`metrics` (the class default is the disabled
    :data:`~repro.obs.metrics.NULL_METRICS`); :meth:`run` profiles the two
    stages under ``backend.<name>.lower`` / ``backend.<name>.execute``
    spans, and adapters attach a snapshot to the result when enabled.
    """

    name: str = "abstract"
    metrics: MetricsRegistry = NULL_METRICS

    @abc.abstractmethod
    def lower(self, schedule: Schedule, *, bytes_per_elem: float = 4.0) -> LoweredPlan:
        """Lower ``schedule``: extract patterns, route/assign, price.

        Goes through the cross-run plan cache where the backend supports
        it; the returned plan carries per-call cache counters.
        """

    @abc.abstractmethod
    def execute(self, plan: LoweredPlan) -> ExecutionResult:
        """Fold a lowered plan into its execution timeline."""

    def verify(self, plan: LoweredPlan, schedule: Schedule | None = None) -> list:
        """Statically verify a lowered plan (see :mod:`repro.check`).

        Runs every applicable plan rule against the plan (and the source
        schedule when given) and raises
        :class:`~repro.check.engine.PlanVerificationError` on any ERROR
        finding. Backends with richer evidence override this to provide a
        fuller context (the optical backend re-derives circuit rounds).

        Returns:
            All findings, including INFO/WARNING, when verification passes.
        """
        from repro.check.engine import verify_plan

        return verify_plan(plan, schedule, raise_on_error=True)

    def run(
        self,
        schedule: Schedule,
        *,
        bytes_per_elem: float = 4.0,
        check: bool = False,
    ) -> ExecutionResult:
        """Lower then execute ``schedule`` (the common one-shot path).

        Args:
            schedule: The schedule to price.
            bytes_per_elem: Element width used by the pricing.
            check: Statically verify the lowered plan (:meth:`verify`)
                before executing it.
        """
        with self.metrics.span(f"backend.{self.name}.lower"):
            plan = self.lower(schedule, bytes_per_elem=bytes_per_elem)
        if check:
            self.verify(plan, schedule)
        with self.metrics.span(f"backend.{self.name}.execute"):
            result = self.execute(plan)
        if self.metrics.enabled:
            # Re-snapshot after the stage spans close so the attached
            # snapshot includes them (execute() snapshots mid-span).
            result.metrics = self.metrics.snapshot()
        return result

    # -- shared entry-point validation ----------------------------------
    def _check_schedule(
        self, schedule: Schedule, bytes_per_elem: float, capacity: int
    ) -> None:
        """Common entry checks, raising typed errors with the backend name."""
        if schedule.n_nodes > capacity:
            raise BackendConfigError(
                f"schedule spans {schedule.n_nodes} nodes but the substrate "
                f"has {capacity}",
                backend=self.name,
            )
        if bytes_per_elem <= 0:
            raise BackendConfigError(
                f"bytes_per_elem must be positive, got {bytes_per_elem!r}",
                backend=self.name,
            )
