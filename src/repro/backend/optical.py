"""The optical-ring backend: WDM circuit switching behind ``Backend``.

Wraps :class:`~repro.optical.network.OpticalRingNetwork` (routing, RWA,
round spill-over, MRR reconfiguration pricing) in the two-stage lowering
contract and adapts its run result to the uniform
:class:`~repro.backend.base.ExecutionResult`. Timings are bit-identical to
calling the network directly — the adapter only reshapes records.
"""

from __future__ import annotations

from repro.backend.base import Backend, ExecutionResult, LoweredPlan, StepRecord
from repro.backend.plancache import PlanCache
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.sim.rng import SeededRng
from repro.sim.trace import Tracer


class OpticalBackend(Backend):
    """Prices schedules on the wavelength-routed optical ring."""

    name = "optical"

    def __init__(
        self,
        config: OpticalSystemConfig,
        *,
        strategy: str = "first_fit",
        rng: SeededRng | None = None,
        validate: bool = True,
        plan_cache: PlanCache | None = None,
        collect_events: bool = False,
        metrics: MetricsRegistry = NULL_METRICS,
        overlap: bool = True,
    ) -> None:
        """Args mirror :class:`~repro.optical.network.OpticalRingNetwork`;
        ``collect_events`` additionally harvests the executor's trace into
        ``ExecutionResult.events``; ``metrics`` (default disabled) collects
        observability data and attaches a snapshot to results; ``overlap``
        (default on) lets MRR tuning race the previous round's
        transmission when the config's reconfiguration model is enabled."""
        self.config = config
        self.collect_events = collect_events
        self.metrics = metrics
        self._tracer = Tracer(enabled=True) if collect_events else None
        self._net = OpticalRingNetwork(
            config,
            strategy=strategy,
            rng=rng,
            tracer=self._tracer,
            validate=validate,
            plan_cache=plan_cache,
            metrics=metrics,
            overlap=overlap,
        )

    @property
    def network(self) -> OpticalRingNetwork:
        """The underlying substrate executor (for advanced use)."""
        return self._net

    def lower(self, schedule, *, bytes_per_elem: float = 4.0) -> LoweredPlan:
        """Route/RWA/price each distinct pattern (cross-run cached).

        With the config's reconfiguration model enabled (``t_tune > 0``)
        this runs the reconfigure-vs-hold estimator
        (:func:`repro.optical.reconfig.choose_plan`) and returns the
        faster plan, decision recorded in ``meta["reconfig"]["decision"]``.
        With the model disabled (the default) it is exactly the network's
        ``lower`` — bit-identical to every pre-reconfig release.
        """
        from repro.optical.reconfig import choose_plan

        return choose_plan(self._net, schedule, bytes_per_elem)

    def verify(self, plan: LoweredPlan, schedule=None) -> list:
        """Verify with full optical evidence (circuits re-derived).

        When the source schedule is available the context also carries the
        statically re-derived circuit rounds, enabling the wavelength-
        conflict and port-budget rules on top of the structural ones.
        """
        from repro.check.context import optical_context
        from repro.check.engine import verify_plan

        if schedule is None:
            return super().verify(plan)
        context = optical_context(
            self._net, schedule, plan, bytes_per_elem=plan.bytes_per_elem
        )
        return verify_plan(context=context, raise_on_error=True)

    def execute(self, plan: LoweredPlan) -> ExecutionResult:
        """Fold the lowered plan into the uniform execution result."""
        if self._tracer is not None:
            self._tracer.clear()
        run = self._net.execute_plan(plan)
        events: tuple = ()
        if self._tracer is not None:
            events = tuple(
                (r.time, r.category, dict(r.payload)) for r in self._tracer
            )
        return ExecutionResult(
            backend=self.name,
            algorithm=run.algorithm,
            n_steps=run.n_steps,
            total_time=run.total_time,
            total_bytes=run.total_bytes,
            timeline=tuple(
                StepRecord(
                    stage=t.stage,
                    count=t.count,
                    duration=t.duration,
                    bytes_per_step=t.bytes_per_step,
                    n_transfers=t.n_transfers,
                    rounds=t.rounds,
                    peak_wavelength=t.peak_wavelength,
                )
                for t in run.step_timings
            ),
            events=events,
            cache=run.cache,
            meta={"interpretation": self.config.interpretation},
            metrics=self.metrics.snapshot() if self.metrics.enabled else None,
        )
