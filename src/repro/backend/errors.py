"""Typed errors raised by schedule-lowering backends.

Executor entry points used to raise bare ``ValueError``/``RuntimeError``;
callers (the sweep engine, the CLI, notebook users) could not tell a bad
argument from a mid-execution failure, nor which backend or step produced
it. Every backend now raises :class:`BackendError` subclasses that carry
the backend name and, where meaningful, the failing step index.

:class:`BackendConfigError` additionally subclasses ``ValueError`` so that
pre-existing ``except ValueError`` call sites (and tests) keep working.
All error types round-trip through ``pickle`` with their attributes intact
— they may cross process boundaries inside sweep workers.
"""

from __future__ import annotations


class BackendError(RuntimeError):
    """Base error for schedule lowering/execution failures.

    Attributes:
        backend: Name of the backend that raised (``"optical"``, ...), or
            ``None`` when raised outside any backend context.
        step_index: Index of the failing profile entry within the schedule
            being lowered/executed, or ``None`` when not step-specific.
    """

    def __init__(
        self,
        message: str,
        *,
        backend: str | None = None,
        step_index: int | None = None,
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.step_index = step_index

    def __str__(self) -> str:
        parts = []
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        if self.step_index is not None:
            parts.append(f"step={self.step_index}")
        prefix = f"[{', '.join(parts)}] " if parts else ""
        return prefix + super().__str__()

    def __reduce__(self):
        """Pickle with keyword attributes preserved (sweep workers)."""
        return (
            self.__class__,
            tuple(self.args),
            {"backend": self.backend, "step_index": self.step_index},
        )

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class BackendConfigError(BackendError, ValueError):
    """Invalid input at a backend/executor entry point.

    Subclasses ``ValueError`` so callers that guarded entry points with
    ``except ValueError`` (the pre-backend convention) continue to work.
    """


class BackendExecutionError(BackendError):
    """A step failed while being lowered or executed.

    Wraps the underlying cause (kept as ``__cause__`` via ``raise ... from``)
    with the backend name and the index of the offending profile entry.
    """
