"""The electrical fat-tree backend behind the ``Backend`` contract.

Wraps :class:`~repro.electrical.network.ElectricalNetwork` (ECMP routing
and max-min fluid flow timing) and adapts its run result to the uniform
:class:`~repro.backend.base.ExecutionResult`.
"""

from __future__ import annotations

from repro.backend.base import Backend, ExecutionResult, LoweredPlan, StepRecord
from repro.backend.plancache import PlanCache
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.network import ElectricalNetwork
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.sim.trace import Tracer


class ElectricalBackend(Backend):
    """Prices schedules on the packet-switched electrical fat-tree."""

    name = "electrical"

    def __init__(
        self,
        config: ElectricalSystemConfig,
        *,
        plan_cache: PlanCache | None = None,
        collect_events: bool = False,
        metrics: MetricsRegistry = NULL_METRICS,
        reconfig=None,
        overlap: bool = True,
    ) -> None:
        """Args mirror :class:`~repro.electrical.network.ElectricalNetwork`;
        ``collect_events`` harvests the executor's trace into
        ``ExecutionResult.events``; ``metrics`` (default disabled) collects
        observability data and attaches a snapshot to results.

        ``reconfig``/``overlap`` are accepted for interface parity with the
        optical backends: the fat-tree is packet-switched — there are no
        MRRs and no circuit setup, so reconfiguration is physically zero
        here. When a (non-``None``) model is supplied, lowered plans carry
        a zero-cost ``meta["reconfig"]`` block so bench rows can report
        the electrical substrate as the tuning-free comparison point.
        """
        self.config = config
        self.collect_events = collect_events
        self.metrics = metrics
        self.reconfig = reconfig
        self.overlap = overlap
        self._tracer = Tracer(enabled=True) if collect_events else None
        self._net = ElectricalNetwork(
            config, tracer=self._tracer, plan_cache=plan_cache, metrics=metrics
        )

    @property
    def network(self) -> ElectricalNetwork:
        """The underlying substrate executor (for advanced use)."""
        return self._net

    def lower(self, schedule, *, bytes_per_elem: float = 4.0) -> LoweredPlan:
        """Route and fluid-price each distinct pattern (cross-run cached).

        Timings never depend on any reconfiguration model — packet
        switching pays no circuit setup — but a supplied model is recorded
        (at zero cost) in the plan meta for observability.
        """
        plan = self._net.lower(schedule, bytes_per_elem)
        if self.reconfig is not None and getattr(self.reconfig, "enabled", False):
            plan.meta["reconfig"] = {
                "t_tune": 0.0,
                "tune_per_channel": 0.0,
                "overlap": self.overlap,
                "exposed_tune_s": 0.0,
                "raw_tune_s": 0.0,
                "substrate": "packet-switched (no circuit setup)",
            }
        return plan

    def execute(self, plan: LoweredPlan) -> ExecutionResult:
        """Fold the lowered plan into the uniform execution result."""
        if self._tracer is not None:
            self._tracer.clear()
        run = self._net.execute_plan(plan)
        events: tuple = ()
        if self._tracer is not None:
            events = tuple(
                (r.time, r.category, dict(r.payload)) for r in self._tracer
            )
        return ExecutionResult(
            backend=self.name,
            algorithm=run.algorithm,
            n_steps=run.n_steps,
            total_time=run.total_time,
            total_bytes=run.total_bytes,
            timeline=tuple(
                StepRecord(
                    stage=t.stage,
                    count=t.count,
                    duration=t.duration,
                    bytes_per_step=t.bytes_per_step,
                    n_transfers=t.n_flows,
                    max_link_share=t.max_link_share,
                )
                for t in run.step_timings
            ),
            events=events,
            cache=run.cache,
            meta={"interpretation": self.config.interpretation},
            metrics=self.metrics.snapshot() if self.metrics.enabled else None,
        )
