"""The analytic backend: closed-form cost models behind ``Backend``.

Prices a schedule with the paper's closed forms
(:func:`repro.core.timing.algorithm_time`, Eq 6 and per-baseline
equivalents) instead of simulating it. The closed form stays authoritative
for ``total_time`` — the reported numbers are bit-identical to calling
``algorithm_time`` directly — while the per-step timeline comes from the
matching :func:`repro.core.timing.analytic_profile` decomposition (the
timeline's own sum agrees with the total to float precision, not bit
exactly, because the closed forms factor the overhead term differently).

Algorithm knobs are recovered from the schedule itself: WRHT's group size
from ``meta["plan"].m``, H-Ring's from ``meta["m"]``; the wavelength budget
``w`` is backend configuration. Lowered summaries go through the shared
cross-run :mod:`~repro.backend.plancache`, keyed by the cost model and
every knob, so the hit/miss/eviction counters and the no-stale-reuse
guarantee behave exactly as on the simulating backends.
"""

from __future__ import annotations

from repro.backend.base import Backend, ExecutionResult, LoweredPlan, LoweredStep, StepRecord
from repro.backend.errors import BackendConfigError
from repro.backend.plancache import PlanCache, PlanCacheCounters, default_plan_cache
from repro.collectives.base import Schedule
from repro.collectives.registry import DISPLAY_NAMES
from repro.core.timing import (
    CostModel,
    algorithm_time,
    analytic_profile,
    reconfig_exposed_time,
)
from repro.faults.models import FaultSet
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.optical.reconfig import ReconfigModel

_DEFAULT_HRING_M = 5


class AnalyticBackend(Backend):
    """Prices schedules with the closed-form models of ``repro.core.timing``."""

    name = "analytic"

    def __init__(
        self,
        model: CostModel,
        *,
        w: int = 64,
        plan_cache: PlanCache | None = None,
        faults: FaultSet | None = None,
        metrics: MetricsRegistry = NULL_METRICS,
        reconfig: ReconfigModel | None = None,
        overlap: bool = True,
    ) -> None:
        """Args:
        model: Cost parameters (line rate, step overhead, O/E/O).
        w: Wavelengths available to wavelength-aware closed forms.
        plan_cache: Cross-run cache (default: the process-wide one).
        faults: Optional fault set for degraded pricing: globally dead
            wavelengths shrink the effective budget the wavelength-aware
            closed forms see. The set also salts the plan-cache key, so
            degraded and healthy prices can never alias.
        metrics: Observability registry (default disabled); cache tallies
            are recorded and a snapshot is attached to results.
        reconfig: Optional MRR tuning model; when enabled, the exposed
            tuning of :func:`repro.core.timing.reconfig_exposed_time` is
            added on top of the closed form (the base ``t_tune`` only —
            closed forms carry no concrete wavelength assignments, so the
            per-wavelength-distance term and claim holding are priced by
            the optical backend alone). Also salts the plan-cache key.
        overlap: Overlap each step's tuning with the previous step's
            transmission (the recurrence) instead of paying it serially.
        """
        self.model = model
        self.w = w
        self.metrics = metrics
        self.reconfig = ReconfigModel() if reconfig is None else reconfig
        self.overlap = overlap
        self.faults = FaultSet() if faults is None else faults
        self.effective_w = w - len(self.faults.dead_wavelengths & frozenset(range(w)))
        if self.effective_w < 1:
            raise BackendConfigError(
                "no usable wavelengths remain under the fault set",
                backend=self.name,
            )
        self.plan_cache = default_plan_cache() if plan_cache is None else plan_cache
        base: tuple = (model, w, "analytic")
        if self.faults:
            base = base + (self.faults,)
        if self.reconfig.enabled:
            base = base + (self.reconfig, overlap)
        self._plan_key_base = base

    def lower(self, schedule: Schedule, *, bytes_per_elem: float = 4.0) -> LoweredPlan:
        """Evaluate the schedule's closed form (cross-run cached).

        Raises:
            BackendConfigError: For a non-positive element width or an
                algorithm without a registered closed form (e.g. DBTree).
        """
        if bytes_per_elem <= 0:
            raise BackendConfigError(
                f"bytes_per_elem must be positive, got {bytes_per_elem!r}",
                backend=self.name,
            )
        counters = PlanCacheCounters()
        if schedule.n_nodes == 1:
            return LoweredPlan(
                backend=self.name,
                algorithm=schedule.algorithm,
                n_nodes=1,
                n_steps=0,
                bytes_per_elem=bytes_per_elem,
                entries=(),
                cache=counters,
                meta={"total_time": 0.0},
            )
        display = DISPLAY_NAMES.get(schedule.algorithm)
        wrht_m = None
        hring_m = _DEFAULT_HRING_M
        scring_pipeline = 1
        if schedule.algorithm == "wrht":
            plan = schedule.meta.get("plan")
            wrht_m = plan.m if plan is not None else None
        elif schedule.algorithm == "hring":
            hring_m = schedule.meta.get("m", _DEFAULT_HRING_M)
        elif schedule.algorithm == "scring":
            scring_pipeline = schedule.meta.get("pipeline", 1)
        if display is None or display not in (
            "Ring", "H-Ring", "BT", "RD", "WRHT", "Swing", "SCRing"
        ):
            raise BackendConfigError(
                f"no closed-form model for algorithm {schedule.algorithm!r}",
                backend=self.name,
            )
        d_bytes = schedule.total_elems * bytes_per_elem
        use_cache = self.plan_cache.enabled
        priced = None
        if use_cache:
            key = (
                (
                    display, schedule.n_nodes, schedule.total_elems,
                    wrht_m, hring_m, scring_pipeline,
                ),
                self._plan_key_base,
                bytes_per_elem,
            )
            priced = self.plan_cache.get(key)
            if priced is not None:
                counters.hits += 1
            else:
                counters.misses += 1
        if priced is None:
            total = algorithm_time(
                display, schedule.n_nodes, d_bytes, self.model,
                wrht_m=wrht_m, hring_m=hring_m, w=self.effective_w,
                scring_pipeline=scring_pipeline,
            )
            classes = analytic_profile(
                display, schedule.n_nodes, d_bytes,
                wrht_m=wrht_m, hring_m=hring_m, w=self.effective_w,
                scring_pipeline=scring_pipeline,
            )
            if self.reconfig.enabled:
                # Tuning is additive on top of the untouched closed form,
                # so the t_tune=0 total stays bit-identical by structure.
                exposed = reconfig_exposed_time(
                    classes, self.model, self.reconfig.t_tune, self.overlap
                )
                total += exposed
            priced = (
                total,
                tuple((c, self.model.step_time(c.payload_bytes)) for c in classes),
            )
            if use_cache:
                counters.evictions += self.plan_cache.put(key, priced)
        if self.metrics.enabled:
            self.metrics.inc("plan_cache.hits", counters.hits)
            self.metrics.inc("plan_cache.misses", counters.misses)
            self.metrics.inc("plan_cache.evictions", counters.evictions)
        total, priced_classes = priced
        meta = {
            "total_time": total, "wrht_m": wrht_m, "hring_m": hring_m,
            "w": self.effective_w,
        }
        if self.reconfig.enabled:
            meta["reconfig"] = {
                "t_tune": self.reconfig.t_tune,
                "tune_per_channel": 0.0,
                "overlap": self.overlap,
                "exposed_tune_s": reconfig_exposed_time(
                    tuple(c for c, _ in priced_classes),
                    self.model, self.reconfig.t_tune, self.overlap,
                ),
            }
        entries = tuple(
            LoweredStep(
                stage=cls.stage,
                count=cls.count,
                n_transfers=0,
                payload=(cls.payload_bytes, duration),
            )
            for cls, duration in priced_classes
        )
        return LoweredPlan(
            backend=self.name,
            algorithm=schedule.algorithm,
            n_nodes=schedule.n_nodes,
            n_steps=sum(e.count for e in entries),
            bytes_per_elem=bytes_per_elem,
            entries=entries,
            cache=counters,
            meta=meta,
        )

    def execute(self, plan: LoweredPlan) -> ExecutionResult:
        """Report the closed-form total with its per-class timeline."""
        timeline = tuple(
            StepRecord(
                stage=e.stage,
                count=e.count,
                duration=e.payload[1],
                bytes_per_step=e.payload[0],
            )
            for e in plan.entries
        )
        if self.metrics.enabled:
            for record in timeline:
                self.metrics.observe("analytic.step.duration_s", record.duration)
        return ExecutionResult(
            backend=self.name,
            algorithm=plan.algorithm,
            n_steps=plan.n_steps,
            total_time=plan.meta["total_time"],
            total_bytes=sum(r.bytes_per_step * r.count for r in timeline),
            timeline=timeline,
            cache=PlanCacheCounters(**plan.cache.as_dict()),
            meta=dict(plan.meta),
            metrics=self.metrics.snapshot() if self.metrics.enabled else None,
        )
