"""Backend registry: name → factory for every schedule-pricing backend.

The three built-in backends register on import:

- ``"optical"`` — :class:`~repro.backend.optical.OpticalBackend` (WDM
  ring, RWA + reconfiguration rounds);
- ``"electrical"`` — :class:`~repro.backend.electrical.ElectricalBackend`
  (fat-tree, ECMP + max-min fluid flows);
- ``"analytic"`` — :class:`~repro.backend.analytic.AnalyticBackend`
  (closed forms, Eq 6 and equivalents).

Adding a backend is one module plus one :func:`register` call — the runner
and CLI pick it up through :func:`available`/:func:`create` without
modification.
"""

from __future__ import annotations

from typing import Callable

from repro.backend.analytic import AnalyticBackend
from repro.backend.base import Backend
from repro.backend.electrical import ElectricalBackend
from repro.backend.optical import OpticalBackend

_REGISTRY: dict[str, Callable[..., Backend]] = {}


def register(name: str, factory: Callable[..., Backend]) -> None:
    """Register ``factory`` (a Backend subclass or callable) under ``name``.

    Re-registering a name replaces the previous factory (useful in tests).
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def unregister(name: str) -> None:
    """Remove a registered backend (no-op if absent)."""
    _REGISTRY.pop(name, None)


def available() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def get_factory(name: str) -> Callable[..., Backend]:
    """The factory registered under ``name``.

    Raises:
        KeyError: If no backend is registered under ``name``.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {available()}"
        ) from None


def create(name: str, **kwargs) -> Backend:
    """Instantiate the backend registered under ``name``.

    ``kwargs`` are forwarded to the factory — e.g.
    ``create("optical", config=OpticalSystemConfig(...))``.
    """
    return get_factory(name)(**kwargs)


register("optical", OpticalBackend)
register("electrical", ElectricalBackend)
register("analytic", AnalyticBackend)
