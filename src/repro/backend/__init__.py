"""Unified backend layer: one schedule-lowering pipeline for every executor.

``repro.backend`` defines the two-stage contract every schedule-pricing
path implements — ``lower(schedule) -> LoweredPlan`` then
``execute(plan) -> ExecutionResult`` (see :mod:`repro.backend.base`) — the
shared cross-run :mod:`~repro.backend.plancache`, and the typed
:mod:`~repro.backend.errors`. The three built-in backends (optical ring,
electrical fat-tree, analytic closed forms) live in sibling modules and
register themselves in :mod:`repro.backend.registry`.

The concrete backend classes and the registry are imported lazily (PEP 562)
so that the substrate packages, which import this package's leaf modules,
never form a cycle.
"""

from __future__ import annotations

from repro.backend.base import (
    Backend,
    ExecutionResult,
    LoweredPlan,
    LoweredStep,
    StepRecord,
    StepTimeline,
)
from repro.backend.errors import BackendConfigError, BackendError, BackendExecutionError
from repro.backend.plancache import (
    CachedRound,
    PlanCache,
    PlanCacheCounters,
    default_plan_cache,
)

__all__ = [
    "AnalyticBackend",
    "Backend",
    "BackendConfigError",
    "BackendError",
    "BackendExecutionError",
    "CachedRound",
    "ElectricalBackend",
    "ExecutionResult",
    "LoweredPlan",
    "LoweredStep",
    "OpticalBackend",
    "PlanCache",
    "PlanCacheCounters",
    "StepRecord",
    "StepTimeline",
    "default_plan_cache",
    "registry",
]

_LAZY = {
    "AnalyticBackend": ("repro.backend.analytic", "AnalyticBackend"),
    "ElectricalBackend": ("repro.backend.electrical", "ElectricalBackend"),
    "OpticalBackend": ("repro.backend.optical", "OpticalBackend"),
    "registry": ("repro.backend.registry", None),
}


def __getattr__(name: str):
    """Resolve the lazily-imported backend classes and the registry."""
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = module if target[1] is None else getattr(module, target[1])
    globals()[name] = value
    return value
