"""Deterministic fault models and degraded-mode rescheduling.

The paper assumes a fault-free ring; this package models what happens when
it is not. Fault models are declarative frozen dataclasses
(:mod:`repro.faults.models`) aggregated into a hashable :class:`FaultSet`
attached to :class:`~repro.optical.config.OpticalSystemConfig` — attaching
them changes the frozen config, which automatically salts every plan-cache
key, so degraded and healthy plans can never alias.

Lowering reacts in three layers:

- the RWA masks dead wavelengths out of its probe order, bans dead MRR
  ports per endpoint and pre-occupies the segments a stuck MRR quarantines
  (:mod:`repro.optical.rwa`);
- routing steers around cut fiber segments by taking the opposite ring
  direction (:meth:`~repro.optical.network.OpticalRingNetwork._route_step`);
- planning replans against the reduced budget: dropped nodes shrink the
  participant set (re-electing group representatives),
  laser-power droop derates the Eq 7–13 budget, and losing wavelengths
  below ``⌈(m*)²/8⌉`` falls the last level back from the all-to-all to the
  extra broadcast level (:mod:`repro.faults.replan`).

The live DES executor (:mod:`repro.optical.livesim`) additionally supports
*mid-flight* faults via :class:`FaultEvent`: the fault interrupts affected
circuit processes and the coordinator retries against the replanned RWA
with exponential backoff.

``python -m repro.faults`` runs a seeded dead-wavelength smoke scenario on
every backend and verifies the degraded plans with :mod:`repro.check`.
"""

from repro.faults.models import (
    CutFiber,
    DeadWavelength,
    DroppedNode,
    Fault,
    FaultEvent,
    FaultSet,
    MrrPortFault,
    PowerDroop,
)
from repro.faults.replan import (
    apply_faults,
    build_degraded_wrht_schedule,
    degraded_wavelength_budget,
    plan_wrht_degraded,
    surviving_nodes,
)

__all__ = [
    "CutFiber",
    "DeadWavelength",
    "DroppedNode",
    "Fault",
    "FaultEvent",
    "FaultSet",
    "MrrPortFault",
    "PowerDroop",
    "apply_faults",
    "build_degraded_wrht_schedule",
    "degraded_wavelength_budget",
    "plan_wrht_degraded",
    "surviving_nodes",
]
