"""Declarative fault models for the optical ring.

Each fault is a small frozen dataclass; a :class:`FaultSet` aggregates them
into one hashable, order-normalized value suitable for embedding in the
frozen :class:`~repro.optical.config.OpticalSystemConfig` (and therefore in
every plan-cache key). The set also derives the views the substrate layers
consume: blocked wavelengths for the RWA probe order, per-endpoint port
bans, quarantined segment bitmasks, cut directions per segment, the
surviving-node set, and the droop-derated physical-layer parameters.

Fault semantics
---------------

- :class:`DeadWavelength` — the comb-laser line is gone; the wavelength is
  unusable on every fiber, both directions.
- :class:`MrrPortFault` — one node's micro-ring for one wavelength failed.
  ``mode="dead"`` (stuck in the *through* position): the node can no longer
  add or drop that wavelength, so circuits terminating at the node cannot
  use it, but traffic passing through is unaffected. ``mode="stuck"``
  (stuck in the *drop* position): the ring is broken for that wavelength at
  the node's interface, conservatively modeled by quarantining the
  wavelength on both segments adjacent to the node.
- :class:`CutFiber` — a fiber segment is severed for one direction (or
  both); routing must take the long way around.
- :class:`DroppedNode` — the node is gone as a compute endpoint; schedules
  must be replanned over the survivors (its optical interface is assumed to
  keep passing light, as MRR add/drop is passive for foreign wavelengths).
- :class:`PowerDroop` — a transient comb-laser power droop of ``droop_db``
  dB feeding Eqs 7–13: the loss budget (Eq 9) loses ``droop_db`` of
  headroom and the received signal power entering the SNR (Eq 11) drops by
  the same factor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Union

from repro.core.constraints import OpticalPhyParams
from repro.optical.topology import Direction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optical.circuit import Circuit

#: Accepted ``direction`` spellings on direction-scoped faults.
DIRECTIONS = ("cw", "ccw")


@dataclass(frozen=True)
class DeadWavelength:
    """A failed comb-laser line: wavelength unusable everywhere."""

    wavelength: int

    def __post_init__(self) -> None:
        if self.wavelength < 0:
            raise ValueError(f"wavelength must be >= 0, got {self.wavelength!r}")


@dataclass(frozen=True)
class MrrPortFault:
    """One node's MRR for one wavelength failed (``dead`` or ``stuck``).

    Attributes:
        node: The node whose interface carries the failed micro-ring.
        wavelength: The wavelength the micro-ring serves.
        mode: ``"dead"`` (cannot add/drop; pass-through fine) or
            ``"stuck"`` (stuck dropping; quarantines the wavelength on the
            node's adjacent segments).
        direction: ``"cw"``/``"ccw"`` to scope the fault to one direction's
            interface, ``None`` for both.
    """

    node: int
    wavelength: int
    mode: str = "dead"
    direction: str | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node!r}")
        if self.wavelength < 0:
            raise ValueError(f"wavelength must be >= 0, got {self.wavelength!r}")
        if self.mode not in ("dead", "stuck"):
            raise ValueError(f"mode must be 'dead' or 'stuck', got {self.mode!r}")
        _check_direction(self.direction)


@dataclass(frozen=True)
class CutFiber:
    """A severed fiber segment (one direction or both)."""

    segment: int
    direction: str | None = None

    def __post_init__(self) -> None:
        if self.segment < 0:
            raise ValueError(f"segment must be >= 0, got {self.segment!r}")
        _check_direction(self.direction)


@dataclass(frozen=True)
class DroppedNode:
    """A node lost as a compute endpoint (light still passes through)."""

    node: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node!r}")


@dataclass(frozen=True)
class PowerDroop:
    """A transient comb-laser power droop in dB (feeds Eqs 7–13)."""

    droop_db: float

    def __post_init__(self) -> None:
        if self.droop_db <= 0:
            raise ValueError(f"droop_db must be positive, got {self.droop_db!r}")


Fault = Union[DeadWavelength, MrrPortFault, CutFiber, DroppedNode, PowerDroop]


def _check_direction(direction: str | None) -> None:
    if direction is not None and direction not in DIRECTIONS:
        raise ValueError(
            f"direction must be one of {DIRECTIONS} or None, got {direction!r}"
        )


def _matches_direction(fault_direction: str | None, direction: Direction) -> bool:
    return fault_direction is None or fault_direction == direction.value


@dataclass(frozen=True)
class FaultSet:
    """An order-normalized, hashable collection of faults.

    The constructor sorts and deduplicates, so two sets built from the same
    faults in any order compare (and hash) equal — a property the plan
    cache relies on, since the set travels inside the frozen system config
    that salts every cache key.
    """

    faults: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        normalized = tuple(
            sorted(set(self.faults), key=lambda f: (type(f).__name__, repr(f)))
        )
        object.__setattr__(self, "faults", normalized)

    @classmethod
    def of(cls, *faults: Fault) -> "FaultSet":
        """Convenience constructor: ``FaultSet.of(DeadWavelength(3), ...)``."""
        return cls(tuple(faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def with_fault(self, fault: Fault) -> "FaultSet":
        """A new set with ``fault`` added (used by mid-flight activation)."""
        return FaultSet(self.faults + (fault,))

    # -- derived views ---------------------------------------------------
    @property
    def dead_wavelengths(self) -> frozenset[int]:
        """Wavelengths unusable everywhere (:class:`DeadWavelength`)."""
        return frozenset(
            f.wavelength for f in self.faults if isinstance(f, DeadWavelength)
        )

    @property
    def dead_nodes(self) -> frozenset[int]:
        """Nodes dropped as compute endpoints (:class:`DroppedNode`)."""
        return frozenset(f.node for f in self.faults if isinstance(f, DroppedNode))

    @property
    def port_faults(self) -> tuple[MrrPortFault, ...]:
        """All MRR port faults, in normalized order."""
        return tuple(f for f in self.faults if isinstance(f, MrrPortFault))

    @property
    def cut_segments(self) -> frozenset[int]:
        """Segments cut in at least one direction."""
        return frozenset(f.segment for f in self.faults if isinstance(f, CutFiber))

    @property
    def droop_db(self) -> float:
        """Total laser-power droop in dB (droops stack additively in dB)."""
        return sum(f.droop_db for f in self.faults if isinstance(f, PowerDroop))

    def is_cut(self, segment: int, direction: Direction) -> bool:
        """Whether ``segment`` is severed for ``direction``."""
        for f in self.faults:
            if (
                isinstance(f, CutFiber)
                and f.segment == segment
                and _matches_direction(f.direction, direction)
            ):
                return True
        return False

    def endpoint_blocked(self, node: int, direction: Direction) -> frozenset[int]:
        """Wavelengths ``node`` cannot add/drop on ``direction``'s interface.

        Covers both port-fault modes: a dead port cannot terminate the
        wavelength, and a stuck-dropping port is no more able to.
        """
        return frozenset(
            f.wavelength
            for f in self.port_faults
            if f.node == node and _matches_direction(f.direction, direction)
        )

    def segment_quarantine_masks(self, n_nodes: int) -> dict[tuple[Direction, int], int]:
        """Pre-occupied segment bitmask per (direction, wavelength).

        A ``mode="stuck"`` MRR at node ``j`` drops its wavelength out of
        the ring at ``j``'s interface, so the wavelength is quarantined on
        both segments adjacent to ``j`` (``j-1`` and ``j`` mod N) — the RWA
        seeds its occupancy integers with these masks, making the
        quarantined spans unassignable exactly like already-busy channels.
        """
        masks: dict[tuple[Direction, int], int] = {}
        for f in self.port_faults:
            if f.mode != "stuck":
                continue
            span = (1 << (f.node % n_nodes)) | (1 << ((f.node - 1) % n_nodes))
            for direction in Direction:
                if not _matches_direction(f.direction, direction):
                    continue
                key = (direction, f.wavelength)
                masks[key] = masks.get(key, 0) | span
        return masks

    def effective_phy(self, phy: OpticalPhyParams | None) -> OpticalPhyParams | None:
        """``phy`` derated by the total laser-power droop (Eqs 7–13).

        The loss budget loses ``droop_db`` dB of laser power (Eq 9) and the
        received signal power entering the SNR (Eq 11) drops by the same
        linear factor.
        """
        droop = self.droop_db
        if phy is None or droop == 0.0:
            return phy
        return replace(
            phy,
            laser_power_dbm=phy.laser_power_dbm - droop,
            signal_power_mw=phy.signal_power_mw * 10.0 ** (-droop / 10.0),
        )

    def validate(self, n_nodes: int, n_wavelengths: int) -> None:
        """Bounds-check every fault against a concrete system.

        Raises:
            ValueError: On any out-of-range wavelength/node/segment, or
                when no wavelength or no node would survive.
        """
        for f in self.faults:
            if isinstance(f, (DeadWavelength, MrrPortFault)):
                if f.wavelength >= n_wavelengths:
                    raise ValueError(
                        f"fault {f!r}: wavelength out of range "
                        f"[0, {n_wavelengths})"
                    )
            if isinstance(f, (MrrPortFault, DroppedNode)):
                if f.node >= n_nodes:
                    raise ValueError(
                        f"fault {f!r}: node out of range [0, {n_nodes})"
                    )
            if isinstance(f, CutFiber) and f.segment >= n_nodes:
                raise ValueError(
                    f"fault {f!r}: segment out of range [0, {n_nodes})"
                )
        if len(self.dead_wavelengths) >= n_wavelengths:
            raise ValueError("at least one wavelength must survive the fault set")
        if len(self.dead_nodes) >= n_nodes:
            raise ValueError("at least one node must survive the fault set")

    # -- mid-flight support ----------------------------------------------
    def affects_circuit(self, circuit: "Circuit", config) -> bool:
        """Whether an in-flight ``circuit`` is broken by this fault set.

        Used by the live executor when a :class:`FaultEvent` fires: every
        affected circuit process is interrupted and its transfer retried
        against the replanned RWA.
        """
        direction = circuit.route.direction
        segments = set(circuit.route.segments)
        if circuit.wavelength in self.dead_wavelengths:
            return True
        src, dst = circuit.transfer.src, circuit.transfer.dst
        if src in self.dead_nodes or dst in self.dead_nodes:
            return True
        if circuit.wavelength in self.endpoint_blocked(src, direction):
            return True
        if circuit.wavelength in self.endpoint_blocked(dst, direction):
            return True
        for seg in segments:
            if self.is_cut(seg, direction):
                return True
        quarantine = self.segment_quarantine_masks(config.n_nodes).get(
            (direction, circuit.wavelength), 0
        )
        if any(quarantine >> seg & 1 for seg in segments):
            return True
        if self.droop_db and config.phy is not None:
            from repro.optical.phy import path_feasible

            if not path_feasible(circuit.route.hops, self.effective_phy(config.phy)):
                return True
        return False


EMPTY_FAULTS = FaultSet()
"""The shared empty fault set (the healthy-system default)."""


@dataclass(frozen=True)
class FaultEvent:
    """A fault arriving at a fixed simulation time (live executor input)."""

    time: float
    fault: Fault

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time!r}")
