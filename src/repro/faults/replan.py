"""Degraded-mode replanning: from a fault set to a runnable WRHT plan.

The planner (:func:`repro.core.planner.plan_wrht`) already encodes every
degradation rule we need — it just has to be fed the *degraded* inputs:

- dropped nodes shrink the planning population to the survivors, which
  re-elects group representatives (the middle member of each survivor
  group) and can change the hierarchy depth;
- dead wavelengths (and the config's ``failed_wavelengths``) shrink the
  wavelength budget ``w``, which lowers Lemma 1's optimum ``m = 2w + 1``
  and, once the budget drops below ``⌈(m*)²/8⌉``, flips
  ``alltoall_feasible`` to False so the last level falls back from the
  all-to-all shortcut to the extra broadcast level (θ goes from
  ``2L − 1`` back to ``2L``);
- a laser-power droop derates the Eq 7–13 physical-layer budget, which
  tightens the Sec 4.4 group-size cap ``m'`` through ``max_group_size``.

Everything here is pure planning; the RWA-level masking (per-route
wavelength bans, quarantined segments, cut rerouting) lives in
:mod:`repro.optical.rwa` and :mod:`repro.optical.network`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Iterable

from repro.collectives.base import Schedule
from repro.collectives.degraded import build_shrunk_wrht_schedule
from repro.collectives.wrht_schedule import build_wrht_schedule
from repro.core.constraints import OpticalPhyParams
from repro.core.planner import WrhtPlan, plan_wrht
from repro.faults.models import Fault, FaultSet
from repro.util.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optical.config import OpticalSystemConfig


def surviving_nodes(n_nodes: int, faults: FaultSet) -> tuple[int, ...]:
    """Ring positions that remain compute endpoints under ``faults``."""
    check_positive_int("n_nodes", n_nodes)
    dead = faults.dead_nodes
    return tuple(i for i in range(n_nodes) if i not in dead)


def degraded_wavelength_budget(
    n_wavelengths: int,
    faults: FaultSet,
    failed_wavelengths: Iterable[int] = (),
) -> int:
    """Wavelengths still plannable: ``w`` minus every globally dead line.

    Per-node port faults and quarantined segments do *not* reduce the
    budget — they are local and the RWA schedules around them, possibly at
    the cost of extra rounds. Only comb-laser lines dead everywhere
    (:class:`~repro.faults.models.DeadWavelength` plus the config's
    ``failed_wavelengths``) shrink what the planner may count on.
    """
    check_positive_int("n_wavelengths", n_wavelengths)
    unusable = faults.dead_wavelengths | frozenset(failed_wavelengths)
    budget = n_wavelengths - len(unusable & frozenset(range(n_wavelengths)))
    if budget < 1:
        raise ValueError("no usable wavelengths remain under the fault set")
    return budget


def plan_wrht_degraded(
    n_nodes: int,
    faults: FaultSet,
    n_wavelengths: int = 64,
    m: int | None = None,
    phy: OpticalPhyParams | None = None,
    failed_wavelengths: Iterable[int] = (),
) -> WrhtPlan:
    """A WRHT plan over the survivors against the degraded budget.

    The returned plan's ``n_nodes`` is the *survivor count* and its
    ``n_wavelengths`` the degraded budget; feed it to
    :func:`build_degraded_wrht_schedule` (or, for no dropped nodes,
    directly to ``build_wrht_schedule``) to materialize transfers.
    """
    faults.validate(n_nodes, n_wavelengths)
    survivors = surviving_nodes(n_nodes, faults)
    if len(survivors) < 2:
        raise ValueError(
            f"degraded WRHT needs at least 2 surviving nodes, "
            f"got {len(survivors)}"
        )
    budget = degraded_wavelength_budget(n_wavelengths, faults, failed_wavelengths)
    return plan_wrht(len(survivors), budget, m=m, phy=faults.effective_phy(phy))


def build_degraded_wrht_schedule(
    n_nodes: int,
    total_elems: int,
    faults: FaultSet,
    n_wavelengths: int = 64,
    m: int | None = None,
    phy: OpticalPhyParams | None = None,
    failed_wavelengths: Iterable[int] = (),
) -> Schedule:
    """The degraded-mode WRHT schedule for a faulty system.

    Without dropped nodes this is a plain WRHT schedule planned against the
    degraded wavelength budget and derated phy (bit-identical to the
    healthy schedule when the fault set changes neither). With dropped
    nodes the schedule shrinks to the survivors via
    :func:`~repro.collectives.degraded.build_shrunk_wrht_schedule`, which
    re-elects representatives and tags ``meta["participants"]``.
    """
    plan = plan_wrht_degraded(
        n_nodes,
        faults,
        n_wavelengths=n_wavelengths,
        m=m,
        phy=phy,
        failed_wavelengths=failed_wavelengths,
    )
    survivors = surviving_nodes(n_nodes, faults)
    if len(survivors) == n_nodes:
        return build_wrht_schedule(n_nodes, total_elems, plan=plan)
    return build_shrunk_wrht_schedule(n_nodes, total_elems, survivors, plan=plan)


def apply_faults(
    config: "OpticalSystemConfig", *faults: Fault
) -> "OpticalSystemConfig":
    """A new config with ``faults`` merged into the existing fault set.

    Validation (bounds, at-least-one-survivor) runs in the config's
    ``__post_init__``; the changed frozen config automatically salts every
    plan-cache key, so degraded plans can never alias healthy ones.
    """
    merged = FaultSet(tuple(config.faults) + tuple(faults))
    return replace(config, faults=merged)
