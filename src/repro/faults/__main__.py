"""Fault-injection smoke check: ``python -m repro.faults``.

The CI stage behind ``scripts/check.sh``. For one seeded system size it

1. prices a dead-wavelength scenario and the compound acceptance scenario
   (dead wavelength + dead representative) on every fault-aware backend,
   statically verifying each degraded plan with :mod:`repro.check` (all
   PLAN rules, including PLAN007 "no failed resource used");
2. replays the schedule on the live discrete-event executor with a
   mid-flight dead-wavelength :class:`~repro.faults.models.FaultEvent` and
   asserts the run is deterministic — two invocations with identical
   inputs must report identical total time, retry and interruption counts;
3. repairs the healthy plan incrementally under the same fault
   (:meth:`~repro.optical.network.OpticalRingNetwork.repair_plan`) and
   asserts the repaired plan executes to the exact from-scratch degraded
   total and verifies clean, and that the live executor's ``repair=True``
   path reproduces the plain replan run bit for bit. ``--paranoid-repair``
   additionally cross-checks every individual repair against a
   from-scratch recolor inside the repair engine.

Exit status is non-zero when any check fails, so the stage gates CI.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.backend.plancache import PlanCache
from repro.check.context import optical_context
from repro.check.engine import verify_plan
from repro.check.findings import errors
from repro.collectives import build_wrht_schedule
from repro.faults.models import DeadWavelength, FaultEvent, FaultSet
from repro.obs.metrics import MetricsRegistry
from repro.optical.config import OpticalSystemConfig
from repro.optical.livesim import LiveOpticalSimulation
from repro.optical.network import OpticalRingNetwork
from repro.runner.faultsweep import (
    FAULT_BACKENDS,
    default_fault_scenarios,
    run_fault_scenario,
)


def _check_scenarios(n_nodes: int, n_wavelengths: int, total_elems: int) -> int:
    """Degraded plans must verify clean on every backend; returns #failures."""
    failures = 0
    scenarios = default_fault_scenarios(n_nodes, n_wavelengths)
    for name in ("dead-wavelength", "compound"):
        for backend in FAULT_BACKENDS:
            cell = run_fault_scenario(
                name,
                scenarios[name],
                n_nodes=n_nodes,
                n_wavelengths=n_wavelengths,
                total_elems=total_elems,
                backend=backend,
            )
            ok = cell.n_errors == 0
            failures += 0 if ok else 1
            print(
                f"[{'ok' if ok else 'FAIL'}] {name} on {backend}: "
                f"survivors={cell.n_survivors} "
                f"degraded={cell.degraded_time:.3e}s "
                f"(+{cell.slowdown_pct:.0f}%), "
                f"{cell.n_errors} check error(s)"
            )
    return failures


def _check_live_determinism(
    n_nodes: int, n_wavelengths: int, total_elems: int
) -> int:
    """Two identical mid-flight-fault runs must agree bit for bit."""
    config = OpticalSystemConfig(n_nodes=n_nodes, n_wavelengths=n_wavelengths)
    schedule = build_wrht_schedule(
        n_nodes, total_elems, n_wavelengths=n_wavelengths
    )
    healthy = LiveOpticalSimulation(config).run(schedule)
    # Kill a wavelength mid-run, at a time pinned to the healthy total so
    # the check scales with the system size instead of hard-coding seconds.
    events = (FaultEvent(healthy.total_time / 2, DeadWavelength(0)),)
    runs = [
        LiveOpticalSimulation(config, fault_events=events).run(schedule)
        for _ in range(2)
    ]
    fingerprints = [
        (r.total_time, r.n_retries, r.n_interrupted, r.n_events) for r in runs
    ]
    ok = fingerprints[0] == fingerprints[1]
    r = runs[0]
    print(
        f"[{'ok' if ok else 'FAIL'}] live mid-flight fault: "
        f"total={r.total_time:.3e}s retries={r.n_retries} "
        f"interrupted={r.n_interrupted} events={r.n_events} "
        f"(two runs {'identical' if ok else 'DIVERGED'})"
    )
    return 0 if ok else 1


def _check_repair(
    n_nodes: int, n_wavelengths: int, total_elems: int, paranoid: bool
) -> int:
    """Incremental repair must be semantically invisible; returns #failures."""
    failures = 0
    schedule = build_wrht_schedule(
        n_nodes, total_elems, n_wavelengths=n_wavelengths
    )
    faults = FaultSet.of(DeadWavelength(0))

    # Offline: repair the healthy plan's cached solutions and compare with
    # a from-scratch degraded lowering. Private caches keep the stage
    # hermetic (a primed shared cache would skip solution capture).
    config = OpticalSystemConfig(n_nodes=n_nodes, n_wavelengths=n_wavelengths)
    metrics = MetricsRegistry(enabled=True)
    base = OpticalRingNetwork(
        config, keep_solutions=True, plan_cache=PlanCache(), metrics=metrics
    )
    base.lower(schedule, 4.0)
    repaired_plan, degraded_net = base.repair_plan(
        schedule, faults, paranoid=paranoid
    )
    scratch_net = OpticalRingNetwork(
        replace(config, faults=faults), plan_cache=PlanCache()
    )
    scratch_plan = scratch_net.lower(schedule, 4.0)
    # Exact-determinism fingerprints, same idiom as the live check: the
    # repaired plan must execute to the from-scratch total bit for bit.
    fingerprints = [
        degraded_net.execute_plan(repaired_plan).total_time,
        scratch_net.execute_plan(scratch_plan).total_time,
    ]
    findings = verify_plan(
        context=optical_context(degraded_net, schedule, repaired_plan)
    )
    counters = metrics.snapshot().counters
    ok = (
        fingerprints[0] == fingerprints[1]
        and errors(findings) == []
        and counters.get("rwa.repair_calls", 0) > 0
        and counters.get("rwa.repair_paranoid_divergence", 0) == 0
    )
    failures += 0 if ok else 1
    print(
        f"[{'ok' if ok else 'FAIL'}] incremental repair: "
        f"repaired={fingerprints[0]:.3e}s scratch={fingerprints[1]:.3e}s "
        f"repairs={counters.get('rwa.repair_calls', 0)} "
        f"fallbacks={counters.get('rwa.repair_fallback', 0)} "
        f"check errors={len(errors(findings))}"
        f"{' (paranoid)' if paranoid else ''}"
    )

    # Live: the repair=True executor path must reproduce the plain
    # replan run exactly.
    healthy = LiveOpticalSimulation(config).run(schedule)
    events = (FaultEvent(healthy.total_time / 2, DeadWavelength(0)),)
    plain = LiveOpticalSimulation(config, fault_events=events).run(schedule)
    live = LiveOpticalSimulation(
        config, fault_events=events, repair=True, paranoid_repair=paranoid
    ).run(schedule)
    live_ok = (
        (plain.total_time, plain.n_retries, plain.n_interrupted, plain.n_events)
        == (live.total_time, live.n_retries, live.n_interrupted, live.n_events)
    )
    failures += 0 if live_ok else 1
    print(
        f"[{'ok' if live_ok else 'FAIL'}] live repair replay: "
        f"total={live.total_time:.3e}s "
        f"({'matches' if live_ok else 'DIVERGED from'} plain replan)"
    )
    return failures


def main(argv: list[str] | None = None) -> int:
    """Run the smoke checks; returns the process exit status (0 = clean)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="fault-injection smoke check (degraded plans verify "
        "clean; live fault runs are deterministic)",
    )
    parser.add_argument("--n-nodes", type=int, default=16)
    parser.add_argument("--n-wavelengths", type=int, default=8)
    parser.add_argument("--total-elems", type=int, default=50_000)
    parser.add_argument(
        "--paranoid-repair", action="store_true",
        help="cross-check every incremental repair against a from-scratch "
        "recolor inside the repair engine",
    )
    args = parser.parse_args(argv)

    failures = _check_scenarios(
        args.n_nodes, args.n_wavelengths, args.total_elems
    )
    failures += _check_live_determinism(
        args.n_nodes, args.n_wavelengths, args.total_elems
    )
    failures += _check_repair(
        args.n_nodes, args.n_wavelengths, args.total_elems,
        args.paranoid_repair,
    )
    if failures:
        print(f"fault smoke: {failures} check(s) failed", file=sys.stderr)
        return 1
    print("fault smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
