"""Fault-injection smoke check: ``python -m repro.faults``.

The CI stage behind ``scripts/check.sh``. For one seeded system size it

1. prices a dead-wavelength scenario and the compound acceptance scenario
   (dead wavelength + dead representative) on every fault-aware backend,
   statically verifying each degraded plan with :mod:`repro.check` (all
   PLAN rules, including PLAN007 "no failed resource used");
2. replays the schedule on the live discrete-event executor with a
   mid-flight dead-wavelength :class:`~repro.faults.models.FaultEvent` and
   asserts the run is deterministic — two invocations with identical
   inputs must report identical total time, retry and interruption counts.

Exit status is non-zero when any check fails, so the stage gates CI.
"""

from __future__ import annotations

import argparse
import sys

from repro.collectives import build_wrht_schedule
from repro.faults.models import DeadWavelength, FaultEvent
from repro.optical.config import OpticalSystemConfig
from repro.optical.livesim import LiveOpticalSimulation
from repro.runner.faultsweep import (
    FAULT_BACKENDS,
    default_fault_scenarios,
    run_fault_scenario,
)


def _check_scenarios(n_nodes: int, n_wavelengths: int, total_elems: int) -> int:
    """Degraded plans must verify clean on every backend; returns #failures."""
    failures = 0
    scenarios = default_fault_scenarios(n_nodes, n_wavelengths)
    for name in ("dead-wavelength", "compound"):
        for backend in FAULT_BACKENDS:
            cell = run_fault_scenario(
                name,
                scenarios[name],
                n_nodes=n_nodes,
                n_wavelengths=n_wavelengths,
                total_elems=total_elems,
                backend=backend,
            )
            ok = cell.n_errors == 0
            failures += 0 if ok else 1
            print(
                f"[{'ok' if ok else 'FAIL'}] {name} on {backend}: "
                f"survivors={cell.n_survivors} "
                f"degraded={cell.degraded_time:.3e}s "
                f"(+{cell.slowdown_pct:.0f}%), "
                f"{cell.n_errors} check error(s)"
            )
    return failures


def _check_live_determinism(
    n_nodes: int, n_wavelengths: int, total_elems: int
) -> int:
    """Two identical mid-flight-fault runs must agree bit for bit."""
    config = OpticalSystemConfig(n_nodes=n_nodes, n_wavelengths=n_wavelengths)
    schedule = build_wrht_schedule(
        n_nodes, total_elems, n_wavelengths=n_wavelengths
    )
    healthy = LiveOpticalSimulation(config).run(schedule)
    # Kill a wavelength mid-run, at a time pinned to the healthy total so
    # the check scales with the system size instead of hard-coding seconds.
    events = (FaultEvent(healthy.total_time / 2, DeadWavelength(0)),)
    runs = [
        LiveOpticalSimulation(config, fault_events=events).run(schedule)
        for _ in range(2)
    ]
    fingerprints = [
        (r.total_time, r.n_retries, r.n_interrupted, r.n_events) for r in runs
    ]
    ok = fingerprints[0] == fingerprints[1]
    r = runs[0]
    print(
        f"[{'ok' if ok else 'FAIL'}] live mid-flight fault: "
        f"total={r.total_time:.3e}s retries={r.n_retries} "
        f"interrupted={r.n_interrupted} events={r.n_events} "
        f"(two runs {'identical' if ok else 'DIVERGED'})"
    )
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """Run the smoke checks; returns the process exit status (0 = clean)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="fault-injection smoke check (degraded plans verify "
        "clean; live fault runs are deterministic)",
    )
    parser.add_argument("--n-nodes", type=int, default=16)
    parser.add_argument("--n-wavelengths", type=int, default=8)
    parser.add_argument("--total-elems", type=int, default=50_000)
    args = parser.parse_args(argv)

    failures = _check_scenarios(
        args.n_nodes, args.n_wavelengths, args.total_elems
    )
    failures += _check_live_determinism(
        args.n_nodes, args.n_wavelengths, args.total_elems
    )
    if failures:
        print(f"fault smoke: {failures} check(s) failed", file=sys.stderr)
        return 1
    print("fault smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
