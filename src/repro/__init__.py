"""WRHT reproduction: wavelength-reused hierarchical-tree All-reduce.

A from-scratch reproduction of *"WRHT: Efficient All-reduce for Distributed
DNN Training in Optical Interconnect Systems"* (Dai, Chen, Huang, Zhang —
ICPP 2023): the WRHT scheme itself, the Ring/H-Ring/BT/RD baselines, the
optical-ring and electrical-fat-tree substrates they are priced on, the DNN
workloads, a data-parallel training loop that runs the real schedules, and
a benchmark harness regenerating every table and figure of the paper's
evaluation.

Quick start::

    from repro import plan_wrht, build_schedule, verify_allreduce
    from repro.optical import OpticalSystemConfig, OpticalRingNetwork

    plan = plan_wrht(n_nodes=1024, n_wavelengths=64)
    print(plan.describe())                     # θ = 3 steps, m = 129

    sched = build_schedule("wrht", 64, 10_000, n_wavelengths=8)
    verify_allreduce(sched)                    # exact-sum postcondition

    net = OpticalRingNetwork(OpticalSystemConfig(n_nodes=64, n_wavelengths=8))
    print(net.execute(sched).total_time)       # seconds on the ring

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.collectives import build_schedule, verify_allreduce
from repro.comm import Communicator
from repro.core import (
    OpticalPhyParams,
    WrhtPlan,
    bt_steps,
    hring_steps,
    plan_wrht,
    rd_steps,
    ring_steps,
    wrht_steps,
)
from repro.dnn import PAPER_WORKLOADS, DataParallelTrainer, DnnWorkload
from repro.electrical import ElectricalNetwork, ElectricalSystemConfig
from repro.optical import OpticalRingNetwork, OpticalSystemConfig
from repro.runner import run_fig4, run_fig5, run_fig6, run_fig7, run_table1

__version__ = "1.0.0"

__all__ = [
    "Communicator",
    "DataParallelTrainer",
    "DnnWorkload",
    "ElectricalNetwork",
    "ElectricalSystemConfig",
    "OpticalPhyParams",
    "OpticalRingNetwork",
    "OpticalSystemConfig",
    "PAPER_WORKLOADS",
    "WrhtPlan",
    "__version__",
    "bt_steps",
    "build_schedule",
    "hring_steps",
    "plan_wrht",
    "rd_steps",
    "ring_steps",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_table1",
    "verify_allreduce",
    "wrht_steps",
]
