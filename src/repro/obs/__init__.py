"""Observability layer: metrics, profiling spans, run manifests, bench gate.

``repro.obs`` is dependency-free (stdlib only) and safe to import from any
layer — the sim engine, the RWA kernel and the backends all accept an
optional :class:`MetricsRegistry` and default to the disabled
:data:`NULL_METRICS`, whose cost is one branch per emission (the
:class:`~repro.sim.trace.Tracer` contract).

Submodules:

- :mod:`repro.obs.metrics` — the registry, snapshots, bucket edges.
- :mod:`repro.obs.manifest` — JSON run manifests (config/fault hashes,
  git SHA, metrics) for reproducibility audits and CI artifacts.
- :mod:`repro.obs.benchgate` — baseline comparison logic behind
  ``scripts/bench_gate.py``.
- :mod:`repro.obs.cli` — ``wrht-repro obs`` / ``python -m repro.obs``:
  run one figure cell with metrics on, render the per-step
  timing/utilization table, optionally write a manifest.
"""

from repro.obs.benchgate import (
    DEFAULT_PERF_FLOOR,
    DEFAULT_SIM_REL_TOL,
    GateReport,
    GateViolation,
    compare_faults,
    compare_rwa,
)
from repro.obs.manifest import (
    SCHEMA,
    build_run_manifest,
    fingerprint,
    git_sha,
    write_run_manifest,
)
from repro.obs.metrics import (
    COUNT_EDGES,
    DURATION_EDGES,
    NULL_METRICS,
    MetricsRegistry,
    MetricsSnapshot,
)

__all__ = [
    "COUNT_EDGES",
    "DEFAULT_PERF_FLOOR",
    "DEFAULT_SIM_REL_TOL",
    "DURATION_EDGES",
    "GateReport",
    "GateViolation",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_METRICS",
    "SCHEMA",
    "build_run_manifest",
    "compare_faults",
    "compare_rwa",
    "fingerprint",
    "git_sha",
    "write_run_manifest",
]
