"""Benchmark-regression gate: compare fresh measurements to baselines.

The committed ``BENCH_rwa.json``/``BENCH_faults.json`` baselines were
write-only artifacts: a perf or correctness regression changed the numbers
the next time someone happened to re-run the benches, and nothing noticed.
This module turns them into an enforced trajectory — ``scripts/bench_gate.py``
re-measures a pinned subset of bench cells and the comparison logic here
decides pass/fail. CI runs the script as its own job.

Two comparison regimes, matched to what each number *is*:

- **Deterministic simulated values** (fault-sweep availability, slowdown,
  degraded seconds, survivor counts, RWA transfer counts) are pure
  functions of the inputs — identical on every machine. They are compared
  with a tight relative tolerance (:data:`DEFAULT_SIM_REL_TOL`); any drift
  means the model's behavior changed.
- **Wall-clock performance floors** (RWA kernel and incremental-repair
  speedups, ``BENCH_repair.json``; planning-service throughput,
  ``BENCH_service.json``) are host-noisy,
  so the gate only enforces a floor: the measured speedup must stay above
  ``baseline_speedup × perf_floor`` (:data:`DEFAULT_PERF_FLOOR`, i.e. a
  4× perf regression fails with the default 0.25). Measurements should be
  best-of-N to tame scheduler noise (the script does best-of-3). The
  service row additionally carries an absolute req/s floor.

A metric present in the current measurement but missing from the baseline
is itself a violation (``missing-baseline``): silently ungated metrics are
how trajectories rot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_SIM_REL_TOL = 1e-6
DEFAULT_PERF_FLOOR = 0.25


@dataclass(frozen=True)
class GateViolation:
    """One failed comparison.

    Attributes:
        metric: Dotted metric label (``"faults.cut-fiber.optical.availability"``).
        kind: ``"rel"`` (deterministic drift), ``"floor"`` (perf floor
            breached), ``"exact"`` (integer mismatch) or
            ``"missing-baseline"``.
        current: Freshly measured value (``None`` for missing metrics).
        baseline: Committed value (``None`` when absent from the baseline).
        allowed: Human-readable bound that was violated.
    """

    metric: str
    kind: str
    current: float | None
    baseline: float | None
    allowed: str

    def render(self) -> str:
        """One-line human-readable form."""
        return (
            f"[{self.kind}] {self.metric}: current={self.current!r} "
            f"baseline={self.baseline!r} (allowed: {self.allowed})"
        )


@dataclass
class GateReport:
    """Outcome of one gate run: every comparison made, every violation."""

    checked: list[str] = field(default_factory=list)
    violations: list[GateViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no comparison failed."""
        return not self.violations

    def merge(self, other: "GateReport") -> "GateReport":
        """Fold ``other``'s comparisons into this report (returns self)."""
        self.checked.extend(other.checked)
        self.violations.extend(other.violations)
        return self

    def to_dict(self) -> dict:
        """JSON-ready diff record (uploaded as a CI artifact on failure)."""
        return {
            "ok": self.ok,
            "n_checked": len(self.checked),
            "checked": list(self.checked),
            "violations": [
                {
                    "metric": v.metric,
                    "kind": v.kind,
                    "current": v.current,
                    "baseline": v.baseline,
                    "allowed": v.allowed,
                }
                for v in self.violations
            ],
        }

    def render(self) -> str:
        """Multi-line summary (violations first)."""
        lines = [v.render() for v in self.violations]
        lines.append(
            f"bench gate: {len(self.checked)} comparison(s), "
            f"{len(self.violations)} violation(s)"
        )
        return "\n".join(lines)


def _check_rel(
    report: GateReport, metric: str, current: float, baseline: object, rel_tol: float
) -> None:
    """Two-sided relative comparison for deterministic values."""
    report.checked.append(metric)
    if baseline is None:
        report.violations.append(
            GateViolation(metric, "missing-baseline", current, None, "baseline present")
        )
        return
    baseline = float(baseline)
    scale = max(abs(current), abs(baseline))
    if scale == 0.0:
        return
    if abs(current - baseline) > rel_tol * scale:
        report.violations.append(
            GateViolation(
                metric, "rel", current, baseline, f"rel delta <= {rel_tol:g}"
            )
        )


def _check_exact(
    report: GateReport, metric: str, current: float, baseline: object
) -> None:
    """Exact comparison for structural integers."""
    report.checked.append(metric)
    if baseline is None:
        report.violations.append(
            GateViolation(metric, "missing-baseline", current, None, "baseline present")
        )
    elif current != baseline:
        report.violations.append(
            GateViolation(metric, "exact", current, baseline, "exact match")
        )


def _check_floor(
    report: GateReport, metric: str, current: float, baseline: object, floor: float
) -> None:
    """Perf floor: ``current >= baseline * floor``."""
    report.checked.append(metric)
    if baseline is None:
        report.violations.append(
            GateViolation(metric, "missing-baseline", current, None, "baseline present")
        )
        return
    baseline = float(baseline)
    bound = baseline * floor
    if current < bound:
        ratio = current / baseline if baseline else float("inf")
        report.violations.append(
            GateViolation(
                metric, "floor", current, baseline,
                f">= {bound:.3g} ({floor:g} x baseline); "
                f"measured {ratio:.3g} x baseline",
            )
        )


def compare_rwa(
    current_rows: list[dict],
    baseline: dict | None,
    *,
    perf_floor: float = DEFAULT_PERF_FLOOR,
) -> GateReport:
    """Gate re-measured RWA micro rows against a ``BENCH_rwa.json`` dict.

    Per (case, n) row: the transfer count must match exactly (a structural
    change to the step shapes is a regression in its own right) and the
    speedup must stay above the perf floor.
    """
    report = GateReport()
    if baseline is None:
        baseline = {}
    base_rows = {
        (row["case"], row["n"]): row for row in baseline.get("micro", [])
    }
    for row in current_rows:
        key = (row["case"], row["n"])
        label = f"rwa.{row['case']}.n{row['n']}"
        base = base_rows.get(key)
        _check_exact(
            report, f"{label}.transfers", row["transfers"],
            None if base is None else base.get("transfers"),
        )
        _check_floor(
            report, f"{label}.speedup", row["speedup"],
            None if base is None else base.get("speedup"), perf_floor,
        )
    return report


def compare_repair(
    current_rows: list[dict],
    baseline: dict | None,
    *,
    perf_floor: float = DEFAULT_PERF_FLOOR,
) -> GateReport:
    """Gate re-measured repair micro rows against a ``BENCH_repair.json`` dict.

    Per (case, n) row: transfer and fallback counts are structural
    (``fallbacks`` must stay 0 — a benchmark instance that falls back to
    the full recolor is no longer measuring the repair path) and the
    repair-vs-full-recolor speedup must stay above the perf floor.
    """
    report = GateReport()
    if baseline is None:
        baseline = {}
    base_rows = {
        (row["case"], row["n"]): row for row in baseline.get("repair", [])
    }
    for row in current_rows:
        key = (row["case"], row["n"])
        label = f"repair.{row['case']}.n{row['n']}"
        base = base_rows.get(key)
        _check_exact(
            report, f"{label}.transfers", row["transfers"],
            None if base is None else base.get("transfers"),
        )
        _check_exact(report, f"{label}.fallbacks", row["fallbacks"], 0)
        _check_floor(
            report, f"{label}.speedup", row["speedup"],
            None if base is None else base.get("speedup"), perf_floor,
        )
    return report


def compare_service(
    current_rows: list[dict],
    baseline: dict | None,
    *,
    perf_floor: float = DEFAULT_PERF_FLOOR,
    min_rps: float = 500.0,
) -> GateReport:
    """Gate re-measured service rows against a ``BENCH_service.json`` dict.

    Per case row: the request/tenant/cell counts are structural (a changed
    workload shape silently re-scopes the number) and throughput is gated
    two ways — relative to the committed baseline via the perf floor, and
    against the absolute ``min_rps`` floor the service is specified to
    sustain on the micro grid regardless of what the baseline drifted to.
    """
    report = GateReport()
    if baseline is None:
        baseline = {}
    base_rows = {row["case"]: row for row in baseline.get("service", [])}
    for row in current_rows:
        label = f"service.{row['case']}"
        base = base_rows.get(row["case"])
        for field_name in ("tenants", "requests", "distinct_cells"):
            _check_exact(
                report, f"{label}.{field_name}", row[field_name],
                None if base is None else base.get(field_name),
            )
        _check_floor(
            report, f"{label}.rps", row["rps"],
            None if base is None else base.get("rps"), perf_floor,
        )
        _check_floor(report, f"{label}.rps_absolute", row["rps"], min_rps, 1.0)
    return report


def compare_collectives(
    current: dict,
    baseline: dict | None,
    *,
    rel_tol: float = DEFAULT_SIM_REL_TOL,
) -> GateReport:
    """Gate re-measured bake-off rows against a ``BENCH_collectives.json`` dict.

    ``current`` carries the two sections the bench emits: ``curves``
    (algorithm x backend x N x payload completion times) and ``faults``
    (algorithm x canonical fault scenario on the optical substrate). Both
    are deterministic simulated quantities: step and survivor counts are
    structural and gated exactly, times and availability with the tight
    relative tolerance. Fault rows must additionally verify clean
    (``n_errors == 0``) — the same contract as :func:`compare_faults`.
    """
    report = GateReport()
    if baseline is None:
        baseline = {}
    base_curves = {
        (row["algorithm"], row["backend"], row["n_nodes"], row["elems"]): row
        for row in baseline.get("curves", [])
    }
    for row in current.get("curves", []):
        key = (row["algorithm"], row["backend"], row["n_nodes"], row["elems"])
        label = (
            f"collectives.{row['algorithm']}.{row['backend']}"
            f".n{row['n_nodes']}.e{row['elems']}"
        )
        base = base_curves.get(key)
        _check_exact(
            report, f"{label}.n_steps", row["n_steps"],
            None if base is None else base.get("n_steps"),
        )
        _check_rel(
            report, f"{label}.total_time_s", row["total_time_s"],
            None if base is None else base.get("total_time_s"), rel_tol,
        )
    base_faults = {
        (row["algorithm"], row["scenario"]): row
        for row in baseline.get("faults", [])
    }
    for row in current.get("faults", []):
        key = (row["algorithm"], row["scenario"])
        label = f"collectives.{row['algorithm']}.{row['scenario']}"
        base = base_faults.get(key)
        _check_exact(report, f"{label}.n_errors", row["n_errors"], 0)
        _check_exact(
            report, f"{label}.n_survivors", row["n_survivors"],
            None if base is None else base.get("n_survivors"),
        )
        for field_name in ("healthy_s", "degraded_s", "availability"):
            _check_rel(
                report, f"{label}.{field_name}", row[field_name],
                None if base is None else base.get(field_name), rel_tol,
            )
    return report


def compare_reconfig(
    current_rows: list[dict],
    baseline: dict | None,
    *,
    rel_tol: float = DEFAULT_SIM_REL_TOL,
) -> GateReport:
    """Gate re-measured reconfiguration rows against ``BENCH_reconfig.json``.

    Per (algorithm, backend, N, payload) row: the serial/overlapped/chosen
    tuning exposures are deterministic simulated quantities gated at the
    tight relative tolerance; the estimator's ``decision`` label and the
    static-verification error count are structural and gated exactly
    (``n_errors`` must be zero — an overlapped plan that fails PLAN008 is
    a correctness bug, not a perf number). ``hold_s`` is ``None``-aware:
    feasibility of the wavelength-partition plan is itself structural, so
    a ``None``/number flip between baseline and current fails exactly.

    One baseline-independent invariant rides along: at least one optical
    row must show overlap strictly beating serial tuning — a gate run in
    which the overlap machinery silently stopped overlapping should fail
    even if someone regenerates the baseline around it.
    """
    report = GateReport()
    if baseline is None:
        baseline = {}
    base_rows = {
        (row["algorithm"], row["backend"], row["n_nodes"], row["elems"]): row
        for row in baseline.get("reconfig", [])
    }
    for row in current_rows:
        key = (row["algorithm"], row["backend"], row["n_nodes"], row["elems"])
        label = (
            f"reconfig.{row['algorithm']}.{row['backend']}"
            f".n{row['n_nodes']}.e{row['elems']}"
        )
        base = base_rows.get(key)
        _check_exact(report, f"{label}.n_errors", row["n_errors"], 0)
        _check_exact(
            report, f"{label}.decision", row["decision"],
            None if base is None else base.get("decision"),
        )
        for field_name in ("no_overlap_s", "overlap_s", "chosen_s"):
            _check_rel(
                report, f"{label}.{field_name}", row[field_name],
                None if base is None else base.get(field_name), rel_tol,
            )
        hold = row["hold_s"]
        base_hold = None if base is None else base.get("hold_s")
        metric = f"{label}.hold_s"
        if base is None:
            report.checked.append(metric)
            report.violations.append(
                GateViolation(
                    metric, "missing-baseline", hold, None, "baseline present"
                )
            )
        elif hold is None or base_hold is None:
            # ``None`` means the wavelength-partition plan was infeasible
            # (or the backend has no hold path at all) — a feasibility
            # flip in either direction is a structural change.
            report.checked.append(metric)
            if hold is not None or base_hold is not None:
                report.violations.append(
                    GateViolation(
                        metric, "exact", hold, base_hold,
                        "hold feasibility (None-ness) must match",
                    )
                )
        else:
            _check_rel(report, metric, hold, base_hold, rel_tol)
    report.checked.append("reconfig.overlap_wins")
    optical = [r for r in current_rows if r["backend"] == "optical"]
    if optical and not any(
        r["overlap_s"] < r["no_overlap_s"] for r in optical
    ):
        report.violations.append(
            GateViolation(
                "reconfig.overlap_wins", "floor", 0, 1,
                "at least one optical cell with overlap_s < no_overlap_s",
            )
        )
    return report


#: Deterministic per-cell fields of a fault-sweep row, gated with the tight
#: relative tolerance (``n_survivors``/``n_errors`` are gated exactly).
_FAULT_REL_FIELDS = ("healthy_s", "degraded_s", "slowdown_pct", "availability")


def compare_faults(
    current_rows: list[dict],
    baseline: dict | None,
    *,
    rel_tol: float = DEFAULT_SIM_REL_TOL,
) -> GateReport:
    """Gate re-measured fault-sweep rows against a ``BENCH_faults.json`` dict.

    Every field here is a deterministic simulated quantity; any drift past
    ``rel_tol`` is a behavior change in the degraded-mode pipeline, not
    noise. ``n_errors`` must additionally be zero — an availability number
    whose plan failed static verification is worthless.
    """
    report = GateReport()
    if baseline is None:
        baseline = {}
    base_rows = {
        (row["scenario"], row["backend"]): row
        for row in baseline.get("scenarios", [])
    }
    for row in current_rows:
        key = (row["scenario"], row["backend"])
        label = f"faults.{row['scenario']}.{row['backend']}"
        base = base_rows.get(key)
        _check_exact(report, f"{label}.n_errors", row["n_errors"], 0)
        _check_exact(
            report, f"{label}.n_survivors", row["n_survivors"],
            None if base is None else base.get("n_survivors"),
        )
        for field_name in _FAULT_REL_FIELDS:
            _check_rel(
                report, f"{label}.{field_name}", row[field_name],
                None if base is None else base.get(field_name), rel_tol,
            )
    return report
