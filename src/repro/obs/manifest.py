"""Run manifests: one JSON record that pins down what a run *was*.

A manifest couples a result's headline numbers with everything needed to
reproduce or audit them later: the configuration fingerprint (a hash of the
frozen config dataclass's repr — stable because the configs normalize their
fields), the fault-set fingerprint, the backend and algorithm, the git
commit the code ran at, the interpreter version, and the full
:class:`~repro.obs.metrics.MetricsSnapshot` when metrics were enabled.

Manifests are written by the ``wrht-repro obs`` CLI (one per figure cell)
and by the CI bench-gate job, where they are uploaded as workflow
artifacts on failure so a red build carries its own diagnosis.

Schema (``wrht-repro/run-manifest/v1``)::

    {
      "schema": "wrht-repro/run-manifest/v1",
      "backend": "optical",            # which executor priced the run
      "algorithm": "wrht",
      "n_steps": 7,
      "total_time": 1.05e-4,           # simulated seconds
      "total_bytes": 5.3e6,            # absent for live runs
      "total_rounds": 7,               # absent when the backend lacks it
      "peak_wavelength": 16,
      "cache": {"hits": ..., "misses": ..., "evictions": ...},
      "config": {"hash": "<sha256/16>", "repr": "OpticalSystemConfig(...)"},
      "faults": {"hash": "<sha256/16>", "n_faults": 0},
      "git_sha": "abc123..." | null,   # null outside a git checkout
      "python": "3.11.9",
      "metrics": {...} | null,         # MetricsSnapshot.to_dict()
      "extra": {...}                   # caller-supplied context
    }
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsSnapshot

SCHEMA = "wrht-repro/run-manifest/v1"


def fingerprint(obj: Any) -> str:
    """A 16-hex-digit SHA-256 fingerprint of ``repr(obj)``.

    The frozen config dataclasses and :class:`~repro.faults.models.FaultSet`
    normalize their fields in ``__post_init__``, so equal values repr (and
    therefore fingerprint) identically regardless of construction order.
    """
    return hashlib.sha256(repr(obj).encode()).hexdigest()[:16]


def git_sha(root: Path | None = None) -> str | None:
    """The current commit's SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def build_run_manifest(
    result: Any,
    *,
    config: Any = None,
    extra: dict | None = None,
    root: Path | None = None,
) -> dict:
    """Build a manifest dict for ``result``.

    Args:
        result: An :class:`~repro.backend.base.ExecutionResult`, an
            :class:`~repro.optical.livesim.LiveRunResult`, or anything
            with the same duck-typed attributes — only the fields a result
            actually has appear in the manifest.
        config: The system config the run used (fingerprinted; its
            ``faults`` attribute, when present, is fingerprinted
            separately).
        extra: Caller context merged under ``"extra"`` (figure name, cell
            coordinates, CLI arguments, ...).
        root: Directory whose git checkout identifies the code version
            (default: the current working directory).
    """
    manifest: dict = {
        "schema": SCHEMA,
        "backend": getattr(result, "backend", None),
        "algorithm": getattr(result, "algorithm", None),
        "n_steps": getattr(result, "n_steps", None),
        "total_time": getattr(result, "total_time", None),
        "git_sha": git_sha(root),
        "python": platform.python_version(),
        "extra": dict(extra or {}),
    }
    for attr in ("total_bytes", "total_rounds", "peak_wavelength",
                 "n_rounds", "n_circuits", "n_events", "n_faults",
                 "n_retries", "n_interrupted", "downtime"):
        value = getattr(result, attr, None)
        if value is not None:
            manifest[attr] = value
    cache = getattr(result, "cache", None)
    if cache is not None:
        manifest["cache"] = cache.as_dict()
    if config is not None:
        manifest["config"] = {"hash": fingerprint(config), "repr": repr(config)}
        faults = getattr(config, "faults", None)
        if faults is not None:
            manifest["faults"] = {
                "hash": fingerprint(faults),
                "n_faults": len(faults),
            }
    snapshot = getattr(result, "metrics", None)
    if isinstance(snapshot, MetricsSnapshot):
        manifest["metrics"] = snapshot.to_dict()
    else:
        manifest["metrics"] = None
    return manifest


def write_run_manifest(manifest: dict, path: str | Path) -> Path:
    """Write ``manifest`` as indented JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path
