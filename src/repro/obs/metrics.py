"""Dependency-free metrics: counters, gauges, histograms, profiling spans.

The registry is the observability companion to :class:`repro.sim.trace.
Tracer`: substrates and backends accept an optional
:class:`MetricsRegistry` and record into it as they lower, execute and
simulate. The same contract applies — recording is off by default
(:data:`NULL_METRICS`) and a disabled registry costs exactly one branch per
emission, so the hot paths are unchanged when nobody is looking.

Determinism is a first-class property. Metrics split into two groups:

- **Deterministic** — counters, gauges and histograms record *simulated*
  quantities (simulated seconds, rounds, wavelengths, cache tallies).
  Histogram bucket edges are fixed at registration, so two identical
  seeded runs produce byte-identical serialized output
  (``snapshot.to_json(wall_clock=False)`` — asserted in the test suite).
- **Wall clock** — :meth:`MetricsRegistry.span` profiles host time
  (``time.perf_counter``) around named stages (lowering, RWA, execution).
  Span call *counts* are deterministic; their accumulated seconds are
  host noise by nature and are therefore segregated so the deterministic
  serialization can exclude them.

A :class:`MetricsSnapshot` is the frozen, JSON-serializable view of a
registry; :class:`~repro.backend.base.ExecutionResult` and
:class:`~repro.optical.livesim.LiveRunResult` carry one when metrics were
enabled for the run, and run manifests (:mod:`repro.obs.manifest`) embed it
next to the config/fault fingerprints.
"""

from __future__ import annotations

import json
import math
import time
from bisect import bisect_left
from dataclasses import dataclass, field

#: Default histogram bucket edges for duration-like values (seconds):
#: one decade per bucket from 1 ns to 1000 s. Fixed so output is
#: deterministic and snapshots from different runs are comparable.
DURATION_EDGES: tuple[float, ...] = tuple(10.0**e for e in range(-9, 4))

#: Default bucket edges for small-count values (rounds, wavelengths,
#: retries): powers of two from 1 to 4096.
COUNT_EDGES: tuple[float, ...] = tuple(float(2**e) for e in range(0, 13))


class _Histogram:
    """Fixed-bucket histogram; ``counts[i]`` tallies ``value <= edges[i]``
    (last slot is the overflow bucket)."""

    __slots__ = ("edges", "counts", "n", "total", "min", "max")

    def __init__(self, edges: tuple[float, ...]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"edges must be non-empty and ascending, got {edges!r}")
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(edges) + 1)
        self.n = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.n += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "n": self.n,
            "total": self.total,
            "min": None if self.n == 0 else self.min,
            "max": None if self.n == 0 else self.max,
        }


class _Span:
    """Context manager recording one wall-clock interval into a registry."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry._record_span(self._name, time.perf_counter() - self._t0)


class _NullSpan:
    """Shared no-op span returned by disabled registries (reentrant)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


@dataclass
class MetricsSnapshot:
    """Frozen, serializable view of a registry at one point in time.

    Attributes:
        counters: Monotonic tallies (``name -> int``).
        gauges: Last-written values (``name -> float``).
        histograms: Fixed-bucket distributions (``name -> as_dict`` form).
        spans: Wall-clock profile (``name -> {"count", "total_s"}``).
            Counts are deterministic; ``total_s`` is host time.
    """

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    spans: dict = field(default_factory=dict)

    def to_dict(self, *, wall_clock: bool = True) -> dict:
        """Plain-dict view, keys sorted.

        Args:
            wall_clock: When ``False``, span entries keep their
                (deterministic) call counts but drop the host-time
                ``total_s`` field — the form the byte-identical
                determinism guarantee covers.
        """
        spans = {
            name: (dict(stat) if wall_clock else {"count": stat["count"]})
            for name, stat in sorted(self.spans.items())
        }
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {k: dict(v) for k, v in sorted(self.histograms.items())},
            "spans": spans,
        }

    def to_json(self, *, wall_clock: bool = True, indent: int | None = None) -> str:
        """Canonical JSON (sorted keys, fixed separators).

        With ``wall_clock=False`` the output is byte-identical across
        identical seeded runs.
        """
        separators = (",", ": ") if indent is not None else (",", ":")
        return json.dumps(
            self.to_dict(wall_clock=wall_clock),
            sort_keys=True,
            indent=indent,
            separators=separators,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        """Rebuild from :meth:`to_dict` output (JSON round-trip safe)."""
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={k: dict(v) for k, v in data.get("histograms", {}).items()},
            spans={k: dict(v) for k, v in data.get("spans", {}).items()},
        )


class MetricsRegistry:
    """Collects counters, gauges, histograms and profiling spans.

    Disabled registries (``enabled=False``) return immediately from every
    recording method after a single branch — the exact cost contract of
    :class:`~repro.sim.trace.Tracer`. The shared disabled instance is
    :data:`NULL_METRICS`; substrates default to it.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms", "_spans")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}
        self._spans: dict[str, dict] = {}

    # -- recording ------------------------------------------------------
    def inc(self, name: str, by: int = 1) -> None:
        """Add ``by`` to counter ``name`` (created at 0)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + by

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(
        self, name: str, value: float, edges: tuple[float, ...] = DURATION_EDGES
    ) -> None:
        """Record ``value`` into histogram ``name``.

        ``edges`` fixes the bucket boundaries on the histogram's first
        observation; later calls reuse the registered edges (passing
        different ones is not an error — the first registration wins, so
        bucket layout can never drift mid-run).
        """
        if not self.enabled:
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = _Histogram(edges)
        hist.observe(value)

    def span(self, name: str):
        """Context manager timing a wall-clock interval under ``name``.

        Disabled registries return a shared no-op manager.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def _record_span(self, name: str, seconds: float) -> None:
        stat = self._spans.get(name)
        if stat is None:
            stat = self._spans[name] = {"count": 0, "total_s": 0.0}
        stat["count"] += 1
        stat["total_s"] += seconds

    # -- views ----------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """A :class:`MetricsSnapshot` copy of the current state."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={k: h.as_dict() for k, h in self._histograms.items()},
            spans={k: dict(v) for k, v in self._spans.items()},
        )

    def clear(self) -> None:
        """Drop all recorded values (registration state included)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()


NULL_METRICS = MetricsRegistry(enabled=False)
"""A shared disabled registry used as the default everywhere."""
