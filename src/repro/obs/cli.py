"""``wrht-repro obs`` / ``python -m repro.obs``: observe one figure cell.

Runs a single experiment cell (one figure, one x value, one workload, one
algorithm) with a metrics-enabled backend, prints the per-step
timing/utilization table derived from the execution timeline, prints the
metrics summary (counters, gauges, histograms, profiling spans), and can
write the run manifest (:mod:`repro.obs.manifest`) to a file.

Unlike the figure runners, this command always builds a **fresh** backend so
the metrics cover exactly one run, and it keeps the full timeline instead of
only ``total_time``. The numbers match the figure runners bit for bit —
both paths call the same ``Backend.run`` on the same schedule.

Examples::

    python -m repro.obs fig6 --x 1024 --algo WRHT
    python -m repro.obs fig5 --x 16 --algo H-Ring --workload VGG16
    python -m repro.obs fig7 --x 256 --algo E-Ring --manifest cell.json
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.manifest import build_run_manifest, write_run_manifest
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.util.tables import AsciiTable

#: Default x value per figure (the first paper point, cheap to run).
_FIGURE_DEFAULT_X = {"fig4": 17, "fig5": 64, "fig6": 1024, "fig7": 128}

_FIGURE_X_LABEL = {
    "fig4": "group size m",
    "fig5": "wavelengths w",
    "fig6": "nodes N",
    "fig7": "nodes N",
}

_FIGURE_ALGOS = {
    "fig4": ("WRHT",),
    "fig5": ("Ring", "H-Ring", "BT", "WRHT"),
    "fig6": ("Ring", "H-Ring", "BT", "WRHT"),
    "fig7": ("E-Ring", "RD", "O-Ring", "WRHT"),
}


def _fresh_backend(name: str, n: int, w: int, interpretation: str,
                   metrics: MetricsRegistry):
    """A new backend instance with ``metrics`` bound, plus its config.

    Mirrors :func:`repro.runner.experiments.get_backend` but never reuses
    the cached instances — a shared backend would accumulate metrics from
    unrelated runs.
    """
    from repro.backend.analytic import AnalyticBackend
    from repro.backend.electrical import ElectricalBackend
    from repro.backend.optical import OpticalBackend
    from repro.electrical.config import ElectricalSystemConfig
    from repro.optical.config import OpticalSystemConfig

    if name == "optical":
        config = OpticalSystemConfig(
            n_nodes=n, n_wavelengths=w, interpretation=interpretation
        )
        return OpticalBackend(config, metrics=metrics), config
    if name == "electrical":
        config = ElectricalSystemConfig(n_nodes=n, interpretation=interpretation)
        return ElectricalBackend(config, metrics=metrics), config
    if name == "analytic":
        config = OpticalSystemConfig(
            n_nodes=n, n_wavelengths=w, interpretation=interpretation
        )
        return AnalyticBackend(config.cost_model(), w=w, metrics=metrics), config
    raise ValueError(
        f"obs cannot construct backend {name!r}; "
        "supported: optical, electrical, analytic"
    )


def _resolve_cell(args) -> tuple[str, int, int, int | None]:
    """(base algorithm, n, w, wrht_m) for the requested figure cell."""
    from repro.core.wavelengths import optimal_group_size
    from repro.runner.experiments import _FIG7_BASE, DEFAULT_WAVELENGTHS

    x = args.x if args.x is not None else _FIGURE_DEFAULT_X[args.figure]
    n, w = args.nodes, args.wavelengths
    if args.figure == "fig4":
        algo, wrht_m = "WRHT", x
        w = w if w is not None else DEFAULT_WAVELENGTHS
    elif args.figure == "fig5":
        algo, w = args.algo, x
        wrht_m = min(optimal_group_size(w), n if n is not None else 1024)
    else:
        algo, n = args.algo, x
        w = w if w is not None else DEFAULT_WAVELENGTHS
        wrht_m = min(optimal_group_size(w), n)
        if args.figure == "fig7":
            algo = _FIG7_BASE[args.algo]
    return algo, (n if n is not None else 1024), w, wrht_m


def _backend_name(args) -> str:
    """The effective backend, honoring fig7's electrical/optical split."""
    from repro.runner.experiments import _resolve_backend

    simulated = "optical"
    if args.figure == "fig7" and args.algo in ("E-Ring", "RD"):
        simulated = "electrical"
    return _resolve_backend(args.mode, args.backend, simulated=simulated)


def _render_timeline(result) -> str:
    """The per-step timing/utilization table for one execution."""
    table = AsciiTable(
        ["stage", "steps", "s/step", "rounds", "transfers",
         "peak-w", "bytes/step", "time %"]
    )
    for record in result.timeline:
        share = (
            100.0 * record.duration * record.count / result.total_time
            if result.total_time > 0
            else 0.0
        )
        table.add_row([
            record.stage, record.count, record.duration, record.rounds,
            record.n_transfers, record.peak_wavelength,
            record.bytes_per_step, f"{share:.1f}",
        ])
    return table.render()


def _render_metrics(snapshot) -> str:
    """Human-readable counters/gauges/histograms/spans summary."""
    lines = []
    data = snapshot.to_dict()
    if data["counters"]:
        lines.append("counters:")
        for name, value in data["counters"].items():
            lines.append(f"  {name} = {value}")
    if data["gauges"]:
        lines.append("gauges:")
        for name, value in data["gauges"].items():
            lines.append(f"  {name} = {value:.6g}")
    if data["histograms"]:
        lines.append("histograms:")
        for name, hist in data["histograms"].items():
            mean = hist["total"] / hist["n"] if hist["n"] else 0.0
            lines.append(
                f"  {name}: n={hist['n']} mean={mean:.4g} "
                f"min={hist['min']:.4g} max={hist['max']:.4g}"
            )
    if data["spans"]:
        lines.append("spans (wall clock):")
        for name, stat in data["spans"].items():
            lines.append(
                f"  {name}: count={stat['count']} total={stat['total_s']:.4f}s"
            )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Construct the obs CLI parser (exposed for the docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="wrht-repro obs",
        description="run one figure cell with metrics enabled: per-step "
        "timing/utilization table, metrics summary, optional run manifest",
    )
    parser.add_argument(
        "figure", choices=("fig4", "fig5", "fig6", "fig7"),
        help="which figure's cell shape to run",
    )
    parser.add_argument(
        "--x", type=int, default=None,
        help="the figure's x value (fig4: m, fig5: w, fig6/fig7: N); "
        "default: the first paper point",
    )
    parser.add_argument(
        "--algo", default="WRHT",
        help="algorithm display name (figure-dependent; default WRHT)",
    )
    parser.add_argument("--workload", default="ResNet50")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override N for fig4/fig5 (default 1024)")
    parser.add_argument("--wavelengths", type=int, default=None,
                        help="override w where it is not the x axis")
    parser.add_argument(
        "--mode", choices=("analytical", "simulated"), default="simulated",
        help="closed-form models or full substrate simulation",
    )
    parser.add_argument(
        "--interpretation", choices=("calibrated", "strict"),
        default="calibrated",
    )
    parser.add_argument(
        "--backend", default=None,
        help="force one pricing backend (optical/electrical/analytic)",
    )
    parser.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="write the JSON run manifest to PATH",
    )
    parser.add_argument(
        "--no-metrics", action="store_true",
        help="run with the disabled registry (timing table only)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    from repro.dnn.workload import workload_by_name
    from repro.runner.experiments import HRING_M, _build_cell_schedule

    args = build_parser().parse_args(argv)
    if args.algo not in _FIGURE_ALGOS[args.figure]:
        print(
            f"error: {args.figure} has no algorithm {args.algo!r} "
            f"(choose from {', '.join(_FIGURE_ALGOS[args.figure])})",
            file=sys.stderr,
        )
        return 2
    workload = workload_by_name(args.workload)
    algo, n, w, wrht_m = _resolve_cell(args)
    metrics = NULL_METRICS if args.no_metrics else MetricsRegistry()
    backend, config = _fresh_backend(
        _backend_name(args), n, w, args.interpretation, metrics
    )
    schedule = _build_cell_schedule(
        algo, n, w, workload, wrht_m=wrht_m, hring_m=HRING_M
    )
    result = backend.run(schedule, bytes_per_elem=workload.bytes_per_param)

    x = args.x if args.x is not None else _FIGURE_DEFAULT_X[args.figure]
    print(
        f"{args.figure} cell: {args.algo} on {workload.name}, "
        f"{_FIGURE_X_LABEL[args.figure]}={x} "
        f"(N={n}, w={w}, backend={result.backend}, mode={args.mode})"
    )
    print(
        f"total: {result.total_time:.6e} s over {result.n_steps} step(s), "
        f"{result.total_bytes:.4g} bytes"
    )
    print()
    print(_render_timeline(result))
    if result.metrics is not None:
        print()
        print(_render_metrics(result.metrics))
    if args.manifest:
        manifest = build_run_manifest(
            result,
            config=config,
            extra={
                "figure": args.figure,
                "algo": args.algo,
                "x": x,
                "workload": workload.name,
                "mode": args.mode,
            },
        )
        path = write_run_manifest(manifest, args.manifest)
        print(f"\nwrote run manifest to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
