"""Schedule builders for the non-All-reduce collectives.

All-reduce composes from these (reduce+broadcast, or reduce-scatter+
all-gather); here they are exposed individually:

- **reduce(root)** — binomial tree onto an arbitrary root (virtual-rank
  relabeling of the BT reduce stage), ``⌈log₂N⌉`` steps.
- **broadcast(root)** — the mirror image, ``⌈log₂N⌉`` steps.
- **reduce-scatter** — the ring reduce-scatter phase, normalized so rank
  ``i`` ends owning the fully reduced chunk ``i``; ``N−1`` steps.
- **all-gather** — the ring all-gather phase from that ownership;
  ``N−1`` steps.

Postconditions are verified by dedicated checkers in the test suite (each
primitive has a different correctness contract than All-reduce).
"""

from __future__ import annotations

import math

from repro.collectives.base import (
    CommStep,
    Schedule,
    Transfer,
    compress_steps,
    singleton_schedule,
)
from repro.collectives.ring import chunk_bounds
from repro.util.validation import check_positive_int


def _check_root(root: int, n_nodes: int) -> None:
    if not (0 <= root < n_nodes):
        raise ValueError(f"root {root} out of range [0, {n_nodes})")


def build_reduce_schedule(
    n_nodes: int, total_elems: int, root: int = 0
) -> Schedule:
    """Binomial-tree reduce onto ``root`` (full vector, ``sum``)."""
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    _check_root(root, n_nodes)
    if n_nodes == 1:
        return singleton_schedule("reduce", total_elems)
    n_levels = math.ceil(math.log2(n_nodes))
    steps = []
    for k in range(1, n_levels + 1):
        half = 1 << (k - 1)
        transfers = tuple(
            Transfer(
                src=(v + root) % n_nodes,
                dst=(v - half + root) % n_nodes,
                lo=0, hi=total_elems, op="sum",
            )
            for v in range(half, n_nodes, 1 << k)
        )
        steps.append(CommStep(transfers, stage="reduce", level=k))
    return Schedule(
        algorithm="reduce", n_nodes=n_nodes, total_elems=total_elems,
        steps=steps, timing_profile=compress_steps(steps),
        meta={"profile_exact": True, "root": root},
    )


def build_broadcast_schedule(
    n_nodes: int, total_elems: int, root: int = 0
) -> Schedule:
    """Binomial-tree broadcast from ``root`` (full vector, ``copy``)."""
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    _check_root(root, n_nodes)
    if n_nodes == 1:
        return singleton_schedule("broadcast", total_elems)
    n_levels = math.ceil(math.log2(n_nodes))
    steps = []
    for k in range(n_levels, 0, -1):
        half = 1 << (k - 1)
        transfers = tuple(
            Transfer(
                src=(v - half + root) % n_nodes,
                dst=(v + root) % n_nodes,
                lo=0, hi=total_elems, op="copy",
            )
            for v in range(half, n_nodes, 1 << k)
        )
        steps.append(CommStep(transfers, stage="broadcast", level=k))
    return Schedule(
        algorithm="broadcast", n_nodes=n_nodes, total_elems=total_elems,
        steps=steps, timing_profile=compress_steps(steps),
        meta={"profile_exact": True, "root": root},
    )


def build_reduce_scatter_schedule(n_nodes: int, total_elems: int) -> Schedule:
    """Ring reduce-scatter: rank ``i`` ends owning reduced chunk ``i``.

    The chunk a rank sends at step ``s`` is shifted one position relative
    to the All-reduce builder's phase so the final ownership lands on the
    rank's own index (the MPI ``reduce_scatter_block`` contract).
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    if n_nodes == 1:
        return singleton_schedule("reduce_scatter", total_elems)
    bounds = chunk_bounds(total_elems, n_nodes)
    steps = []
    for s in range(n_nodes - 1):
        transfers = []
        for i in range(n_nodes):
            lo, hi = bounds[(i - s - 1) % n_nodes]
            transfers.append(Transfer(i, (i + 1) % n_nodes, lo, hi, "sum"))
        steps.append(CommStep(tuple(transfers), stage="reduce"))
    return Schedule(
        algorithm="reduce_scatter", n_nodes=n_nodes, total_elems=total_elems,
        steps=steps, timing_profile=compress_steps(steps),
        meta={"profile_exact": total_elems % n_nodes == 0},
    )


def build_allgather_schedule(n_nodes: int, total_elems: int) -> Schedule:
    """Ring all-gather from per-rank chunk ownership (rank ``i`` owns chunk
    ``i`` initially; everyone owns everything afterwards)."""
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    if n_nodes == 1:
        return singleton_schedule("allgather", total_elems)
    bounds = chunk_bounds(total_elems, n_nodes)
    steps = []
    for s in range(n_nodes - 1):
        transfers = []
        for i in range(n_nodes):
            lo, hi = bounds[(i - s) % n_nodes]
            transfers.append(Transfer(i, (i + 1) % n_nodes, lo, hi, "copy"))
        steps.append(CommStep(tuple(transfers), stage="broadcast"))
    return Schedule(
        algorithm="allgather", n_nodes=n_nodes, total_elems=total_elems,
        steps=steps, timing_profile=compress_steps(steps),
        meta={"profile_exact": total_elems % n_nodes == 0},
    )
