"""The communicator: numerical collectives with attached cost accounting.

One :class:`Communicator` owns ``n_ranks`` and (optionally) a substrate
executor. Each collective call:

1. builds (and caches) the schedule for the current vector length,
2. executes it numerically on the caller's data (exact, conflict-checked),
3. prices it on the attached substrate (optical ring by default),

returning ``(result, CommStats)``. Data layouts follow mpi4py conventions
adapted to the single-process setting: per-rank data is a 2-D array with
one row per rank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collectives.base import Schedule
from repro.collectives.registry import build_schedule
from repro.collectives.ring import chunk_bounds
from repro.collectives.verify import run_schedule
from repro.comm.primitives import (
    build_allgather_schedule,
    build_broadcast_schedule,
    build_reduce_schedule,
    build_reduce_scatter_schedule,
)
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class CommStats:
    """What one collective call did and what it would cost.

    Attributes:
        operation: Collective name.
        n_steps: Communication steps of the executed schedule.
        est_time: Seconds on the attached substrate (``None`` if detached).
        payload_bytes: Total bytes the schedule moves.
    """

    operation: str
    n_steps: int
    est_time: float | None
    payload_bytes: float


class Communicator:
    """A fixed-size group of ranks with simulated collectives."""

    def __init__(
        self,
        n_ranks: int,
        algorithm: str = "wrht",
        network=None,
        bytes_per_elem: float = 8.0,
        **schedule_kwargs,
    ) -> None:
        """Create a communicator.

        Args:
            n_ranks: Group size.
            algorithm: All-reduce algorithm (``ring``/``bt``/``rd``/
                ``hring``/``wrht``).
            network: Optional substrate executor with an
                ``execute(schedule, bytes_per_elem)`` method (an
                :class:`~repro.optical.network.OpticalRingNetwork` or
                :class:`~repro.electrical.network.ElectricalNetwork`).
            bytes_per_elem: Element width for pricing (float64 default,
                matching the numerical arrays).
            **schedule_kwargs: Forwarded to the All-reduce builder
                (``n_wavelengths``, ``m``, ...).
        """
        check_positive_int("n_ranks", n_ranks)
        self.n_ranks = n_ranks
        self.algorithm = algorithm
        self.network = network
        self.bytes_per_elem = bytes_per_elem
        self._schedule_kwargs = schedule_kwargs
        self._cache: dict[tuple, Schedule] = {}

    # -- plumbing --------------------------------------------------------
    def _as_matrix(self, data) -> np.ndarray:
        arr = np.array(data, dtype=np.float64, copy=True)
        if arr.ndim == 1:
            raise ValueError(
                "per-rank data must be 2-D (n_ranks, d); got a 1-D array — "
                "did you mean broadcast()?"
            )
        if arr.shape[0] != self.n_ranks:
            raise ValueError(
                f"data has {arr.shape[0]} rows but communicator has "
                f"{self.n_ranks} ranks"
            )
        return arr

    def _get_schedule(self, kind: str, elems: int, **extra) -> Schedule:
        key = (kind, elems, tuple(sorted(extra.items())))
        schedule = self._cache.get(key)
        if schedule is None:
            if kind == "allreduce":
                schedule = build_schedule(
                    self.algorithm, self.n_ranks, elems,
                    materialize=True, **self._schedule_kwargs,
                )
            elif kind == "reduce":
                schedule = build_reduce_schedule(self.n_ranks, elems, **extra)
            elif kind == "broadcast":
                schedule = build_broadcast_schedule(self.n_ranks, elems, **extra)
            elif kind == "reduce_scatter":
                schedule = build_reduce_scatter_schedule(self.n_ranks, elems)
            elif kind == "allgather":
                schedule = build_allgather_schedule(self.n_ranks, elems)
            else:  # pragma: no cover
                raise ValueError(kind)
            self._cache[key] = schedule
        return schedule

    def _stats(self, operation: str, schedule: Schedule) -> CommStats:
        est = None
        if self.network is not None and schedule.n_steps:
            est = self.network.execute(
                schedule, bytes_per_elem=self.bytes_per_elem
            ).total_time
        payload = sum(
            step.total_elems() * self.bytes_per_elem * count
            for step, count in schedule.timing_profile
        )
        return CommStats(
            operation=operation, n_steps=schedule.n_steps,
            est_time=est, payload_bytes=payload,
        )

    # -- collectives -----------------------------------------------------
    def allreduce(self, data, op: str = "sum") -> tuple[np.ndarray, CommStats]:
        """All-reduce: every rank receives the elementwise sum (or mean).

        Args:
            data: ``(n_ranks, d)`` per-rank contributions.
            op: ``"sum"`` or ``"mean"``.
        """
        if op not in ("sum", "mean"):
            raise ValueError(f"op must be 'sum' or 'mean', got {op!r}")
        buffers = self._as_matrix(data)
        schedule = self._get_schedule("allreduce", buffers.shape[1])
        run_schedule(schedule, buffers)
        if op == "mean":
            buffers /= self.n_ranks
        return buffers, self._stats("allreduce", schedule)

    def reduce(self, data, root: int = 0) -> tuple[np.ndarray, CommStats]:
        """Reduce: ``root`` receives the elementwise sum (returned as the
        root's row; other rows hold partial sums, as in MPI)."""
        buffers = self._as_matrix(data)
        schedule = self._get_schedule("reduce", buffers.shape[1], root=root)
        run_schedule(schedule, buffers)
        return buffers[root], self._stats("reduce", schedule)

    def broadcast(self, row, root: int = 0) -> tuple[np.ndarray, CommStats]:
        """Broadcast: every rank receives ``root``'s vector.

        Args:
            row: 1-D vector held by the root.
            root: Sending rank.
        """
        vec = np.asarray(row, dtype=np.float64)
        if vec.ndim != 1:
            raise ValueError(f"broadcast takes a 1-D vector, got shape {vec.shape}")
        buffers = np.zeros((self.n_ranks, vec.size))
        buffers[root] = vec
        schedule = self._get_schedule("broadcast", vec.size, root=root)
        run_schedule(schedule, buffers)
        return buffers, self._stats("broadcast", schedule)

    def reduce_scatter(self, data) -> tuple[list[np.ndarray], CommStats]:
        """Reduce-scatter: rank ``i`` receives the reduced chunk ``i``.

        Returns:
            A list of per-rank owned chunks (balanced split of the vector).
        """
        buffers = self._as_matrix(data)
        elems = buffers.shape[1]
        schedule = self._get_schedule("reduce_scatter", elems)
        run_schedule(schedule, buffers)
        bounds = chunk_bounds(elems, self.n_ranks)
        chunks = [buffers[i, lo:hi].copy() for i, (lo, hi) in enumerate(bounds)]
        return chunks, self._stats("reduce_scatter", schedule)

    def allgather(self, chunks) -> tuple[np.ndarray, CommStats]:
        """All-gather: every rank receives the concatenation of all chunks.

        Args:
            chunks: One owned chunk per rank (balanced sizes, as produced by
                :meth:`reduce_scatter`).
        """
        if len(chunks) != self.n_ranks:
            raise ValueError(
                f"need {self.n_ranks} chunks, got {len(chunks)}"
            )
        elems = sum(len(c) for c in chunks)
        bounds = chunk_bounds(elems, self.n_ranks)
        for i, ((lo, hi), chunk) in enumerate(zip(bounds, chunks)):
            if hi - lo != len(chunk):
                raise ValueError(
                    f"chunk {i} has {len(chunk)} elements, expected {hi - lo} "
                    "(balanced split)"
                )
        buffers = np.zeros((self.n_ranks, elems))
        for i, (lo, hi) in enumerate(bounds):
            buffers[i, lo:hi] = chunks[i]
        schedule = self._get_schedule("allgather", elems)
        run_schedule(schedule, buffers)
        return buffers, self._stats("allgather", schedule)
