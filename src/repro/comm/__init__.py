"""MPI-style collective communication facade.

The schedules, verifier and substrates generalize beyond All-reduce; this
package packages them behind a familiar communicator API (naming follows
mpi4py's lowercase-object conventions):

    from repro.comm import Communicator

    comm = Communicator(16, algorithm="wrht", n_wavelengths=8)
    result, stats = comm.allreduce(per_rank_data)     # (16, d) array
    chunks, stats = comm.reduce_scatter(per_rank_data)
    full, stats = comm.allgather(chunks)
    total, stats = comm.reduce(per_rank_data, root=3)
    copies, stats = comm.broadcast(row, root=3)

Every call executes a real communication schedule numerically (exact
arithmetic, conflict-checked) and, when the communicator is attached to a
substrate, reports what the operation would cost on the optical ring or
electrical fat-tree.
"""

from repro.comm.communicator import CommStats, Communicator
from repro.comm.primitives import (
    build_allgather_schedule,
    build_broadcast_schedule,
    build_reduce_schedule,
    build_reduce_scatter_schedule,
)

__all__ = [
    "CommStats",
    "Communicator",
    "build_allgather_schedule",
    "build_broadcast_schedule",
    "build_reduce_scatter_schedule",
    "build_reduce_schedule",
]
