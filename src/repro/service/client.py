"""The thin client API in front of the planning layers.

:class:`PlanClient` preserves today's two-stage backend contract for
callers — build a request, get back a full
:class:`~repro.backend.base.ExecutionResult` — while hiding *where* the
lowering happened:

- **In-process mode** (``socket_path=None``): requests evaluate on a local
  :class:`~repro.service.api.PlanEngine`, going through exactly the same
  backend construction as :mod:`repro.runner.experiments`. Nothing changes
  versus calling ``Backend.run`` directly; results are bit-identical.
- **Daemon mode** (``socket_path=...``): requests are framed onto the unix
  socket (:mod:`repro.service.protocol`) and a daemon answers. Results
  travel as ``ExecutionResult.to_dict()`` JSON — a representation whose
  floats round-trip exactly — so this mode is bit-identical too, which the
  service smoke test asserts per golden cell.

The transport is deliberately synchronous: one lock serializes
request/response pairs per client, and anything needing concurrency opens
more clients (they are cheap — one ``connect()``). Error responses raise
the matching :mod:`repro.service.errors` class, so ``except
ServiceQuotaError`` works identically against both modes.
"""

from __future__ import annotations

import socket
import threading
from pathlib import Path
from typing import Any

from repro.backend.base import ExecutionResult
from repro.service.api import PlanEngine, PlanRequest
from repro.service.errors import (
    ServiceError,
    ServiceProtocolError,
    ServiceRemoteError,
)
from repro.service.protocol import PROTOCOL, recv_frame, send_frame


class PlanResponse:
    """One answered plan request.

    Attributes:
        result: The full execution result (parsed back from the wire in
            daemon mode; the engine's own object in-process).
        coalesced: Whether the daemon shared this lowering with an
            identical in-flight request (always ``False`` in-process).
        remote: Whether a daemon served the request.
    """

    __slots__ = ("result", "coalesced", "remote")

    def __init__(
        self, result: ExecutionResult, *, coalesced: bool = False, remote: bool = False
    ) -> None:
        self.result = result
        self.coalesced = coalesced
        self.remote = remote

    def __repr__(self) -> str:
        return (
            f"PlanResponse(algorithm={self.result.algorithm!r}, "
            f"total_time={self.result.total_time!r}, "
            f"coalesced={self.coalesced}, remote={self.remote})"
        )


class PlanClient:
    """Client for the planning service, in-process or over a unix socket.

    Args:
        socket_path: Daemon socket to connect to; ``None`` keeps every
            evaluation in-process (the default, and the compatibility
            mode — no daemon required).
        engine: Engine for in-process mode (default: a fresh
            :class:`PlanEngine` on the process-wide plan cache). Ignored
            in daemon mode.
        timeout: Socket timeout in seconds for daemon mode (``None``:
            block indefinitely — lowerings can be slow when cold).

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        socket_path: str | Path | None = None,
        *,
        engine: PlanEngine | None = None,
        timeout: float | None = None,
    ) -> None:
        self.socket_path = None if socket_path is None else Path(socket_path)
        self._lock = threading.Lock()
        self._next_id = 0
        self._sock: socket.socket | None = None
        self._engine: PlanEngine | None = None
        if self.socket_path is None:
            self._engine = PlanEngine() if engine is None else engine
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            try:
                sock.connect(str(self.socket_path))
            except OSError:
                sock.close()
                raise
            self._sock = sock

    @property
    def remote(self) -> bool:
        """Whether this client talks to a daemon (vs evaluating locally)."""
        return self.socket_path is not None

    # -- the data plane -------------------------------------------------
    def submit(self, request: PlanRequest) -> PlanResponse:
        """Evaluate one request wherever this client is pointed.

        Raises:
            ServiceError: The matching typed error, whichever side failed.
            BackendError: In-process lowering/execution failure (daemon
                mode surfaces these as ``kind="backend"`` remote errors).
        """
        if self._engine is not None:
            result = self._engine.evaluate(request)
            self._engine.flush()
            return PlanResponse(result)
        response = self._call({"op": "plan", "request": request.to_dict()})
        if not response.get("ok"):
            raise ServiceRemoteError.from_response(response)
        return PlanResponse(
            ExecutionResult.from_dict(response["result"]),
            coalesced=bool(response.get("coalesced", False)),
            remote=True,
        )

    def run(self, algorithm: str, n_nodes: int, n_params: int, **kwargs: Any) -> PlanResponse:
        """Convenience: build a :class:`PlanRequest` and :meth:`submit` it."""
        return self.submit(PlanRequest(algorithm, n_nodes, n_params, **kwargs))

    def total_time(self, algorithm: str, n_nodes: int, n_params: int, **kwargs: Any) -> float:
        """Just the all-reduce completion time for one cell (runner seam)."""
        return self.run(algorithm, n_nodes, n_params, **kwargs).result.total_time

    # -- the control plane ----------------------------------------------
    def ping(self) -> dict:
        """Liveness/version probe (in-process mode answers locally)."""
        if self._engine is not None:
            return {"ok": True, "protocol": PROTOCOL, "pid": None}
        return self._call({"op": "ping"})

    def stats(self) -> dict:
        """The serving side's counters (plan cache, store, tenants)."""
        if self._engine is not None:
            return {
                "ok": True,
                "stats": {"plan_cache": self._engine.plan_cache.stats.as_dict()},
            }
        return self._call({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask a daemon to stop (error in in-process mode — nothing runs)."""
        if self._engine is not None:
            raise ServiceError("in-process client has no daemon to shut down")
        return self._call({"op": "shutdown"})

    # -- plumbing --------------------------------------------------------
    def _call(self, message: dict) -> dict:
        assert self._sock is not None, "daemon-mode call on a closed client"
        with self._lock:
            self._next_id += 1
            message["id"] = self._next_id
            send_frame(self._sock, message)
            response = recv_frame(self._sock)
        if response is None:
            raise ServiceProtocolError(
                f"daemon at {self.socket_path} closed the connection"
            )
        if response.get("id") not in (None, message["id"]):
            raise ServiceProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {message['id']!r}"
            )
        return response

    def close(self) -> None:
        """Release the socket (daemon mode) or flush the engine's cache."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        if self._engine is not None:
            self._engine.flush()

    def __enter__(self) -> "PlanClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
