"""The persistent planning daemon: asyncio server over a unix socket.

One :class:`PlanningService` owns a shared :class:`~repro.service.api.
PlanEngine` (backend instances, repair bases, plan cache — optionally the
sharded persistent store) and serves :class:`~repro.service.api.
PlanRequest` frames from any number of client connections.

Control-plane properties:

- **Admission control** — at most ``max_pending`` plan requests may be
  queued or in flight; excess requests are rejected immediately with an
  ``admission`` error instead of building an unbounded backlog.
- **Per-tenant quotas** — a tenant may have at most ``tenant_quota``
  requests in flight; the daemon answers ``quota`` errors beyond that.
  Per-tenant request/rejection counters land in the shared
  :class:`~repro.obs.metrics.MetricsRegistry` (``service.tenant.<t>.*``).
- **Request coalescing** — requests with the same
  ``(backend, config-fingerprint, fault-diff)`` identity
  (:meth:`PlanRequest.coalesce_key`) that overlap in time share a single
  lowering; followers wait on the leader's future and are answered with
  ``coalesced: true``.
- **Single evaluation lane** — lowerings run on a one-worker thread pool,
  so the event loop keeps accepting, rejecting and coalescing while a
  lowering is in progress, and engine state needs no locking.

Responses echo the request's ``id`` (when given), so clients may pipeline
many requests on one connection; response order follows completion order.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.backend.errors import BackendError
from repro.obs.metrics import MetricsRegistry
from repro.service.api import PlanEngine, PlanRequest
from repro.service.errors import (
    ServiceError,
    ServiceProtocolError,
    ServiceRequestError,
)
from repro.service.protocol import PROTOCOL, read_frame, write_frame
from repro.service.store import PersistentPlanCache, PlanStore


class PlanningService:
    """A planning daemon bound to one unix-socket path.

    Args:
        socket_path: Unix socket to listen on (stale files are replaced).
        engine: Evaluation engine; by default one is built, backed by a
            persistent store when ``store_root`` is given.
        store_root: Directory for the sharded plan store (optional).
        max_pending: Admission-control bound on queued + in-flight plans.
        tenant_quota: Max in-flight plan requests per tenant.
        flush_every: Store write-batching (see :class:`PlanStore`).
        metrics: Registry for service counters (default: a fresh enabled
            one, exposed via the ``stats`` op).
    """

    def __init__(
        self,
        socket_path: str | Path,
        *,
        engine: PlanEngine | None = None,
        store_root: str | Path | None = None,
        max_pending: int = 64,
        tenant_quota: int = 8,
        flush_every: int = 1,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if tenant_quota < 1:
            raise ValueError(f"tenant_quota must be >= 1, got {tenant_quota}")
        self.socket_path = Path(socket_path)
        self.metrics = MetricsRegistry(enabled=True) if metrics is None else metrics
        if engine is None:
            plan_cache = None
            if store_root is not None:
                plan_cache = PersistentPlanCache(
                    PlanStore(store_root, flush_every=flush_every)
                )
            engine = PlanEngine(plan_cache=plan_cache, metrics=self.metrics)
        self.engine = engine
        self.max_pending = max_pending
        self.tenant_quota = tenant_quota
        self._pending = 0
        self._tenant_inflight: Counter[str] = Counter()
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="plan-lowering"
        )
        self._server: asyncio.AbstractServer | None = None
        self._stop: asyncio.Event | None = None
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind the unix socket and start accepting connections."""
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.socket_path)
        self._stop = asyncio.Event()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path)
        )

    async def wait_stopped(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`request_stop`)."""
        assert self._stop is not None, "start() must run first"
        await self._stop.wait()

    def request_stop(self) -> None:
        """Ask the serve loop to wind down (idempotent)."""
        if self._stop is not None:
            self._stop.set()

    async def close(self) -> None:
        """Stop accepting, flush the store, remove the socket file."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Connections idle in read_frame never finish on their own.
        for task in list(self._connections):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self.engine.flush()
        self._pool.shutdown(wait=True)
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.socket_path)

    async def run(self) -> None:
        """Start, serve until shut down, then close (the daemon main)."""
        await self.start()
        try:
            await self.wait_stopped()
        finally:
            await self.close()

    # -- connection handling --------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._connections.add(conn_task)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ServiceProtocolError as exc:
                    async with write_lock:
                        await write_frame(
                            writer,
                            {"ok": False, "kind": exc.kind, "error": str(exc)},
                        )
                    break
                if message is None:
                    break
                task = asyncio.ensure_future(
                    self._answer(message, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            # Daemon shutdown cancels idle connections; end them quietly
            # (the asyncio.streams done-callback would log otherwise).
            pass
        finally:
            if conn_task is not None:
                self._connections.discard(conn_task)
            for task in tasks:
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await task
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _answer(
        self, message, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        response = await self._dispatch(message)
        if isinstance(message, dict) and "id" in message:
            response["id"] = message["id"]
        async with write_lock:
            with contextlib.suppress(ConnectionError):
                await write_frame(writer, response)

    async def _dispatch(self, message) -> dict:
        if not isinstance(message, dict):
            return {
                "ok": False,
                "kind": "bad-request",
                "error": f"expected an object frame, got {type(message).__name__}",
            }
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "protocol": PROTOCOL, "pid": os.getpid()}
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "shutdown":
            self.request_stop()
            return {"ok": True, "stopping": True}
        if op == "plan":
            return await self._handle_plan(message.get("request"))
        return {
            "ok": False,
            "kind": "bad-request",
            "error": f"unknown op {op!r}; known: ping, plan, stats, shutdown",
        }

    # -- the plan path ---------------------------------------------------
    async def _handle_plan(self, request_data) -> dict:
        try:
            request = PlanRequest.from_dict(request_data)
        except ServiceRequestError as exc:
            self.metrics.inc("service.rejected.bad_request")
            return {"ok": False, "kind": exc.kind, "error": str(exc)}
        tenant = request.tenant
        self.metrics.inc("service.requests")
        self.metrics.inc(f"service.tenant.{tenant}.requests")
        # Admission control before any work is queued.
        if self._pending >= self.max_pending:
            self.metrics.inc("service.rejected.admission")
            self.metrics.inc(f"service.tenant.{tenant}.rejected")
            return {
                "ok": False,
                "kind": "admission",
                "error": (
                    f"service at capacity ({self._pending} requests pending, "
                    f"max {self.max_pending}); retry later"
                ),
            }
        if self._tenant_inflight[tenant] >= self.tenant_quota:
            self.metrics.inc("service.rejected.quota")
            self.metrics.inc(f"service.tenant.{tenant}.rejected")
            return {
                "ok": False,
                "kind": "quota",
                "error": (
                    f"tenant {tenant!r} has {self._tenant_inflight[tenant]} "
                    f"requests in flight (quota {self.tenant_quota})"
                ),
            }
        key = request.coalesce_key()
        future = self._inflight.get(key)
        coalesced = future is not None
        if coalesced:
            self.metrics.inc("service.coalesced")
            self.metrics.inc(f"service.tenant.{tenant}.coalesced")
        else:
            loop = asyncio.get_running_loop()
            self.metrics.inc("service.lowerings")
            future = loop.run_in_executor(self._pool, self._evaluate, request)
            self._inflight[key] = future
            future.add_done_callback(
                lambda _fut, _key=key: self._inflight.pop(_key, None)
            )
        self._pending += 1
        self._tenant_inflight[tenant] += 1
        try:
            # Shielded: one follower's disconnect must not cancel the
            # leader's lowering other followers are waiting on.
            result = await asyncio.shield(future)
        except ServiceError as exc:
            return {"ok": False, "kind": exc.kind, "error": str(exc)}
        except BackendError as exc:
            return {"ok": False, "kind": "backend", "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — never kill the connection
            return {"ok": False, "kind": "internal", "error": repr(exc)}
        finally:
            self._pending -= 1
            self._tenant_inflight[tenant] -= 1
            if not self._tenant_inflight[tenant]:
                del self._tenant_inflight[tenant]
        return {"ok": True, "result": result.to_dict(), "coalesced": coalesced}

    def _evaluate(self, request: PlanRequest):
        """Pool-thread entry: evaluate and persist (single lane, no locks)."""
        with self.metrics.span("service.request"):
            result = self.engine.evaluate(request)
        self.engine.flush()
        return result

    # -- introspection ----------------------------------------------------
    def stats(self) -> dict:
        """Service counters for the ``stats`` op (JSON-safe)."""
        data: dict = {
            "protocol": PROTOCOL,
            "pending": self._pending,
            "inflight_keys": len(self._inflight),
            "tenants": dict(self._tenant_inflight),
            "plan_cache": self.engine.plan_cache.stats.as_dict(),
            "metrics": self.metrics.snapshot().to_dict(),
        }
        store = getattr(self.engine.plan_cache, "store", None)
        if store is not None:
            data["store"] = store.stats.as_dict()
            data["store_root"] = str(store.root)
        return data


def serve(
    socket_path: str | Path,
    *,
    store_root: str | Path | None = None,
    max_pending: int = 64,
    tenant_quota: int = 8,
    flush_every: int = 1,
) -> None:
    """Run a daemon in the foreground until a ``shutdown`` request.

    The blocking entry point behind ``wrht-repro serve`` /
    ``python -m repro.service serve``.
    """
    service = PlanningService(
        socket_path,
        store_root=store_root,
        max_pending=max_pending,
        tenant_quota=tenant_quota,
        flush_every=flush_every,
    )
    asyncio.run(service.run())
