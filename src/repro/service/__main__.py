"""Command-line entry points for the planning service.

``python -m repro.service serve`` runs a daemon in the foreground;
``python -m repro.service smoke`` is the self-contained CI check: it
starts a daemon on a temporary socket, serves one fig-4 cell per backend
through it, and asserts every answer is bit-identical to the in-process
evaluation of the same request (exit 0 on success, 1 on any divergence).

Both are also reachable through the main CLI: ``wrht-repro serve
--socket PATH`` (bare flags imply the ``serve`` subcommand) and
``wrht-repro serve smoke``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import socket as socket_mod
import sys
import tempfile
import threading
import time

from repro.service.api import PlanRequest, comparable_dict
from repro.service.client import PlanClient
from repro.service.daemon import PlanningService, serve


def _add_serve_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket", required=True, help="unix-socket path to listen on"
    )
    parser.add_argument(
        "--store", default=None,
        help="directory for the sharded persistent plan store (default: "
        "in-memory only)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=64,
        help="admission-control bound on in-flight plan requests",
    )
    parser.add_argument(
        "--tenant-quota", type=int, default=8,
        help="max in-flight plan requests per tenant",
    )
    parser.add_argument(
        "--flush-every", type=int, default=1,
        help="persist store shards every N writes",
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    print(f"planning service listening on {args.socket}", file=sys.stderr)
    serve(
        args.socket,
        store_root=args.store,
        max_pending=args.max_pending,
        tenant_quota=args.tenant_quota,
        flush_every=args.flush_every,
    )
    return 0


def run_smoke(*, n_nodes: int = 64, n_wavelengths: int = 8, verbose: bool = True) -> int:
    """Daemon-vs-in-process bit-identity on one fig-4 cell per backend.

    Returns a process exit code (0: every backend identical; 1: any
    divergence or service failure).
    """
    if not hasattr(socket_mod, "AF_UNIX"):
        print("service smoke: skipped (no AF_UNIX on this platform)")
        return 0
    failures = 0
    with tempfile.TemporaryDirectory(prefix="wrht-service-smoke-") as tmp:
        sock_path = os.path.join(tmp, "plan.sock")
        service = PlanningService(sock_path, store_root=os.path.join(tmp, "store"))
        thread = threading.Thread(
            target=lambda: asyncio.run(service.run()), daemon=True
        )
        thread.start()
        deadline = time.monotonic() + 10.0
        while not os.path.exists(sock_path):
            if time.monotonic() > deadline:
                print("service smoke: FAIL (daemon socket never appeared)")
                return 1
            time.sleep(0.01)
        try:
            from repro.core.wavelengths import optimal_group_size

            # One fig-4 cell (WRHT at a fixed group size), scaled down so
            # the smoke stays fast; m follows Lemma 1 for the budget.
            group_size = min(optimal_group_size(n_wavelengths), n_nodes)
            with PlanClient(sock_path, timeout=120.0) as remote, PlanClient() as local:
                for backend in ("optical", "electrical", "analytic"):
                    request = PlanRequest(
                        "WRHT", n_nodes, 1_000_000,
                        backend=backend, n_wavelengths=n_wavelengths,
                        m=group_size,
                    )
                    served = remote.submit(request)
                    direct = local.submit(request)
                    same = comparable_dict(served.result) == comparable_dict(
                        direct.result
                    )
                    if verbose:
                        marker = "ok " if same else "DIFF"
                        print(
                            f"service smoke: [{marker}] backend={backend} "
                            f"total_time={served.result.total_time!r}"
                        )
                    if not same:
                        failures += 1
                # The faulted path must also answer (repair-served).
                faulted = remote.submit(
                    PlanRequest(
                        "WRHT", n_nodes, 1_000_000,
                        n_wavelengths=n_wavelengths, m=group_size,
                        faults=(("dead_wavelength", 1),),
                    )
                )
                if not faulted.result.meta.get("repair"):
                    print("service smoke: FAIL (faulted cell not repair-served)")
                    failures += 1
                elif verbose:
                    print(
                        "service smoke: [ok ] faulted cell repair-served "
                        f"(n_faults={faulted.result.meta['n_faults']})"
                    )
                remote.shutdown()
        finally:
            thread.join(timeout=10.0)
    if failures:
        print(f"service smoke: FAIL ({failures} divergent answer(s))")
        return 1
    print("service smoke: PASS (daemon answers bit-identical to in-process)")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    return run_smoke(n_nodes=args.n_nodes, n_wavelengths=args.wavelengths)


def main(argv: list[str] | None = None) -> int:
    """Entry point (``python -m repro.service`` / ``wrht-repro serve``).

    Bare flags imply the ``serve`` subcommand, so ``wrht-repro serve
    --socket PATH`` starts a daemon directly.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Planning-service daemon and smoke check.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser("serve", help="run a planning daemon in the foreground")
    _add_serve_args(serve_p)
    serve_p.set_defaults(func=_cmd_serve)

    smoke_p = sub.add_parser(
        "smoke", help="daemon-vs-in-process bit-identity check (CI stage)"
    )
    smoke_p.add_argument("--n-nodes", type=int, default=64)
    smoke_p.add_argument("--wavelengths", type=int, default=8)
    smoke_p.set_defaults(func=_cmd_smoke)

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv = ["serve", *argv]  # bare flags imply the daemon subcommand
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
