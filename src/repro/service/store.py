"""Sharded persistent plan store: the on-disk half of the plan cache.

The in-memory :class:`~repro.backend.plancache.PlanCache` dies with its
process, so every fresh worker / daemon restart re-prices every pattern
from scratch. :class:`PlanStore` spills priced summaries to versioned
on-disk shards that any number of processes can share:

- **Keys** are the exact hashable tuples the lowering seams already build —
  ``(pattern_key, config fingerprint, bytes_per_elem)`` and the
  delta-salted ``("delta", base, diff)`` keys of incremental repair — so a
  repaired plan can never alias a from-scratch one on disk either. Keys are
  digested with SHA-256 over their ``repr`` (the frozen config dataclasses
  normalize their fields, so equal keys repr identically in every process).
- **Shards**: a key's digest selects one of ``n_shards`` shard slots, and
  each *writer process* owns its own file per slot
  (``shard-<slot>.<pid>.pkl``). Writers only ever rewrite their own files
  (write-to-temp + :func:`os.replace`, so readers never observe a partial
  file) and readers merge every writer's file for a slot — concurrent
  processes share the store without any cross-process locking and can
  never clobber each other's entries.
- **Corruption tolerance**: a truncated, garbled or wrong-version shard
  file is counted (:attr:`StoreCounters.corrupt_files` /
  :attr:`StoreCounters.stale_files`) and skipped — it degrades to a cache
  miss, never a crash.
- **Fork safety**: the writer identity is the *current* pid, checked on
  every access, so a sweep worker forked from a warmed parent writes to
  its own per-process shard files instead of silently clobbering the
  parent's (the pre-service behaviour this module replaces). The
  :func:`ensure_worker_store` hook is called by
  :func:`repro.runner.sweep.sweep` workers to cover the spawn start method
  too.

:class:`PersistentPlanCache` composes the store with the bounded in-memory
LRU: lookups try memory first, then disk (promoting hits), and writes go
through to both. Handing one to a backend's ``plan_cache=`` argument is
all it takes — the lowering seams are unchanged.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Hashable

from repro.backend.plancache import (
    PlanCache,
    default_plan_cache,
    set_default_plan_cache,
)

#: On-disk format version; bumped on any incompatible change. Files with a
#: different version are ignored (counted, not crashed on).
STORE_VERSION = 1

#: Environment variable naming the store root. When set, sweep workers
#: (and anything else calling :func:`ensure_worker_store`) install a
#: persistent cache rooted there as the process default.
STORE_ENV = "WRHT_PLAN_STORE"

_DEFAULT_SHARDS = 16


def key_digest(key: Hashable) -> str:
    """Stable cross-process digest of a plan-cache key.

    SHA-256 over ``repr(key)``: the keys are tuples of frozen dataclasses,
    strings and numbers whose reprs are normalized, so equal keys digest
    identically in every process (the same property
    :func:`repro.obs.manifest.fingerprint` relies on).
    """
    return hashlib.sha256(repr(key).encode()).hexdigest()


@dataclass
class StoreCounters:
    """Lifetime tallies of one :class:`PlanStore` instance.

    Attributes:
        hits: Lookups served from a shard file.
        misses: Lookups not present on disk.
        writes: Entries buffered for persistence.
        flushes: Shard files atomically rewritten.
        corrupt_files: Shard files skipped as unreadable/garbled.
        stale_files: Shard files skipped on a version mismatch.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    flushes: int = 0
    corrupt_files: int = 0
    stale_files: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (service ``stats`` responses embed it)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "flushes": self.flushes,
            "corrupt_files": self.corrupt_files,
            "stale_files": self.stale_files,
        }


class PlanStore:
    """Sharded, versioned, multi-process-safe on-disk plan store.

    Args:
        root: Directory holding the shard files (created if missing).
        n_shards: Shard slots keys are spread over.
        flush_every: Buffered writes that trigger an automatic
            :meth:`flush` (1 = write-through; larger values batch shard
            rewrites for high-churn callers like the daemon).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        n_shards: int = _DEFAULT_SHARDS,
        flush_every: int = 1,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.n_shards = n_shards
        self.flush_every = flush_every
        self.stats = StoreCounters()
        self._lock = threading.RLock()
        # Merged view of every writer's files, loaded lazily per slot.
        self._snapshot: dict[int, dict[str, Any]] = {}
        # This process's own (digest -> value) entries per slot; rewritten
        # wholesale into this pid's shard file on flush.
        self._own: dict[int, dict[str, Any]] = {}
        self._dirty: set[int] = set()
        self._pending = 0
        self._owner_pid = os.getpid()

    # -- fork / process identity ---------------------------------------
    def _check_owner(self) -> None:
        """Re-key the writer identity after a fork.

        A forked child inherits the parent's buffers; writing them under
        the parent's pid would clobber the parent's shard files — the
        silent-sharing bug ``sweep(workers>1)`` used to have. The child
        instead drops the inherited buffers (the parent still owns and
        flushes them) and starts fresh files under its own pid.
        """
        pid = os.getpid()
        if pid == self._owner_pid:
            return
        self._owner_pid = pid
        self._own.clear()
        self._dirty.clear()
        self._pending = 0
        self._snapshot.clear()  # reload lazily: pick up the parent's files

    # -- key / file layout ---------------------------------------------
    def _slot_of(self, digest: str) -> int:
        return int(digest[:8], 16) % self.n_shards

    def _own_file(self, slot: int) -> Path:
        return self.root / f"shard-{slot:03d}.{self._owner_pid}.pkl"

    def _slot_files(self, slot: int) -> list[Path]:
        return sorted(self.root.glob(f"shard-{slot:03d}.*.pkl"))

    # -- load / persist -------------------------------------------------
    def _load_slot(self, slot: int) -> dict[str, Any]:
        """Merge every writer's file for ``slot``, skipping bad ones."""
        merged: dict[str, Any] = {}
        for path in self._slot_files(slot):
            try:
                data = pickle.loads(path.read_bytes())
            except Exception:  # noqa: BLE001 — any unreadable file is a miss
                self.stats.corrupt_files += 1
                continue
            if not isinstance(data, dict) or "entries" not in data:
                self.stats.corrupt_files += 1
                continue
            if data.get("version") != STORE_VERSION:
                self.stats.stale_files += 1
                continue
            entries = data["entries"]
            if not isinstance(entries, dict):
                self.stats.corrupt_files += 1
                continue
            merged.update(entries)
        return merged

    def _flush_locked(self) -> None:
        for slot in sorted(self._dirty):
            target = self._own_file(slot)
            tmp = target.with_name(f"{target.name}.tmp")
            payload = {
                "version": STORE_VERSION,
                "entries": dict(self._own.get(slot, {})),
            }
            tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(tmp, target)
            self.stats.flushes += 1
        self._dirty.clear()
        self._pending = 0

    # -- public API -----------------------------------------------------
    def get(self, key: Hashable) -> Any | None:
        """The stored value for ``key``, or ``None`` (a miss)."""
        digest = key_digest(key)
        slot = self._slot_of(digest)
        with self._lock:
            self._check_owner()
            own = self._own.get(slot)
            if own is not None and digest in own:
                self.stats.hits += 1
                return own[digest]
            if slot not in self._snapshot:
                self._snapshot[slot] = self._load_slot(slot)
            value = self._snapshot[slot].get(digest)
        if value is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Buffer ``value`` under ``key``; flushes per ``flush_every``."""
        digest = key_digest(key)
        slot = self._slot_of(digest)
        with self._lock:
            self._check_owner()
            self._own.setdefault(slot, {})[digest] = value
            # Keep the merged view coherent for this process's own reads.
            if slot in self._snapshot:
                self._snapshot[slot][digest] = value
            self._dirty.add(slot)
            self._pending += 1
            self.stats.writes += 1
            if self._pending >= self.flush_every:
                self._flush_locked()

    def flush(self) -> None:
        """Atomically rewrite every dirty shard file of this process."""
        with self._lock:
            self._check_owner()
            self._flush_locked()

    def refresh(self) -> None:
        """Drop the merged snapshots so other writers' flushes are seen."""
        with self._lock:
            self._check_owner()
            self._snapshot.clear()

    def __len__(self) -> int:
        """Distinct entries visible to this process (loads every slot)."""
        with self._lock:
            self._check_owner()
            seen: set[str] = set()
            for slot in range(self.n_shards):
                if slot not in self._snapshot:
                    self._snapshot[slot] = self._load_slot(slot)
                seen.update(self._snapshot[slot])
                seen.update(self._own.get(slot, ()))
            return len(seen)


class PersistentPlanCache(PlanCache):
    """A :class:`PlanCache` backed by a shared :class:`PlanStore`.

    Lookups try the bounded in-memory LRU first, then the store (promoting
    disk hits into memory without re-writing them); writes go through to
    both. The counters keep their PlanCache meaning — a disk hit still
    counts as a cache hit, and the split is visible on
    ``store.stats``.

    Drop-in at every ``plan_cache=`` seam: the lowering code calls plain
    ``get``/``put`` and transparently gains persistence.
    """

    def __init__(self, store: PlanStore, maxsize: int = 4096) -> None:
        super().__init__(maxsize=maxsize)
        self.store = store

    def get(self, key: Hashable) -> Any | None:
        """Memory first, then the shared store (promoting disk hits)."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry
        value = self.store.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        if self.enabled:
            # Promote into memory only — the entry is already on disk.
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> int:
        """Write through: the in-memory LRU and the shared store."""
        evicted = super().put(key, value)
        self.store.put(key, value)
        return evicted

    def flush(self) -> None:
        """Persist buffered store writes (see :meth:`PlanStore.flush`)."""
        self.store.flush()


def install_persistent_cache(
    root: str | Path,
    *,
    maxsize: int = 4096,
    n_shards: int = _DEFAULT_SHARDS,
    flush_every: int = 1,
) -> PersistentPlanCache:
    """Make a store-backed cache the process-wide default plan cache.

    Backends constructed *after* this call (without an explicit
    ``plan_cache=``) lower through the persistent cache. Returns the
    installed cache.
    """
    cache = PersistentPlanCache(
        PlanStore(root, n_shards=n_shards, flush_every=flush_every),
        maxsize=maxsize,
    )
    set_default_plan_cache(cache)
    return cache


def ensure_worker_store() -> PersistentPlanCache | None:
    """Bind a sweep worker process to its own store shard files.

    Called by :func:`repro.runner.sweep.sweep` at the top of every worker
    chunk. Three cases:

    - the default cache is already persistent (fork start method inherited
      it): refresh it so the worker re-keys its writer files to its own
      pid and sees entries other workers have flushed;
    - :data:`STORE_ENV` names a store root (spawn start method, or the
      parent never installed one): install a fresh persistent cache there;
    - neither: leave the plain in-memory default untouched.
    """
    cache = default_plan_cache()
    if isinstance(cache, PersistentPlanCache):
        cache.store.refresh()
        return cache
    root = os.environ.get(STORE_ENV)
    if root:
        return install_persistent_cache(root)
    return None
