"""Request model and evaluation engine shared by client and daemon.

A :class:`PlanRequest` names one plan-service cell — tenant, backend,
collective, topology size, wavelength budget, payload and fault set — in a
JSON-safe, hashable form. :class:`PlanEngine` evaluates requests exactly
the way the experiment runners do: it mirrors
:func:`repro.runner.experiments.get_backend` /
``_build_cell_schedule`` construction so an in-process evaluation is
bit-identical to calling ``Backend.run`` directly, which is what makes the
daemon's answers auditable against the goldens.

Faulted optical requests do **not** re-lower from scratch: the engine
keeps one healthy base network per ``(N, w, interpretation)`` with
``keep_solutions=True`` and serves the degraded cell through the PR-6
incremental-repair path (:meth:`OpticalRingNetwork.repair_plan`), whose
plan-cache entries carry delta-salted keys.

The coalescing identity of a request is
``(backend, config fingerprint, fault diff)`` — built from
:func:`repro.obs.manifest.fingerprint` and
:func:`repro.backend.plancache.delta_salted_key`, the same primitives the
plan cache itself uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.backend.base import Backend, ExecutionResult, StepRecord
from repro.backend.errors import BackendError
from repro.backend.plancache import (
    PlanCache,
    default_plan_cache,
    delta_salted_key,
)
from repro.faults.models import (
    CutFiber,
    DeadWavelength,
    DroppedNode,
    Fault,
    FaultSet,
    MrrPortFault,
    PowerDroop,
)
from repro.obs.manifest import fingerprint
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.service.errors import ServiceRequestError

#: Algorithms a request may name (the experiment display names).
ALGORITHMS = ("Ring", "H-Ring", "BT", "RD", "WRHT", "Swing", "SCRing")

_DEFAULT_HRING_M = 5


# -- fault wire codec ---------------------------------------------------
# Faults travel as plain tuples so a PlanRequest stays hashable and JSON
# round-trips losslessly (JSON lists are re-tupled on decode).

_FAULT_KINDS = {
    "dead_wavelength": DeadWavelength,
    "mrr_port": MrrPortFault,
    "cut_fiber": CutFiber,
    "dropped_node": DroppedNode,
    "power_droop": PowerDroop,
}


def fault_to_wire(fault: Fault) -> tuple:
    """Encode one fault as a JSON-safe tuple (inverse of wire decode)."""
    if isinstance(fault, DeadWavelength):
        return ("dead_wavelength", fault.wavelength)
    if isinstance(fault, MrrPortFault):
        return ("mrr_port", fault.node, fault.wavelength, fault.mode, fault.direction)
    if isinstance(fault, CutFiber):
        return ("cut_fiber", fault.segment, fault.direction)
    if isinstance(fault, DroppedNode):
        return ("dropped_node", fault.node)
    if isinstance(fault, PowerDroop):
        return ("power_droop", fault.droop_db)
    raise ServiceRequestError(f"unencodable fault {fault!r}")


def fault_from_wire(wire: Any) -> Fault:
    """Decode one :func:`fault_to_wire` tuple (or JSON list) to a fault."""
    if not isinstance(wire, (tuple, list)) or not wire:
        raise ServiceRequestError(f"malformed fault entry {wire!r}")
    kind, *args = wire
    cls = _FAULT_KINDS.get(kind)
    if cls is None:
        raise ServiceRequestError(
            f"unknown fault kind {kind!r}; known: {sorted(_FAULT_KINDS)}"
        )
    try:
        return cls(*args)
    except (TypeError, ValueError) as exc:
        raise ServiceRequestError(f"invalid fault {wire!r}: {exc}") from exc


def faults_to_wire(faults: FaultSet) -> tuple[tuple, ...]:
    """Encode a whole fault set in its normalized order."""
    return tuple(fault_to_wire(f) for f in faults)


@dataclass(frozen=True)
class PlanRequest:
    """One plan-service request (hashable, JSON round-trip safe).

    Attributes:
        algorithm: Collective display name (see :data:`ALGORITHMS`).
        n_nodes: Topology size N.
        n_params: Payload elements to all-reduce.
        backend: Pricing backend name (``optical``/``electrical``/
            ``analytic``).
        n_wavelengths: Wavelength budget w (optical/analytic).
        interpretation: Line-rate units (``calibrated``/``strict``).
        bytes_per_elem: Element width in bytes.
        m: WRHT group size (``None``: Lemma-1 optimal).
        hring_m: H-Ring group size.
        tenant: Caller identity for quotas and per-tenant metrics; never
            part of the coalescing key.
        faults: Wire-encoded fault tuples (see :func:`fault_to_wire`),
            normalized into :class:`FaultSet` order.
    """

    algorithm: str
    n_nodes: int
    n_params: int
    backend: str = "optical"
    n_wavelengths: int = 64
    interpretation: str = "calibrated"
    bytes_per_elem: float = 4.0
    m: int | None = None
    hring_m: int = _DEFAULT_HRING_M
    tenant: str = "default"
    faults: tuple[tuple, ...] = ()

    def __post_init__(self) -> None:
        # Normalize the wire tuples through FaultSet so equal fault sets
        # written in any order produce equal requests (and coalesce keys).
        decoded = FaultSet(tuple(fault_from_wire(f) for f in self.faults))
        object.__setattr__(self, "faults", faults_to_wire(decoded))

    def fault_set(self) -> FaultSet:
        """The decoded :class:`FaultSet` this request asks to plan under."""
        return FaultSet(tuple(fault_from_wire(f) for f in self.faults))

    def coalesce_key(self) -> tuple:
        """The identity under which identical requests share one lowering.

        ``(backend, config fingerprint)`` for healthy requests; faulted
        ones are delta-salted with the fault tuple, mirroring how their
        plan-cache entries are keyed — so a faulted and a healthy request
        for the same cell can never coalesce with each other.
        """
        base = (
            self.backend,
            fingerprint(
                (
                    self.algorithm,
                    self.n_nodes,
                    self.n_params,
                    self.n_wavelengths,
                    self.interpretation,
                    self.bytes_per_elem,
                    self.m,
                    self.hring_m,
                )
            ),
        )
        if self.faults:
            return delta_salted_key(base, self.faults)
        return base

    def to_dict(self) -> dict:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "algorithm": self.algorithm,
            "n_nodes": self.n_nodes,
            "n_params": self.n_params,
            "backend": self.backend,
            "n_wavelengths": self.n_wavelengths,
            "interpretation": self.interpretation,
            "bytes_per_elem": self.bytes_per_elem,
            "m": self.m,
            "hring_m": self.hring_m,
            "tenant": self.tenant,
            "faults": [list(f) for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlanRequest":
        """Rebuild from :meth:`to_dict` output (tolerates JSON lists)."""
        if not isinstance(data, dict):
            raise ServiceRequestError(f"plan request must be an object, got {data!r}")
        try:
            return cls(
                algorithm=data["algorithm"],
                n_nodes=int(data["n_nodes"]),
                n_params=int(data["n_params"]),
                backend=data.get("backend", "optical"),
                n_wavelengths=int(data.get("n_wavelengths", 64)),
                interpretation=data.get("interpretation", "calibrated"),
                bytes_per_elem=float(data.get("bytes_per_elem", 4.0)),
                m=None if data.get("m") is None else int(data["m"]),
                hring_m=int(data.get("hring_m", _DEFAULT_HRING_M)),
                tenant=str(data.get("tenant", "default")),
                faults=tuple(tuple(f) for f in data.get("faults", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceRequestError(f"malformed plan request: {exc}") from exc


def comparable_dict(result: ExecutionResult) -> dict:
    """The bit-identity view of a result: everything but cache/metrics.

    Cache counters depend on what the serving process had already lowered
    and metrics snapshots carry wall clocks, so neither participates in
    the daemon-vs-in-process equality the service guarantees. Timings,
    timelines, events and meta must match exactly.
    """
    data = result.to_dict()
    data.pop("cache", None)
    data.pop("metrics", None)
    return data


class PlanEngine:
    """Evaluates :class:`PlanRequest` cells on shared backend state.

    One engine instance is the unit both the in-process client and the
    daemon share: it owns the backend instances (mirroring
    :func:`repro.runner.experiments.get_backend` construction so results
    are bit-identical to the figure runners), the optical repair bases,
    and the plan cache every lowering goes through.

    Args:
        plan_cache: Cache behind every ``lower()`` (default: the
            process-wide one; the daemon passes a
            :class:`~repro.service.store.PersistentPlanCache`).
        metrics: Observability registry shared with the daemon.
    """

    def __init__(
        self,
        *,
        plan_cache: PlanCache | None = None,
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        self.plan_cache = default_plan_cache() if plan_cache is None else plan_cache
        self.metrics = metrics
        self._backends: dict[tuple, Backend] = {}
        self._repair_bases: dict[tuple, Any] = {}

    # -- construction mirrors ------------------------------------------
    def _backend_for(self, request: PlanRequest) -> Backend:
        """A cached backend instance for the request's healthy config."""
        from repro.backend import registry

        key = (
            request.backend,
            request.n_nodes,
            request.n_wavelengths,
            request.interpretation,
        )
        backend = self._backends.get(key)
        if backend is not None:
            return backend
        if request.backend == "optical":
            from repro.optical.config import OpticalSystemConfig

            backend = registry.create(
                "optical",
                config=OpticalSystemConfig(
                    n_nodes=request.n_nodes,
                    n_wavelengths=request.n_wavelengths,
                    interpretation=request.interpretation,
                ),
                plan_cache=self.plan_cache,
            )
        elif request.backend == "electrical":
            from repro.electrical.config import ElectricalSystemConfig

            backend = registry.create(
                "electrical",
                config=ElectricalSystemConfig(
                    n_nodes=request.n_nodes,
                    interpretation=request.interpretation,
                ),
                plan_cache=self.plan_cache,
            )
        elif request.backend == "analytic":
            from repro.optical.config import OpticalSystemConfig

            cfg = OpticalSystemConfig(
                n_nodes=request.n_nodes,
                n_wavelengths=request.n_wavelengths,
                interpretation=request.interpretation,
            )
            backend = registry.create(
                "analytic",
                model=cfg.cost_model(),
                w=request.n_wavelengths,
                plan_cache=self.plan_cache,
            )
        else:
            raise ServiceRequestError(
                f"unknown backend {request.backend!r}; "
                f"available: {registry.available()}"
            )
        self._backends[key] = backend
        return backend

    def _schedule_for(self, request: PlanRequest):
        """The request's schedule (never materialized), runner-identical."""
        from repro.collectives.registry import build_schedule

        if request.algorithm not in ALGORITHMS:
            raise ServiceRequestError(
                f"unknown algorithm {request.algorithm!r}; known: {ALGORITHMS}"
            )
        kwargs: dict = {"materialize": False}
        if request.algorithm == "WRHT":
            kwargs.update(n_wavelengths=request.n_wavelengths, m=request.m)
        elif request.algorithm == "H-Ring":
            kwargs.update(m=request.hring_m)
        try:
            return build_schedule(
                request.algorithm, request.n_nodes, request.n_params, **kwargs
            )
        except (KeyError, ValueError) as exc:
            raise ServiceRequestError(f"unbuildable schedule: {exc}") from exc

    # -- evaluation -----------------------------------------------------
    def evaluate(self, request: PlanRequest) -> ExecutionResult:
        """Lower and execute one request (the service's whole data plane).

        Healthy requests run ``Backend.run`` on the mirrored backend —
        bit-identical to the figure runners. Faulted optical requests
        route through the incremental-repair path; faulted requests on
        other backends are rejected (the repair engine is optical-only).

        Raises:
            ServiceRequestError: Malformed/unservable request.
            BackendError: Lowering or execution failed.
        """
        schedule = self._schedule_for(request)
        if request.faults:
            if request.backend != "optical":
                raise ServiceRequestError(
                    "faulted requests are served through the optical repair "
                    f"path; backend {request.backend!r} does not support them"
                )
            return self._evaluate_repaired(request, schedule)
        backend = self._backend_for(request)
        with self.metrics.span("service.evaluate"):
            return backend.run(schedule, bytes_per_elem=request.bytes_per_elem)

    def _repair_base(self, request: PlanRequest):
        """The healthy keep-solutions network repairs are derived from."""
        from repro.optical.config import OpticalSystemConfig
        from repro.optical.network import OpticalRingNetwork

        key = (request.n_nodes, request.n_wavelengths, request.interpretation)
        base = self._repair_bases.get(key)
        if base is None:
            base = OpticalRingNetwork(
                OpticalSystemConfig(
                    n_nodes=request.n_nodes,
                    n_wavelengths=request.n_wavelengths,
                    interpretation=request.interpretation,
                ),
                plan_cache=self.plan_cache,
                metrics=self.metrics,
                keep_solutions=True,
            )
            self._repair_bases[key] = base
        return base

    def _evaluate_repaired(self, request: PlanRequest, schedule) -> ExecutionResult:
        """Serve a faulted optical cell via incremental repair.

        The healthy base lowers the schedule once (cross-run cached, and
        its full RWA solutions are kept), then the fault set is applied as
        a repair: only the delta-affected subgraph recolors, and the
        repaired summaries land in the plan cache under delta-salted keys.
        """
        faults = request.fault_set()
        try:
            faults.validate(request.n_nodes, request.n_wavelengths)
        except ValueError as exc:
            raise ServiceRequestError(f"invalid fault set: {exc}") from exc
        base = self._repair_base(request)
        with self.metrics.span("service.evaluate"):
            base.lower(schedule, request.bytes_per_elem)
            try:
                plan, degraded = base.repair_plan(
                    schedule, faults, bytes_per_elem=request.bytes_per_elem
                )
            except BackendError:
                raise
            run = degraded.execute_plan(plan)
        # Reshape exactly as OpticalBackend.execute does, plus repair meta.
        return ExecutionResult(
            backend="optical",
            algorithm=run.algorithm,
            n_steps=run.n_steps,
            total_time=run.total_time,
            total_bytes=run.total_bytes,
            timeline=tuple(
                StepRecord(
                    stage=t.stage,
                    count=t.count,
                    duration=t.duration,
                    bytes_per_step=t.bytes_per_step,
                    n_transfers=t.n_transfers,
                    rounds=t.rounds,
                    peak_wavelength=t.peak_wavelength,
                )
                for t in run.step_timings
            ),
            cache=run.cache,
            meta={
                "interpretation": request.interpretation,
                "repair": True,
                "n_faults": len(faults),
            },
            metrics=self.metrics.snapshot() if self.metrics.enabled else None,
        )

    def flush(self) -> None:
        """Persist the plan cache when it is store-backed (else no-op)."""
        flush = getattr(self.plan_cache, "flush", None)
        if callable(flush):
            flush()


def request_without_tenant(request: PlanRequest) -> PlanRequest:
    """The request with its tenant scrubbed (coalescing/fixture helper)."""
    return replace(request, tenant="default")
