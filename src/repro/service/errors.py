"""Typed errors for the planning service.

Every error carries a machine-readable ``kind`` that travels over the wire
(the daemon maps exceptions to ``{"ok": false, "kind": ..., "error": ...}``
responses and the client raises the matching class back). None of the
classes define a custom ``__init__`` so they all survive the pickling
round-trip through sweep workers unmodified (house rule REP003).
"""

from __future__ import annotations


class ServiceError(RuntimeError):
    """Base class for planning-service failures."""

    kind = "service"


class ServiceRequestError(ServiceError):
    """The request itself is malformed or names an unservable cell."""

    kind = "bad-request"


class ServiceUnavailableError(ServiceError):
    """Admission control or a per-tenant quota rejected the request."""

    kind = "admission"


class ServiceQuotaError(ServiceUnavailableError):
    """The tenant exceeded its in-flight request quota."""

    kind = "quota"


class ServiceProtocolError(ServiceError):
    """A malformed, oversized or truncated protocol frame."""

    kind = "protocol"


class ServiceRemoteError(ServiceError):
    """Client-side wrapper for an error response from the daemon.

    ``kind`` is reassigned per instance from the response's ``kind`` field
    so callers can branch without parsing the message text.
    """

    kind = "remote"

    @classmethod
    def from_response(cls, response: dict) -> ServiceError:
        """Rebuild the daemon-side failure from an error response dict.

        Known kinds come back as their original class (so ``except
        ServiceQuotaError`` works across the wire); unknown kinds fall back
        to a plain :class:`ServiceRemoteError` tagged with that kind.
        """
        kind = str(response.get("kind", "remote"))
        error_cls = _ERRORS_BY_KIND.get(kind, cls)
        error = error_cls(str(response.get("error", "unknown service error")))
        error.kind = kind
        return error


_ERRORS_BY_KIND: dict[str, type[ServiceError]] = {
    cls.kind: cls
    for cls in (
        ServiceError,
        ServiceRequestError,
        ServiceUnavailableError,
        ServiceQuotaError,
        ServiceProtocolError,
    )
}
