"""The planning service's wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object. Deliberately minimal — no
streaming, no compression, no schema negotiation beyond the ``protocol``
tag in every request/response — because the daemon only ever runs behind a
local unix socket.

Requests are objects with an ``op`` field:

``{"op": "ping"}``
    Liveness probe; answered with ``{"ok": true, "protocol": ...}``.
``{"op": "plan", "request": {...}, "id": n}``
    One :class:`~repro.service.api.PlanRequest` (``to_dict`` form). The
    optional ``id`` is echoed back so clients may pipeline.
``{"op": "stats"}``
    Service counters: metrics snapshot, plan-cache/store tallies,
    in-flight bookkeeping.
``{"op": "shutdown"}``
    Acknowledge and stop the daemon.

Responses always carry ``ok``; failures add ``kind`` (an error taxonomy
from :mod:`repro.service.errors`) and ``error`` (the message). Successful
``plan`` responses carry the ``result``
(:meth:`~repro.backend.base.ExecutionResult.to_dict`) plus ``coalesced``
(whether the lowering was shared with an identical in-flight request).

Both asyncio (daemon-side) and blocking-socket (client-side) helpers live
here so the two ends can never disagree on framing.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

from repro.service.errors import ServiceProtocolError

#: Protocol identifier, echoed by ``ping`` for version sanity checks.
PROTOCOL = "wrht-repro/plan-service/v1"

#: Hard frame-size cap; a header above this is treated as corruption.
MAX_FRAME_BYTES = 32 << 20

_HEADER = struct.Struct(">I")


def encode_frame(payload: Any) -> bytes:
    """Serialize ``payload`` into one length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Any:
    """Parse one frame body back into its JSON payload."""
    try:
        return json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceProtocolError(f"undecodable frame body: {exc}") from exc


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"frame header announces {length} bytes "
            f"(cap {MAX_FRAME_BYTES}); treating as corruption"
        )


# -- asyncio side (daemon) ---------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> Any | None:
    """Read one frame; ``None`` on clean EOF (peer closed between frames).

    Raises:
        ServiceProtocolError: On a truncated frame or an oversized header.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServiceProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ServiceProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: Any) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()


# -- blocking-socket side (client) -------------------------------------


def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    """``n`` bytes from ``sock``; ``None`` on immediate clean EOF."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ServiceProtocolError(
                f"connection closed mid-read ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: Any) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> Any | None:
    """Receive one frame; ``None`` on clean EOF between frames."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ServiceProtocolError("connection closed between header and body")
    return decode_body(body)
