"""Planning service: thin client API, persistent daemon, sharded plan store.

``repro.service`` splits the one-process-per-experiment lowering model into
three layers so many callers (tenants) can share one long-lived planner:

- :mod:`repro.service.client` — the thin client API. In-process mode keeps
  today's ``lower()``/``execute()`` contract bit-identical (it drives the
  exact same :class:`~repro.backend.base.Backend` seam the experiment
  runners use); socket mode transparently proxies the same requests to a
  daemon over a local unix socket.
- :mod:`repro.service.daemon` — the persistent planning service: an asyncio
  server speaking the small length-prefixed JSON protocol of
  :mod:`repro.service.protocol`, with admission control, per-tenant
  quotas/metrics and request coalescing (identical
  ``(backend, config-fingerprint, fault-diff)`` requests share a single
  lowering).
- :mod:`repro.service.store` — the sharded persistent plan store: spills
  the in-memory :mod:`repro.backend.plancache` to versioned on-disk shards
  shared across worker processes, with atomic per-writer files,
  corruption-tolerant loads, and the same delta-salted keys incremental
  repair uses, so repaired plans never alias from-scratch ones.

The request model and the evaluation engine both layers share live in
:mod:`repro.service.api`. Faulted requests are served through the
incremental-repair path (:meth:`OpticalRingNetwork.repair_plan`) rather
than from-scratch lowering.

Run a daemon with ``wrht-repro serve`` (or ``python -m repro.service
serve``) and point the figure runners at it with ``--service SOCKET``.
"""

from __future__ import annotations

from repro.service.api import PlanEngine, PlanRequest, comparable_dict
from repro.service.client import PlanClient, PlanResponse
from repro.service.errors import (
    ServiceError,
    ServiceProtocolError,
    ServiceRemoteError,
    ServiceRequestError,
)
from repro.service.store import (
    PersistentPlanCache,
    PlanStore,
    STORE_ENV,
    install_persistent_cache,
)

__all__ = [
    "PersistentPlanCache",
    "PlanClient",
    "PlanEngine",
    "PlanRequest",
    "PlanResponse",
    "PlanStore",
    "STORE_ENV",
    "ServiceError",
    "ServiceProtocolError",
    "ServiceRemoteError",
    "ServiceRequestError",
    "comparable_dict",
    "install_persistent_cache",
]
