"""Structured tracing for simulations.

Substrates emit :class:`TraceRecord` entries (time, category, payload dict)
into a :class:`Tracer`. Tests assert on traces — e.g. that no two optical
transfers overlap on the same (fiber, direction, wavelength, segment) — and
the CLI can dump them for debugging. Tracing is off by default and costs one
``if`` per emission when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        items = " ".join(f"{k}={v}" for k, v in sorted(self.payload.items()))
        return f"[{self.time:.9f}] {self.category} {items}".rstrip()


class Tracer:
    """Collects trace records; can be bounded, filtered, or disabled."""

    def __init__(self, enabled: bool = True, categories: set[str] | None = None) -> None:
        self.enabled = enabled
        self.categories = categories
        self._records: list[TraceRecord] = []

    def emit(self, time: float, category: str, **payload: Any) -> None:
        """Record one entry if tracing is on and the category is selected."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self._records.append(TraceRecord(time, category, payload))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(self, category: str | None = None) -> list[TraceRecord]:
        """All records, optionally filtered to one category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()


NULL_TRACER = Tracer(enabled=False)
"""A shared disabled tracer used as the default everywhere."""

TRACE_EVENTS: frozenset[str] = frozenset(
    {
        "electrical.step",
        "optical.live.fault",
        "optical.live.retry",
        "optical.live.round",
        "optical.live.step",
        "optical.round",
        "optical.step_cached",
    }
)
"""Every trace category the substrates emit.

The registry of record: tests filter on these names, and the REP005 lint
rule flags any ``tracer.emit(time, "name", ...)`` whose literal category is
absent here — add new categories to this set when introducing them.
"""
