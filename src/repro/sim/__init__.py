"""Discrete-event simulation (DES) kernel.

A small, deterministic, generator-based process engine in the style of SimPy,
built from scratch for this reproduction (the paper's "in-house simulator"
and its SimGrid usage both reduce to discrete-event scheduling):

- :class:`~repro.sim.engine.Simulator` — the event loop: a binary-heap event
  calendar with (time, priority, sequence) total ordering, so runs are fully
  deterministic and causality is checkable.
- :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timeout` —
  one-shot occurrences that processes wait on.
- :class:`~repro.sim.process.Process` — a Python generator driven by the
  engine; ``yield`` an event to suspend until it fires.
- :mod:`~repro.sim.resources` — capacity-limited resources, FIFO stores and
  latency/bandwidth pipes used to model links.
- :class:`~repro.sim.trace.Tracer` — structured event tracing for tests.
"""

from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Interrupted, Timeout
from repro.sim.process import Process
from repro.sim.resources import Pipe, Resource, Store
from repro.sim.rng import SeededRng
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupted",
    "Pipe",
    "Process",
    "Resource",
    "SeededRng",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
