"""The discrete-event simulation engine.

The engine keeps a binary-heap calendar of ``(time, priority, sequence,
event)`` entries. The three-part key makes execution order total and
deterministic: ties in time break by priority, then by insertion order.
Determinism matters here — the optical and electrical substrates are compared
against closed-form analytical models in the test suite, and any
nondeterminism would make those comparisons flaky.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

# Priority bands: NORMAL for model events, URGENT for engine-internal
# bookkeeping that must run before model events at the same timestamp.
URGENT = 0
NORMAL = 1


class EmptyCalendar(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Deterministic discrete-event simulator.

    Attributes:
        now: Current simulation time in seconds.
        metrics: Observability registry; defaults to the disabled
            :data:`~repro.obs.metrics.NULL_METRICS` (one branch per
            emission, no recording).
    """

    def __init__(self, metrics: MetricsRegistry = NULL_METRICS) -> None:
        self.now: float = 0.0
        self.metrics = metrics
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._n_processed = 0

    # -- event factory helpers -----------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event bound to this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Composite event firing when all ``events`` fire."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def schedule_callback(
        self, delay: float, callback: Callable[[], None], name: str = ""
    ) -> Event:
        """Run a plain callable ``delay`` seconds from now."""
        event = self.timeout(delay)
        event.name = name or "callback"
        event.callbacks.append(lambda _e: callback())
        return event

    # -- calendar -------------------------------------------------------
    def _enqueue(self, delay: float, event: Event, priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._sequence, event))

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Raises:
            EmptyCalendar: if the calendar is empty.
        """
        if not self._queue:
            raise EmptyCalendar
        time, _priority, _seq, event = heapq.heappop(self._queue)
        assert time >= self.now, "event calendar violated causality"
        self.now = time
        self._n_processed += 1
        event._process()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the calendar drains or ``until`` is reached.

        Args:
            until: Absolute stop time; ``None`` runs to quiescence.

        Returns:
            The simulation time when the run stopped.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._queue:
            if until is not None and self.peek() > until:
                self.now = until
                self._record_run()
                return self.now
            self.step()
        self._record_run()
        return self.now

    def _record_run(self) -> None:
        """Observe one completed :meth:`run` (deterministic simulated state)."""
        if not self.metrics.enabled:
            return
        self.metrics.inc("sim.run_calls")
        self.metrics.gauge("sim.events_processed", float(self._n_processed))
        self.metrics.gauge("sim.time_s", self.now)

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: start ``generator`` as a process and run to completion.

        Returns the process's return value; re-raises its exception.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.done:
            raise RuntimeError(
                f"process {name or generator!r} did not finish (deadlock?)"
            )
        if not proc.ok:
            raise proc.value
        return proc.value

    @property
    def n_processed(self) -> int:
        """Total events processed since construction (for tests/telemetry)."""
        return self._n_processed

    @property
    def n_pending(self) -> int:
        """Events currently waiting on the calendar."""
        return len(self._queue)
