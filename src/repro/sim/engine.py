"""The discrete-event simulation engine.

The engine keeps a binary-heap calendar of ``(time, priority, sequence,
event)`` entries. The three-part key makes execution order total and
deterministic: ties in time break by priority, then by insertion order.
Determinism matters here — the optical and electrical substrates are compared
against closed-form analytical models in the test suite, and any
nondeterminism would make those comparisons flaky.

The drain loop is *batched*: :meth:`Simulator.step_batch` processes every
event sharing the head timestamp in one pass, popping lazily from the heap
so events enqueued mid-batch at the same timestamp (zero-delay chains,
urgent bookkeeping) join the batch in exact heap order. The execution
order is therefore identical to repeated :meth:`Simulator.step` calls —
batching moves the stop-condition check and the causality assert from
per-event to per-timestamp, which is where barrier-heavy optical rounds
(one ``AllOf`` resuming hundreds of circuit processes at one instant)
spend their kernel time. Batch shape is observable under the ``sim.batch_*``
metrics and is itself deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.obs.metrics import COUNT_EDGES, NULL_METRICS, MetricsRegistry
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

# Priority bands: NORMAL for model events, URGENT for engine-internal
# bookkeeping that must run before model events at the same timestamp.
URGENT = 0
NORMAL = 1


class EmptyCalendar(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Deterministic discrete-event simulator.

    Attributes:
        now: Current simulation time in seconds.
        metrics: Observability registry; defaults to the disabled
            :data:`~repro.obs.metrics.NULL_METRICS` (one branch per
            emission, no recording).
    """

    def __init__(self, metrics: MetricsRegistry = NULL_METRICS) -> None:
        self.now: float = 0.0
        self.metrics = metrics
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._n_processed = 0
        self._n_batches = 0
        self._max_batch = 0

    # -- event factory helpers -----------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event bound to this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Composite event firing when all ``events`` fire."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def schedule_callback(
        self, delay: float, callback: Callable[[], None], name: str = ""
    ) -> Event:
        """Run a plain callable ``delay`` seconds from now."""
        event = self.timeout(delay)
        event.name = name or "callback"
        event.callbacks.append(lambda _e: callback())
        return event

    # -- calendar -------------------------------------------------------
    def _enqueue(self, delay: float, event: Event, priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._sequence, event))

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Raises:
            EmptyCalendar: if the calendar is empty.
        """
        if not self._queue:
            raise EmptyCalendar
        time, _priority, _seq, event = heapq.heappop(self._queue)
        assert time >= self.now, "event calendar violated causality"
        self.now = time
        self._n_processed += 1
        event._process()

    def step_batch(self) -> int:
        """Process every event sharing the head timestamp.

        Events are popped lazily, so an event enqueued *during* the batch
        at the same timestamp (zero-delay chains, urgent bookkeeping) is
        drained within it, in exact heap order — the execution order is
        identical to repeated :meth:`step` calls by construction. Only
        exact float equality joins a batch: timestamps that differ by an
        ulp form separate batches, which is slower but never wrong.

        Returns:
            The number of events processed (>= 1).

        Raises:
            EmptyCalendar: if the calendar is empty.
        """
        if not self._queue:
            raise EmptyCalendar
        head = self._queue[0][0]
        assert head >= self.now, "event calendar violated causality"
        self.now = head
        n_drained = 0
        while self._queue and self._queue[0][0] == head:
            _head, _priority, _seq, event = heapq.heappop(self._queue)
            n_drained += 1
            event._process()
        self._n_processed += n_drained
        self._n_batches += 1
        if n_drained > self._max_batch:
            self._max_batch = n_drained
        if self.metrics.enabled:
            self.metrics.observe(
                "sim.batch_events", float(n_drained), edges=COUNT_EDGES
            )
        return n_drained

    def run(self, until: Optional[float] = None) -> float:
        """Run until the calendar drains or ``until`` is reached.

        Drains batch-wise (:meth:`step_batch`): the stop condition is
        checked once per timestamp instead of once per event.

        Args:
            until: Absolute stop time; ``None`` runs to quiescence.

        Returns:
            The simulation time when the run stopped.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                self._record_run()
                return self.now
            self.step_batch()
        self._record_run()
        return self.now

    def _record_run(self) -> None:
        """Observe one completed :meth:`run` (deterministic simulated state)."""
        if not self.metrics.enabled:
            return
        self.metrics.inc("sim.run_calls")
        self.metrics.gauge("sim.events_processed", float(self._n_processed))
        self.metrics.gauge("sim.batches", float(self._n_batches))
        self.metrics.gauge("sim.batch_max_events", float(self._max_batch))
        self.metrics.gauge("sim.time_s", self.now)

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: start ``generator`` as a process and run to completion.

        Returns the process's return value; re-raises its exception.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.done:
            raise RuntimeError(
                f"process {name or generator!r} did not finish (deadlock?)"
            )
        if not proc.ok:
            raise proc.value
        return proc.value

    @property
    def n_processed(self) -> int:
        """Total events processed since construction (for tests/telemetry)."""
        return self._n_processed

    @property
    def n_pending(self) -> int:
        """Events currently waiting on the calendar."""
        return len(self._queue)

    @property
    def n_batches(self) -> int:
        """Timestamp batches drained via :meth:`step_batch` / :meth:`run`."""
        return self._n_batches

    @property
    def max_batch_events(self) -> int:
        """Largest single-timestamp batch drained so far."""
        return self._max_batch
