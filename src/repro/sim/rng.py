"""Seeded random number generation for reproducible simulations.

Every stochastic component (Random-Fit wavelength assignment, synthetic
datasets, failure injection in tests) draws from a :class:`SeededRng` so that
any run is reproducible from a single integer seed. Streams can be forked by
name, giving independent substreams that do not perturb each other when one
component consumes more randomness.
"""

from __future__ import annotations

import hashlib

import numpy as np


class SeededRng:
    """A named, forkable wrapper over :class:`numpy.random.Generator`."""

    def __init__(self, seed: int = 0, name: str = "root") -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self.name = name
        self.generator = np.random.default_rng(self._derive(seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def fork(self, name: str) -> "SeededRng":
        """Independent substream identified by ``name``."""
        return SeededRng(self.seed, f"{self.name}/{name}")

    # Thin conveniences over the numpy generator -------------------------
    def integers(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self.generator.integers(low, high))

    def choice(self, seq):
        """Uniform choice from a non-empty sequence."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self.generator.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> list:
        """Shuffle a list in place and return it."""
        self.generator.shuffle(seq)
        return seq

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float in ``[low, high)``."""
        return float(self.generator.uniform(low, high))

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        """Normal samples (scalar or array)."""
        return self.generator.normal(loc, scale, size)
