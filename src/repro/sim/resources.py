"""Shared resources for simulation processes.

Three primitives cover everything the substrates need:

- :class:`Resource` — a counted semaphore with FIFO granting (models MRR
  transmitter/receiver sets and switch ports).
- :class:`Store` — an unbounded FIFO of items with blocking ``get`` (models
  message queues between processes).
- :class:`Pipe` — a latency + serialization channel: a ``put`` of ``n``
  bytes occupies the pipe for ``n / rate`` seconds and the item becomes
  available to ``get`` after an additional propagation ``latency`` (a simple
  store-and-forward link model used by the electrical substrate's
  packet-level mode and by tests).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Resource:
    """Counted FIFO semaphore.

    ``acquire()`` returns an event that fires (with a token) once capacity is
    available; ``release()`` returns one unit of capacity and wakes the next
    waiter.
    """

    def __init__(self, sim: "Simulator", capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.name = name or "resource"
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        """Request one unit; the returned event fires when granted."""
        event = self.sim.event(name=f"{self.name}.acquire")
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
            if self.sim.metrics.enabled:
                # Observe the simulated seconds this waiter spent queued —
                # a deterministic quantity, captured when the grant fires.
                metrics, sim, t0 = self.sim.metrics, self.sim, self.sim.now
                event.callbacks.append(
                    lambda _e: metrics.observe(
                        "sim.resource.wait_s", sim.now - t0
                    )
                )
        return event

    def release(self) -> None:
        """Return one unit; grants the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"{self.name}: release without matching acquire")
        if self._waiters:
            # Hand the unit directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO of items with blocking ``get``."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name or "store"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item (FIFO)."""
        event = self.sim.event(name=f"{self.name}.get")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Pipe:
    """A serialized link: rate-limited occupancy plus fixed latency.

    Items are serialized one at a time at ``rate`` bytes/second (the sender
    holds the pipe for ``size / rate``), then arrive ``latency`` seconds
    later. This is the classic store-and-forward link used to model
    electrical hops; the optical substrate uses circuits instead.
    """

    def __init__(
        self,
        sim: "Simulator",
        rate: float,
        latency: float = 0.0,
        name: str = "",
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency!r}")
        self.sim = sim
        self.rate = rate
        self.latency = latency
        self.name = name or "pipe"
        self._store = Store(sim, name=f"{self.name}.buffer")
        self._busy_until = 0.0
        self.bytes_carried = 0.0

    def put(self, item: Any, size: float) -> Event:
        """Send ``item`` of ``size`` bytes; event fires when serialization ends."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size!r}")
        start = max(self.sim.now, self._busy_until)
        ser_done = start + size / self.rate
        self._busy_until = ser_done
        self.bytes_carried += size
        done = self.sim.event(name=f"{self.name}.sent")
        arrival_delay = (ser_done + self.latency) - self.sim.now
        self.sim.schedule_callback(arrival_delay, lambda: self._store.put(item))
        done.succeed(delay=ser_done - self.sim.now)
        return done

    def get(self) -> Event:
        """Receive the next delivered item (FIFO)."""
        return self._store.get()
