"""Generator-based simulation processes.

A process wraps a Python generator. Each ``yield`` must produce an
:class:`~repro.sim.events.Event`; the process suspends until that event
fires, then resumes with the event's value (or the event's exception raised
at the yield point). A process is itself an event that fires when the
generator returns, delivering the generator's return value — so processes
can wait on each other and compose with ``AllOf``/``AnyOf``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event, Interrupted

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Process(Event):
    """A running simulation process (also an awaitable event)."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__} "
                "(did you call the function instead of passing its generator?)"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off at the current time via an immediate engine event.
        bootstrap = sim.event(name=f"{self.name}.start")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def done(self) -> bool:
        """True once the generator has returned or raised."""
        return self.triggered

    @property
    def is_waiting(self) -> bool:
        """True while suspended on an event."""
        return self._waiting_on is not None

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupted` inside the process at its yield point.

        Interrupting a finished process is an error; interrupting a process
        that has not yet started is allowed and takes effect at start.
        """
        if self.done:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is not None:
            # Detach from the event we were waiting on, then resume with an
            # exception at the next engine tick.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        wakeup = self.sim.event(name=f"{self.name}.interrupt")
        wakeup.callbacks.append(self._resume)
        wakeup.fail(Interrupted(cause))

    # -- engine plumbing -------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                TypeError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event instances"
                )
            )
            return
        if target.sim is not self.sim:
            self._generator.close()
            self.fail(ValueError("yielded event belongs to a different Simulator"))
            return
        self._waiting_on = target
        if target.processed:
            # Event already fired and ran callbacks: resume on a zero-delay
            # echo event so we never re-enter the generator recursively.
            echo = self.sim.event(name=f"{self.name}.echo")
            echo.callbacks.append(self._resume)
            if target.ok:
                echo.succeed(target.value)
            else:
                echo.fail(target.value)
        else:
            target.callbacks.append(self._resume)
