"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot occurrence. Processes wait on events by
yielding them; the engine resumes every waiter when the event fires. Events
carry an arbitrary ``value`` (delivered as the result of the ``yield``) or an
exception (re-raised inside the waiting process).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Simulator

# Event lifecycle states.
PENDING = "pending"
TRIGGERED = "triggered"  # scheduled on the calendar, not yet processed
PROCESSED = "processed"  # callbacks have run


class Interrupted(Exception):
    """Raised inside a process that was interrupted while waiting."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __reduce__(self):
        """Pickle support: rebuild from the cause (sweep workers)."""
        return (type(self), (self.cause,))


class Event:
    """A one-shot occurrence that callbacks/processes can wait on."""

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool | None = None
        self._state = PENDING

    # -- inspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"event {self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception. Valid once triggered."""
        if self._state == PENDING:
            raise RuntimeError(f"event {self!r} has not been triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        self._trigger(ok=True, value=value, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure after ``delay``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._trigger(ok=False, value=exception, delay=delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float) -> None:
        if self._state != PENDING:
            raise RuntimeError(f"event {self!r} already triggered")
        self._ok = ok
        self._value = value
        self._state = TRIGGERED
        self.sim._enqueue(delay, self)

    def _process(self) -> None:
        """Run callbacks; invoked by the engine at fire time."""
        assert self._state == TRIGGERED
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or type(self).__name__
        return f"<{label} state={self._state}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay!r}")
        super().__init__(sim, name=f"Timeout({delay})")
        self.delay = delay
        self.succeed(value=value, delay=delay)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, name=type(self).__name__)
        self.events = tuple(events)
        self._n_fired = 0
        if not self.events:
            self.succeed(value=())
            return
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("all events must belong to the same Simulator")
            if event.triggered:
                # Already-fired events are observed via a zero-delay callback
                # so ordering stays consistent with the calendar.
                event.callbacks.append(self._on_fire) if not event.processed else self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._n_fired += 1
        if self._check():
            self.succeed(value=tuple(e.value for e in self.events if e.triggered and e.ok))

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired successfully."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._n_fired == len(self.events)


class AnyOf(_Condition):
    """Fires when the first constituent event fires successfully."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._n_fired >= 1
