"""Router (packet switch) model for the fat-tree.

The fluid model only needs two things from a router: its port budget
(validated at topology-build time) and its forwarding delay (charged once
per traversal). Routers are plain records; link bandwidth lives on
:class:`~repro.electrical.fattree.Link`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_positive_int


@dataclass
class Router:
    """One switch in the fat-tree.

    Attributes:
        router_id: Unique id within its layer.
        layer: ``"edge"`` or ``"core"``.
        radix: Total ports.
        forwarding_delay: Seconds added per traversal.
        ports_used: Ports consumed so far (bumped as links attach).
    """

    router_id: int
    layer: str
    radix: int
    forwarding_delay: float
    ports_used: int = field(default=0)

    def __post_init__(self) -> None:
        check_positive_int("radix", self.radix)
        if self.layer not in ("edge", "core"):
            raise ValueError(f"layer must be 'edge' or 'core', got {self.layer!r}")
        if self.forwarding_delay < 0:
            raise ValueError("forwarding_delay must be >= 0")

    def attach(self, n_ports: int = 1) -> None:
        """Consume ports for a new link; raises when the radix is exceeded."""
        if self.ports_used + n_ports > self.radix:
            raise ValueError(
                f"{self.layer} router {self.router_id}: cannot attach "
                f"{n_ports} port(s), {self.ports_used}/{self.radix} in use"
            )
        self.ports_used += n_ports

    @property
    def name(self) -> str:
        """Stable display name."""
        return f"{self.layer}{self.router_id}"
