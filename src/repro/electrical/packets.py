"""Packet-level electrical simulation — the fluid model's ground truth.

The fat-tree executor uses a fluid (max-min fair) model, as SimGrid does.
This module provides the microscopic counterpart on the DES kernel: every
transfer is chopped into Table 2's 72-byte packets; each link is a
rate-limited :class:`~repro.sim.resources.Pipe` whose delivery latency is
the downstream router's forwarding delay; a forwarder process per switch
output port store-and-forwards packets hop by hop. Output-port queueing,
cross-flow interleaving and pipeline-fill latency all emerge rather than
being assumed.

Purpose: validating the fluid model. For a single uncontended flow the
packet simulation converges to ``size/rate + routers·delay`` (the fluid
answer) up to per-packet quantization; under contention the interleaving
approximates the max-min fair share. The test suite checks both, which is
what justifies using the (vastly faster) fluid executor for the Fig 7
sweeps. O(packets × hops) events — keep payloads small.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.collectives.base import CommStep, Schedule
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.fattree import FatTree
from repro.electrical.routing import route
from repro.sim import Pipe, Simulator
from repro.util.validation import check_positive


@dataclass
class PacketRunResult:
    """Result of a packet-level run.

    Attributes:
        total_time: Seconds until the last packet of the last step arrived.
        n_packets: Packets injected across all steps.
        n_events: Kernel events processed.
        per_step: Duration of each executed step.
    """

    total_time: float
    n_packets: int
    n_events: int
    per_step: list[float]


class PacketLevelNetwork:
    """Store-and-forward packet simulation of the fat-tree."""

    def __init__(self, config: ElectricalSystemConfig) -> None:
        self.config = config
        self.tree = FatTree(config)

    def execute(self, schedule: Schedule, bytes_per_elem: float = 4.0) -> PacketRunResult:
        """Run ``schedule`` packet by packet (steps are barriers).

        Requires materialized steps; intended for small payloads.
        """
        if schedule.n_nodes > self.config.n_nodes:
            raise ValueError(
                f"schedule spans {schedule.n_nodes} nodes but the fat-tree "
                f"has {self.config.n_nodes} hosts"
            )
        check_positive("bytes_per_elem", bytes_per_elem)
        totals = PacketRunResult(0.0, 0, 0, [])
        clock = 0.0
        for step in schedule.iter_steps():
            duration, packets, events = self._run_step(step, bytes_per_elem)
            clock += duration
            totals.per_step.append(duration)
            totals.n_packets += packets
            totals.n_events += events
        totals.total_time = clock
        return totals

    # -- internals ------------------------------------------------------
    def _run_step(self, step: CommStep, bytes_per_elem: float) -> tuple[float, int, int]:
        sim = Simulator()
        rate = self.config.line_rate
        delay = self.config.router_delay
        pkt = self.config.packet_bytes
        links = self.tree.links

        # A packet arriving on a link lands at the link's head entity; the
        # forwarding delay applies when that entity is a router.
        def head_latency(link_id: int) -> float:
            return delay if links[link_id].kind != "host_down" else 0.0

        pipes = {
            link.link_id: Pipe(
                sim, rate=rate, latency=head_latency(link.link_id),
                name=f"link{link.link_id}",
            )
            for link in links
        }

        routes = [
            route(self.tree, t.src, t.dst, ecmp=self.config.ecmp)
            for t in step.transfers
        ]
        packet_counts = [
            max(1, math.ceil(t.n_elems * bytes_per_elem / pkt)) if t.n_elems else 0
            for t in step.transfers
        ]
        total_packets = sum(packet_counts)
        if total_packets == 0:
            return 0.0, 0, 0
        done = sim.event("step-complete")
        remaining = {
            i: count for i, count in enumerate(packet_counts) if count > 0
        }

        def forwarder(link_id: int):
            pipe = pipes[link_id]
            while True:
                packet = yield pipe.get()
                flow_id, path, hop = packet
                if hop + 1 < len(path):
                    pipes[path[hop + 1]].put((flow_id, path, hop + 1), size=pkt)
                else:
                    remaining[flow_id] -= 1
                    if remaining[flow_id] == 0:
                        del remaining[flow_id]
                        if not remaining and not done.triggered:
                            done.succeed(sim.now)

        used_links = {lid for r in routes for lid in r.links}
        for link_id in used_links:
            sim.process(forwarder(link_id), name=f"fwd{link_id}")

        # Round-robin injection across transfers so flows sharing a source
        # NIC interleave at packet granularity (like real NIC scheduling),
        # rather than one flow monopolizing the first link FIFO.
        cursors = {i: packet_counts[i] for i in range(len(routes)) if packet_counts[i]}
        while cursors:
            for i in list(cursors):
                path = routes[i].links
                pipes[path[0]].put((i, path, 0), size=pkt)
                cursors[i] -= 1
                if cursors[i] == 0:
                    del cursors[i]

        sim.run()
        if not done.processed:
            raise RuntimeError("packet step deadlocked (lost packets?)")
        return done.value, total_packets, sim.n_processed
