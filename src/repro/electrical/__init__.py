"""Electrical fat-tree interconnect substrate (Table 2, electrical rows).

The paper simulates its electrical baseline with SimGrid 3.3 on a two-level
fat-tree of 32-port routers (40 Gbit/s links, 25 µs router delay, 72-byte
packets, shortest-path routing). SimGrid is unavailable offline, so this
package implements the equivalent *fluid flow-level* model from scratch
(DESIGN.md §5): per step, every transfer becomes a flow over its
shortest-path links; link bandwidth is shared max-min fairly; a flow's
completion time is its fluid finish time plus 25 µs per traversed router.

Modules: :mod:`~repro.electrical.config` (parameters),
:mod:`~repro.electrical.fattree` (topology), :mod:`~repro.electrical.switch`
(router model), :mod:`~repro.electrical.routing` (paths + ECMP),
:mod:`~repro.electrical.flows` (max-min fair fluid simulation),
:mod:`~repro.electrical.network` (schedule executor).
"""

from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.fattree import FatTree, Link
from repro.electrical.flows import Flow, FluidSimulation, max_min_rates
from repro.electrical.network import ElectricalNetwork, ElectricalRunResult
from repro.electrical.packets import PacketLevelNetwork, PacketRunResult
from repro.electrical.routing import RoutePath
from repro.electrical.switch import Router

__all__ = [
    "ElectricalNetwork",
    "ElectricalRunResult",
    "ElectricalSystemConfig",
    "FatTree",
    "Flow",
    "FluidSimulation",
    "Link",
    "PacketLevelNetwork",
    "PacketRunResult",
    "RoutePath",
    "Router",
    "max_min_rates",
]
