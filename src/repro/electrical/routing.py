"""Shortest-path routing with deterministic ECMP core selection.

Paths in a two-level fat-tree are unique up to the core choice:

- same edge switch:  host → edge → host (1 router, 2 links);
- different edges:   host → edge → core → edge → host (3 routers, 4 links).

Among the equal-cost cores, flows hash deterministically on (src, dst) via
a multiplicative mix (so runs are reproducible), which spreads flows well
while still exposing the occasional hash-collision congestion real ECMP
suffers. A naive linear hash like ``(31·src + dst) mod n_core`` is *not*
usable here: recursive-doubling's power-of-two peer distances align with it
and funnel every flow of a step onto one core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.electrical.fattree import FatTree

_MIX_A = 0x9E3779B1  # golden-ratio multiplicative constants (Fibonacci hashing)
_MIX_B = 0x85EBCA77
_MASK32 = 0xFFFFFFFF


@dataclass(frozen=True)
class RoutePath:
    """A routed flow path.

    Attributes:
        links: Link ids in traversal order.
        n_routers: Routers crossed (for latency accounting).
    """

    links: tuple[int, ...]
    n_routers: int

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("a path needs at least one link")
        if self.n_routers < 0:
            raise ValueError("n_routers must be >= 0")


def ecmp_core(src: int, dst: int, n_core: int) -> int:
    """Deterministic ECMP hash over the equal-cost core switches."""
    h = ((src + 1) * _MIX_A) & _MASK32
    h ^= ((dst + 1) * _MIX_B) & _MASK32
    h = (h ^ (h >> 16)) * _MIX_A & _MASK32
    return (h >> 8) % n_core


def ideal_core(src: int, hosts_per_edge: int, n_core: int) -> int:
    """Collision-avoiding core choice: each host within an edge owns a
    dedicated uplink. Collision-free whenever every host sources at most
    one concurrent cross-edge flow (Ring, RD, BT steps all qualify)."""
    return (src % hosts_per_edge) % n_core


def route(tree: FatTree, src: int, dst: int, ecmp: str = "hash") -> RoutePath:
    """Shortest path from host ``src`` to host ``dst``.

    Args:
        tree: The topology.
        src: Source host.
        dst: Destination host.
        ecmp: ``"hash"`` (realistic flow hashing) or ``"ideal"``
            (per-host uplink ownership; ablation).

    Raises:
        ValueError: for self-routes, out-of-range hosts, or unknown ecmp.
    """
    if src == dst:
        raise ValueError(f"no route from host {src} to itself")
    if ecmp not in ("hash", "ideal"):
        raise ValueError(f"ecmp must be 'hash' or 'ideal', got {ecmp!r}")
    src_edge = tree.edge_of(src)
    dst_edge = tree.edge_of(dst)
    if src_edge == dst_edge:
        return RoutePath(
            links=(tree.host_up[src], tree.host_down[dst]),
            n_routers=1,
        )
    if ecmp == "hash":
        core = ecmp_core(src, dst, tree.n_core)
    else:
        core = ideal_core(src, tree.config.hosts_per_edge, tree.n_core)
    return RoutePath(
        links=(
            tree.host_up[src],
            tree.up[src_edge][core],
            tree.down[core][dst_edge],
            tree.host_down[dst],
        ),
        n_routers=3,
    )
