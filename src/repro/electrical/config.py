"""Electrical system configuration (Table 2, electrical rows).

The line-rate ``interpretation`` mirrors the optical side (DESIGN.md §6) so
that Fig 7's optical-vs-electrical comparison keeps both substrates on the
same units, whichever reading is chosen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import gbit_per_s, gbyte_per_s, usec
from repro.util.validation import check_positive, check_positive_int

INTERPRETATIONS = ("calibrated", "strict")


@dataclass(frozen=True)
class ElectricalSystemConfig:
    """Parameters of the simulated electrical fat-tree.

    Attributes:
        n_nodes: Host count N.
        router_radix: Ports per router (Table 2: 32, i.e. 16 hosts and 16
            uplinks per edge switch).
        line_rate_value: Numeric link rate (40 in Table 2).
        interpretation: ``"calibrated"`` (GB/s) or ``"strict"`` (Gbit/s).
        router_delay: Forwarding delay per traversed router (25 µs).
        packet_bytes: Packet size (72 B; kept for reporting parity with the
            optical side — the fluid model is packet-size agnostic).
        ecmp: Core selection among equal-cost paths: ``"hash"`` (realistic
            flow hashing with occasional collisions — the default) or
            ``"ideal"`` (per-host uplink assignment that is collision-free
            for one-flow-per-host patterns; ablation only).
    """

    n_nodes: int
    router_radix: int = 32
    line_rate_value: float = 40.0
    interpretation: str = "calibrated"
    router_delay: float = usec(25)
    packet_bytes: int = 72
    ecmp: str = "hash"

    def __post_init__(self) -> None:
        check_positive_int("n_nodes", self.n_nodes)
        check_positive_int("router_radix", self.router_radix)
        if self.router_radix < 2 or self.router_radix % 2 != 0:
            raise ValueError(
                f"router_radix must be an even number >= 2, got {self.router_radix!r}"
            )
        check_positive("line_rate_value", self.line_rate_value)
        if self.router_delay < 0:
            raise ValueError("router_delay must be >= 0")
        check_positive_int("packet_bytes", self.packet_bytes)
        if self.interpretation not in INTERPRETATIONS:
            raise ValueError(
                f"interpretation must be one of {INTERPRETATIONS}, "
                f"got {self.interpretation!r}"
            )
        if self.ecmp not in ("hash", "ideal"):
            raise ValueError(f"ecmp must be 'hash' or 'ideal', got {self.ecmp!r}")

    @property
    def line_rate(self) -> float:
        """Link rate in bytes/second."""
        if self.interpretation == "strict":
            return gbit_per_s(self.line_rate_value)
        return gbyte_per_s(self.line_rate_value)

    @property
    def hosts_per_edge(self) -> int:
        """Hosts hanging off one edge switch (half the radix)."""
        return self.router_radix // 2

    @property
    def n_core(self) -> int:
        """Core switches (half the radix, one uplink per edge to each)."""
        return self.router_radix // 2
