"""Max-min fair fluid flow simulation (the SimGrid-equivalent core).

Flow-level ("fluid") network models replace per-packet events with rate
shares: at any instant, every active flow gets its max-min fair share of
each link it crosses; the simulation jumps from flow completion to flow
completion, recomputing shares in between. This is the same family of model
SimGrid's network layer uses, which is why it is a faithful substitute for
the paper's electrical baseline (DESIGN.md §5).

:func:`max_min_rates` implements classic progressive filling:

1. every unfrozen link's fair share is ``residual_capacity / unfrozen_flows``;
2. the link with the smallest share is the bottleneck; its flows are frozen
   at that rate;
3. residual capacities shrink accordingly; repeat until all flows frozen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Flow:
    """One fluid flow.

    Attributes:
        flow_id: Caller-chosen identifier.
        links: Link ids the flow crosses.
        size: Total bytes to move.
        latency: Fixed delay added to the fluid finish time (router
            forwarding delays).
        remaining: Bytes still to move (mutated by the simulation).
        finish_time: Set when the flow completes.
    """

    flow_id: int
    links: tuple[int, ...]
    size: float
    latency: float = 0.0
    remaining: float = field(init=False)
    finish_time: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"flow size must be >= 0, got {self.size!r}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency!r}")
        if not self.links:
            raise ValueError("a flow needs at least one link")
        self.remaining = self.size


def max_min_rates(flows: list[Flow], capacities: list[float]) -> np.ndarray:
    """Max-min fair rates for ``flows`` over links with ``capacities``.

    Args:
        flows: Active flows (each with at least one link).
        capacities: Bytes/second per link id.

    Returns:
        Array of rates (bytes/second), one per flow, in input order.
    """
    n_flows = len(flows)
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates
    residual = np.asarray(capacities, dtype=float).copy()
    # flows_on[link] = indices of unfrozen flows crossing it
    flows_on: dict[int, set[int]] = {}
    for i, flow in enumerate(flows):
        for link in flow.links:
            flows_on.setdefault(link, set()).add(i)
    unfrozen = set(range(n_flows))
    while unfrozen:
        # Find the bottleneck link: smallest fair share among loaded links.
        bottleneck_share = None
        bottleneck_link = None
        for link, members in flows_on.items():
            if not members:
                continue
            share = residual[link] / len(members)
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link
        if bottleneck_link is None:
            raise AssertionError("unfrozen flows with no loaded links")
        # Freeze every flow on the bottleneck at the fair share.
        frozen_now = list(flows_on[bottleneck_link])
        for i in frozen_now:
            rates[i] = bottleneck_share
            unfrozen.discard(i)
            for link in flows[i].links:
                flows_on[link].discard(i)
                residual[link] -= bottleneck_share
        # Numerical guard: residuals may go slightly negative from float
        # accumulation; clamp so later shares stay non-negative.
        np.clip(residual, 0.0, None, out=residual)
        flows_on = {l: m for l, m in flows_on.items() if m}
    return rates


class FluidSimulation:
    """Run a set of flows to completion under max-min fair sharing."""

    def __init__(self, capacities: list[float]) -> None:
        if not capacities:
            raise ValueError("need at least one link")
        if any(c <= 0 for c in capacities):
            raise ValueError("all link capacities must be positive")
        self.capacities = list(capacities)

    def run(self, flows: list[Flow]) -> float:
        """Advance all ``flows`` to completion.

        Returns:
            The time the last flow finishes, *including* per-flow fixed
            latencies. Each flow's :attr:`Flow.finish_time` is set.
        """
        clock = 0.0
        zero_flows = [f for f in flows if f.size == 0]
        for f in zero_flows:
            f.remaining = 0.0
            f.finish_time = f.latency
        active = [f for f in flows if f.size > 0]
        while active:
            rates = max_min_rates(active, self.capacities)
            if not np.all(rates > 0):
                raise AssertionError("max-min assigned a zero rate to an active flow")
            # Jump to the next completion.
            dt = min(f.remaining / r for f, r in zip(active, rates))
            clock += dt
            still_active = []
            for f, r in zip(active, rates):
                f.remaining -= r * dt
                if f.remaining <= 1e-9 * max(f.size, 1.0):
                    f.remaining = 0.0
                    f.finish_time = clock + f.latency
                else:
                    still_active.append(f)
            active = still_active
        return max((f.finish_time for f in flows), default=0.0)
