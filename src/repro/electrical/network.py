"""Schedule executor on the electrical fat-tree.

Semantics mirror the optical executor (bulk-synchronous steps) so the two
substrates are compared like-for-like in Fig 7: a step's transfers become
concurrent fluid flows; the step lasts until the slowest flow finishes
(fluid time under max-min sharing, plus 25 µs per traversed router). Step
patterns are priced once and multiplied, exactly as on the optical side.

The executor follows the backend lowering contract
(:mod:`repro.backend.base`): :meth:`ElectricalNetwork.lower` routes each
distinct step pattern and prices its fluid timing (through the shared
cross-run :mod:`repro.backend.plancache`, keyed by the frozen config so a
changed radix/rate/ECMP mode can never reuse a stale plan);
:meth:`ElectricalNetwork.execute_plan` folds the priced entries into the
run timeline. ``execute()`` composes the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend.base import LoweredPlan, LoweredStep
from repro.backend.errors import BackendConfigError
from repro.backend.plancache import PlanCache, PlanCacheCounters, default_plan_cache
from repro.collectives.base import CommStep, Schedule
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.fattree import FatTree
from repro.electrical.flows import Flow, FluidSimulation
from repro.electrical.routing import route
from repro.obs.metrics import COUNT_EDGES, NULL_METRICS, MetricsRegistry
from repro.sim.trace import NULL_TRACER, Tracer

BACKEND_NAME = "electrical"


@dataclass(frozen=True)
class ElectricalStepTiming:
    """Timing of one profile entry on the fat-tree.

    Attributes:
        stage: Stage label of the representative step.
        count: Steps sharing this pattern.
        n_flows: Concurrent flows per step.
        duration: Seconds per step.
        max_link_share: Largest number of flows that shared one link
            (1 means congestion-free).
        bytes_per_step: Payload bytes one step moves.
    """

    stage: str
    count: int
    n_flows: int
    duration: float
    max_link_share: int
    bytes_per_step: float


@dataclass(frozen=True)
class ElectricalStepPlan:
    """Priced summary of one step pattern (the lowered payload).

    Attributes:
        duration: Seconds per step (fluid time + router latency).
        n_flows: Concurrent flows per step.
        max_link_share: Largest number of flows sharing one link.
        bytes_per_step: Payload bytes one step moves.
        flows: Per-flow ``(n_routers, payload_bytes)`` in transfer order —
            enough for :mod:`repro.analysis.energy` to price switching
            energy off the same lowering the timing used.
    """

    duration: float
    n_flows: int
    max_link_share: int
    bytes_per_step: float
    flows: tuple[tuple[int, float], ...]


@dataclass
class ElectricalRunResult:
    """Result of pricing a schedule on the electrical substrate.

    Attributes:
        algorithm: Schedule name.
        n_steps: Total communication steps.
        total_time: End-to-end communication seconds.
        total_bytes: Payload bytes moved across all steps.
        step_timings: One entry per profile run.
        cache: Plan-cache hit/miss/eviction tallies for this run.
    """

    algorithm: str
    n_steps: int
    total_time: float
    total_bytes: float
    step_timings: list[ElectricalStepTiming] = field(default_factory=list)
    cache: PlanCacheCounters = field(default_factory=PlanCacheCounters)

    @property
    def max_link_share(self) -> int:
        """Worst link sharing across all steps (congestion indicator)."""
        return max((t.max_link_share for t in self.step_timings), default=0)


class ElectricalNetwork:
    """The electrical interconnect substrate's schedule executor."""

    def __init__(
        self,
        config: ElectricalSystemConfig,
        tracer: Tracer | None = None,
        plan_cache: PlanCache | None = None,
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        self.config = config
        self.tree = FatTree(config)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.plan_cache = default_plan_cache() if plan_cache is None else plan_cache
        # "electrical" disambiguates from optical entries in the shared cache.
        self._plan_key_base = (config, "electrical")
        self._fluid = FluidSimulation(self.tree.capacities())

    def lower(self, schedule: Schedule, bytes_per_elem: float = 4.0) -> LoweredPlan:
        """Route and fluid-price every distinct step pattern.

        Raises:
            BackendConfigError: On a schedule/host-count mismatch or
                non-positive element width.
        """
        if schedule.n_nodes > self.config.n_nodes:
            raise BackendConfigError(
                f"schedule spans {schedule.n_nodes} nodes but the fat-tree "
                f"has {self.config.n_nodes} hosts",
                backend=BACKEND_NAME,
            )
        if bytes_per_elem <= 0:
            raise BackendConfigError(
                f"bytes_per_elem must be positive, got {bytes_per_elem!r}",
                backend=BACKEND_NAME,
            )
        counters = PlanCacheCounters()
        use_cache = self.plan_cache.enabled
        priced: dict[tuple, ElectricalStepPlan] = {}
        entries: list[LoweredStep] = []
        for step, count, key in schedule.lowering_profile():
            plan = priced.get(key)
            replay = plan is not None
            if plan is None:
                plan = self._price_pattern(step, key, bytes_per_elem, use_cache, counters)
                priced[key] = plan
            entries.append(
                LoweredStep(
                    stage=step.stage,
                    count=count,
                    n_transfers=step.n_transfers,
                    payload=plan,
                    replay=replay,
                )
            )
        if self.metrics.enabled:
            self.metrics.inc("plan_cache.hits", counters.hits)
            self.metrics.inc("plan_cache.misses", counters.misses)
            self.metrics.inc("plan_cache.evictions", counters.evictions)
        return LoweredPlan(
            backend=BACKEND_NAME,
            algorithm=schedule.algorithm,
            n_nodes=schedule.n_nodes,
            n_steps=schedule.n_steps,
            bytes_per_elem=bytes_per_elem,
            entries=tuple(entries),
            cache=counters,
        )

    def execute_plan(self, plan: LoweredPlan) -> ElectricalRunResult:
        """Fold a lowered plan into the run timeline (no routing)."""
        result = ElectricalRunResult(
            algorithm=plan.algorithm,
            n_steps=plan.n_steps,
            total_time=0.0,
            total_bytes=0.0,
            cache=PlanCacheCounters(**plan.cache.as_dict()),
        )
        for entry in plan.entries:
            priced: ElectricalStepPlan = entry.payload
            if not entry.replay:
                self.tracer.emit(
                    priced.duration, "electrical.step",
                    stage=entry.stage, n_flows=priced.n_flows,
                    max_link_share=priced.max_link_share,
                    duration=priced.duration,
                )
            result.step_timings.append(
                ElectricalStepTiming(
                    stage=entry.stage, count=entry.count,
                    n_flows=priced.n_flows, duration=priced.duration,
                    max_link_share=priced.max_link_share,
                    bytes_per_step=priced.bytes_per_step,
                )
            )
            result.total_time += priced.duration * entry.count
            result.total_bytes += priced.bytes_per_step * entry.count
            if self.metrics.enabled:
                # Simulated, per distinct profile entry — deterministic.
                self.metrics.observe("electrical.step.duration_s", priced.duration)
                self.metrics.observe(
                    "electrical.step.link_share",
                    float(priced.max_link_share),
                    edges=COUNT_EDGES,
                )
        return result

    def execute(self, schedule: Schedule, bytes_per_elem: float = 4.0) -> ElectricalRunResult:
        """Price ``schedule`` end to end (``lower`` + ``execute_plan``).

        Args:
            schedule: Any schedule whose node ids fit the host count.
            bytes_per_elem: Gradient element width (float32 → 4).
        """
        return self.execute_plan(self.lower(schedule, bytes_per_elem))

    # -- internals ------------------------------------------------------
    def _price_pattern(
        self,
        step: CommStep,
        pattern_key: tuple,
        bytes_per_elem: float,
        use_cache: bool,
        counters: PlanCacheCounters,
    ) -> ElectricalStepPlan:
        """Fluid-priced summary for one pattern, via the cross-run cache."""
        if use_cache:
            key = (pattern_key, self._plan_key_base, bytes_per_elem)
            cached = self.plan_cache.get(key)
            if cached is not None:
                counters.hits += 1
                return cached
            counters.misses += 1
        with self.metrics.span("electrical.price_pattern"):
            # Routing stays per-pair (graph lookups), but sizes, byte totals
            # and link shares are computed over numpy arrays instead of a
            # per-transfer accumulation loop. ``step_bytes`` keeps the
            # transfer-order sequential sum so the floats are bit-identical
            # to the scalar path (numpy pairwise summation could differ in
            # the last ulp).
            paths = [
                route(self.tree, t.src, t.dst, ecmp=self.config.ecmp)
                for t in step.transfers
            ]
            sizes = (
                np.array(
                    [t.n_elems for t in step.transfers], dtype=np.float64
                )
                * bytes_per_elem
            )
            step_bytes = float(sum(sizes.tolist()))
            flows = [
                Flow(
                    flow_id=i,
                    links=path.links,
                    size=float(sizes[i]),
                    latency=path.n_routers * self.config.router_delay,
                )
                for i, path in enumerate(paths)
            ]
            flow_meta = [
                (path.n_routers, float(sizes[i]))
                for i, path in enumerate(paths)
            ]
            all_links = np.fromiter(
                (link for path in paths for link in path.links), dtype=np.int64
            )
            max_link_share = (
                int(np.bincount(all_links).max()) if all_links.size else 0
            )
            duration = self._fluid.run(flows)
        summary = ElectricalStepPlan(
            duration=duration,
            n_flows=len(flows),
            max_link_share=max_link_share,
            bytes_per_step=step_bytes,
            flows=tuple(flow_meta),
        )
        if use_cache:
            counters.evictions += self.plan_cache.put(key, summary)
        return summary
