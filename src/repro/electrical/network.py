"""Schedule executor on the electrical fat-tree.

Semantics mirror the optical executor (bulk-synchronous steps) so the two
substrates are compared like-for-like in Fig 7: a step's transfers become
concurrent fluid flows; the step lasts until the slowest flow finishes
(fluid time under max-min sharing, plus 25 µs per traversed router). Step
patterns are priced once and multiplied, exactly as on the optical side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collectives.base import CommStep, Schedule
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.fattree import FatTree
from repro.electrical.flows import Flow, FluidSimulation
from repro.electrical.routing import route
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class ElectricalStepTiming:
    """Timing of one profile entry on the fat-tree.

    Attributes:
        stage: Stage label of the representative step.
        count: Steps sharing this pattern.
        n_flows: Concurrent flows per step.
        duration: Seconds per step.
        max_link_share: Largest number of flows that shared one link
            (1 means congestion-free).
        bytes_per_step: Payload bytes one step moves.
    """

    stage: str
    count: int
    n_flows: int
    duration: float
    max_link_share: int
    bytes_per_step: float


@dataclass
class ElectricalRunResult:
    """Result of pricing a schedule on the electrical substrate."""

    algorithm: str
    n_steps: int
    total_time: float
    total_bytes: float
    step_timings: list[ElectricalStepTiming] = field(default_factory=list)

    @property
    def max_link_share(self) -> int:
        """Worst link sharing across all steps (congestion indicator)."""
        return max((t.max_link_share for t in self.step_timings), default=0)


class ElectricalNetwork:
    """The electrical interconnect substrate's schedule executor."""

    def __init__(
        self,
        config: ElectricalSystemConfig,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config
        self.tree = FatTree(config)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._fluid = FluidSimulation(self.tree.capacities())

    def execute(self, schedule: Schedule, bytes_per_elem: float = 4.0) -> ElectricalRunResult:
        """Price ``schedule`` end to end on the fat-tree.

        Args:
            schedule: Any schedule whose node ids fit the host count.
            bytes_per_elem: Gradient element width (float32 → 4).
        """
        if schedule.n_nodes > self.config.n_nodes:
            raise ValueError(
                f"schedule spans {schedule.n_nodes} nodes but the fat-tree "
                f"has {self.config.n_nodes} hosts"
            )
        if bytes_per_elem <= 0:
            raise ValueError(f"bytes_per_elem must be positive, got {bytes_per_elem!r}")
        result = ElectricalRunResult(
            algorithm=schedule.algorithm,
            n_steps=schedule.n_steps,
            total_time=0.0,
            total_bytes=0.0,
        )
        cache: dict[tuple, ElectricalStepTiming] = {}
        for step, count in schedule.timing_profile:
            key = step.pattern_key()
            timing = cache.get(key)
            if timing is None:
                timing = self._time_step(step, count, bytes_per_elem)
                cache[key] = timing
            elif timing.count != count:
                timing = ElectricalStepTiming(
                    stage=step.stage, count=count, n_flows=timing.n_flows,
                    duration=timing.duration,
                    max_link_share=timing.max_link_share,
                    bytes_per_step=timing.bytes_per_step,
                )
            result.step_timings.append(timing)
            result.total_time += timing.duration * count
            result.total_bytes += timing.bytes_per_step * count
        return result

    # -- internals ------------------------------------------------------
    def _time_step(
        self, step: CommStep, count: int, bytes_per_elem: float
    ) -> ElectricalStepTiming:
        flows: list[Flow] = []
        link_load: dict[int, int] = {}
        step_bytes = 0.0
        for i, t in enumerate(step.transfers):
            path = route(self.tree, t.src, t.dst, ecmp=self.config.ecmp)
            size = t.n_elems * bytes_per_elem
            step_bytes += size
            flows.append(
                Flow(
                    flow_id=i,
                    links=path.links,
                    size=size,
                    latency=path.n_routers * self.config.router_delay,
                )
            )
            for link in path.links:
                link_load[link] = link_load.get(link, 0) + 1
        duration = self._fluid.run(flows)
        max_share = max(link_load.values(), default=0)
        self.tracer.emit(
            duration, "electrical.step",
            stage=step.stage, n_flows=len(flows),
            max_link_share=max_share, duration=duration,
        )
        return ElectricalStepTiming(
            stage=step.stage, count=count, n_flows=len(flows),
            duration=duration, max_link_share=max_share,
            bytes_per_step=step_bytes,
        )
