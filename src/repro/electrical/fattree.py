"""Two-level fat-tree (leaf–spine) topology builder.

Layout for radix-``r`` routers: each edge switch serves ``r/2`` hosts and
has ``r/2`` uplinks, one to each of the ``r/2`` core switches — full
bisection bandwidth, as Table 2 specifies. Host ``h`` attaches to edge
``h // (r/2)``.

Link inventory (all at the configured line rate, full duplex modeled as a
separate link per direction):

- ``host_up[h]``   — host h → its edge switch,
- ``host_down[h]`` — edge switch → host h,
- ``up[e][c]``     — edge e → core c,
- ``down[c][e]``   — core c → edge e.

Note on scale: Table 2's two-level 32-port tree natively caps at
``16 × 32 = 512`` hosts. The paper nevertheless evaluates 1024 electrical
nodes (Fig 7); we follow the spec's *intent* — "full bisection bandwidth" —
by letting core switches take one port per edge even beyond radix when
``allow_oversubscribed_radix`` is set (the default, with the violation
recorded in :attr:`FatTree.radix_exceeded`), rather than silently changing
the topology. See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.switch import Router


@dataclass(frozen=True)
class Link:
    """One directed link.

    Attributes:
        link_id: Dense index into the capacity table.
        kind: ``host_up`` / ``host_down`` / ``up`` / ``down``.
        a: Source endpoint id (host or switch id depending on kind).
        b: Destination endpoint id.
        capacity: Bytes/second.
    """

    link_id: int
    kind: str
    a: int
    b: int
    capacity: float


class FatTree:
    """The built topology: routers, links, and host placement."""

    def __init__(
        self, config: ElectricalSystemConfig, allow_oversubscribed_radix: bool = True
    ) -> None:
        self.config = config
        hpe = config.hosts_per_edge
        self.n_edges = -(-config.n_nodes // hpe)  # ceil
        self.n_core = config.n_core
        self.radix_exceeded = self.n_edges > config.router_radix
        if self.radix_exceeded and not allow_oversubscribed_radix:
            raise ValueError(
                f"{config.n_nodes} hosts need {self.n_edges} edge switches, "
                f"but radix-{config.router_radix} cores support at most "
                f"{config.router_radix}"
            )
        self.edges = [
            Router(e, "edge", config.router_radix, config.router_delay)
            for e in range(self.n_edges)
        ]
        core_radix = max(config.router_radix, self.n_edges)
        self.cores = [
            Router(c, "core", core_radix, config.router_delay)
            for c in range(self.n_core)
        ]

        self._links: list[Link] = []
        rate = config.line_rate
        self.host_up: list[int] = []
        self.host_down: list[int] = []
        for h in range(config.n_nodes):
            edge = self.edges[h // hpe]
            edge.attach(1)
            self.host_up.append(self._add("host_up", h, edge.router_id, rate))
            self.host_down.append(self._add("host_down", edge.router_id, h, rate))
        self.up: list[list[int]] = []
        self.down: list[list[int]] = [[-1] * self.n_edges for _ in range(self.n_core)]
        for e in range(self.n_edges):
            row = []
            for c in range(self.n_core):
                self.edges[e].attach(1)
                self.cores[c].attach(1)
                row.append(self._add("up", e, c, rate))
                self.down[c][e] = self._add("down", c, e, rate)
            self.up.append(row)

    def _add(self, kind: str, a: int, b: int, capacity: float) -> int:
        link = Link(len(self._links), kind, a, b, capacity)
        self._links.append(link)
        return link.link_id

    @property
    def links(self) -> list[Link]:
        """All links in id order."""
        return self._links

    @property
    def n_links(self) -> int:
        """Total directed link count."""
        return len(self._links)

    def edge_of(self, host: int) -> int:
        """Edge switch serving ``host``."""
        if not (0 <= host < self.config.n_nodes):
            raise ValueError(f"host {host} out of range")
        return host // self.config.hosts_per_edge

    def capacities(self) -> list[float]:
        """Per-link capacities indexed by link id."""
        return [link.capacity for link in self._links]
