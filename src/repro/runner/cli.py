"""Command-line interface: ``wrht-repro <command>``.

Commands mirror the deliverables:

- ``table1``              — Table 1 step counts.
- ``fig4``/``fig5``/``fig6``/``fig7`` — regenerate one figure's series.
- ``plan``                — show the WRHT plan for an (N, w) pair.
- ``verify``              — numerically verify an algorithm's schedule.
- ``check``               — statically verify golden plans / run the lint.
- ``obs``                 — observe one figure cell (metrics, manifest).
- ``serve``               — planning-service daemon / smoke (repro.service).
- ``all``                 — everything above at paper defaults.

Figure commands accept ``--service SOCKET`` to route every grid cell
through a running planning daemon instead of lowering in-process.
"""

from __future__ import annotations

import argparse
import sys

from repro.util.tables import AsciiTable


def _add_common(p: argparse.ArgumentParser) -> None:
    from repro.backend import registry

    p.add_argument(
        "--mode", choices=("analytical", "simulated"), default="analytical",
        help="closed-form models or full substrate simulation",
    )
    p.add_argument(
        "--interpretation", choices=("calibrated", "strict"), default="calibrated",
        help="line-rate units (see DESIGN.md §6)",
    )
    p.add_argument(
        "--backend", choices=registry.available(), default=None,
        help="force one pricing backend for every cell "
        "(default: the mode's historical mapping)",
    )
    p.add_argument(
        "--service", metavar="SOCKET", default=None,
        help="route every cell through the planning daemon at this unix "
        "socket (see 'wrht-repro serve'; answers are bit-identical to "
        "in-process evaluation)",
    )
    p.add_argument(
        "--t-tune", type=float, default=0.0, metavar="SECONDS",
        help="per-MRR thermal tuning time; enables the reconfiguration "
        "model (repro.optical.reconfig) on the optical/analytic backends "
        "(default 0 — disabled, timings bit-identical)",
    )
    p.add_argument(
        "--overlap", action=argparse.BooleanOptionalAction, default=True,
        help="overlap MRR tuning with the previous round's transmission "
        "(--no-overlap charges it serially; only meaningful with --t-tune)",
    )


def _cmd_table1(args) -> int:
    from repro.runner.experiments import run_table1

    counts = run_table1(args.nodes, args.wavelengths)
    table = AsciiTable(["algorithm", f"steps (N={args.nodes}, w={args.wavelengths})"])
    for name, steps in counts.items():
        table.add_row([name, steps])
    print(table.render())
    return 0


def _figure(runner, args, reductions: list[tuple[str, str]]) -> int:
    result = runner(
        mode=args.mode, interpretation=args.interpretation,
        backend=getattr(args, "backend", None),
        service=getattr(args, "service", None),
        t_tune=getattr(args, "t_tune", 0.0),
        overlap=getattr(args, "overlap", True),
    )
    print(result.render())
    summary = AsciiTable(["comparison", "avg reduction (%)"])
    for baseline, target in reductions:
        summary.add_row([f"{target} vs {baseline}", result.reduction_vs(baseline, target)])
    print()
    print(summary.render())
    return 0


def _cmd_fig4(args) -> int:
    from repro.runner.experiments import run_fig4

    result = run_fig4(
        mode=args.mode, interpretation=args.interpretation,
        backend=getattr(args, "backend", None),
        service=getattr(args, "service", None),
        t_tune=getattr(args, "t_tune", 0.0),
        overlap=getattr(args, "overlap", True),
    )
    print(result.render())
    ref_algo, ref_m = result.meta["reference"]
    print(f"\nnormalized to {ref_algo}@m={ref_m} per workload:")
    for wl in result.workloads:
        norm = result.normalized(wl, ref_algo, ref_m)
        row = ", ".join(f"m={m}: {v:.2f}" for m, v in zip(result.x_values, norm[(wl, "WRHT")]))
        print(f"  {wl:9s} {row}")
    return 0


def _cmd_fig5(args) -> int:
    from repro.runner.experiments import run_fig5

    return _figure(
        run_fig5, args,
        [("Ring", "WRHT"), ("H-Ring", "WRHT"), ("BT", "WRHT")],
    )


def _cmd_fig6(args) -> int:
    from repro.runner.experiments import run_fig6

    return _figure(
        run_fig6, args,
        [("Ring", "WRHT"), ("H-Ring", "WRHT"), ("BT", "WRHT")],
    )


def _cmd_fig7(args) -> int:
    from repro.runner.experiments import run_fig7

    return _figure(
        run_fig7, args,
        [("E-Ring", "O-Ring"), ("E-Ring", "WRHT"), ("RD", "WRHT")],
    )


def _cmd_plan(args) -> int:
    from repro.core.constraints import OpticalPhyParams
    from repro.core.planner import plan_wrht

    phy = OpticalPhyParams() if args.phy else None
    plan = plan_wrht(args.nodes, args.wavelengths, m=args.group_size, phy=phy)
    print(plan.describe())
    return 0


def _cmd_verify(args) -> int:
    from repro.collectives import build_schedule, verify_allreduce

    kwargs = {}
    if args.algorithm in ("wrht",):
        kwargs["n_wavelengths"] = args.wavelengths
    if args.algorithm in ("hring",):
        kwargs["m"] = min(5, args.nodes)
    schedule = build_schedule(
        args.algorithm, args.nodes, max(args.nodes, 8), materialize=True, **kwargs
    )
    verify_allreduce(schedule)
    print(
        f"{args.algorithm}: All-reduce over {args.nodes} nodes verified "
        f"({schedule.n_steps} steps)"
    )
    return 0


def _cmd_show(args) -> int:
    from repro.collectives import build_schedule
    from repro.collectives.render import render_schedule

    kwargs = {}
    if args.algorithm == "wrht":
        kwargs["n_wavelengths"] = args.wavelengths
    if args.algorithm == "hring":
        kwargs["m"] = min(5, args.nodes)
    schedule = build_schedule(
        args.algorithm, args.nodes, max(args.nodes, 8), materialize=True, **kwargs
    )
    print(render_schedule(schedule))
    return 0


def _cmd_check(args) -> int:
    from repro.check.cli import main as check_main

    return check_main(["check", *args.rest])


def _cmd_obs(args) -> int:
    from repro.obs.cli import main as obs_main

    return obs_main(args.rest)


def _cmd_serve(args) -> int:
    from repro.service.__main__ import main as service_main

    return service_main(args.rest)


def _cmd_report(args) -> int:
    from repro.runner.results import write_report

    text = write_report(
        args.output, mode=args.mode, interpretation=args.interpretation,
        backend=getattr(args, "backend", None),
    )
    print(f"wrote {len(text.splitlines())} lines to {args.output}")
    return 0


def _cmd_all(args) -> int:
    for cmd in (_cmd_table1, _cmd_fig4, _cmd_fig5, _cmd_fig6, _cmd_fig7):
        print("=" * 72)
        cmd(args)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (exposed for the docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="wrht-repro",
        description="WRHT (ICPP 2023) reproduction: tables, figures, plans.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1 step counts")
    p.add_argument("--nodes", type=int, default=1024)
    p.add_argument("--wavelengths", type=int, default=64)
    p.set_defaults(fn=_cmd_table1)

    for name, fn in (
        ("fig4", _cmd_fig4), ("fig5", _cmd_fig5),
        ("fig6", _cmd_fig6), ("fig7", _cmd_fig7),
    ):
        p = sub.add_parser(name, help=f"regenerate {name}")
        _add_common(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser("plan", help="show a WRHT plan")
    p.add_argument("--nodes", type=int, default=1024)
    p.add_argument("--wavelengths", type=int, default=64)
    p.add_argument("--group-size", type=int, default=None)
    p.add_argument("--phy", action="store_true", help="apply Sec 4.4 constraints")
    p.set_defaults(fn=_cmd_plan)

    from repro.collectives.registry import available_algorithms

    p = sub.add_parser("verify", help="numerically verify a schedule")
    p.add_argument("algorithm", choices=available_algorithms())
    p.add_argument("--nodes", type=int, default=32)
    p.add_argument("--wavelengths", type=int, default=8)
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("show", help="render a schedule's activity grid")
    p.add_argument("algorithm", choices=available_algorithms())
    p.add_argument("--nodes", type=int, default=15)
    p.add_argument("--wavelengths", type=int, default=2)
    p.set_defaults(fn=_cmd_show)

    p = sub.add_parser(
        "check",
        help="statically verify golden plans (repro.check)",
        add_help=False,
    )
    p.add_argument("rest", nargs=argparse.REMAINDER)
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser(
        "obs",
        help="run one figure cell with metrics (repro.obs)",
        add_help=False,
    )
    p.add_argument("rest", nargs=argparse.REMAINDER)
    p.set_defaults(fn=_cmd_obs)

    p = sub.add_parser(
        "serve",
        help="planning-service daemon and smoke check (repro.service)",
        add_help=False,
    )
    p.add_argument("rest", nargs=argparse.REMAINDER)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("report", help="write a markdown results document")
    _add_common(p)
    p.add_argument("--output", default="RESULTS.md")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("all", help="run everything at paper defaults")
    _add_common(p)
    p.add_argument("--nodes", type=int, default=1024)
    p.add_argument("--wavelengths", type=int, default=64)
    p.set_defaults(fn=_cmd_all)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (``wrht-repro`` console script)."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["obs"]:
        # Forward verbatim for the same reason as ``check`` below.
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv[:1] == ["serve"]:
        # Forward verbatim for the same reason as ``check`` below.
        from repro.service.__main__ import main as service_main

        return service_main(argv[1:])
    if argv[:1] == ["check"]:
        # Forward verbatim: argparse REMAINDER drops leading optionals, so
        # the check subcommand's flags are parsed by its own parser.
        # ``check lint …`` / ``check flow …`` select that parser's
        # corresponding subcommand.
        from repro.check.cli import main as check_main

        if argv[1:2] in (["lint"], ["flow"]):
            return check_main(argv[1:])
        return check_main(argv)
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
