"""Machine-generated results document (``wrht-repro report``).

Regenerates every experiment and writes a self-contained markdown record —
raw series, paper-style normalizations, and average-reduction comparisons —
so a fresh checkout can refresh EXPERIMENTS.md's measured columns with one
command.
"""

from __future__ import annotations

import io
import json
import os

from repro.runner.experiments import run_fig4, run_fig5, run_fig6, run_fig7, run_table1
from repro.runner.report import ExperimentResult

PAPER_REDUCTIONS = {
    "fig5": [("Ring", "WRHT", 13.74), ("H-Ring", "WRHT", 9.29), ("BT", "WRHT", 75.0)],
    "fig6": [("Ring", "WRHT", 65.23), ("H-Ring", "WRHT", 43.81), ("BT", "WRHT", 82.22)],
    "fig7": [
        ("E-Ring", "O-Ring", 48.74),
        ("E-Ring", "WRHT", 61.23),
        ("RD", "WRHT", 55.51),
    ],
}

PAPER_TABLE1 = {"Ring": 2046, "H-Ring": 417, "BT": 20, "WRHT": 3}


def _markdown_table(headers: list[str], rows: list[list]) -> str:
    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        cells = [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row]
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)


def _experiment_section(result: ExperimentResult, buf: io.StringIO) -> None:
    buf.write(f"\n## {result.name} ({result.mode}, {result.interpretation} units)\n\n")
    for workload in result.workloads:
        rows = [
            [algo] + [v * 1e3 for v in result.series[(workload, algo)]]
            for algo in result.algorithms()
        ]
        buf.write(f"**{workload}** (ms by {result.x_label}):\n\n")
        buf.write(
            _markdown_table(
                ["algorithm"] + [str(x) for x in result.x_values], rows
            )
        )
        buf.write("\n\n")
    reductions = PAPER_REDUCTIONS.get(result.name)
    if reductions:
        rows = [
            [f"{target} vs {baseline}", result.reduction_vs(baseline, target), paper]
            for baseline, target, paper in reductions
        ]
        buf.write("Average reductions:\n\n")
        buf.write(_markdown_table(["comparison", "measured (%)", "paper (%)"], rows))
        buf.write("\n")


def _bench_label(algorithm: str) -> str:
    if algorithm.startswith("scring-p"):
        return f"SCRing q={algorithm.removeprefix('scring-p')}"
    return {"ring": "Ring", "bt": "BT", "rd": "RD", "swing": "Swing",
            "wrht": "WRHT", "hring": "H-Ring"}.get(algorithm, algorithm)


def _collectives_section(buf: io.StringIO, baseline_path: str) -> None:
    """Render the rival-collectives bake-off from the pinned bench baseline.

    Reads the gated ``BENCH_collectives.json`` (refreshed via
    ``python scripts/bench_gate.py --update-baseline``) instead of
    re-running the bench, so ``report`` stays fast and the published
    numbers are exactly the gated ones. Skipped when the baseline is
    absent (fresh checkout before the first bench run).
    """
    if not os.path.exists(baseline_path):
        return
    with open(baseline_path, encoding="utf-8") as fh:
        data = json.load(fh)
    curves, faults = data.get("curves", []), data.get("faults", [])
    if not curves:
        return
    buf.write("\n## Rival-collectives bake-off (benchmarks/bench_collectives.py)\n\n")
    buf.write(
        "Swing (arXiv 2401.09356) and the short-circuiting ring SCRing\n"
        "(arXiv 2510.03491, pipeline knob `q`) raced against the paper's\n"
        "lineup; full algorithm x backend x N x payload grid pinned in\n"
        "`BENCH_collectives.json` and gated by `compare_collectives`.\n"
        "Headline cells (completion time, largest pinned payload):\n"
    )
    for backend in ("optical", "analytic"):
        cells = [r for r in curves if r["backend"] == backend]
        if not cells:
            continue
        n = max(r["n_nodes"] for r in cells)
        elems = max(r["elems"] for r in cells)
        rows = sorted(
            (r for r in cells if r["n_nodes"] == n and r["elems"] == elems),
            key=lambda r: r["total_time_s"],
        )
        buf.write(f"\n**{backend.capitalize()} backend, N={n}, {elems:,} elems:**\n\n")
        buf.write(_markdown_table(
            ["algorithm", "steps", "time (ms)"],
            [[_bench_label(r["algorithm"]), r["n_steps"], r["total_time_s"] * 1e3]
             for r in rows],
        ))
        buf.write("\n")
    if faults:
        n_clean = sum(1 for r in faults if r["n_errors"] == 0)
        algos = sorted({r["algorithm"] for r in faults})
        scenarios = sorted({r["scenario"] for r in faults})
        lo = min(r["availability"] for r in faults)
        hi = max(r["availability"] for r in faults)
        buf.write(
            f"\nFault grid: {len(algos)} algorithms x {len(scenarios)} canonical"
            f" fault scenarios replan through the degraded path;"
            f" {n_clean}/{len(faults)} cells verify clean."
            f" Availability (healthy/degraded time) spans"
            f" {lo:.2f}-{hi:.2f}.\n"
        )


def generate_report(
    mode: str = "analytical",
    interpretation: str = "calibrated",
    backend: str | None = None,
    collectives_baseline: str = "BENCH_collectives.json",
) -> str:
    """Regenerate every experiment and render the markdown report.

    ``backend`` (a :mod:`repro.backend.registry` name) forces every figure
    through one pricing backend; ``None`` keeps the mode's mapping.
    ``collectives_baseline`` points at the pinned bake-off JSON rendered
    as the closing section (skipped when the file is absent).
    """
    buf = io.StringIO()
    buf.write("# Generated results (wrht-repro report)\n")
    buf.write(f"\nMode: {mode}; line-rate interpretation: {interpretation}.\n")
    if backend is not None:
        buf.write(f"\nBackend override: {backend}.\n")

    counts = run_table1()
    buf.write("\n## Table 1 — steps (N=1024, w=64)\n\n")
    rows = [
        [name, counts[name], PAPER_TABLE1.get(name, "—")]
        for name in ("Ring", "H-Ring", "BT", "RD", "WRHT")
    ]
    buf.write(_markdown_table(["algorithm", "measured", "paper"], rows))
    buf.write("\n")

    for runner in (run_fig4, run_fig5, run_fig6, run_fig7):
        _experiment_section(
            runner(mode=mode, interpretation=interpretation, backend=backend), buf
        )
    _collectives_section(buf, collectives_baseline)
    return buf.getvalue()


def write_report(
    path: str,
    mode: str = "analytical",
    interpretation: str = "calibrated",
    backend: str | None = None,
) -> str:
    """Write the report to ``path``; returns the rendered text."""
    text = generate_report(mode=mode, interpretation=interpretation, backend=backend)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
