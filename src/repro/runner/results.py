"""Machine-generated results document (``wrht-repro report``).

Regenerates every experiment and writes a self-contained markdown record —
raw series, paper-style normalizations, and average-reduction comparisons —
so a fresh checkout can refresh EXPERIMENTS.md's measured columns with one
command.
"""

from __future__ import annotations

import io

from repro.runner.experiments import run_fig4, run_fig5, run_fig6, run_fig7, run_table1
from repro.runner.report import ExperimentResult

PAPER_REDUCTIONS = {
    "fig5": [("Ring", "WRHT", 13.74), ("H-Ring", "WRHT", 9.29), ("BT", "WRHT", 75.0)],
    "fig6": [("Ring", "WRHT", 65.23), ("H-Ring", "WRHT", 43.81), ("BT", "WRHT", 82.22)],
    "fig7": [
        ("E-Ring", "O-Ring", 48.74),
        ("E-Ring", "WRHT", 61.23),
        ("RD", "WRHT", 55.51),
    ],
}

PAPER_TABLE1 = {"Ring": 2046, "H-Ring": 417, "BT": 20, "WRHT": 3}


def _markdown_table(headers: list[str], rows: list[list]) -> str:
    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        cells = [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row]
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)


def _experiment_section(result: ExperimentResult, buf: io.StringIO) -> None:
    buf.write(f"\n## {result.name} ({result.mode}, {result.interpretation} units)\n\n")
    for workload in result.workloads:
        rows = [
            [algo] + [v * 1e3 for v in result.series[(workload, algo)]]
            for algo in result.algorithms()
        ]
        buf.write(f"**{workload}** (ms by {result.x_label}):\n\n")
        buf.write(
            _markdown_table(
                ["algorithm"] + [str(x) for x in result.x_values], rows
            )
        )
        buf.write("\n\n")
    reductions = PAPER_REDUCTIONS.get(result.name)
    if reductions:
        rows = [
            [f"{target} vs {baseline}", result.reduction_vs(baseline, target), paper]
            for baseline, target, paper in reductions
        ]
        buf.write("Average reductions:\n\n")
        buf.write(_markdown_table(["comparison", "measured (%)", "paper (%)"], rows))
        buf.write("\n")


def generate_report(
    mode: str = "analytical",
    interpretation: str = "calibrated",
    backend: str | None = None,
) -> str:
    """Regenerate every experiment and render the markdown report.

    ``backend`` (a :mod:`repro.backend.registry` name) forces every figure
    through one pricing backend; ``None`` keeps the mode's mapping.
    """
    buf = io.StringIO()
    buf.write("# Generated results (wrht-repro report)\n")
    buf.write(f"\nMode: {mode}; line-rate interpretation: {interpretation}.\n")
    if backend is not None:
        buf.write(f"\nBackend override: {backend}.\n")

    counts = run_table1()
    buf.write("\n## Table 1 — steps (N=1024, w=64)\n\n")
    rows = [
        [name, counts[name], PAPER_TABLE1.get(name, "—")]
        for name in ("Ring", "H-Ring", "BT", "RD", "WRHT")
    ]
    buf.write(_markdown_table(["algorithm", "measured", "paper"], rows))
    buf.write("\n")

    for runner in (run_fig4, run_fig5, run_fig6, run_fig7):
        _experiment_section(
            runner(mode=mode, interpretation=interpretation, backend=backend), buf
        )
    return buf.getvalue()


def write_report(
    path: str,
    mode: str = "analytical",
    interpretation: str = "calibrated",
    backend: str | None = None,
) -> str:
    """Write the report to ``path``; returns the rendered text."""
    text = generate_report(mode=mode, interpretation=interpretation, backend=backend)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
