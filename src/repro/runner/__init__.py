"""Experiment harness: one entry point per paper table/figure.

:mod:`~repro.runner.experiments` defines ``run_table1`` and ``run_fig4`` …
``run_fig7`` mirroring Sec 5's four experiments; each returns an
:class:`~repro.runner.report.ExperimentResult` carrying raw seconds,
paper-style normalizations and average-reduction summaries. The benchmark
suite and the CLI both render these results; EXPERIMENTS.md records them
against the paper's numbers.
"""

from repro.runner.experiments import (
    clear_network_caches,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
)
from repro.runner.faultsweep import (
    FaultScenarioResult,
    default_fault_scenarios,
    run_fault_scenario,
    run_fault_sweep,
)
from repro.runner.report import ExperimentResult, percent_reduction
from repro.runner.sweep import SweepCombinationError, SweepFailure, sweep

__all__ = [
    "ExperimentResult",
    "FaultScenarioResult",
    "SweepCombinationError",
    "SweepFailure",
    "clear_network_caches",
    "default_fault_scenarios",
    "percent_reduction",
    "run_fault_scenario",
    "run_fault_sweep",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_table1",
    "sweep",
]
