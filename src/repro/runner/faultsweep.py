"""Availability/overhead sweeps over fault scenarios (``repro.faults``).

Each cell prices the same workload twice — once on the healthy system and
once degraded under a named :class:`~repro.faults.models.FaultSet` — and
reports the slowdown plus the availability ratio (healthy / degraded
throughput). The degraded schedule is the replanned one
(:func:`repro.faults.build_degraded_wrht_schedule`), statically verified by
:mod:`repro.check` before its number is trusted, so a scenario whose
degraded plan violates any PLAN rule surfaces as a nonzero error count
rather than a silently wrong data point.

Two backends are supported per cell:

- ``"optical"`` — full substrate lowering against the faulted config
  (masked RWA, detours, quarantines), verified with the complete optical
  evidence (circuits re-derived, PLAN007 armed);
- ``"analytic"`` — the closed forms with the degraded wavelength budget
  (:class:`~repro.backend.analytic.AnalyticBackend` with ``faults=``),
  verified structurally.

Used by ``benchmarks/bench_faults.py`` and the ``python -m repro.faults``
smoke CLI; scenarios and results pickle, so the grid can run through
:func:`repro.runner.sweep.sweep` with ``workers > 1``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.backend.analytic import AnalyticBackend
from repro.check.context import optical_context
from repro.check.engine import verify_plan
from repro.check.findings import errors
from repro.collectives import build_wrht_schedule
from repro.core.planner import plan_wrht
from repro.faults import build_degraded_wrht_schedule, plan_wrht_degraded
from repro.faults.models import (
    CutFiber,
    DeadWavelength,
    DroppedNode,
    FaultSet,
    MrrPortFault,
    PowerDroop,
)
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.runner.sweep import sweep

FAULT_BACKENDS = ("optical", "analytic")


@dataclass(frozen=True)
class FaultScenarioResult:
    """One (scenario, backend) cell of a fault sweep.

    Attributes:
        scenario: Scenario name.
        backend: ``"optical"`` or ``"analytic"``.
        n_nodes: Ring size of the healthy system.
        n_survivors: Nodes still participating under the fault set.
        healthy_time: All-reduce seconds on the healthy system.
        degraded_time: All-reduce seconds under the fault set.
        slowdown_pct: ``100 × (degraded − healthy) / healthy``.
        availability: ``healthy_time / degraded_time`` — the fraction of
            healthy throughput the degraded system retains (1.0 = no loss).
        n_errors: ``ERROR`` findings from :mod:`repro.check` on the
            degraded plan. Zero for every shipped scenario.
    """

    scenario: str
    backend: str
    n_nodes: int
    n_survivors: int
    healthy_time: float
    degraded_time: float
    slowdown_pct: float
    availability: float
    n_errors: int


def default_fault_scenarios(
    n_nodes: int, n_wavelengths: int
) -> dict[str, FaultSet]:
    """The canonical named scenarios for one system size.

    Covers every fault kind once, plus the compound case from the
    acceptance scenario (dead wavelength + dead representative). The
    dropped node is always a level-0 representative so re-election is
    actually exercised.
    """
    plan = plan_wrht(n_nodes, n_wavelengths)
    representative = plan.levels[0].groups[0].representative
    return {
        "dead-wavelength": FaultSet.of(DeadWavelength(0)),
        "dead-representative": FaultSet.of(DroppedNode(representative)),
        "stuck-mrr": FaultSet.of(
            MrrPortFault(node=1, wavelength=0, mode="stuck")
        ),
        "cut-fiber": FaultSet.of(CutFiber(segment=0, direction="cw")),
        "laser-droop": FaultSet.of(PowerDroop(droop_db=1.0)),
        "compound": FaultSet.of(
            DeadWavelength(0), DroppedNode(representative)
        ),
    }


def _optical_cell(
    faults: FaultSet,
    n_nodes: int,
    n_wavelengths: int,
    total_elems: int,
    bytes_per_elem: float,
    verify: bool,
) -> tuple[float, float, int, int]:
    """(healthy_s, degraded_s, n_survivors, n_errors) on the substrate."""
    healthy_cfg = OpticalSystemConfig(
        n_nodes=n_nodes, n_wavelengths=n_wavelengths
    )
    healthy_net = OpticalRingNetwork(healthy_cfg)
    healthy_sched = build_wrht_schedule(
        n_nodes, total_elems, n_wavelengths=n_wavelengths
    )
    healthy_plan = healthy_net.lower(healthy_sched, bytes_per_elem)
    healthy_s = healthy_net.execute_plan(healthy_plan).total_time

    degraded_cfg = OpticalSystemConfig(
        n_nodes=n_nodes, n_wavelengths=n_wavelengths, faults=faults
    )
    degraded_sched = build_degraded_wrht_schedule(
        n_nodes, total_elems, faults, n_wavelengths=n_wavelengths
    )
    degraded_net = OpticalRingNetwork(degraded_cfg)
    degraded_plan = degraded_net.lower(degraded_sched, bytes_per_elem)
    degraded_s = degraded_net.execute_plan(degraded_plan).total_time
    n_errors = 0
    if verify:
        context = optical_context(
            degraded_net,
            degraded_sched,
            degraded_plan,
            bytes_per_elem=bytes_per_elem,
        )
        n_errors = len(errors(verify_plan(context=context)))
    survivors = n_nodes - len(faults.dead_nodes)
    return healthy_s, degraded_s, survivors, n_errors


def _analytic_cell(
    faults: FaultSet,
    n_nodes: int,
    n_wavelengths: int,
    total_elems: int,
    bytes_per_elem: float,
    verify: bool,
) -> tuple[float, float, int, int]:
    """(healthy_s, degraded_s, n_survivors, n_errors) via the closed forms.

    Degraded pricing evaluates the closed form over the *survivor* count
    with the degraded wavelength budget (``AnalyticBackend(faults=...)``),
    i.e. the k-node template the shrunk schedule remaps — the exact
    wall-clock model of the degraded collective.
    """
    model = OpticalSystemConfig(
        n_nodes=n_nodes, n_wavelengths=n_wavelengths
    ).cost_model()
    healthy = AnalyticBackend(model, w=n_wavelengths)
    healthy_sched = build_wrht_schedule(
        n_nodes, total_elems, n_wavelengths=n_wavelengths, materialize=False
    )
    healthy_plan = healthy.lower(healthy_sched)
    healthy_s = healthy.execute(healthy_plan).total_time

    degraded = AnalyticBackend(model, w=n_wavelengths, faults=faults)
    plan = plan_wrht_degraded(n_nodes, faults, n_wavelengths=n_wavelengths)
    degraded_sched = build_wrht_schedule(
        plan.n_nodes, total_elems, plan=plan, materialize=False
    )
    degraded_plan = degraded.lower(degraded_sched)
    degraded_s = degraded.execute(degraded_plan).total_time
    n_errors = 0
    if verify:
        n_errors = len(errors(verify_plan(degraded_plan, degraded_sched)))
    return healthy_s, degraded_s, plan.n_nodes, n_errors


def run_fault_scenario(
    name: str,
    faults: FaultSet,
    *,
    n_nodes: int = 16,
    n_wavelengths: int = 8,
    total_elems: int = 100_000,
    backend: str = "optical",
    bytes_per_elem: float = 4.0,
    verify: bool = True,
) -> FaultScenarioResult:
    """Price one fault scenario against its healthy baseline.

    Raises:
        ValueError: Unknown ``backend``.
        BackendError: The fault set leaves no feasible degraded system
            (e.g. every wavelength dead, or a segment cut both ways).
    """
    if backend == "optical":
        cell = _optical_cell
    elif backend == "analytic":
        cell = _analytic_cell
    else:
        raise ValueError(
            f"backend must be one of {FAULT_BACKENDS}, got {backend!r}"
        )
    healthy_s, degraded_s, survivors, n_errors = cell(
        faults, n_nodes, n_wavelengths, total_elems, bytes_per_elem, verify
    )
    return FaultScenarioResult(
        scenario=name,
        backend=backend,
        n_nodes=n_nodes,
        n_survivors=survivors,
        healthy_time=healthy_s,
        degraded_time=degraded_s,
        slowdown_pct=100.0 * (degraded_s - healthy_s) / healthy_s,
        availability=healthy_s / degraded_s,
        n_errors=n_errors,
    )


def _run_cell(
    scenario: tuple[str, FaultSet],
    backend: str,
    *,
    n_nodes: int,
    n_wavelengths: int,
    total_elems: int,
    bytes_per_elem: float,
    verify: bool,
) -> FaultScenarioResult:
    """Picklable sweep cell (scenario arrives as a ``(name, set)`` pair)."""
    name, faults = scenario
    return run_fault_scenario(
        name,
        faults,
        n_nodes=n_nodes,
        n_wavelengths=n_wavelengths,
        total_elems=total_elems,
        backend=backend,
        bytes_per_elem=bytes_per_elem,
        verify=verify,
    )


def run_fault_sweep(
    scenarios: Mapping[str, FaultSet] | None = None,
    *,
    n_nodes: int = 16,
    n_wavelengths: int = 8,
    total_elems: int = 100_000,
    backends: Sequence[str] = FAULT_BACKENDS,
    bytes_per_elem: float = 4.0,
    verify: bool = True,
    workers: int | None = None,
    on_error: str = "raise",
) -> list[FaultScenarioResult]:
    """Price every scenario on every backend, in deterministic grid order.

    Args:
        scenarios: ``name -> FaultSet``; defaults to
            :func:`default_fault_scenarios` for the given system size.
        backends: Subset of :data:`FAULT_BACKENDS`.
        workers / on_error: Forwarded to :func:`repro.runner.sweep.sweep`
            (captured failures are dropped from the returned list — check
            the sweep directly when you need them).

    Returns:
        One :class:`FaultScenarioResult` per surviving cell, scenario-major.
    """
    if scenarios is None:
        scenarios = default_fault_scenarios(n_nodes, n_wavelengths)
    fn = functools.partial(
        _run_cell,
        n_nodes=n_nodes,
        n_wavelengths=n_wavelengths,
        total_elems=total_elems,
        bytes_per_elem=bytes_per_elem,
        verify=verify,
    )
    grid = sweep(
        fn,
        {"scenario": list(scenarios.items()), "backend": list(backends)},
        workers=workers,
        on_error=on_error,
    )
    return [cell for cell in grid.values() if cell]
