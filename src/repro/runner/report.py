"""Result containers and the paper's normalization/averaging conventions.

The paper reports two kinds of numbers:

- **normalized bars** — every figure divides by one designated cell (e.g.
  Fig 6 divides by "the first result of WRHT in ResNet50");
- **average reductions** — "WRHT reduces communication time by X% compared
  with Y" means the mean over all (workload, x-axis) cells of
  ``(t_Y − t_WRHT) / t_Y``.

Both conventions are implemented here once so every experiment and bench
reports them identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.util.tables import AsciiTable


def percent_reduction(baseline: Sequence[float], target: Sequence[float]) -> float:
    """Mean of ``(b − t)/b`` over paired cells, as a percentage.

    Negative values mean the target is *slower* than the baseline.
    """
    if len(baseline) != len(target):
        raise ValueError(f"length mismatch: {len(baseline)} vs {len(target)}")
    if not baseline:
        raise ValueError("need at least one cell")
    total = 0.0
    for b, t in zip(baseline, target):
        if b <= 0:
            raise ValueError(f"baseline cell must be positive, got {b!r}")
        total += (b - t) / b
    return 100.0 * total / len(baseline)


@dataclass
class ExperimentResult:
    """All cells of one experiment.

    Attributes:
        name: Experiment id (``"fig6"``, ...).
        mode: ``"analytical"`` or ``"simulated"``.
        interpretation: Line-rate interpretation used (DESIGN.md §6).
        x_label: Meaning of the x axis (``"nodes"``, ``"wavelengths"``, ...).
        x_values: X-axis points, in order.
        workloads: Workload names, in figure order.
        series: ``(workload, algorithm) -> [seconds per x]``.
        meta: Extra experiment-specific data.
    """

    name: str
    mode: str
    interpretation: str
    x_label: str
    x_values: list
    workloads: list[str]
    series: dict[tuple[str, str], list[float]] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def algorithms(self) -> list[str]:
        """Algorithm labels present, preserving insertion order."""
        seen: dict[str, None] = {}
        for _, algo in self.series:
            seen.setdefault(algo, None)
        return list(seen)

    def cell(self, workload: str, algorithm: str, x) -> float:
        """One measurement in seconds."""
        return self.series[(workload, algorithm)][self.x_values.index(x)]

    def cells(self, algorithm: str) -> list[float]:
        """All cells of one algorithm across workloads × x (row-major)."""
        out = []
        for workload in self.workloads:
            out.extend(self.series[(workload, algorithm)])
        return out

    def reduction_vs(self, baseline: str, target: str = "WRHT") -> float:
        """Paper-style average reduction of ``target`` vs ``baseline`` (%)."""
        return percent_reduction(self.cells(baseline), self.cells(target))

    def normalized(self, ref_workload: str, ref_algorithm: str, ref_x) -> dict:
        """All series divided by one reference cell (figure normalization)."""
        ref = self.cell(ref_workload, ref_algorithm, ref_x)
        if ref <= 0:
            raise ValueError("reference cell must be positive")
        return {key: [v / ref for v in vals] for key, vals in self.series.items()}

    def table(self, workload: str, unit: float = 1e-3, unit_name: str = "ms") -> AsciiTable:
        """Seconds table for one workload (algorithms × x)."""
        t = AsciiTable([f"{self.x_label}"] + [str(x) for x in self.x_values])
        for algo in self.algorithms():
            t.add_row(
                [f"{algo} ({unit_name})"]
                + [v / unit for v in self.series[(workload, algo)]]
            )
        return t

    def render(self, unit: float = 1e-3, unit_name: str = "ms") -> str:
        """Full multi-workload report as text."""
        blocks = [
            f"== {self.name} [{self.mode}, {self.interpretation} units] =="
        ]
        for workload in self.workloads:
            blocks.append(f"-- {workload} --")
            blocks.append(self.table(workload, unit, unit_name).render())
        return "\n".join(blocks)
