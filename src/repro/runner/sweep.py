"""Generic cartesian parameter sweeps.

Used by the experiment definitions and the ablation benches: run a callable
over the cartesian product of named parameter lists and collect results
keyed by the parameter tuple.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Mapping, Sequence


def sweep(
    fn: Callable[..., Any],
    parameters: Mapping[str, Sequence],
) -> dict[tuple, Any]:
    """Evaluate ``fn`` on every combination of ``parameters``.

    Args:
        fn: Called with one keyword argument per parameter name.
        parameters: ``name -> list of values``; iteration order of the
            mapping fixes the key-tuple order.

    Returns:
        ``{(v1, v2, ...): fn(name1=v1, name2=v2, ...)}`` in product order.
    """
    if not parameters:
        raise ValueError("sweep needs at least one parameter")
    names = list(parameters)
    results: dict[tuple, Any] = {}
    for combo in itertools.product(*(parameters[n] for n in names)):
        results[combo] = fn(**dict(zip(names, combo)))
    return results
