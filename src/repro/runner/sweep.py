"""Generic cartesian parameter sweeps, serial or process-parallel.

Used by the experiment definitions and the ablation benches: run a callable
over the cartesian product of named parameter lists and collect results
keyed by the parameter tuple.

With ``workers=N`` the combinations are dispatched in chunks to a
``ProcessPoolExecutor``. Results come back in *product order* regardless of
worker completion order, so a parallel sweep is a drop-in replacement for a
serial one. Each worker process carries its own
:mod:`repro.backend.plancache` — on Linux (fork start method) workers
inherit whatever the parent already warmed. When the persistent plan store
is in play (the default cache is a
:class:`~repro.service.store.PersistentPlanCache`, or ``WRHT_PLAN_STORE``
names a store root), every worker binds to its own per-process shard files
via :func:`repro.service.store.ensure_worker_store` — workers share warmed
plans through the store without ever clobbering one shared file.

Failures can be captured per combination (``on_error="capture"``): a
failing combo yields a :class:`SweepFailure` record in its slot instead of
aborting the whole sweep — what a 2000-point paper-figure grid needs when
one corner hits an infeasible RWA budget.
"""

from __future__ import annotations

import itertools
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

ON_ERROR = ("raise", "capture")


@dataclass(frozen=True)
class SweepFailure:
    """One failed sweep combination (``on_error="capture"`` mode).

    Attributes:
        params: The keyword arguments of the failing call.
        error: ``repr`` of the raised exception.
        traceback: Formatted traceback text for debugging.
    """

    params: dict[str, Any]
    error: str
    traceback: str

    def __bool__(self) -> bool:
        """Failures are falsy so ``if result:`` filters them naturally."""
        return False


class SweepCombinationError(RuntimeError):
    """A combination failed inside a worker process (``on_error="raise"``).

    Wraps the worker-side traceback text (the original exception object may
    not survive pickling back to the parent). ``params`` names the failing
    combination, ``error`` is the ``repr`` of the original exception and
    ``traceback`` the formatted worker-side traceback. The error itself
    pickles with all three intact (it may cross process boundaries again,
    e.g. in nested sweeps).
    """

    def __init__(self, params: dict[str, Any], error: str, tb: str) -> None:
        self.params = dict(params)
        self.error = error
        self.traceback = tb
        super().__init__(
            f"sweep combination {params!r} failed: {error}\n{tb}"
        )

    def __reduce__(self):
        """Pickle via the 3-argument constructor (the default exception
        reduction would replay only the formatted message)."""
        return (self.__class__, (self.params, self.error, self.traceback))


def _run_combo(
    fn: Callable[..., Any],
    params: dict[str, Any],
    capture: bool,
) -> tuple[Any, bool]:
    """Evaluate one combination; returns (payload, ok)."""
    try:
        return fn(**params), True
    except Exception as exc:  # noqa: BLE001 — per-combo isolation is the point
        if not capture:
            raise
        return (
            SweepFailure(
                params=params,
                error=repr(exc),
                traceback=_traceback.format_exc(),
            ),
            False,
        )


def _run_chunk(
    fn: Callable[..., Any],
    names: list[str],
    combos: list[tuple],
    on_error: str,
) -> list[tuple[Any, bool]]:
    """Worker entry point: evaluate a chunk of combinations in order.

    Always captures exceptions (worker-side tracebacks rarely pickle); the
    parent re-raises for ``on_error="raise"``.
    """
    from repro.service.store import ensure_worker_store

    # Re-key any inherited persistent plan cache to this worker's pid (and
    # install one from WRHT_PLAN_STORE under the spawn start method) so
    # parallel workers never write the same shard file.
    ensure_worker_store()
    out = []
    for combo in combos:
        payload, ok = _run_combo(fn, dict(zip(names, combo)), capture=True)
        out.append((payload, ok))
    return out


def sweep(
    fn: Callable[..., Any],
    parameters: Mapping[str, Sequence],
    workers: int | None = None,
    chunk_size: int | None = None,
    on_error: str = "raise",
) -> dict[tuple, Any]:
    """Evaluate ``fn`` on every combination of ``parameters``.

    Args:
        fn: Called with one keyword argument per parameter name. Must be
            picklable (module-level function or :func:`functools.partial`
            of one) when ``workers`` is set.
        parameters: ``name -> list of values``; iteration order of the
            mapping fixes the key-tuple order.
        workers: ``None``/``0``/``1`` runs serially in-process (bit-exact
            seed behaviour); ``N > 1`` dispatches to a process pool.
        chunk_size: Combinations per worker task; defaults to spreading the
            product over ``4 × workers`` tasks (at least 1 per task).
        on_error: ``"raise"`` (default) propagates the first failure in
            product order; ``"capture"`` stores a :class:`SweepFailure` in
            the failing combo's slot and keeps going.

    Returns:
        ``{(v1, v2, ...): fn(name1=v1, name2=v2, ...)}`` in product order —
        identical ordering whether serial or parallel.
    """
    if not parameters:
        raise ValueError("sweep needs at least one parameter")
    if on_error not in ON_ERROR:
        raise ValueError(f"on_error must be one of {ON_ERROR}, got {on_error!r}")
    names = list(parameters)
    combos = list(itertools.product(*(parameters[n] for n in names)))
    results: dict[tuple, Any] = {}

    if workers is None or workers <= 1:
        for combo in combos:
            payload, _ok = _run_combo(
                fn, dict(zip(names, combo)), capture=on_error == "capture"
            )
            results[combo] = payload
        return results

    if chunk_size is None:
        chunk_size = max(1, len(combos) // (workers * 4) or 1)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = [combos[i : i + chunk_size] for i in range(0, len(combos), chunk_size)]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_chunk, fn, names, chunk, on_error) for chunk in chunks
        ]
        # Collect in submission order: product-order determinism.
        for chunk, future in zip(chunks, futures):
            try:
                chunk_results = future.result()
            except Exception as exc:  # noqa: BLE001 — pool-level failure
                # The whole chunk died at pool level (worker killed →
                # BrokenProcessPool, or the chunk's result failed to
                # pickle/unpickle). No worker-side payloads exist, so
                # synthesize one failure per slot to keep the product-order
                # contract; "raise" surfaces the chunk's first combination.
                tb = _traceback.format_exc()
                if on_error == "raise":
                    raise SweepCombinationError(
                        dict(zip(names, chunk[0])), repr(exc), tb
                    ) from exc
                for combo in chunk:
                    results[combo] = SweepFailure(
                        params=dict(zip(names, combo)),
                        error=repr(exc),
                        traceback=tb,
                    )
                continue
            for combo, (payload, ok) in zip(chunk, chunk_results):
                if not ok and on_error == "raise":
                    raise SweepCombinationError(
                        payload.params, payload.error, payload.traceback
                    )
                results[combo] = payload
    return results
