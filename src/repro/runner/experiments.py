"""The paper's four evaluation experiments plus Table 1 (Sec 5.2–5.6).

Every experiment runs in two modes:

- ``"analytical"`` — the closed-form cost models of
  :mod:`repro.core.timing` (Eq 6 and per-baseline equivalents);
- ``"simulated"``  — schedules actually routed, wavelength-assigned and
  priced on the substrates (:mod:`repro.optical.network`,
  :mod:`repro.electrical.network`). The electrical side of Fig 7 is always
  simulated (its contention has no closed form).

The two modes agree to float precision for the full-vector algorithms and
within the profile chunk-rounding for the ring-based ones — asserted in the
test suite, so "analytical" is a trustworthy fast path for the full
paper-scale sweeps.
"""

from __future__ import annotations

import functools

from repro.collectives.registry import build_schedule
from repro.core.timing import algorithm_time
from repro.core.wavelengths import optimal_group_size
from repro.dnn.workload import PAPER_WORKLOADS, DnnWorkload
from repro.electrical.config import ElectricalSystemConfig
from repro.electrical.network import ElectricalNetwork
from repro.optical.config import OpticalSystemConfig
from repro.optical.network import OpticalRingNetwork
from repro.runner.report import ExperimentResult
from repro.runner.sweep import sweep

MODES = ("analytical", "simulated")

# Paper defaults.
FIG4_GROUP_SIZES = (17, 33, 65, 129)
FIG5_WAVELENGTHS = (4, 16, 64, 256)
FIG6_NODES = (1024, 2048, 3072, 4096)
FIG7_NODES = (128, 256, 512, 1024)
HRING_M = 5
DEFAULT_WAVELENGTHS = 64


def _check_mode(mode: str) -> None:
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")


# Substrate executors are cached per configuration so repeated experiment
# calls (and their internal step-pattern caches) are reused across sweeps.
_OPTICAL_NETS: dict[tuple, OpticalRingNetwork] = {}
_ELECTRICAL_NETS: dict[tuple, ElectricalNetwork] = {}


def _optical_time(
    algo: str,
    n: int,
    w: int,
    workload: DnnWorkload,
    mode: str,
    interpretation: str,
    wrht_m: int | None = None,
    hring_m: int = HRING_M,
) -> float:
    """Seconds for one algorithm on the optical ring, either mode."""
    if mode == "analytical":
        cfg = OpticalSystemConfig(
            n_nodes=n, n_wavelengths=w, interpretation=interpretation
        )
        return algorithm_time(
            algo, n, float(workload.gradient_bytes), cfg.cost_model(),
            wrht_m=wrht_m, hring_m=hring_m, w=w,
        )
    cfg_key = (n, w, interpretation)
    net = _OPTICAL_NETS.get(cfg_key)
    if net is None:
        net = OpticalRingNetwork(
            OpticalSystemConfig(n_nodes=n, n_wavelengths=w, interpretation=interpretation)
        )
        _OPTICAL_NETS[cfg_key] = net
    kwargs: dict = {"materialize": False}
    if algo == "WRHT":
        kwargs.update(n_wavelengths=w, m=wrht_m)
    elif algo == "H-Ring":
        kwargs.update(m=hring_m)
    schedule = build_schedule(algo, n, workload.n_params, **kwargs)
    return net.execute(schedule, bytes_per_elem=workload.bytes_per_param).total_time


def _electrical_time(
    algo: str,
    n: int,
    workload: DnnWorkload,
    interpretation: str,
) -> float:
    """Seconds for one algorithm on the electrical fat-tree (simulated)."""
    key = (n, interpretation)
    net = _ELECTRICAL_NETS.get(key)
    if net is None:
        net = ElectricalNetwork(
            ElectricalSystemConfig(n_nodes=n, interpretation=interpretation)
        )
        _ELECTRICAL_NETS[key] = net
    schedule = build_schedule(algo, n, workload.n_params, materialize=False)
    return net.execute(schedule, bytes_per_elem=workload.bytes_per_param).total_time


def clear_network_caches() -> None:
    """Drop the per-process substrate executors (benchmark hygiene).

    The next experiment call rebuilds its networks from scratch; the
    cross-run plan cache (:mod:`repro.optical.plancache`) is separate and
    unaffected.
    """
    _OPTICAL_NETS.clear()
    _ELECTRICAL_NETS.clear()


# -- sweep cell functions ---------------------------------------------------
# Module-level so they pickle into ProcessPoolExecutor workers; the run_figN
# entry points bind the figure-constant knobs with functools.partial.


def _fig4_cell(
    workload: DnnWorkload, m: int, mode: str, interpretation: str,
    n_nodes: int, n_wavelengths: int,
) -> float:
    """One Fig 4 grid cell: WRHT at group size ``m`` on one workload."""
    return _optical_time(
        "WRHT", n_nodes, n_wavelengths, workload, mode, interpretation, wrht_m=m
    )


def _fig5_cell(
    workload: DnnWorkload, algo: str, w: int, mode: str, interpretation: str,
    n_nodes: int,
) -> float:
    """One Fig 5 grid cell: ``algo`` under wavelength count ``w``."""
    return _optical_time(
        algo, n_nodes, w, workload, mode, interpretation,
        wrht_m=min(optimal_group_size(w), n_nodes),
    )


def _fig6_cell(
    workload: DnnWorkload, algo: str, n: int, mode: str, interpretation: str,
    n_wavelengths: int,
) -> float:
    """One Fig 6 grid cell: ``algo`` at cluster size ``n``."""
    return _optical_time(algo, n, n_wavelengths, workload, mode, interpretation)


def _fig7_cell(
    workload: DnnWorkload, algo: str, n: int, mode: str, interpretation: str,
    n_wavelengths: int,
) -> float:
    """One Fig 7 grid cell: electrical or optical flavor by algorithm."""
    if algo in ("E-Ring", "RD"):
        base = "Ring" if algo == "E-Ring" else "RD"
        return _electrical_time(base, n, workload, interpretation)
    base = "Ring" if algo == "O-Ring" else "WRHT"
    return _optical_time(base, n, n_wavelengths, workload, mode, interpretation)


def run_table1(
    n_nodes: int = 1024, n_wavelengths: int = DEFAULT_WAVELENGTHS, hring_m: int = HRING_M
) -> dict[str, int]:
    """Table 1: communication step counts at one configuration.

    Also cross-checks each closed form against the steps of an actually
    built schedule (H-Ring's closed form may differ by the wavelength
    serialization term, which the schedule leaves to the executor).
    """
    from repro.core.steps import steps_table

    counts = steps_table(n_nodes, n_wavelengths, hring_m=hring_m)
    built = {
        "Ring": build_schedule("ring", n_nodes, n_nodes, materialize=False).n_steps,
        "BT": build_schedule("bt", n_nodes, n_nodes, materialize=False).n_steps,
        "RD": build_schedule("rd", n_nodes, n_nodes, materialize=False).n_steps,
        "WRHT": build_schedule(
            "wrht", n_nodes, n_nodes, n_wavelengths=n_wavelengths, materialize=False
        ).n_steps,
        "H-Ring": build_schedule(
            "hring", n_nodes, n_nodes, m=hring_m, materialize=False
        ).n_steps,
    }
    for name, closed_form in counts.items():
        if name == "H-Ring":
            continue  # closed form covers the w-serialized variant too
        if built[name] != closed_form:
            raise AssertionError(
                f"{name}: built schedule has {built[name]} steps, "
                f"closed form says {closed_form}"
            )
    return counts


def run_fig4(
    mode: str = "analytical",
    interpretation: str = "calibrated",
    n_nodes: int = 1024,
    n_wavelengths: int = DEFAULT_WAVELENGTHS,
    group_sizes: tuple[int, ...] = FIG4_GROUP_SIZES,
    workloads: tuple[DnnWorkload, ...] = PAPER_WORKLOADS,
    workers: int | None = None,
) -> ExperimentResult:
    """Fig 4: WRHT with different numbers of grouped nodes.

    One WRHT variant per group size (the paper's WRHT_0 … WRHT_3 at
    m = 17/33/65/129), all four workloads, fixed N and w. Normalization
    reference: WRHT at the largest group size, per workload.
    ``workers`` parallelizes the grid over a process pool (see
    :func:`repro.runner.sweep.sweep`); results are identical either way.
    """
    _check_mode(mode)
    result = ExperimentResult(
        name="fig4", mode=mode, interpretation=interpretation,
        x_label="grouped nodes (m)", x_values=list(group_sizes),
        workloads=[wl.name for wl in workloads],
    )
    cell = functools.partial(
        _fig4_cell, mode=mode, interpretation=interpretation,
        n_nodes=n_nodes, n_wavelengths=n_wavelengths,
    )
    grid = sweep(cell, {"workload": workloads, "m": group_sizes}, workers=workers)
    for wl in workloads:
        result.series[(wl.name, "WRHT")] = [grid[(wl, m)] for m in group_sizes]
    result.meta["reference"] = ("WRHT", group_sizes[-1])
    return result


def run_fig5(
    mode: str = "analytical",
    interpretation: str = "calibrated",
    n_nodes: int = 1024,
    wavelengths: tuple[int, ...] = FIG5_WAVELENGTHS,
    workloads: tuple[DnnWorkload, ...] = PAPER_WORKLOADS,
    workers: int | None = None,
) -> ExperimentResult:
    """Fig 5: four algorithms under different wavelength counts.

    WRHT's group size follows Lemma 1 (``min(2w+1, N)``); Ring and BT use a
    single wavelength regardless of w (their defining limitation); H-Ring's
    analytical step count reacts to w via the ``⌈m/w⌉`` term.
    ``workers`` parallelizes the grid over a process pool.
    """
    _check_mode(mode)
    result = ExperimentResult(
        name="fig5", mode=mode, interpretation=interpretation,
        x_label="wavelengths", x_values=list(wavelengths),
        workloads=[wl.name for wl in workloads],
    )
    algos = ("Ring", "H-Ring", "BT", "WRHT")
    cell = functools.partial(
        _fig5_cell, mode=mode, interpretation=interpretation, n_nodes=n_nodes
    )
    grid = sweep(
        cell, {"workload": workloads, "algo": algos, "w": wavelengths},
        workers=workers,
    )
    for wl in workloads:
        for algo in algos:
            result.series[(wl.name, algo)] = [
                grid[(wl, algo, w)] for w in wavelengths
            ]
    result.meta["reference"] = ("ResNet50", "WRHT", wavelengths[-1])
    return result


def run_fig6(
    mode: str = "analytical",
    interpretation: str = "calibrated",
    nodes: tuple[int, ...] = FIG6_NODES,
    n_wavelengths: int = DEFAULT_WAVELENGTHS,
    workloads: tuple[DnnWorkload, ...] = PAPER_WORKLOADS,
    workers: int | None = None,
) -> ExperimentResult:
    """Fig 6: four algorithms on the optical system across cluster sizes.

    ``workers`` parallelizes the grid over a process pool.
    """
    _check_mode(mode)
    result = ExperimentResult(
        name="fig6", mode=mode, interpretation=interpretation,
        x_label="nodes", x_values=list(nodes),
        workloads=[wl.name for wl in workloads],
    )
    algos = ("Ring", "H-Ring", "BT", "WRHT")
    cell = functools.partial(
        _fig6_cell, mode=mode, interpretation=interpretation,
        n_wavelengths=n_wavelengths,
    )
    grid = sweep(
        cell, {"workload": workloads, "algo": algos, "n": nodes}, workers=workers
    )
    for wl in workloads:
        for algo in algos:
            result.series[(wl.name, algo)] = [grid[(wl, algo, n)] for n in nodes]
    result.meta["reference"] = ("ResNet50", "WRHT", nodes[0])
    return result


def run_fig7(
    mode: str = "analytical",
    interpretation: str = "calibrated",
    nodes: tuple[int, ...] = FIG7_NODES,
    n_wavelengths: int = DEFAULT_WAVELENGTHS,
    workloads: tuple[DnnWorkload, ...] = PAPER_WORKLOADS,
    workers: int | None = None,
) -> ExperimentResult:
    """Fig 7: electrical fat-tree (E-Ring, RD) vs optical ring (O-Ring, WRHT).

    The electrical side is always the fluid simulation; ``mode`` selects how
    the optical side is priced. ``workers`` parallelizes the grid over a
    process pool.
    """
    _check_mode(mode)
    result = ExperimentResult(
        name="fig7", mode=mode, interpretation=interpretation,
        x_label="nodes", x_values=list(nodes),
        workloads=[wl.name for wl in workloads],
    )
    algos = ("E-Ring", "RD", "O-Ring", "WRHT")
    cell = functools.partial(
        _fig7_cell, mode=mode, interpretation=interpretation,
        n_wavelengths=n_wavelengths,
    )
    grid = sweep(
        cell, {"workload": workloads, "algo": algos, "n": nodes}, workers=workers
    )
    for wl in workloads:
        for algo in algos:
            result.series[(wl.name, algo)] = [grid[(wl, algo, n)] for n in nodes]
    result.meta["reference"] = ("ResNet50", "WRHT", nodes[0])
    return result
