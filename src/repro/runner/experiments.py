"""The paper's four evaluation experiments plus Table 1 (Sec 5.2–5.6).

Every experiment runs in two modes:

- ``"analytical"`` — the closed-form cost models of
  :mod:`repro.core.timing` (Eq 6 and per-baseline equivalents);
- ``"simulated"``  — schedules actually routed, wavelength-assigned and
  priced on the substrates (:mod:`repro.optical.network`,
  :mod:`repro.electrical.network`). The electrical side of Fig 7 is always
  simulated (its contention has no closed form).

The two modes agree to float precision for the full-vector algorithms and
within the profile chunk-rounding for the ring-based ones — asserted in the
test suite, so "analytical" is a trustworthy fast path for the full
paper-scale sweeps.
"""

from __future__ import annotations

import functools

from repro.backend import registry
from repro.backend.base import Backend
from repro.collectives.registry import build_schedule
from repro.core.wavelengths import optimal_group_size
from repro.dnn.workload import PAPER_WORKLOADS, DnnWorkload
from repro.electrical.config import ElectricalSystemConfig
from repro.optical.config import OpticalSystemConfig
from repro.runner.report import ExperimentResult
from repro.runner.sweep import sweep

MODES = ("analytical", "simulated")

# Paper defaults.
FIG4_GROUP_SIZES = (17, 33, 65, 129)
FIG5_WAVELENGTHS = (4, 16, 64, 256)
FIG6_NODES = (1024, 2048, 3072, 4096)
FIG7_NODES = (128, 256, 512, 1024)
HRING_M = 5
DEFAULT_WAVELENGTHS = 64


def _check_mode(mode: str) -> None:
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")


# Backend instances are cached per configuration so repeated experiment
# calls (and their internal step-pattern caches) are reused across sweeps.
_BACKENDS: dict[tuple, Backend] = {}


def _resolve_backend(mode: str, backend: str | None, simulated: str = "optical") -> str:
    """The effective backend name for one experiment cell.

    An explicit ``backend`` wins; otherwise ``mode`` keeps its historical
    meaning — ``"analytical"`` prices with the closed forms, ``"simulated"``
    with the substrate executor named by ``simulated``.
    """
    if backend is not None:
        if backend not in registry.available():
            raise ValueError(
                f"unknown backend {backend!r}; available: {registry.available()}"
            )
        return backend
    return "analytic" if mode == "analytical" else simulated


def get_backend(
    name: str, n: int, w: int, interpretation: str,
    t_tune: float = 0.0, overlap: bool = True,
) -> Backend:
    """A cached backend instance for one
    ``(backend, N, w, interpretation, t_tune, overlap)``.

    Instances (and the process-wide plan cache behind their ``lower()``)
    are reused across experiment calls; :func:`clear_network_caches` drops
    them. ``t_tune``/``overlap`` configure the MRR reconfiguration model
    (:mod:`repro.optical.reconfig`); the defaults leave it disabled, so
    every historical cell stays bit-identical.
    """
    key = (name, n, w, interpretation, t_tune, overlap)
    be = _BACKENDS.get(key)
    if be is not None:
        return be
    if name == "optical":
        be = registry.create(
            "optical",
            config=OpticalSystemConfig(
                n_nodes=n, n_wavelengths=w, interpretation=interpretation,
                t_tune=t_tune,
            ),
            overlap=overlap,
        )
    elif name == "electrical":
        be = registry.create(
            "electrical",
            config=ElectricalSystemConfig(n_nodes=n, interpretation=interpretation),
        )
    elif name == "analytic":
        from repro.optical.reconfig import ReconfigModel

        cfg = OpticalSystemConfig(
            n_nodes=n, n_wavelengths=w, interpretation=interpretation
        )
        be = registry.create(
            "analytic", model=cfg.cost_model(), w=w,
            reconfig=ReconfigModel(t_tune=t_tune), overlap=overlap,
        )
    else:
        raise ValueError(
            f"the experiment runner cannot construct backend {name!r}; "
            "supported: optical, electrical, analytic"
        )
    _BACKENDS[key] = be
    return be


def _build_cell_schedule(algo: str, n: int, w: int, workload: DnnWorkload, *,
                         wrht_m: int | None, hring_m: int):
    """The schedule for one experiment cell (never materialized)."""
    kwargs: dict = {"materialize": False}
    if algo == "WRHT":
        kwargs.update(n_wavelengths=w, m=wrht_m)
    elif algo == "H-Ring":
        kwargs.update(m=hring_m)
    return build_schedule(algo, n, workload.n_params, **kwargs)


# Daemon clients are cached per socket path per process: sweep workers each
# open their own connection (sockets never survive pickling into a worker).
_CLIENTS: dict[str, object] = {}


def _service_client(service: str):
    """The process's client for the planning daemon at ``service``."""
    from repro.service.client import PlanClient

    client = _CLIENTS.get(service)
    if client is None:
        client = PlanClient(service)
        _CLIENTS[service] = client
    return client


def _service_time(
    service: str,
    backend: str,
    algo: str,
    n: int,
    w: int,
    workload: DnnWorkload,
    interpretation: str,
    wrht_m: int | None,
    hring_m: int,
) -> float:
    """One cell served by the planning daemon (bit-identical by contract)."""
    return _service_client(service).total_time(
        algo, n, workload.n_params,
        backend=backend,
        n_wavelengths=w,
        interpretation=interpretation,
        bytes_per_elem=workload.bytes_per_param,
        m=wrht_m,
        hring_m=hring_m,
    )


def _optical_time(
    algo: str,
    n: int,
    w: int,
    workload: DnnWorkload,
    mode: str,
    interpretation: str,
    wrht_m: int | None = None,
    hring_m: int = HRING_M,
    backend: str | None = None,
    service: str | None = None,
    t_tune: float = 0.0,
    overlap: bool = True,
) -> float:
    """Seconds for one algorithm on the mode- or flag-selected backend."""
    name = _resolve_backend(mode, backend)
    if service is not None:
        if t_tune > 0:
            raise ValueError(
                "--t-tune is evaluated in-process; the planning daemon "
                "protocol does not carry a reconfiguration model"
            )
        return _service_time(
            service, name, algo, n, w, workload, interpretation, wrht_m, hring_m
        )
    be = get_backend(name, n, w, interpretation, t_tune, overlap)
    schedule = _build_cell_schedule(
        algo, n, w, workload, wrht_m=wrht_m, hring_m=hring_m
    )
    return be.run(schedule, bytes_per_elem=workload.bytes_per_param).total_time


def _electrical_time(
    algo: str,
    n: int,
    workload: DnnWorkload,
    interpretation: str,
    service: str | None = None,
) -> float:
    """Seconds for one algorithm on the electrical fat-tree (simulated)."""
    if service is not None:
        return _service_time(
            service, "electrical", algo, n, DEFAULT_WAVELENGTHS, workload,
            interpretation, None, HRING_M,
        )
    be = get_backend("electrical", n, DEFAULT_WAVELENGTHS, interpretation)
    schedule = build_schedule(algo, n, workload.n_params, materialize=False)
    return be.run(schedule, bytes_per_elem=workload.bytes_per_param).total_time


def clear_network_caches() -> None:
    """Drop the per-process backend instances (benchmark hygiene).

    The next experiment call rebuilds its backends from scratch; the
    cross-run plan cache (:mod:`repro.backend.plancache`) is separate and
    unaffected.
    """
    _BACKENDS.clear()


# -- sweep cell functions ---------------------------------------------------
# Module-level so they pickle into ProcessPoolExecutor workers; the run_figN
# entry points bind the figure-constant knobs with functools.partial.


def _fig4_cell(
    workload: DnnWorkload, m: int, mode: str, interpretation: str,
    n_nodes: int, n_wavelengths: int, backend: str | None = None,
    service: str | None = None, t_tune: float = 0.0, overlap: bool = True,
) -> float:
    """One Fig 4 grid cell: WRHT at group size ``m`` on one workload."""
    return _optical_time(
        "WRHT", n_nodes, n_wavelengths, workload, mode, interpretation,
        wrht_m=m, backend=backend, service=service, t_tune=t_tune,
        overlap=overlap,
    )


def _fig5_cell(
    workload: DnnWorkload, algo: str, w: int, mode: str, interpretation: str,
    n_nodes: int, backend: str | None = None, service: str | None = None,
    t_tune: float = 0.0, overlap: bool = True,
) -> float:
    """One Fig 5 grid cell: ``algo`` under wavelength count ``w``."""
    return _optical_time(
        algo, n_nodes, w, workload, mode, interpretation,
        wrht_m=min(optimal_group_size(w), n_nodes), backend=backend,
        service=service, t_tune=t_tune, overlap=overlap,
    )


def _fig6_cell(
    workload: DnnWorkload, algo: str, n: int, mode: str, interpretation: str,
    n_wavelengths: int, backend: str | None = None, service: str | None = None,
    t_tune: float = 0.0, overlap: bool = True,
) -> float:
    """One Fig 6 grid cell: ``algo`` at cluster size ``n``."""
    return _optical_time(
        algo, n, n_wavelengths, workload, mode, interpretation, backend=backend,
        service=service, t_tune=t_tune, overlap=overlap,
    )


# Fig 7's display names map to base algorithms per substrate.
_FIG7_BASE = {"E-Ring": "Ring", "O-Ring": "Ring", "RD": "RD", "WRHT": "WRHT"}


def _fig7_cell(
    workload: DnnWorkload, algo: str, n: int, mode: str, interpretation: str,
    n_wavelengths: int, backend: str | None = None, service: str | None = None,
    t_tune: float = 0.0, overlap: bool = True,
) -> float:
    """One Fig 7 grid cell: electrical or optical flavor by algorithm.

    An explicit ``backend`` forces every flavor through that backend
    (useful for like-for-like ablations); the default keeps the paper's
    split — E-Ring/RD on the fat-tree, O-Ring/WRHT on the optical ring.
    The tuning tax only applies to the optical flavors: the fat-tree has
    no MRRs, which is exactly the comparison Fig 7 makes.
    """
    base = _FIG7_BASE[algo]
    if backend is not None:
        return _optical_time(
            base, n, n_wavelengths, workload, mode, interpretation,
            backend=backend, service=service, t_tune=t_tune, overlap=overlap,
        )
    if algo in ("E-Ring", "RD"):
        return _electrical_time(base, n, workload, interpretation, service=service)
    return _optical_time(
        base, n, n_wavelengths, workload, mode, interpretation, service=service,
        t_tune=t_tune, overlap=overlap,
    )


def run_table1(
    n_nodes: int = 1024, n_wavelengths: int = DEFAULT_WAVELENGTHS, hring_m: int = HRING_M
) -> dict[str, int]:
    """Table 1: communication step counts at one configuration.

    Also cross-checks each closed form against the steps of an actually
    built schedule (H-Ring's closed form may differ by the wavelength
    serialization term, which the schedule leaves to the executor).
    """
    from repro.core.steps import steps_table

    counts = steps_table(n_nodes, n_wavelengths, hring_m=hring_m)
    built = {
        "Ring": build_schedule("ring", n_nodes, n_nodes, materialize=False).n_steps,
        "BT": build_schedule("bt", n_nodes, n_nodes, materialize=False).n_steps,
        "RD": build_schedule("rd", n_nodes, n_nodes, materialize=False).n_steps,
        "WRHT": build_schedule(
            "wrht", n_nodes, n_nodes, n_wavelengths=n_wavelengths, materialize=False
        ).n_steps,
        "H-Ring": build_schedule(
            "hring", n_nodes, n_nodes, m=hring_m, materialize=False
        ).n_steps,
    }
    for name, closed_form in counts.items():
        if name == "H-Ring":
            continue  # closed form covers the w-serialized variant too
        if built[name] != closed_form:
            raise AssertionError(
                f"{name}: built schedule has {built[name]} steps, "
                f"closed form says {closed_form}"
            )
    return counts


def run_fig4(
    mode: str = "analytical",
    interpretation: str = "calibrated",
    n_nodes: int = 1024,
    n_wavelengths: int = DEFAULT_WAVELENGTHS,
    group_sizes: tuple[int, ...] = FIG4_GROUP_SIZES,
    workloads: tuple[DnnWorkload, ...] = PAPER_WORKLOADS,
    workers: int | None = None,
    backend: str | None = None,
    service: str | None = None,
    t_tune: float = 0.0,
    overlap: bool = True,
) -> ExperimentResult:
    """Fig 4: WRHT with different numbers of grouped nodes.

    One WRHT variant per group size (the paper's WRHT_0 … WRHT_3 at
    m = 17/33/65/129), all four workloads, fixed N and w. Normalization
    reference: WRHT at the largest group size, per workload.
    ``workers`` parallelizes the grid over a process pool (see
    :func:`repro.runner.sweep.sweep`); results are identical either way.
    ``t_tune``/``overlap`` enable the MRR reconfiguration model on the
    optical/analytic backends (disabled by default — bit-identical).
    """
    _check_mode(mode)
    result = ExperimentResult(
        name="fig4", mode=mode, interpretation=interpretation,
        x_label="grouped nodes (m)", x_values=list(group_sizes),
        workloads=[wl.name for wl in workloads],
    )
    cell = functools.partial(
        _fig4_cell, mode=mode, interpretation=interpretation,
        n_nodes=n_nodes, n_wavelengths=n_wavelengths, backend=backend,
        service=service, t_tune=t_tune, overlap=overlap,
    )
    grid = sweep(cell, {"workload": workloads, "m": group_sizes}, workers=workers)
    for wl in workloads:
        result.series[(wl.name, "WRHT")] = [grid[(wl, m)] for m in group_sizes]
    result.meta["reference"] = ("WRHT", group_sizes[-1])
    return result


def run_fig5(
    mode: str = "analytical",
    interpretation: str = "calibrated",
    n_nodes: int = 1024,
    wavelengths: tuple[int, ...] = FIG5_WAVELENGTHS,
    workloads: tuple[DnnWorkload, ...] = PAPER_WORKLOADS,
    workers: int | None = None,
    backend: str | None = None,
    service: str | None = None,
    t_tune: float = 0.0,
    overlap: bool = True,
) -> ExperimentResult:
    """Fig 5: four algorithms under different wavelength counts.

    WRHT's group size follows Lemma 1 (``min(2w+1, N)``); Ring and BT use a
    single wavelength regardless of w (their defining limitation); H-Ring's
    analytical step count reacts to w via the ``⌈m/w⌉`` term.
    ``workers`` parallelizes the grid over a process pool.
    ``t_tune``/``overlap`` enable the MRR reconfiguration model.
    """
    _check_mode(mode)
    result = ExperimentResult(
        name="fig5", mode=mode, interpretation=interpretation,
        x_label="wavelengths", x_values=list(wavelengths),
        workloads=[wl.name for wl in workloads],
    )
    algos = ("Ring", "H-Ring", "BT", "WRHT")
    cell = functools.partial(
        _fig5_cell, mode=mode, interpretation=interpretation, n_nodes=n_nodes,
        backend=backend, service=service, t_tune=t_tune, overlap=overlap,
    )
    grid = sweep(
        cell, {"workload": workloads, "algo": algos, "w": wavelengths},
        workers=workers,
    )
    for wl in workloads:
        for algo in algos:
            result.series[(wl.name, algo)] = [
                grid[(wl, algo, w)] for w in wavelengths
            ]
    result.meta["reference"] = ("ResNet50", "WRHT", wavelengths[-1])
    return result


def run_fig6(
    mode: str = "analytical",
    interpretation: str = "calibrated",
    nodes: tuple[int, ...] = FIG6_NODES,
    n_wavelengths: int = DEFAULT_WAVELENGTHS,
    workloads: tuple[DnnWorkload, ...] = PAPER_WORKLOADS,
    workers: int | None = None,
    backend: str | None = None,
    service: str | None = None,
    t_tune: float = 0.0,
    overlap: bool = True,
) -> ExperimentResult:
    """Fig 6: four algorithms on the optical system across cluster sizes.

    ``workers`` parallelizes the grid over a process pool.
    ``t_tune``/``overlap`` enable the MRR reconfiguration model.
    """
    _check_mode(mode)
    result = ExperimentResult(
        name="fig6", mode=mode, interpretation=interpretation,
        x_label="nodes", x_values=list(nodes),
        workloads=[wl.name for wl in workloads],
    )
    algos = ("Ring", "H-Ring", "BT", "WRHT")
    cell = functools.partial(
        _fig6_cell, mode=mode, interpretation=interpretation,
        n_wavelengths=n_wavelengths, backend=backend, service=service,
        t_tune=t_tune, overlap=overlap,
    )
    grid = sweep(
        cell, {"workload": workloads, "algo": algos, "n": nodes}, workers=workers
    )
    for wl in workloads:
        for algo in algos:
            result.series[(wl.name, algo)] = [grid[(wl, algo, n)] for n in nodes]
    result.meta["reference"] = ("ResNet50", "WRHT", nodes[0])
    return result


def run_fig7(
    mode: str = "analytical",
    interpretation: str = "calibrated",
    nodes: tuple[int, ...] = FIG7_NODES,
    n_wavelengths: int = DEFAULT_WAVELENGTHS,
    workloads: tuple[DnnWorkload, ...] = PAPER_WORKLOADS,
    workers: int | None = None,
    backend: str | None = None,
    service: str | None = None,
    t_tune: float = 0.0,
    overlap: bool = True,
) -> ExperimentResult:
    """Fig 7: electrical fat-tree (E-Ring, RD) vs optical ring (O-Ring, WRHT).

    The electrical side is always the fluid simulation; ``mode`` selects how
    the optical side is priced. ``workers`` parallelizes the grid over a
    process pool. ``t_tune``/``overlap`` enable the MRR reconfiguration
    model on the optical flavors (the fat-tree pays no tuning).
    """
    _check_mode(mode)
    result = ExperimentResult(
        name="fig7", mode=mode, interpretation=interpretation,
        x_label="nodes", x_values=list(nodes),
        workloads=[wl.name for wl in workloads],
    )
    algos = ("E-Ring", "RD", "O-Ring", "WRHT")
    cell = functools.partial(
        _fig7_cell, mode=mode, interpretation=interpretation,
        n_wavelengths=n_wavelengths, backend=backend, service=service,
        t_tune=t_tune, overlap=overlap,
    )
    grid = sweep(
        cell, {"workload": workloads, "algo": algos, "n": nodes}, workers=workers
    )
    for wl in workloads:
        for algo in algos:
            result.series[(wl.name, algo)] = [grid[(wl, algo, n)] for n in nodes]
    result.meta["reference"] = ("ResNet50", "WRHT", nodes[0])
    return result
