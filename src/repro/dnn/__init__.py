"""DNN workload models and the data-parallel training substrate.

Two roles:

1. **Workload catalogs** (:mod:`~repro.dnn.layers`, :mod:`~repro.dnn.models`,
   :mod:`~repro.dnn.workload`) — layer-level parameter counts for the four
   evaluation models (BEiT-L, VGG16, AlexNet, ResNet50). The paper's
   profiling step reduces to a single number per model — the gradient bytes
   synchronized per iteration — which these catalogs derive and validate
   against the paper's stated sizes (307M / 138M / 62.3M / 25M parameters).
2. **Training substrate** (:mod:`~repro.dnn.autograd`,
   :mod:`~repro.dnn.training`, :mod:`~repro.dnn.datasets`) — a from-scratch
   numpy implementation of forward/backward propagation (Eqs 1–4) and
   data-parallel SGD whose gradient synchronization runs the *actual*
   All-reduce schedules (Eq 5), proving end to end that every schedule in
   this library is a correct All-reduce, not just a cost model.
"""

from repro.dnn.layers import (
    AttentionSpec,
    BatchNormSpec,
    Conv2DSpec,
    DenseSpec,
    EmbeddingSpec,
    LayerNormSpec,
    TransformerBlockSpec,
)
from repro.dnn.models import MODEL_BUILDERS, ModelSpec, alexnet, beit_large, resnet50, vgg16
from repro.dnn.workload import PAPER_WORKLOADS, DnnWorkload, workload_by_name
from repro.dnn.autograd import MLP, Conv2D, Dense, relu, softmax_cross_entropy
from repro.dnn.datasets import SyntheticClassification
from repro.dnn.training import DataParallelTrainer, TrainingReport
from repro.dnn.profile import DeviceModel, LayerProfile, ModelProfile, profile_model
from repro.dnn.iteration import (
    IterationBreakdown,
    IterationModel,
    comm_backend_from_analytical,
    make_buckets,
)
from repro.dnn.parallelism import HybridParallelComm, MemoryModel, ParallelismPlan
from repro.dnn.heterogeneity import HeterogeneousIteration, proportional_shards
from repro.dnn.compression import CompressedDataParallelTrainer, TopKCompressor

__all__ = [
    "AttentionSpec",
    "BatchNormSpec",
    "CompressedDataParallelTrainer",
    "Conv2D",
    "Conv2DSpec",
    "DataParallelTrainer",
    "Dense",
    "DenseSpec",
    "DeviceModel",
    "DnnWorkload",
    "EmbeddingSpec",
    "HeterogeneousIteration",
    "HybridParallelComm",
    "IterationBreakdown",
    "IterationModel",
    "LayerNormSpec",
    "LayerProfile",
    "MLP",
    "MODEL_BUILDERS",
    "MemoryModel",
    "ModelProfile",
    "ModelSpec",
    "PAPER_WORKLOADS",
    "ParallelismPlan",
    "SyntheticClassification",
    "TopKCompressor",
    "TrainingReport",
    "TransformerBlockSpec",
    "alexnet",
    "beit_large",
    "comm_backend_from_analytical",
    "make_buckets",
    "profile_model",
    "proportional_shards",
    "relu",
    "resnet50",
    "softmax_cross_entropy",
    "vgg16",
    "workload_by_name",
]
