"""Per-iteration time model: compute, communication, and their overlap.

Reproduces the paper's Sec 1 motivation quantitatively: "communications for
All-reduce with a large number of workers may occupy 50–90% of
per-iteration training time" [35]. An iteration is

    forward → backward (gradients release output→input) → All-reduce → step

and synchronous data-parallel training can either serialize communication
after backward (``no_overlap``) or start All-reducing each gradient bucket
as soon as backprop releases it (``overlapped`` — the standard
bucket-fusion optimization of DDP frameworks). In both cases the network
processes buckets one at a time (one collective at a time per ring).

The communication backend is any callable pricing one All-reduce of ``n``
bytes — the experiment harness plugs in the analytical models or the
substrate executors, so the same iteration model quantifies the motivation
claim on the electrical fat-tree and the improvement WRHT buys on the
optical ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dnn.profile import DeviceModel, ModelProfile
from repro.util.validation import check_positive, check_positive_int

CommTimeFn = Callable[[float], float]
"""Prices one All-reduce: gradient bytes -> seconds."""


@dataclass(frozen=True)
class Bucket:
    """A fused group of layer gradients.

    Attributes:
        grad_bytes: Payload of the fused All-reduce call.
        release_time: Seconds after backward start when the *last* fused
            gradient becomes available.
        n_layers: Layers fused into this bucket.
    """

    grad_bytes: float
    release_time: float
    n_layers: int


@dataclass(frozen=True)
class IterationBreakdown:
    """One iteration's timing decomposition.

    Attributes:
        forward: Forward-pass seconds.
        backward: Backward-pass seconds.
        comm_total: Sum of all All-reduce call durations.
        comm_exposed: Communication seconds not hidden behind backward.
        total: End-to-end iteration seconds.
    """

    forward: float
    backward: float
    comm_total: float
    comm_exposed: float
    total: float

    @property
    def comm_fraction(self) -> float:
        """Fraction of the iteration spent in *exposed* communication."""
        return self.comm_exposed / self.total if self.total > 0 else 0.0


def make_buckets(
    profile: ModelProfile,
    batch: int,
    device: DeviceModel,
    bucket_bytes: float,
    bytes_per_param: int = 4,
) -> list[Bucket]:
    """Fuse released gradients into buckets of at least ``bucket_bytes``.

    Gradients fuse in release (output→input) order; a bucket closes once it
    reaches the threshold, releasing at its last member's release time. The
    final bucket may be smaller. ``bucket_bytes = 0`` gives one bucket per
    parameterized layer; ``bucket_bytes = inf`` gives a single bucket.
    """
    if bucket_bytes < 0:
        raise ValueError(f"bucket_bytes must be >= 0, got {bucket_bytes!r}")
    check_positive_int("bytes_per_param", bytes_per_param)
    schedule = profile.gradient_release_schedule(batch, device)
    buckets: list[Bucket] = []
    acc_bytes = 0.0
    acc_layers = 0
    release = 0.0
    for layer, time in schedule:
        acc_bytes += layer.params * bytes_per_param
        acc_layers += 1
        release = time
        if acc_bytes >= bucket_bytes:
            buckets.append(Bucket(acc_bytes, release, acc_layers))
            acc_bytes, acc_layers = 0.0, 0
    if acc_layers:
        buckets.append(Bucket(acc_bytes, release, acc_layers))
    # Catalog extras (class tokens etc.) ride in the last bucket.
    if buckets and profile.extra_params:
        last = buckets[-1]
        buckets[-1] = Bucket(
            last.grad_bytes + profile.extra_params * bytes_per_param,
            last.release_time,
            last.n_layers,
        )
    return buckets


class IterationModel:
    """Times one synchronous data-parallel iteration."""

    def __init__(
        self,
        profile: ModelProfile,
        comm_time: CommTimeFn,
        device: DeviceModel | None = None,
    ) -> None:
        self.profile = profile
        self.comm_time = comm_time
        self.device = device or DeviceModel()

    def no_overlap(self, batch: int, bytes_per_param: int = 4) -> IterationBreakdown:
        """Serial iteration: all communication after backward completes."""
        check_positive_int("batch", batch)
        fwd = self.profile.forward_time(batch, self.device)
        bwd = self.profile.backward_time(batch, self.device)
        comm = self.comm_time(float(self.profile.total_params * bytes_per_param))
        return IterationBreakdown(
            forward=fwd, backward=bwd, comm_total=comm, comm_exposed=comm,
            total=fwd + bwd + comm,
        )

    def overlapped(
        self,
        batch: int,
        bucket_bytes: float = 25e6,
        bytes_per_param: int = 4,
    ) -> IterationBreakdown:
        """Bucketed iteration: each bucket's All-reduce starts at its
        release time (or when the network frees up), overlapping backward."""
        check_positive_int("batch", batch)
        fwd = self.profile.forward_time(batch, self.device)
        bwd = self.profile.backward_time(batch, self.device)
        buckets = make_buckets(
            self.profile, batch, self.device, bucket_bytes, bytes_per_param
        )
        clock = 0.0  # network time, measured from backward start
        comm_total = 0.0
        for bucket in buckets:
            duration = self.comm_time(bucket.grad_bytes)
            comm_total += duration
            clock = max(clock, bucket.release_time) + duration
        exposed = max(0.0, clock - bwd)
        return IterationBreakdown(
            forward=fwd, backward=bwd, comm_total=comm_total,
            comm_exposed=exposed, total=fwd + bwd + exposed,
        )


def comm_backend_from_analytical(
    algorithm: str, n_nodes: int, cost_model, **kwargs
) -> CommTimeFn:
    """Adapt :func:`repro.core.timing.algorithm_time` to a pricing callable."""
    from repro.core.timing import algorithm_time

    check_positive_int("n_nodes", n_nodes)
    check_positive("line_rate", cost_model.line_rate)

    def price(grad_bytes: float) -> float:
        return algorithm_time(algorithm, n_nodes, grad_bytes, cost_model, **kwargs)

    return price
