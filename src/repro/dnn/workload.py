"""DNN communication workloads: the numbers the figures are driven by.

The paper profiles each model once and then feeds a single quantity into
both simulators: the transferred data size per All-reduce — the gradient,
``4 bytes × parameter count`` for float32 (Sec 5.1 notes batch size and
dataset only shift compute time, not All-reduce cost). ``PAPER_WORKLOADS``
pins the paper's headline parameter counts so experiment inputs match the
figures exactly; :func:`DnnWorkload.from_model` derives a workload from a
layer catalog instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.models import MODEL_BUILDERS, ModelSpec
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class DnnWorkload:
    """One data-parallel training workload.

    Attributes:
        name: Display name (figure labels).
        n_params: Trainable parameter count.
        bytes_per_param: Gradient element width (float32 → 4).
    """

    name: str
    n_params: int
    bytes_per_param: int = 4

    def __post_init__(self) -> None:
        check_positive_int("n_params", self.n_params)
        check_positive_int("bytes_per_param", self.bytes_per_param)

    @property
    def gradient_bytes(self) -> int:
        """Bytes each node contributes to one All-reduce (``d``)."""
        return self.n_params * self.bytes_per_param

    @classmethod
    def from_model(cls, model: ModelSpec, bytes_per_param: int = 4) -> "DnnWorkload":
        """Derive a workload from a layer catalog."""
        return cls(model.name, model.param_count, bytes_per_param)


PAPER_WORKLOADS: tuple[DnnWorkload, ...] = (
    DnnWorkload("BEiT-L", 307_000_000),
    DnnWorkload("VGG16", 138_000_000),
    DnnWorkload("AlexNet", 62_300_000),
    DnnWorkload("ResNet50", 25_000_000),
)
"""The four Sec 5.1 workloads with the paper's headline parameter counts."""


def workload_by_name(name: str, derived: bool = False) -> DnnWorkload:
    """Look up a workload.

    Args:
        name: Figure label (``"BEiT-L"``, ``"VGG16"``, ``"AlexNet"``,
            ``"ResNet50"``).
        derived: Use the layer-catalog parameter count instead of the
            paper's headline number.
    """
    if derived:
        try:
            return DnnWorkload.from_model(MODEL_BUILDERS[name]())
        except KeyError:
            raise KeyError(f"unknown model {name!r}") from None
    for workload in PAPER_WORKLOADS:
        if workload.name == name:
            return workload
    raise KeyError(f"unknown workload {name!r}; have {[w.name for w in PAPER_WORKLOADS]}")
