"""From-scratch forward/backward propagation (Sec 3.1, Eqs 1–4).

A small, exactly-testable training engine:

- :class:`Dense` implements Eq 1's ``Z = f(W·Z_prev + B)`` and the Eq 2/3
  backward pass (error propagation and ``ΔW = Zᵀ·E``),
- :class:`Conv2D` lowers convolution to matrix multiplication with im2col
  (the transformation the paper invokes to cover convolutional layers with
  the same equations),
- :class:`MLP` stacks layers, runs softmax cross-entropy, applies Eq 4's
  SGD update, and can flatten/unflatten its gradient into the single vector
  the All-reduce schedules operate on.

Conventions: batches are leading (``Z`` is ``(batch, features)`` or
``(batch, C, H, W)``); weights are ``(in, out)`` so the forward product is
``Z @ W + b``; loss gradients are averaged over the batch *inside the
loss*, so summing per-worker gradients weighted by shard size reproduces
the full-batch gradient exactly — the property the data-parallel
equivalence test relies on.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util.validation import check_positive_int

Activation = Callable[[np.ndarray], np.ndarray]


# -- activations ---------------------------------------------------------
def relu(x: np.ndarray) -> np.ndarray:
    """max(x, 0)."""
    return np.maximum(x, 0.0)


def relu_grad(pre: np.ndarray) -> np.ndarray:
    """Derivative of relu at pre-activation ``pre``."""
    return (pre > 0).astype(pre.dtype)


def identity(x: np.ndarray) -> np.ndarray:
    """Pass-through (output layers feed softmax cross-entropy)."""
    return x


def identity_grad(pre: np.ndarray) -> np.ndarray:
    """Derivative of identity."""
    return np.ones_like(pre)


_ACTIVATIONS: dict[str, tuple[Activation, Activation]] = {
    "relu": (relu, relu_grad),
    "identity": (identity, identity_grad),
}


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. logits.

    Args:
        logits: ``(batch, classes)``.
        labels: Integer class ids, ``(batch,)``.

    Returns:
        ``(loss, dL/dlogits)`` with the gradient already divided by the
        batch size.
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    batch = logits.shape[0]
    if labels.shape != (batch,):
        raise ValueError(f"labels shape {labels.shape} != ({batch},)")
    probs = softmax(logits)
    picked = probs[np.arange(batch), labels]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    grad = probs
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


# -- layers ---------------------------------------------------------------
class Dense:
    """Fully connected layer with an element-wise activation (Eq 1)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ) -> None:
        check_positive_int("in_features", in_features)
        check_positive_int("out_features", out_features)
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; have {sorted(_ACTIVATIONS)}"
            )
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, (in_features, out_features))
        self.bias = np.zeros(out_features)
        self.activation = activation
        self._f, self._f_grad = _ACTIVATIONS[activation]
        self._input: np.ndarray | None = None
        self._pre: np.ndarray | None = None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Eq 1: ``Z = f(x·W + b)``; caches for backward."""
        self._input = x
        self._pre = x @ self.weight + self.bias
        return self._f(self._pre)

    def backward(self, error: np.ndarray) -> np.ndarray:
        """Eqs 2–3: accumulate ``ΔW``/``Δb`` and return the upstream error."""
        if self._input is None or self._pre is None:
            raise RuntimeError("backward before forward")
        delta = error * self._f_grad(self._pre)
        self.grad_weight[...] = self._input.T @ delta  # Eq 3
        self.grad_bias[...] = delta.sum(axis=0)
        return delta @ self.weight.T  # Eq 2

    # -- parameter plumbing ------------------------------------------------
    def parameters(self) -> list[np.ndarray]:
        """Trainable arrays, in a stable order."""
        return [self.weight, self.bias]

    def gradients(self) -> list[np.ndarray]:
        """Gradient arrays matching :meth:`parameters`."""
        return [self.grad_weight, self.grad_bias]


class Conv2D:
    """2-D convolution lowered to matmul via im2col (valid padding).

    Input ``(batch, C, H, W)``; output ``(batch, F, H−kh+1, W−kw+1)``;
    weights stored ``(C·kh·kw, F)`` so the forward pass is exactly a Dense
    layer over unfolded patches — the paper's im2col argument made literal.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ) -> None:
        check_positive_int("in_channels", in_channels)
        check_positive_int("out_channels", out_channels)
        check_positive_int("kernel", kernel)
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.weight = rng.normal(0.0, np.sqrt(2.0 / fan_in), (fan_in, out_channels))
        self.bias = np.zeros(out_channels)
        self.activation = activation
        self._f, self._f_grad = _ACTIVATIONS[activation]
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cols: np.ndarray | None = None
        self._pre: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        batch, c, h, w = x.shape
        k = self.kernel
        oh, ow = h - k + 1, w - k + 1
        if oh < 1 or ow < 1:
            raise ValueError(f"input {h}x{w} smaller than kernel {k}")
        # windows: (batch, C, oh, ow, k, k) as a zero-copy strided view.
        windows = np.lib.stride_tricks.sliding_window_view(x, (k, k), axis=(2, 3))
        cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(batch * oh * ow, c * k * k)
        return np.ascontiguousarray(cols)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Convolve (valid), apply activation; caches unfolded patches."""
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        batch, _, h, w = x.shape
        k = self.kernel
        oh, ow = h - k + 1, w - k + 1
        self._in_shape = x.shape
        self._cols = self._im2col(x)
        pre = self._cols @ self.weight + self.bias
        self._pre = pre
        out = self._f(pre)
        return out.reshape(batch, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, error: np.ndarray) -> np.ndarray:
        """Backward through activation, matmul and col2im."""
        if self._cols is None or self._pre is None or self._in_shape is None:
            raise RuntimeError("backward before forward")
        batch, c, h, w = self._in_shape
        k = self.kernel
        oh, ow = h - k + 1, w - k + 1
        err2d = error.transpose(0, 2, 3, 1).reshape(batch * oh * ow, self.out_channels)
        delta = err2d * self._f_grad(self._pre)
        self.grad_weight[...] = self._cols.T @ delta
        self.grad_bias[...] = delta.sum(axis=0)
        dcols = delta @ self.weight.T  # (batch*oh*ow, C*k*k)
        dcols = dcols.reshape(batch, oh, ow, c, k, k)
        dx = np.zeros(self._in_shape)
        # col2im: scatter-add each patch gradient back to its window.
        for di in range(k):
            for dj in range(k):
                dx[:, :, di : di + oh, dj : dj + ow] += dcols[:, :, :, :, di, dj].transpose(
                    0, 3, 1, 2
                )
        return dx

    def parameters(self) -> list[np.ndarray]:
        """Trainable arrays."""
        return [self.weight, self.bias]

    def gradients(self) -> list[np.ndarray]:
        """Gradient arrays matching :meth:`parameters`."""
        return [self.grad_weight, self.grad_bias]


# -- model container ------------------------------------------------------
class MLP:
    """A stack of layers trained with softmax cross-entropy and SGD (Eq 4)."""

    def __init__(self, layers: list) -> None:
        if not layers:
            raise ValueError("MLP needs at least one layer")
        self.layers = list(layers)

    @classmethod
    def of_widths(
        cls, widths: list[int], seed: int = 0, hidden_activation: str = "relu"
    ) -> "MLP":
        """Dense MLP from a width list, last layer linear (logits)."""
        if len(widths) < 2:
            raise ValueError("need at least input and output widths")
        rng = np.random.default_rng(seed)
        layers = []
        for i, (a, b) in enumerate(zip(widths, widths[1:])):
            act = "identity" if i == len(widths) - 2 else hidden_activation
            layers.append(Dense(a, b, activation=act, rng=rng))
        return cls(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run all layers; returns logits."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate the loss gradient through every layer (Eqs 2–3)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def loss_and_gradients(self, x: np.ndarray, labels: np.ndarray) -> float:
        """One forward/backward pass; gradients land in each layer."""
        logits = self.forward(x)
        loss, grad = softmax_cross_entropy(logits, labels)
        self.backward(grad)
        return loss

    # -- flattened parameter/gradient views ---------------------------------
    def parameters(self) -> list[np.ndarray]:
        """All trainable arrays in layer order."""
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> list[np.ndarray]:
        """All gradient arrays in layer order."""
        return [g for layer in self.layers for g in layer.gradients()]

    @property
    def n_params(self) -> int:
        """Total trainable scalars."""
        return sum(p.size for p in self.parameters())

    def gradient_vector(self) -> np.ndarray:
        """Flatten all gradients into one vector (All-reduce payload)."""
        return np.concatenate([g.ravel() for g in self.gradients()])

    def set_gradient_vector(self, vec: np.ndarray) -> None:
        """Scatter a flat vector back into the per-layer gradient arrays."""
        if vec.shape != (self.n_params,):
            raise ValueError(f"expected shape ({self.n_params},), got {vec.shape}")
        offset = 0
        for g in self.gradients():
            g[...] = vec[offset : offset + g.size].reshape(g.shape)
            offset += g.size

    def sgd_step(self, lr: float) -> None:
        """Eq 4: ``W ← W − σ·ΔW`` (descent; the paper writes the generic
        ``+σΔW`` update form)."""
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr!r}")
        for p, g in zip(self.parameters(), self.gradients()):
            p -= lr * g

    def state_vector(self) -> np.ndarray:
        """Flatten all parameters (for exact-equality assertions)."""
        return np.concatenate([p.ravel() for p in self.parameters()])

    def load_state_vector(self, vec: np.ndarray) -> None:
        """Inverse of :meth:`state_vector`."""
        if vec.shape != (self.n_params,):
            raise ValueError(f"expected shape ({self.n_params},), got {vec.shape}")
        offset = 0
        for p in self.parameters():
            p[...] = vec[offset : offset + p.size].reshape(p.shape)
            offset += p.size
