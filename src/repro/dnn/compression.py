"""Sparse (top-k) gradient synchronization with error feedback.

The related-work direction the paper cites as [12] (near-optimal sparse
All-reduce): instead of All-reducing the dense gradient, each worker sends
only its ``k`` largest-magnitude entries. Synchronization becomes an
*all-gather* of ``(index, value)`` pairs — every worker receives every
other worker's selection and accumulates locally — moving
``2k·n`` scalars instead of the dense algorithm's gradient volume.

Top-k is lossy; the standard fix is **error feedback**: each worker keeps
the residual it did not send and adds it to the next iteration's gradient,
so dropped coordinates eventually get transmitted. With ``ratio = 1`` the
mechanism is exact and reproduces dense training bit-for-bit (tested).

The all-gather runs as a real schedule
(:func:`repro.comm.primitives.build_allgather_schedule`) over a
``(n_workers, 2k·n_workers)`` buffer, so it can be priced on the
substrates like every other collective in the library.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.ring import chunk_bounds
from repro.collectives.verify import run_schedule
from repro.comm.primitives import build_allgather_schedule
from repro.dnn.training import DataParallelTrainer
from repro.util.validation import check_positive


class TopKCompressor:
    """Per-worker top-k selection with error feedback.

    Attributes:
        ratio: Fraction of gradient entries to keep (0 < ratio <= 1).
        error_feedback: Carry the unsent residual into the next round.
    """

    def __init__(self, ratio: float = 0.01, error_feedback: bool = True) -> None:
        check_positive("ratio", ratio)
        if ratio > 1:
            raise ValueError(f"ratio must be <= 1, got {ratio!r}")
        self.ratio = ratio
        self.error_feedback = error_feedback
        self._residual: np.ndarray | None = None

    def k_for(self, n_params: int) -> int:
        """Entries kept per worker."""
        return max(1, int(np.ceil(self.ratio * n_params)))

    def compress(self, grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Select the top-k of ``grad`` (+ residual), update the residual.

        Returns:
            ``(indices, values)`` arrays of length ``k_for(len(grad))``.
        """
        if grad.ndim != 1:
            raise ValueError(f"expected a flat gradient, got shape {grad.shape}")
        if self.error_feedback:
            if self._residual is None:
                self._residual = np.zeros_like(grad)
            corrected = grad + self._residual
        else:
            corrected = grad
        k = self.k_for(corrected.size)
        indices = np.argpartition(np.abs(corrected), -k)[-k:]
        values = corrected[indices]
        if self.error_feedback:
            self._residual = corrected.copy()
            self._residual[indices] = 0.0
        return indices.astype(np.float64), values

    def reset(self) -> None:
        """Drop the accumulated residual."""
        self._residual = None


class CompressedDataParallelTrainer(DataParallelTrainer):
    """Data-parallel SGD with sparse (top-k) gradient synchronization.

    The dense All-reduce schedule is replaced by an all-gather of each
    worker's ``(indices, values)`` block; every worker then reconstructs
    the averaged sparse update locally. ``compression_ratio=1.0`` recovers
    dense training exactly.
    """

    def __init__(
        self,
        model_factory,
        n_workers: int,
        compression_ratio: float = 0.01,
        error_feedback: bool = True,
        lr: float = 0.05,
    ) -> None:
        super().__init__(model_factory, n_workers, algorithm="ring", lr=lr)
        self.compressors = [
            TopKCompressor(compression_ratio, error_feedback)
            for _ in range(n_workers)
        ]
        self._k = self.compressors[0].k_for(self.n_params)
        if n_workers > 1:
            block = 2 * self._k
            total = block * n_workers
            if total % n_workers:
                raise AssertionError("block layout must divide evenly")
            self._gather_schedule = build_allgather_schedule(n_workers, total)
        else:
            self._gather_schedule = None

    @property
    def k(self) -> int:
        """Entries each worker transmits per iteration."""
        return self._k

    @property
    def bytes_per_sync(self) -> int:
        """Payload bytes one worker contributes per synchronization
        (float64 index/value pairs)."""
        return 2 * self._k * 8

    @property
    def dense_bytes_per_sync(self) -> int:
        """What the dense gradient would have been (same element width)."""
        return self.n_params * 8

    def _synchronize(self, grads: np.ndarray) -> np.ndarray:
        if self._gather_schedule is None:
            return grads[0] / self.n_workers
        block = 2 * self._k
        buffers = np.zeros((self.n_workers, block * self.n_workers))
        bounds = chunk_bounds(block * self.n_workers, self.n_workers)
        for w in range(self.n_workers):
            indices, values = self.compressors[w].compress(grads[w])
            lo, hi = bounds[w]
            buffers[w, lo : lo + self._k] = indices
            buffers[w, lo + self._k : hi] = values
        run_schedule(self._gather_schedule, buffers)
        # Every worker now holds all blocks; reconstruct the sparse sum.
        dense = np.zeros(self.n_params)
        row = buffers[0]
        for w in range(self.n_workers):
            lo, _ = bounds[w]
            indices = row[lo : lo + self._k].astype(np.intp)
            values = row[lo + self._k : lo + 2 * self._k]
            np.add.at(dense, indices, values)
        return dense / self.n_workers
