"""Per-layer FLOP counting for the evaluation models.

The paper profiles GPU compute time per iteration (Sec 5.1) to argue the
motivation claim that All-reduce dominates iteration time at scale (Sec 1).
We reproduce that pipeline synthetically: standard FLOP counts per layer
(multiply-accumulate counted as 2 FLOPs), combined with a device model in
:mod:`repro.dnn.profile`.

Conventions (the usual ones):

- Dense: ``2·in·out`` per sample forward.
- Conv2D: ``2·(in/groups)·out·kh·kw·oh·ow`` per sample forward — the spec's
  ``output_spatial`` carries ``(oh, ow)``.
- Norm layers: a handful of FLOPs per element; counted as ``10·features``
  (they are never the bottleneck).
- Attention: QKV/output projections as Dense, plus the two ``seq²·dim``
  attention matmuls.
- Backward ≈ 2× forward (gradient w.r.t. inputs and weights) — the standard
  rule of thumb used by every training-time estimator.
"""

from __future__ import annotations

from repro.dnn.layers import (
    AttentionSpec,
    BatchNormSpec,
    Conv2DSpec,
    DenseSpec,
    EmbeddingSpec,
    LayerNormSpec,
    TransformerBlockSpec,
)

BACKWARD_FACTOR = 2.0
"""Backward-pass FLOPs as a multiple of forward FLOPs."""


def dense_flops(spec: DenseSpec) -> float:
    """Forward FLOPs per sample."""
    return 2.0 * spec.in_features * spec.out_features


def conv2d_flops(spec: Conv2DSpec, output_spatial: tuple[int, int]) -> float:
    """Forward FLOPs per sample for the given output map size."""
    oh, ow = output_spatial
    if oh < 1 or ow < 1:
        raise ValueError(f"bad output spatial {output_spatial!r}")
    per_position = (
        2.0 * (spec.in_channels // spec.groups) * spec.kernel_h * spec.kernel_w
    )
    return per_position * spec.out_channels * oh * ow


def norm_flops(features: int, spatial: int = 1) -> float:
    """Forward FLOPs per sample for a (batch/layer) norm over a map."""
    return 10.0 * features * spatial


def attention_flops(spec: AttentionSpec, seq_len: int) -> float:
    """Forward FLOPs per sample: projections + the two attention matmuls."""
    if seq_len < 1:
        raise ValueError(f"seq_len must be >= 1, got {seq_len!r}")
    projections = 2.0 * seq_len * (spec.dim * 3 * spec.dim + spec.dim * spec.dim)
    attention = 2.0 * 2.0 * seq_len * seq_len * spec.dim
    return projections + attention


def transformer_block_flops(spec: TransformerBlockSpec, seq_len: int) -> float:
    """Forward FLOPs per sample for a full pre-norm block."""
    attn = attention_flops(
        AttentionSpec(spec.dim, spec.n_heads), seq_len
    )
    hidden = spec.dim * spec.mlp_ratio
    mlp = 2.0 * seq_len * (spec.dim * hidden + hidden * spec.dim)
    norms = 2 * norm_flops(spec.dim, seq_len)
    return attn + mlp + norms


def layer_forward_flops(spec, context: dict | None = None) -> float:
    """Forward FLOPs per sample for any layer spec.

    Args:
        spec: One of the :mod:`repro.dnn.layers` spec types.
        context: Layer-type-specific extras: ``output_spatial`` for convs,
            ``seq_len`` for attention/transformer blocks, ``spatial`` for
            norms.
    """
    context = context or {}
    if isinstance(spec, DenseSpec):
        return dense_flops(spec)
    if isinstance(spec, Conv2DSpec):
        spatial = context.get("output_spatial")
        if spatial is None:
            raise ValueError("Conv2DSpec needs context['output_spatial']")
        return conv2d_flops(spec, spatial)
    if isinstance(spec, (BatchNormSpec, LayerNormSpec)):
        return norm_flops(spec.features, context.get("spatial", 1))
    if isinstance(spec, TransformerBlockSpec):
        seq = context.get("seq_len")
        if seq is None:
            raise ValueError("TransformerBlockSpec needs context['seq_len']")
        return transformer_block_flops(spec, seq)
    if isinstance(spec, AttentionSpec):
        seq = context.get("seq_len")
        if seq is None:
            raise ValueError("AttentionSpec needs context['seq_len']")
        return attention_flops(spec, seq)
    if isinstance(spec, EmbeddingSpec):
        return 0.0  # table lookup
    raise TypeError(f"unknown layer spec {type(spec).__name__}")


def layer_backward_flops(spec, context: dict | None = None) -> float:
    """Backward FLOPs per sample (the 2× forward rule)."""
    return BACKWARD_FACTOR * layer_forward_flops(spec, context)
