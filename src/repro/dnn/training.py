"""Data-parallel SGD whose gradient sync runs the real schedules (Eq 5).

Each of ``n_workers`` holds a model replica (identical initialization) and
computes gradients on its batch shard. Synchronization stacks the workers'
gradient vectors into an ``(n_workers, n_params)`` buffer and executes an
actual All-reduce :class:`~repro.collectives.base.Schedule` on it with the
numerical executor — the same schedule objects the interconnect substrates
price. After the All-reduce every worker averages (Eq 5) and applies Eq 4.

Because the loss averages over each *shard* while Eq 5 averages over
*workers*, shard gradients are re-weighted by shard size so that the
synchronized gradient equals the exact full-batch gradient; the test suite
asserts bit-identical weights against single-worker training for every
collective.

The trainer can also report what each synchronization would cost on the
optical and electrical substrates, tying the training loop to the paper's
communication analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.collectives.registry import build_schedule
from repro.collectives.verify import run_schedule
from repro.dnn.autograd import MLP
from repro.util.validation import check_positive, check_positive_int


@dataclass
class TrainingReport:
    """Per-iteration records of one training run.

    Attributes:
        losses: Full-batch-equivalent loss per iteration (weighted mean of
            shard losses).
        comm_time_per_iter: Seconds one gradient All-reduce would take on
            the priced substrate (``None`` when no substrate was attached).
        algorithm: Collective used for synchronization.
        n_workers: Data-parallel width.
    """

    algorithm: str
    n_workers: int
    losses: list[float] = field(default_factory=list)
    comm_time_per_iter: float | None = None


class DataParallelTrainer:
    """Synchronous data-parallel SGD over simulated workers."""

    def __init__(
        self,
        model_factory: Callable[[], MLP],
        n_workers: int,
        algorithm: str = "wrht",
        lr: float = 0.05,
        **schedule_kwargs,
    ) -> None:
        check_positive_int("n_workers", n_workers)
        check_positive("lr", lr)
        self.n_workers = n_workers
        self.algorithm = algorithm
        self.lr = lr
        self.workers = [model_factory() for _ in range(n_workers)]
        reference = self.workers[0].state_vector()
        for worker in self.workers[1:]:
            worker.load_state_vector(reference.copy())
        self.n_params = self.workers[0].n_params
        self._schedule = (
            build_schedule(
                algorithm, n_workers, self.n_params,
                materialize=True, **schedule_kwargs,
            )
            if n_workers > 1
            else None
        )

    @property
    def schedule(self):
        """The All-reduce schedule used for gradient sync (None for 1 worker)."""
        return self._schedule

    def _shard(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        shard_sizes: list[int] | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        if len(x) < self.n_workers:
            raise ValueError(
                f"batch of {len(x)} cannot be split across {self.n_workers} workers"
            )
        if shard_sizes is None:
            xs = np.array_split(x, self.n_workers)
            ys = np.array_split(labels, self.n_workers)
            return list(zip(xs, ys))
        if len(shard_sizes) != self.n_workers:
            raise ValueError(
                f"{len(shard_sizes)} shard sizes for {self.n_workers} workers"
            )
        if sum(shard_sizes) != len(x) or any(s < 1 for s in shard_sizes):
            raise ValueError(
                f"shard sizes {shard_sizes} must be positive and sum to {len(x)}"
            )
        cuts = np.cumsum(shard_sizes)[:-1]
        return list(zip(np.split(x, cuts), np.split(labels, cuts)))

    def train_step(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        shard_sizes: list[int] | None = None,
    ) -> float:
        """One synchronous iteration over the full batch.

        Args:
            x: Full batch inputs.
            labels: Full batch labels.
            shard_sizes: Optional uneven per-worker shard sizes (e.g. the
                speed-proportional split of
                :func:`repro.dnn.heterogeneity.proportional_shards`); the
                shard-size re-weighting keeps the synchronized gradient
                exactly the full-batch gradient either way.

        Returns:
            The full-batch loss (shard losses weighted by shard size).
        """
        shards = self._shard(x, labels, shard_sizes)
        total = len(x)
        grads = np.empty((self.n_workers, self.n_params))
        loss = 0.0
        for w, (worker, (xs, ys)) in enumerate(zip(self.workers, shards)):
            shard_loss = worker.loss_and_gradients(xs, ys)
            loss += shard_loss * (len(xs) / total)
            # Shard losses average over the shard; Eq 5 sums over workers and
            # divides by n. Re-weight so the average equals the full-batch
            # gradient: grad_full = Σ_w (|shard_w|/|batch|)·grad_w
            #                     = (1/n)·Σ_w (n·|shard_w|/|batch|)·grad_w.
            grads[w] = worker.gradient_vector() * (
                self.n_workers * len(xs) / total
            )
        synced = self._synchronize(grads)
        for worker in self.workers:
            worker.set_gradient_vector(synced)
            worker.sgd_step(self.lr)
        return loss

    def _synchronize(self, grads: np.ndarray) -> np.ndarray:
        """All-reduce the per-worker gradients; returns the Eq 5 average.

        Subclasses override this to change the synchronization mechanism
        (e.g. :class:`~repro.dnn.compression.CompressedDataParallelTrainer`
        replaces the dense All-reduce with a sparse all-gather).
        """
        if self._schedule is not None:
            run_schedule(self._schedule, grads)  # every row -> Σ_w grads[w]
        return grads[0] / self.n_workers  # Eq 5 average

    def train(
        self,
        batches: list[tuple[np.ndarray, np.ndarray]],
        comm_pricer: Callable[["DataParallelTrainer"], float] | None = None,
    ) -> TrainingReport:
        """Run over ``batches`` and collect a report.

        Args:
            batches: ``(x, labels)`` pairs.
            comm_pricer: Optional callable returning the seconds one
                gradient All-reduce costs (e.g. wrapping an
                :class:`~repro.optical.network.OpticalRingNetwork`).
        """
        report = TrainingReport(algorithm=self.algorithm, n_workers=self.n_workers)
        for x, labels in batches:
            report.losses.append(self.train_step(x, labels))
        if comm_pricer is not None:
            report.comm_time_per_iter = comm_pricer(self)
        return report

    def consensus_state(self) -> np.ndarray:
        """All workers' (identical) parameters; raises if replicas diverged."""
        states = [w.state_vector() for w in self.workers]
        for i, state in enumerate(states[1:], start=1):
            if not np.allclose(state, states[0], rtol=0, atol=0):
                raise AssertionError(f"worker {i} diverged from worker 0")
        return states[0]
