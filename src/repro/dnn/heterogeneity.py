"""Heterogeneous-worker data parallelism (the paper's named future work).

Sec 7: "Future work can be done by extending our work to ... heterogeneous
computing device scenarios." In synchronous data parallelism, heterogeneity
means stragglers: the All-reduce cannot start until the slowest worker
finishes backward, so one slow device stalls the fleet. Two standard
mitigations are modeled:

- **naive (equal shards)** — iteration time is governed by the slowest
  device processing ``batch/n`` samples;
- **speed-proportional shards** — each worker gets work proportional to
  its throughput, equalizing finish times. The split stays *exact* for
  Eq 5 because the trainer re-weights shard gradients by shard size
  (see :mod:`repro.dnn.training`), so convergence is untouched.

:func:`proportional_shards` computes the integer split (largest-remainder
rounding); :class:`HeterogeneousIteration` prices both policies with any
communication backend, quantifying how much balancing recovers and how the
comm fraction shifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dnn.iteration import CommTimeFn
from repro.dnn.profile import DeviceModel, ModelProfile
from repro.util.validation import check_positive_int


def proportional_shards(batch: int, speeds: Sequence[float]) -> list[int]:
    """Integer shard sizes proportional to worker speeds.

    Largest-remainder rounding: exact total, every worker gets at least one
    sample when ``batch >= len(speeds)``.

    Args:
        batch: Global batch size.
        speeds: Positive relative throughputs, one per worker.
    """
    check_positive_int("batch", batch)
    if not speeds:
        raise ValueError("need at least one worker")
    if any(s <= 0 for s in speeds):
        raise ValueError("all speeds must be positive")
    if batch < len(speeds):
        raise ValueError(f"batch {batch} smaller than worker count {len(speeds)}")
    total_speed = sum(speeds)
    raw = [batch * s / total_speed for s in speeds]
    shards = [int(r) for r in raw]
    # Largest-remainder: hand out the leftover samples by fractional part
    # (ties by index for determinism); yields an exact total.
    leftover = batch - sum(shards)
    order = sorted(range(len(raw)), key=lambda i: (raw[i] - shards[i], -i), reverse=True)
    for i in range(leftover):
        shards[order[i % len(order)]] += 1
    # Every worker needs at least one sample: take from the largest shard.
    for i in range(len(shards)):
        while shards[i] < 1:
            donor = max(range(len(shards)), key=lambda j: shards[j])
            if shards[donor] <= 1:
                raise AssertionError("batch >= n_workers guarantees a donor")
            shards[donor] -= 1
            shards[i] += 1
    assert sum(shards) == batch
    return shards


@dataclass(frozen=True)
class HeterogeneousBreakdown:
    """One policy's iteration decomposition.

    Attributes:
        compute: Seconds until the last worker finishes forward+backward.
        comm: All-reduce seconds.
        total: Iteration seconds.
        shards: The shard sizes used.
    """

    compute: float
    comm: float
    total: float
    shards: tuple[int, ...]

    @property
    def comm_fraction(self) -> float:
        """Communication share of the iteration."""
        return self.comm / self.total if self.total else 0.0


class HeterogeneousIteration:
    """Prices synchronous data-parallel iterations on mixed fleets."""

    def __init__(
        self,
        profile: ModelProfile,
        speeds: Sequence[float],
        comm_time: CommTimeFn,
        device: DeviceModel | None = None,
    ) -> None:
        if not speeds or any(s <= 0 for s in speeds):
            raise ValueError("speeds must be a non-empty positive sequence")
        self.profile = profile
        self.speeds = tuple(float(s) for s in speeds)
        self.comm_time = comm_time
        self.device = device or DeviceModel()

    @property
    def n_workers(self) -> int:
        """Fleet size."""
        return len(self.speeds)

    def _compute_time(self, shard: int, speed: float) -> float:
        base = self.profile.forward_time(shard, self.device) + (
            self.profile.backward_time(shard, self.device)
        )
        return base / speed

    def _run(self, shards: Sequence[int], bytes_per_param: int) -> HeterogeneousBreakdown:
        compute = max(
            self._compute_time(shard, speed)
            for shard, speed in zip(shards, self.speeds)
        )
        comm = self.comm_time(float(self.profile.total_params * bytes_per_param))
        return HeterogeneousBreakdown(
            compute=compute, comm=comm, total=compute + comm,
            shards=tuple(shards),
        )

    def equal_shards(self, batch: int, bytes_per_param: int = 4) -> HeterogeneousBreakdown:
        """The naive policy: ``batch/n`` samples everywhere."""
        check_positive_int("batch", batch)
        base, extra = divmod(batch, self.n_workers)
        shards = [base + (1 if i < extra else 0) for i in range(self.n_workers)]
        if any(s == 0 for s in shards):
            raise ValueError(f"batch {batch} too small for {self.n_workers} workers")
        return self._run(shards, bytes_per_param)

    def balanced_shards(self, batch: int, bytes_per_param: int = 4) -> HeterogeneousBreakdown:
        """Speed-proportional shards (finish times equalized)."""
        return self._run(proportional_shards(batch, self.speeds), bytes_per_param)

    def balancing_speedup(self, batch: int) -> float:
        """Iteration-time ratio naive / balanced (>= 1 up to rounding)."""
        return self.equal_shards(batch).total / self.balanced_shards(batch).total
