"""Synthetic workload profiling: compute time and gradient release order.

Stands in for the paper's TensorFlow-profiler step (Sec 5.1): per-layer
forward/backward FLOPs (from :mod:`repro.dnn.flops` with each model's
standard activation-map geometry) divided by a device model give per-layer
compute times; running backward from the output layer to the input layer
gives the *gradient release schedule* — the order and times at which layer
gradients become available for All-reduce, which the iteration model
(:mod:`repro.dnn.iteration`) uses to overlap communication with compute.

The device default approximates the paper's testbed GPU (TITAN Xp-class:
~12 TFLOP/s FP32 peak at a typical ~35% training efficiency). As the paper
notes, these numbers shift total training time but not All-reduce cost;
they only need to be order-of-magnitude right for the Sec 1 motivation
claim, which the bench suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.flops import layer_backward_flops, layer_forward_flops
from repro.dnn.layers import Conv2DSpec, DenseSpec
from repro.dnn.models import MODEL_BUILDERS, ModelSpec
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class DeviceModel:
    """A simple accelerator throughput model.

    Attributes:
        peak_flops: Peak FP32 throughput (FLOP/s).
        efficiency: Sustained fraction of peak during training.
    """

    peak_flops: float = 12.1e12
    efficiency: float = 0.35

    def __post_init__(self) -> None:
        check_positive("peak_flops", self.peak_flops)
        if not (0 < self.efficiency <= 1):
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency!r}")

    def time(self, flops: float) -> float:
        """Seconds to execute ``flops``."""
        if flops < 0:
            raise ValueError(f"flops must be >= 0, got {flops!r}")
        return flops / (self.peak_flops * self.efficiency)


@dataclass(frozen=True)
class LayerProfile:
    """One layer's compute/communication footprint.

    Attributes:
        index: Position in the model (0 = input side).
        label: Layer type plus shape hint.
        params: Trainable parameters (gradient elements).
        forward_flops: Per-sample forward FLOPs.
        backward_flops: Per-sample backward FLOPs.
    """

    index: int
    label: str
    params: int
    forward_flops: float
    backward_flops: float


@dataclass(frozen=True)
class ModelProfile:
    """A profiled model: per-layer footprints plus totals.

    Layer order matches the catalog (input → output); backward visits it in
    reverse.
    """

    name: str
    layers: tuple[LayerProfile, ...]
    extra_params: int = 0

    @property
    def total_params(self) -> int:
        """All trainable parameters (catalog extras included)."""
        return sum(l.params for l in self.layers) + self.extra_params

    def forward_time(self, batch: int, device: DeviceModel) -> float:
        """Seconds for one forward pass."""
        check_positive_int("batch", batch)
        return device.time(batch * sum(l.forward_flops for l in self.layers))

    def backward_time(self, batch: int, device: DeviceModel) -> float:
        """Seconds for one backward pass."""
        check_positive_int("batch", batch)
        return device.time(batch * sum(l.backward_flops for l in self.layers))

    def gradient_release_schedule(
        self, batch: int, device: DeviceModel
    ) -> list[tuple[LayerProfile, float]]:
        """``(layer, release_time)`` pairs in release (output→input) order.

        A layer's gradient is available once backward has run through every
        layer above it; release times are the cumulative backward times
        measured from the start of the backward pass.
        """
        check_positive_int("batch", batch)
        schedule = []
        clock = 0.0
        for layer in reversed(self.layers):
            clock += device.time(batch * layer.backward_flops)
            if layer.params > 0:
                schedule.append((layer, clock))
        return schedule


def _label(spec, context: dict) -> str:
    name = type(spec).__name__.replace("Spec", "")
    if isinstance(spec, Conv2DSpec) and "output_spatial" in context:
        oh, ow = context["output_spatial"]
        return f"{name}{spec.kernel_h}x{spec.kernel_w}@{oh}x{ow}"
    if isinstance(spec, DenseSpec):
        return f"{name}{spec.in_features}->{spec.out_features}"
    return name


def _alexnet_contexts(model: ModelSpec) -> list[dict]:
    spatial = [(55, 55), (27, 27), (13, 13), (13, 13), (13, 13)]
    return [{"output_spatial": s} for s in spatial] + [{}] * 3


def _vgg16_contexts(model: ModelSpec) -> list[dict]:
    sides = [224, 224, 112, 112, 56, 56, 56, 28, 28, 28, 14, 14, 14]
    return [{"output_spatial": (s, s)} for s in sides] + [{}] * 3


def _resnet50_contexts(model: ModelSpec) -> list[dict]:
    contexts: list[dict] = [
        {"output_spatial": (112, 112)},               # conv1
        {"spatial": 112 * 112},                        # bn1
    ]
    stage_sides = {64: 56, 128: 28, 256: 14, 512: 7}
    for width, blocks in ((64, 3), (128, 4), (256, 6), (512, 3)):
        side = stage_sides[width]
        for b in range(blocks):
            per_conv = [{"output_spatial": (side, side)}, {"spatial": side * side}]
            contexts.extend(per_conv * 3)              # 1x1, 3x3, 1x1 (+BNs)
            if b == 0:
                contexts.extend(per_conv)               # downsample conv + BN
    contexts.append({})                                 # fc
    return contexts


def _beit_contexts(model: ModelSpec) -> list[dict]:
    seq = 1 + (224 // 16) ** 2
    return (
        [{"output_spatial": (14, 14)}]
        + [{"seq_len": seq}] * 24
        + [{"spatial": seq}, {}]
    )


_CONTEXT_BUILDERS = {
    "AlexNet": _alexnet_contexts,
    "VGG16": _vgg16_contexts,
    "ResNet50": _resnet50_contexts,
    "BEiT-L": _beit_contexts,
}


def profile_model(name: str) -> ModelProfile:
    """Profile one of the four evaluation models by figure name."""
    try:
        model = MODEL_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; have {sorted(MODEL_BUILDERS)}"
        ) from None
    contexts = _CONTEXT_BUILDERS[name](model)
    if len(contexts) != len(model.layers):
        raise AssertionError(
            f"{name}: {len(contexts)} contexts for {len(model.layers)} layers"
        )
    layers = []
    for i, (spec, context) in enumerate(zip(model.layers, contexts)):
        fwd = layer_forward_flops(spec, context)
        layers.append(
            LayerProfile(
                index=i,
                label=_label(spec, context),
                params=spec.param_count,
                forward_flops=fwd,
                backward_flops=layer_backward_flops(spec, context),
            )
        )
    extra = sum(count for _, count in model.extra_params)
    return ModelProfile(name=name, layers=tuple(layers), extra_params=extra)
