"""Layer-level catalogs of the four evaluation models (Sec 5.1).

Each builder returns a :class:`ModelSpec` whose derived parameter count is
validated (in the test suite) against the paper's stated sizes:

=========  ==============  =======================
Model      Paper (Sec 5.1) Derived here
=========  ==============  =======================
BEiT-L     307 M           ~305 M (ViT-L/16 trunk + BEiT extras)
VGG16      138 M           138,357,544 (exact torchvision count)
AlexNet    62.3 M          60,965,224 (original grouped Krizhevsky net)
ResNet50   25 M            25,557,032 (exact torchvision count)
=========  ==============  =======================

The small AlexNet/BEiT deltas are the usual variant ambiguity (the paper
cites headline numbers from secondary sources); experiments use the paper's
headline sizes via :mod:`repro.dnn.workload` so figure inputs match the
paper exactly, while these catalogs document where the bytes come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dnn.layers import (
    BatchNormSpec,
    Conv2DSpec,
    DenseSpec,
    LayerNormSpec,
    TransformerBlockSpec,
)

LayerSpec = object  # any spec with a .param_count property


@dataclass(frozen=True)
class ModelSpec:
    """A named stack of layer specs.

    Attributes:
        name: Display name used in figures.
        layers: Ordered layer specs (order is documentation-only; parameter
            counting is order-independent).
        extra_params: Parameters not tied to a layer (class tokens,
            positional embeddings, ...), as (label, count) pairs.
    """

    name: str
    layers: tuple[LayerSpec, ...]
    extra_params: tuple[tuple[str, int], ...] = field(default_factory=tuple)

    @property
    def param_count(self) -> int:
        """Total trainable parameters."""
        total = sum(layer.param_count for layer in self.layers)
        total += sum(count for _, count in self.extra_params)
        return total

    def gradient_bytes(self, bytes_per_param: int = 4) -> int:
        """Bytes synchronized per All-reduce (float32 by default)."""
        if bytes_per_param < 1:
            raise ValueError("bytes_per_param must be >= 1")
        return self.param_count * bytes_per_param

    @property
    def n_layers(self) -> int:
        """Number of layer specs."""
        return len(self.layers)


def alexnet(n_classes: int = 1000) -> ModelSpec:
    """Original (grouped, two-tower) AlexNet — 60,965,224 params at 1000
    classes."""
    return ModelSpec(
        name="AlexNet",
        layers=(
            Conv2DSpec(3, 96, 11, 11),
            Conv2DSpec(96, 256, 5, 5, groups=2),
            Conv2DSpec(256, 384, 3, 3),
            Conv2DSpec(384, 384, 3, 3, groups=2),
            Conv2DSpec(384, 256, 3, 3, groups=2),
            DenseSpec(6 * 6 * 256, 4096),
            DenseSpec(4096, 4096),
            DenseSpec(4096, n_classes),
        ),
    )


def vgg16(n_classes: int = 1000) -> ModelSpec:
    """VGG16 (configuration D) — 138,357,544 params at 1000 classes."""
    convs = []
    cfg = [
        (3, 64), (64, 64),
        (64, 128), (128, 128),
        (128, 256), (256, 256), (256, 256),
        (256, 512), (512, 512), (512, 512),
        (512, 512), (512, 512), (512, 512),
    ]
    for cin, cout in cfg:
        convs.append(Conv2DSpec(cin, cout, 3, 3))
    return ModelSpec(
        name="VGG16",
        layers=(
            *convs,
            DenseSpec(7 * 7 * 512, 4096),
            DenseSpec(4096, 4096),
            DenseSpec(4096, n_classes),
        ),
    )


def _bottleneck(cin: int, width: int, downsample: bool) -> list[LayerSpec]:
    """ResNet bottleneck: 1×1 → 3×3 → 1×1 (expansion 4) with BN after each
    conv, plus the projection shortcut on stage entry."""
    cout = width * 4
    block: list[LayerSpec] = [
        Conv2DSpec(cin, width, 1, 1, bias=False), BatchNormSpec(width),
        Conv2DSpec(width, width, 3, 3, bias=False), BatchNormSpec(width),
        Conv2DSpec(width, cout, 1, 1, bias=False), BatchNormSpec(cout),
    ]
    if downsample:
        block += [Conv2DSpec(cin, cout, 1, 1, bias=False), BatchNormSpec(cout)]
    return block


def resnet50(n_classes: int = 1000) -> ModelSpec:
    """ResNet-50 — 25,557,032 params at 1000 classes."""
    layers: list[LayerSpec] = [Conv2DSpec(3, 64, 7, 7, bias=False), BatchNormSpec(64)]
    cin = 64
    for width, blocks in ((64, 3), (128, 4), (256, 6), (512, 3)):
        for b in range(blocks):
            layers += _bottleneck(cin, width, downsample=(b == 0))
            cin = width * 4
    layers.append(DenseSpec(2048, n_classes))
    return ModelSpec(name="ResNet50", layers=tuple(layers))


def beit_large(n_classes: int = 1000, image_size: int = 224, patch: int = 16) -> ModelSpec:
    """BEiT-Large — ViT-L/16 trunk with BEiT's layer-scale and per-block
    relative position bias tables; ~305 M params at 1000 classes."""
    grid = image_size // patch
    rel_entries = (2 * grid - 1) ** 2 + 3  # window table + cls-token terms
    dim, heads, depth = 1024, 16, 24
    blocks = tuple(
        TransformerBlockSpec(
            dim, heads, mlp_ratio=4, layer_scale=True,
            relative_position_entries=rel_entries,
        )
        for _ in range(depth)
    )
    return ModelSpec(
        name="BEiT-L",
        layers=(
            Conv2DSpec(3, dim, patch, patch),  # patch embedding
            *blocks,
            LayerNormSpec(dim),
            DenseSpec(dim, n_classes),
        ),
        extra_params=(
            ("cls_token", dim),
            ("mask_token", dim),
        ),
    )


def gpt3(vocab: int = 50257, context: int = 2048) -> ModelSpec:
    """GPT-3 175B — Sec 6.2's example of a model that *cannot* train
    data-parallel (no single accelerator holds it) and therefore needs the
    hybrid tensor/pipeline parallelism of :mod:`repro.dnn.parallelism`.

    96 decoder blocks at d=12288, 96 heads, MLP ratio 4: ~175 B params.
    """
    dim, heads, depth = 12288, 96, 96
    blocks = tuple(
        TransformerBlockSpec(dim, heads, mlp_ratio=4) for _ in range(depth)
    )
    from repro.dnn.layers import EmbeddingSpec

    return ModelSpec(
        name="GPT-3",
        layers=(
            EmbeddingSpec(vocab, dim),
            *blocks,
            LayerNormSpec(dim),
        ),
        extra_params=(("position_embeddings", context * dim),),
    )


MODEL_BUILDERS: dict[str, Callable[[], ModelSpec]] = {
    "BEiT-L": beit_large,
    "VGG16": vgg16,
    "AlexNet": alexnet,
    "ResNet50": resnet50,
}
"""Builders keyed by the display names the paper's figures use (GPT-3 is
exposed separately via :func:`gpt3`; it is not one of the evaluation
workloads)."""
