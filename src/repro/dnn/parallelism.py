"""Hybrid tensor/pipeline/data parallelism on the optical ring (Sec 6.2).

The paper's discussion section: LLMs like GPT-3 cannot train data-parallel
(no accelerator holds the replica), but WRHT still applies inside the
communicator groups of a hybrid parallelization. This module makes that
concrete on the ring:

**Layout.** A ``(dp, pp, tp)`` grid over ``N = dp·pp·tp`` ring nodes, with
tensor-parallel groups innermost (contiguous ring segments — they
communicate most), pipeline stages next, data-parallel replicas outermost:
``node = dp_idx·(pp·tp) + pp_idx·tp + tp_idx``.

**Communication per training step** (Megatron-style accounting):

- tensor-parallel: 4 activation All-reduces per transformer layer per
  micro-batch (2 forward + 2 backward), each of ``micro_batch·seq·hidden``
  elements, inside each contiguous TP group;
- pipeline-parallel: activation send/receive between adjacent stages per
  micro-batch (point-to-point, priced as 1-hop-adjacent ring transfers);
- data-parallel: one gradient All-reduce per step over each DP group
  (stride ``pp·tp`` on the ring) of the rank's parameter shard,
  ``params/(pp·tp)`` elements.

All groups of a kind synchronize *concurrently* — built as grouped
schedules (:mod:`repro.collectives.grouped`) so the ring's wavelength
assignment decides constructively how much overlap the fabric admits.

**Memory.** ``bytes_per_param_state`` (default 18: fp16 weight+gradient +
fp32 Adam moments + master weight fractions) times the per-rank shard must
fit ``device_memory`` — the feasibility check that rules out pure data
parallelism for GPT-3, reproducing Sec 6.2's argument quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.grouped import build_grouped_allreduce
from repro.collectives.base import CommStep, Schedule, Transfer, compress_steps
from repro.dnn.models import ModelSpec
from repro.util.validation import check_positive, check_positive_int


LAYOUTS = ("tp_inner", "dp_inner")


@dataclass(frozen=True)
class ParallelismPlan:
    """A ``(dp, pp, tp)`` decomposition of the ring.

    Attributes:
        n_nodes: Ring size (must equal ``dp·pp·tp``).
        tp: Tensor-parallel group size.
        pp: Pipeline stages.
        dp: Data-parallel replicas.
        layout: Which dimension occupies contiguous ring segments:
            ``"tp_inner"`` (default — TP groups contiguous, DP strided;
            right when activation traffic dominates) or ``"dp_inner"``
            (DP groups contiguous, TP strided; right when the gradient
            All-reduce dominates). The placement ablation bench quantifies
            the difference.
    """

    n_nodes: int
    tp: int = 1
    pp: int = 1
    dp: int = 1
    layout: str = "tp_inner"

    def __post_init__(self) -> None:
        for name in ("n_nodes", "tp", "pp", "dp"):
            check_positive_int(name, getattr(self, name))
        if self.dp * self.pp * self.tp != self.n_nodes:
            raise ValueError(
                f"dp*pp*tp = {self.dp * self.pp * self.tp} != n_nodes = {self.n_nodes}"
            )
        if self.layout not in LAYOUTS:
            raise ValueError(f"layout must be one of {LAYOUTS}, got {self.layout!r}")

    def node(self, dp_idx: int, pp_idx: int, tp_idx: int) -> int:
        """Physical ring id of one grid coordinate."""
        if not (0 <= dp_idx < self.dp and 0 <= pp_idx < self.pp and 0 <= tp_idx < self.tp):
            raise ValueError("grid coordinate out of range")
        if self.layout == "tp_inner":
            return dp_idx * (self.pp * self.tp) + pp_idx * self.tp + tp_idx
        return (pp_idx * self.tp + tp_idx) * self.dp + dp_idx

    def tp_groups(self) -> list[list[int]]:
        """Tensor-parallel groups, one per (dp, pp) pair (contiguous on the
        ring under ``tp_inner``, strided under ``dp_inner``)."""
        return [
            [self.node(d, p, t) for t in range(self.tp)]
            for d in range(self.dp)
            for p in range(self.pp)
        ]

    def dp_groups(self) -> list[list[int]]:
        """Data-parallel groups, one per (pp, tp) pair (strided under
        ``tp_inner``, contiguous under ``dp_inner``)."""
        return [
            [self.node(d, p, t) for d in range(self.dp)]
            for p in range(self.pp)
            for t in range(self.tp)
        ]

    def pp_pairs(self) -> list[tuple[int, int]]:
        """Adjacent-stage (sender, receiver) pairs for every replica."""
        return [
            (self.node(d, p, t), self.node(d, p + 1, t))
            for d in range(self.dp)
            for p in range(self.pp - 1)
            for t in range(self.tp)
        ]


@dataclass(frozen=True)
class MemoryModel:
    """Per-rank memory accounting.

    Attributes:
        device_memory: Accelerator capacity in bytes (80 GB default).
        bytes_per_param_state: Weights + gradients + optimizer state per
            parameter (18 B: mixed-precision Adam).
        activation_bytes_per_token_layer: Activation residency per token
            per local layer (rough Megatron estimate, bytes).
    """

    device_memory: float = 80e9
    bytes_per_param_state: float = 18.0
    activation_bytes_per_token_layer: float = 70.0

    def __post_init__(self) -> None:
        check_positive("device_memory", self.device_memory)
        check_positive("bytes_per_param_state", self.bytes_per_param_state)

    def per_rank_bytes(
        self, model: ModelSpec, plan: ParallelismPlan,
        micro_batch: int = 1, seq_len: int = 2048,
    ) -> float:
        """Bytes one rank holds under ``plan``."""
        shard = model.param_count / (plan.tp * plan.pp)
        states = shard * self.bytes_per_param_state
        local_layers = max(1, model.n_layers // plan.pp)
        activations = (
            micro_batch * seq_len * local_layers
            * self.activation_bytes_per_token_layer / plan.tp
        )
        return states + activations

    def fits(self, model: ModelSpec, plan: ParallelismPlan, **kwargs) -> bool:
        """Whether the plan's per-rank footprint fits the device."""
        return self.per_rank_bytes(model, plan, **kwargs) <= self.device_memory


@dataclass(frozen=True)
class StepCommCost:
    """Per-training-step communication cost under a plan.

    Attributes:
        tp_time: Seconds of tensor-parallel activation All-reduces.
        pp_time: Seconds of pipeline stage-to-stage transfers.
        dp_time: Seconds of the data-parallel gradient All-reduce.
    """

    tp_time: float
    pp_time: float
    dp_time: float

    @property
    def total(self) -> float:
        """End-to-end communication seconds per training step."""
        return self.tp_time + self.pp_time + self.dp_time


class HybridParallelComm:
    """Builds and prices the communication of one hybrid training step."""

    def __init__(
        self,
        model: ModelSpec,
        plan: ParallelismPlan,
        network,
        dp_algorithm: str = "wrht",
        hidden: int = 12288,
        seq_len: int = 2048,
        bytes_per_elem: float = 2.0,  # fp16 activations/gradients
        **dp_kwargs,
    ) -> None:
        check_positive_int("hidden", hidden)
        check_positive_int("seq_len", seq_len)
        check_positive("bytes_per_elem", bytes_per_elem)
        self.model = model
        self.plan = plan
        self.network = network
        self.dp_algorithm = dp_algorithm
        self.hidden = hidden
        self.seq_len = seq_len
        self.bytes_per_elem = bytes_per_elem
        self._dp_kwargs = dp_kwargs

    def tp_schedule(self, micro_batch: int) -> Schedule | None:
        """One concurrent activation All-reduce across every TP group."""
        if self.plan.tp == 1:
            return None
        elems = micro_batch * self.seq_len * self.hidden
        return build_grouped_allreduce(
            self.plan.tp_groups(), elems, self.plan.n_nodes, algorithm="ring"
        )

    def dp_schedule(self) -> Schedule | None:
        """The concurrent gradient All-reduce across every DP group."""
        if self.plan.dp == 1:
            return None
        shard = max(1, self.model.param_count // (self.plan.tp * self.plan.pp))
        return build_grouped_allreduce(
            self.plan.dp_groups(), shard, self.plan.n_nodes,
            algorithm=self.dp_algorithm, **self._dp_kwargs,
        )

    def pp_schedule(self, micro_batch: int) -> Schedule | None:
        """One wave of stage-to-stage activation transfers."""
        pairs = self.plan.pp_pairs()
        if not pairs:
            return None
        elems = micro_batch * self.seq_len * self.hidden
        step = CommStep(
            tuple(Transfer(a, b, 0, elems, "copy") for a, b in pairs),
            stage="exchange",
        )
        return Schedule(
            algorithm="pp-activations", n_nodes=self.plan.n_nodes,
            total_elems=elems, steps=[step],
            timing_profile=compress_steps([step]),
        )

    def step_cost(
        self, micro_batch: int = 1, n_micro_batches: int = 8, n_layers: int | None = None
    ) -> StepCommCost:
        """Price one full training step.

        Args:
            micro_batch: Samples per micro-batch per replica.
            n_micro_batches: Pipeline micro-batches per step.
            n_layers: Transformer layers (defaults to the model's block
                count) — 4 TP All-reduces each per micro-batch.
        """
        check_positive_int("micro_batch", micro_batch)
        check_positive_int("n_micro_batches", n_micro_batches)
        layers = n_layers if n_layers is not None else max(1, self.model.n_layers - 2)
        tp_time = 0.0
        sched = self.tp_schedule(micro_batch)
        if sched is not None:
            once = self.network.execute(sched, bytes_per_elem=self.bytes_per_elem)
            local_layers = max(1, layers // self.plan.pp)
            tp_time = once.total_time * 4 * local_layers * n_micro_batches
        pp_time = 0.0
        sched = self.pp_schedule(micro_batch)
        if sched is not None:
            once = self.network.execute(sched, bytes_per_elem=self.bytes_per_elem)
            # Forward + backward crossings per micro-batch.
            pp_time = once.total_time * 2 * n_micro_batches
        dp_time = 0.0
        sched = self.dp_schedule()
        if sched is not None:
            dp_time = self.network.execute(
                sched, bytes_per_elem=self.bytes_per_elem
            ).total_time
        return StepCommCost(tp_time=tp_time, pp_time=pp_time, dp_time=dp_time)
