"""Synthetic classification datasets (the MNIST/ImageNet stand-in).

The paper's observation (Sec 5.1) is that the dataset only changes compute
time, never All-reduce cost — so a deterministic synthetic dataset with the
same tensor shapes is a faithful substitute (DESIGN.md §5). Classes are
Gaussian blobs around random class centroids, which a small MLP can
actually learn — the example scripts use that to show loss decreasing under
data-parallel training with every collective.
"""

from __future__ import annotations

import numpy as np

from repro.sim.rng import SeededRng
from repro.util.validation import check_positive_int


class SyntheticClassification:
    """Deterministic Gaussian-blob classification data.

    Attributes:
        n_features: Input dimensionality (784 mimics flattened MNIST).
        n_classes: Label count.
    """

    def __init__(
        self,
        n_features: int = 784,
        n_classes: int = 10,
        centroid_scale: float = 2.0,
        noise_scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        check_positive_int("n_features", n_features)
        check_positive_int("n_classes", n_classes)
        if centroid_scale <= 0 or noise_scale < 0:
            raise ValueError("centroid_scale must be > 0 and noise_scale >= 0")
        self.n_features = n_features
        self.n_classes = n_classes
        self.noise_scale = noise_scale
        rng = SeededRng(seed, "dataset")
        self._centroids = rng.normal(0.0, centroid_scale, (n_classes, n_features))
        self._rng = rng.fork("samples")

    def batch(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw one batch.

        Returns:
            ``(x, labels)`` with ``x`` of shape ``(batch, features)`` and
            integer ``labels`` of shape ``(batch,)``. Successive calls
            continue the same deterministic stream.
        """
        check_positive_int("batch_size", batch_size)
        labels = self._rng.generator.integers(0, self.n_classes, batch_size)
        noise = self._rng.normal(0.0, self.noise_scale, (batch_size, self.n_features))
        x = self._centroids[labels] + noise
        return x, labels

    def image_batch(self, batch_size: int, channels: int = 1, side: int = 28
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`batch` but shaped ``(batch, C, side, side)`` for
        convolutional models; requires ``C·side² == n_features``."""
        if channels * side * side != self.n_features:
            raise ValueError(
                f"{channels}x{side}x{side} != n_features={self.n_features}"
            )
        x, labels = self.batch(batch_size)
        return x.reshape(batch_size, channels, side, side), labels
