"""Layer specifications with exact parameter counting.

These are *static* descriptions used to derive each evaluation model's
gradient size (the only workload property the communication model needs —
Sec 5.1 notes that datasets and apps leave All-reduce cost unchanged at a
fixed batch size). The trainable-parameter conventions follow the standard
frameworks: biases counted, batch-norm running statistics not counted,
grouped convolutions divide the input-channel fan-in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class DenseSpec:
    """Fully connected layer: ``in·out`` weights plus ``out`` biases."""

    in_features: int
    out_features: int
    bias: bool = True

    def __post_init__(self) -> None:
        check_positive_int("in_features", self.in_features)
        check_positive_int("out_features", self.out_features)

    @property
    def param_count(self) -> int:
        """Trainable parameters."""
        return self.in_features * self.out_features + (
            self.out_features if self.bias else 0
        )


@dataclass(frozen=True)
class Conv2DSpec:
    """2-D convolution (optionally grouped).

    Parameters: ``(in/groups)·out·kh·kw`` weights plus ``out`` biases.
    """

    in_channels: int
    out_channels: int
    kernel_h: int
    kernel_w: int
    groups: int = 1
    bias: bool = True

    def __post_init__(self) -> None:
        for name in ("in_channels", "out_channels", "kernel_h", "kernel_w", "groups"):
            check_positive_int(name, getattr(self, name))
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(
                f"groups={self.groups} must divide in={self.in_channels} "
                f"and out={self.out_channels}"
            )

    @property
    def param_count(self) -> int:
        """Trainable parameters."""
        weights = (
            (self.in_channels // self.groups)
            * self.out_channels
            * self.kernel_h
            * self.kernel_w
        )
        return weights + (self.out_channels if self.bias else 0)


@dataclass(frozen=True)
class BatchNormSpec:
    """Batch normalization: scale + shift per feature (running stats are
    buffers, not parameters)."""

    features: int

    def __post_init__(self) -> None:
        check_positive_int("features", self.features)

    @property
    def param_count(self) -> int:
        """Trainable parameters."""
        return 2 * self.features


@dataclass(frozen=True)
class LayerNormSpec:
    """Layer normalization: scale + shift per feature."""

    features: int

    def __post_init__(self) -> None:
        check_positive_int("features", self.features)

    @property
    def param_count(self) -> int:
        """Trainable parameters."""
        return 2 * self.features


@dataclass(frozen=True)
class EmbeddingSpec:
    """Lookup table of ``count`` vectors of ``dim`` features."""

    count: int
    dim: int

    def __post_init__(self) -> None:
        check_positive_int("count", self.count)
        check_positive_int("dim", self.dim)

    @property
    def param_count(self) -> int:
        """Trainable parameters."""
        return self.count * self.dim


@dataclass(frozen=True)
class AttentionSpec:
    """Multi-head self-attention: fused QKV projection plus output projection.

    BEiT-style options: ``qkv_bias`` adds biases to Q and V only in the
    original implementation, but the common accounting (used here) is a
    bias per projection when enabled; ``relative_position_entries`` counts
    the per-head relative position bias table entries.
    """

    dim: int
    n_heads: int
    qkv_bias: bool = True
    relative_position_entries: int = 0

    def __post_init__(self) -> None:
        check_positive_int("dim", self.dim)
        check_positive_int("n_heads", self.n_heads)
        if self.dim % self.n_heads:
            raise ValueError(f"dim={self.dim} not divisible by heads={self.n_heads}")
        if self.relative_position_entries < 0:
            raise ValueError("relative_position_entries must be >= 0")

    @property
    def param_count(self) -> int:
        """Trainable parameters."""
        qkv = self.dim * 3 * self.dim + (3 * self.dim if self.qkv_bias else 0)
        proj = self.dim * self.dim + self.dim
        rel = self.relative_position_entries * self.n_heads
        return qkv + proj + rel


@dataclass(frozen=True)
class TransformerBlockSpec:
    """Pre-norm transformer block: LN → MHSA → LN → MLP (+ LayerScale).

    Attributes:
        dim: Hidden width.
        n_heads: Attention heads.
        mlp_ratio: MLP expansion factor (4 in ViT/BEiT).
        layer_scale: BEiT's per-channel residual scaling (two γ vectors).
        relative_position_entries: Forwarded to :class:`AttentionSpec`.
    """

    dim: int
    n_heads: int
    mlp_ratio: int = 4
    layer_scale: bool = False
    relative_position_entries: int = 0

    def __post_init__(self) -> None:
        check_positive_int("dim", self.dim)
        check_positive_int("mlp_ratio", self.mlp_ratio)

    @property
    def param_count(self) -> int:
        """Trainable parameters."""
        hidden = self.dim * self.mlp_ratio
        attn = AttentionSpec(
            self.dim,
            self.n_heads,
            relative_position_entries=self.relative_position_entries,
        ).param_count
        mlp = DenseSpec(self.dim, hidden).param_count + DenseSpec(hidden, self.dim).param_count
        norms = 2 * LayerNormSpec(self.dim).param_count
        scale = 2 * self.dim if self.layer_scale else 0
        return attn + mlp + norms + scale
