"""Binary-tree (BT) All-reduce: binomial reduce + binomial broadcast.

The paper's Figure 2(a) baseline [33]: in reduce step ``k`` (1-based) the
ring is viewed in blocks of ``2^k``; the node at offset ``2^(k−1)`` of each
block sends its full partial sum to the block's first node. After
``⌈log₂ N⌉`` steps node 0 holds the global sum; broadcast replays the steps
in reverse with ``copy`` transfers. Every transfer carries the **full**
vector — the step count is logarithmic but each step pays ``d/B``, which is
why BT struggles on large models (Sec 5.5).
"""

from __future__ import annotations

from repro.collectives.base import (
    CommStep,
    Schedule,
    Transfer,
    compress_steps,
    singleton_schedule,
)
from repro.util.validation import check_positive_int


def _reduce_step_transfers(n: int, k: int, total: int) -> tuple[Transfer, ...]:
    half = 1 << (k - 1)
    return tuple(
        Transfer(src=j, dst=j - half, lo=0, hi=total, op="sum")
        for j in range(half, n, 1 << k)
    )


def _broadcast_step_transfers(n: int, k: int, total: int) -> tuple[Transfer, ...]:
    half = 1 << (k - 1)
    return tuple(
        Transfer(src=j - half, dst=j, lo=0, hi=total, op="copy")
        for j in range(half, n, 1 << k)
    )


def build_bt_schedule(n_nodes: int, total_elems: int, materialize: bool | None = None) -> Schedule:
    """Build the binary-tree All-reduce schedule (``2⌈log₂N⌉`` steps).

    Args:
        n_nodes: Participants N >= 1 (any N, not just powers of two).
        total_elems: Gradient vector length.
        materialize: Kept for builder-API symmetry; BT schedules are always
            cheap to materialize (O(N log N) transfers), so exact steps are
            built unless explicitly disabled.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    if n_nodes == 1:
        return singleton_schedule("bt", total_elems)
    # ``(n-1).bit_length()`` is ⌈log₂ n⌉ computed exactly in integers —
    # no float log2 that could misround near large powers of two, and no
    # math domain error should the n_nodes guard above ever regress.
    n_levels = (n_nodes - 1).bit_length()
    steps: list[CommStep] = []
    for k in range(1, n_levels + 1):
        steps.append(
            CommStep(_reduce_step_transfers(n_nodes, k, total_elems), stage="reduce", level=k)
        )
    for k in range(n_levels, 0, -1):
        steps.append(
            CommStep(
                _broadcast_step_transfers(n_nodes, k, total_elems),
                stage="broadcast",
                level=k,
            )
        )
    profile = compress_steps(steps)
    return Schedule(
        algorithm="bt",
        n_nodes=n_nodes,
        total_elems=total_elems,
        steps=steps if materialize is not False else None,
        timing_profile=profile,
        meta={"profile_exact": True, "n_levels": n_levels},
    )
