"""Numerical execution and correctness verification of schedules.

`run_schedule` executes a materialized schedule on real numpy buffers with
bulk-synchronous semantics: all transfers of a step read the pre-step state,
then apply. `verify_allreduce` checks the All-reduce postcondition — every
node ends with the exact elementwise sum of all initial vectors — using
integer-valued float64 data so equality is exact, not approximate.

The executor also enforces step well-formedness that the static dataclass
validation cannot see:

- two ``copy`` transfers into the same destination range in one step would
  be racy — rejected;
- a ``copy`` and a ``sum`` into the same destination range in one step are
  order-dependent — rejected.
"""

from __future__ import annotations

import numpy as np

from repro.check.intervals import Conflict, find_conflicts
from repro.collectives.base import CommStep, Schedule


class ScheduleConflictError(ValueError):
    """A step contains order-dependent writes to one destination range."""


def step_write_conflicts(step: CommStep, first_only: bool = False) -> list[Conflict]:
    """Order-dependent write overlaps within one step.

    Destination writes become interval claims on the destination node
    (``sum`` writes are combinable, ``copy`` writes exclusive) and run
    through the shared interval engine — the same analysis the optical
    circuit validator and the :mod:`repro.check` plan rules use.
    """
    return find_conflicts(
        [c for t in step.transfers if t.n_elems > 0 for c in [t.write_claim()]],
        first_only=first_only,
    )


def check_step_conflicts(step: CommStep) -> None:
    """Reject steps whose outcome would depend on transfer ordering.

    Thin raising wrapper over :func:`step_write_conflicts` (the shared
    interval-engine implementation).
    """
    conflicts = step_write_conflicts(step, first_only=True)
    if conflicts:
        first, second = conflicts[0].first, conflicts[0].second
        raise ScheduleConflictError(
            f"step writes ranges [{first.lo},{first.hi}):"
            f"{first.owner.op} and [{second.lo},{second.hi}):{second.owner.op} "
            f"into node {conflicts[0].resource}; ordering would matter"
        )


def run_schedule(schedule: Schedule, buffers: np.ndarray, check: bool = True) -> np.ndarray:
    """Execute a materialized schedule in place.

    Args:
        schedule: A schedule with materialized steps.
        buffers: Array of shape ``(n_nodes, total_elems)``; modified in place.
        check: Run per-step conflict checks (cheap; on by default).

    Returns:
        ``buffers`` (same object) after all steps.
    """
    if buffers.shape != (schedule.n_nodes, schedule.total_elems):
        raise ValueError(
            f"buffers shape {buffers.shape} does not match schedule "
            f"({schedule.n_nodes}, {schedule.total_elems})"
        )
    for step in schedule.iter_steps():
        if check:
            check_step_conflicts(step)
        payloads = [
            (t, buffers[t.src, t.lo : t.hi].copy())
            for t in step.transfers
            if t.n_elems > 0
        ]
        for t, data in payloads:
            if t.op == "sum":
                buffers[t.dst, t.lo : t.hi] += data
            else:
                buffers[t.dst, t.lo : t.hi] = data
    return buffers


def initial_buffers(n_nodes: int, total_elems: int) -> np.ndarray:
    """Deterministic integer-valued test data: node ``i`` gets
    ``(i+1)·10⁴ + index`` so every (node, element) pair is distinguishable
    and all arithmetic stays exact in float64."""
    nodes = (np.arange(n_nodes, dtype=np.float64) + 1.0)[:, None] * 1.0e4
    elems = np.arange(total_elems, dtype=np.float64)[None, :]
    return nodes + elems


def verify_allreduce(schedule: Schedule) -> None:
    """Assert the All-reduce postcondition for ``schedule``.

    Raises:
        AssertionError: with the first offending node if any node's final
            buffer differs from the exact elementwise sum.
    """
    buffers = initial_buffers(schedule.n_nodes, schedule.total_elems)
    expected = buffers.sum(axis=0)
    run_schedule(schedule, buffers)
    for node in range(schedule.n_nodes):
        if not np.array_equal(buffers[node], expected):
            bad = int(np.flatnonzero(buffers[node] != expected)[0])
            raise AssertionError(
                f"{schedule.algorithm}: node {node} element {bad} is "
                f"{buffers[node, bad]!r}, expected {expected[bad]!r}"
            )
