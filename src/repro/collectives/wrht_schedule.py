"""WRHT as an executable schedule, built from a :class:`WrhtPlan`.

Reduce stage: one step per hierarchy level; within a level, every group's
non-representative members send their full partial sum to the group's
representative concurrently (``⌊m/2⌋`` wavelengths per group, reused across
groups and ring directions — the optical substrate checks this). When the
plan's all-to-all shortcut is on, the final reduce step is instead a single
all-to-all exchange among the surviving representatives.

Broadcast stage: the reduce levels replayed in reverse with ``copy``
transfers (skipping the last level when the all-to-all already left every
representative with the global sum).

Step count of the generated schedule equals the plan's θ by construction;
the test suite cross-checks it against the Table 1 closed form.
"""

from __future__ import annotations

from repro.collectives.alltoall import build_alltoall_step
from repro.collectives.base import CommStep, Schedule, Transfer, compress_steps
from repro.core.planner import WrhtPlan, plan_wrht
from repro.util.validation import check_positive_int


def _collect_step(level, total: int) -> CommStep:
    """All groups of one level collect to their representatives."""
    transfers = []
    for group in level.groups:
        for member in group.non_representatives:
            transfers.append(
                Transfer(src=member, dst=group.representative, lo=0, hi=total, op="sum")
            )
    if not transfers:
        raise ValueError(
            f"level {level.level} has only singleton groups; "
            "the planner should never produce this"
        )
    return CommStep(tuple(transfers), stage="reduce", level=level.level)


def _broadcast_step(level, total: int) -> CommStep:
    """Representatives of one level push the result back to their groups."""
    transfers = []
    for group in level.groups:
        for member in group.non_representatives:
            transfers.append(
                Transfer(src=group.representative, dst=member, lo=0, hi=total, op="copy")
            )
    return CommStep(tuple(transfers), stage="broadcast", level=level.level)


def build_wrht_schedule(
    n_nodes: int,
    total_elems: int,
    n_wavelengths: int = 64,
    m: int | None = None,
    plan: WrhtPlan | None = None,
    materialize: bool | None = None,
) -> Schedule:
    """Build the WRHT All-reduce schedule.

    Args:
        n_nodes: Ring size N >= 1.
        total_elems: Gradient vector length.
        n_wavelengths: Available wavelengths (used when planning).
        m: Optional forced group size (forwarded to the planner).
        plan: Pre-computed plan; overrides ``n_wavelengths``/``m``.
        materialize: API symmetry; WRHT schedules are O(N log N) transfers
            and are always materialized unless explicitly disabled.

    Returns:
        A :class:`Schedule` whose ``meta["plan"]`` holds the resolved plan.
    """
    check_positive_int("n_nodes", n_nodes)
    check_positive_int("total_elems", total_elems)
    if n_nodes == 1:
        from repro.collectives.base import singleton_schedule

        return singleton_schedule("wrht", total_elems)
    if plan is None:
        plan = plan_wrht(n_nodes, n_wavelengths, m=m)
    elif plan.n_nodes != n_nodes:
        raise ValueError(f"plan is for N={plan.n_nodes}, schedule for N={n_nodes}")

    steps: list[CommStep] = []
    reduce_levels = plan.levels
    for level in reduce_levels[:-1]:
        steps.append(_collect_step(level, total_elems))
    last = reduce_levels[-1]
    if plan.alltoall:
        steps.append(
            build_alltoall_step(
                last.population, total_elems, stage="reduce", level=last.level
            )
        )
        bcast_levels = reduce_levels[:-1]
    else:
        steps.append(_collect_step(last, total_elems))
        bcast_levels = reduce_levels
    for level in reversed(bcast_levels):
        steps.append(_broadcast_step(level, total_elems))

    if len(steps) != plan.theta:
        raise AssertionError(
            f"WRHT schedule has {len(steps)} steps but the plan says θ={plan.theta}"
        )
    return Schedule(
        algorithm="wrht",
        n_nodes=n_nodes,
        total_elems=total_elems,
        steps=steps if materialize is not False else None,
        timing_profile=compress_steps(steps),
        meta={"profile_exact": True, "plan": plan},
    )
