"""Name-based factory for All-reduce schedules.

The experiment runner, CLI and training substrate all select algorithms by
the short names used throughout the paper's figures: ``ring``, ``hring``,
``bt``, ``rd`` and ``wrht``.
"""

from __future__ import annotations

from typing import Callable

from repro.collectives.base import Schedule
from repro.collectives.btree import build_bt_schedule
from repro.collectives.dbtree import build_dbtree_schedule
from repro.collectives.hring import build_hring_schedule
from repro.collectives.rd import build_rd_schedule
from repro.collectives.ring import build_ring_schedule
from repro.collectives.wrht_schedule import build_wrht_schedule

_BUILDERS: dict[str, Callable[..., Schedule]] = {
    "ring": build_ring_schedule,
    "hring": build_hring_schedule,
    "bt": build_bt_schedule,
    "dbtree": build_dbtree_schedule,
    "rd": build_rd_schedule,
    "wrht": build_wrht_schedule,
}

# Pretty names as used in the paper's figures.
DISPLAY_NAMES = {
    "ring": "Ring",
    "hring": "H-Ring",
    "bt": "BT",
    "dbtree": "DBTree",
    "rd": "RD",
    "wrht": "WRHT",
}


def available_algorithms() -> list[str]:
    """Registered algorithm names, sorted."""
    return sorted(_BUILDERS)


def build_schedule(name: str, n_nodes: int, total_elems: int, **kwargs) -> Schedule:
    """Build a schedule by algorithm name.

    Args:
        name: One of :func:`available_algorithms` (case-insensitive; the
            display names "Ring"/"H-Ring"/... are accepted too).
        n_nodes: Participants.
        total_elems: Gradient vector length.
        **kwargs: Forwarded to the specific builder (``m``,
            ``n_wavelengths``, ``materialize``, ...).
    """
    key = name.lower().replace("-", "")
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        )
    return _BUILDERS[key](n_nodes, total_elems, **kwargs)
